#!/usr/bin/env bash
# Tier-1 gate: everything here runs fully offline.
#
#   build    release build of the whole workspace
#   test     the ~450 unit/integration/property tests
#   clippy   workspace lints, warnings are errors
#   replay   deterministic-replay check: two same-seed runs of the
#            fault-injected f16 experiment must render byte-identical
#            reports (timing and absolute-path lines stripped)
#   soak     bounded chaos soak: 25 seeded composed fault storms with
#            the machine-wide invariant checker on — must be
#            violation-free, every plan must replay bit-identically
#            from its chaos-plan/v1 artifact, and a second soak run in
#            a fresh process must print identical digests
#   fmt      cargo fmt --check: the tree is rustfmt-clean
#   jobs     parallel-determinism check: the full --quick suite at
#            --jobs 1 and --jobs 4 must write bit-identical results/
#            trees (the harness's core invariant)
#   mjobs    engine-determinism check: the suite at --machine-jobs 1
#            (serial engine) and --machine-jobs 4 (core-sharded epoch
#            engine) must write bit-identical results/ trees, both for
#            the full suite and for --quick --jobs 4 (the sharded
#            engine may only change wall-clock time, never results)
#   sblocks  superblock-determinism check: the suite with the
#            superblock engine disabled (SWITCHLESS_SUPERBLOCKS=0) must
#            write results/ trees bit-identical to the default-on runs
#            above, both for the full suite and for --quick --jobs 4
#            (superblocks may only change wall-clock time, never
#            results)
#   memsb    memory-superblock-determinism check: the suite with only
#            the batched load/store fast path disabled
#            (SWITCHLESS_MEM_SUPERBLOCKS=0, pure-register superblocks
#            still on) must write results/ trees bit-identical to the
#            default-on runs, both for the full suite and for --quick
#            --jobs 4 (the memory fast path may only change wall-clock
#            time, never results)
#   bench    host-throughput smoke + regression gate: switchless-bench
#            --quick must emit well-formed switchless-bench/v1 JSON, and
#            no bench may drop more than 20% below the newest committed
#            BENCH_*.json baseline. Each bench value is already a
#            median of three windows (the binary's best-of-3), and the
#            gate additionally takes the per-bench max of two quick
#            runs: 40 ms windows on a shared host can swing 2x
#            run-to-run, and a real hot-path regression reproduces in
#            both runs while a noise dip does not. Additionally, every
#            bench key ever committed in any BENCH_*.json must still be
#            present in the current runs — a bench silently dropped
#            from the binary is a gate failure, not a skip.
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release --workspace

step "cargo fmt --check"
cargo fmt --all -- --check

step "cargo test"
cargo test -q --workspace

step "cargo clippy -D warnings"
cargo clippy --workspace -- -D warnings

step "deterministic replay (f16 twice, same seed)"
# Strip wall-clock noise: per-experiment "(N.Ns)" lines, csv paths, and
# the trailing "Run timing" table (always the last block of the log).
strip_volatile() { sed '/^== Run timing/,$d' | grep -v -e '^  ([0-9]' -e '^  csv:'; }
# --out keeps the --quick CSVs off the committed results/ tree.
rp=target/ci-results-replay
a="$(cargo run -q --release -p switchless-experiments -- f16 --quick --out "$rp" | strip_volatile)"
b="$(cargo run -q --release -p switchless-experiments -- f16 --quick --out "$rp" | strip_volatile)"
if [ "$a" != "$b" ]; then
    echo "FAIL: same-seed fault-injection runs diverged" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
fi
echo "replay: byte-identical"

step "chaos soak (25 plans, invariants on, per-plan artifact replay)"
s1="$(cargo run -q --release -p switchless-experiments -- --soak 25 --quick)"
printf '%s\n' "$s1" | tail -1
s2="$(cargo run -q --release -p switchless-experiments -- --soak 25 --quick)"
if [ "$s1" != "$s2" ]; then
    echo "FAIL: chaos-soak digests diverged between processes" >&2
    diff <(printf '%s\n' "$s1") <(printf '%s\n' "$s2") >&2 || true
    exit 1
fi
echo "chaos soak: violation-free, digests stable across processes"

step "parallel determinism (full --quick suite, --jobs 1 vs --jobs 4)"
j1=target/ci-results-j1
j4=target/ci-results-j4
rm -rf "$j1" "$j4"
log1="$(cargo run -q --release -p switchless-experiments -- all --quick --jobs 1 --out "$j1")"
log4="$(cargo run -q --release -p switchless-experiments -- all --quick --jobs 4 --out "$j4")"
if ! diff -r "$j1" "$j4"; then
    echo "FAIL: results/ trees differ between --jobs 1 and --jobs 4" >&2
    exit 1
fi
s1="$(printf '%s\n' "$log1" | strip_volatile | sed "s|$j1|RESULTS|g")"
s4="$(printf '%s\n' "$log4" | strip_volatile | sed "s|$j4|RESULTS|g")"
if [ "$s1" != "$s4" ]; then
    echo "FAIL: run logs differ between --jobs 1 and --jobs 4" >&2
    diff <(printf '%s\n' "$s1") <(printf '%s\n' "$s4") >&2 || true
    exit 1
fi
echo "parallel determinism: identical results/ trees and logs"

step "engine determinism (--machine-jobs 1 vs --machine-jobs 4, --quick)"
mq1=target/ci-results-mj1-quick
mq4=target/ci-results-mj4-quick
rm -rf "$mq1" "$mq4"
mlog1="$(cargo run -q --release -p switchless-experiments -- all --quick --jobs 4 --machine-jobs 1 --out "$mq1")"
mlog4="$(cargo run -q --release -p switchless-experiments -- all --quick --jobs 4 --machine-jobs 4 --out "$mq4")"
if ! diff -r "$mq1" "$mq4"; then
    echo "FAIL: results/ trees differ between --machine-jobs 1 and --machine-jobs 4 (--quick)" >&2
    exit 1
fi
m1="$(printf '%s\n' "$mlog1" | strip_volatile | sed "s|$mq1|RESULTS|g" | sed 's/--machine-jobs [0-9]*/--machine-jobs N/g')"
m4="$(printf '%s\n' "$mlog4" | strip_volatile | sed "s|$mq4|RESULTS|g" | sed 's/--machine-jobs [0-9]*/--machine-jobs N/g')"
if [ "$m1" != "$m4" ]; then
    echo "FAIL: run logs differ between --machine-jobs 1 and --machine-jobs 4 (--quick)" >&2
    diff <(printf '%s\n' "$m1") <(printf '%s\n' "$m4") >&2 || true
    exit 1
fi
echo "engine determinism (quick): identical results/ trees and logs"

step "engine determinism (--machine-jobs 1 vs --machine-jobs 4, full)"
mf1=target/ci-results-mj1-full
mf4=target/ci-results-mj4-full
rm -rf "$mf1" "$mf4"
cargo run -q --release -p switchless-experiments -- all --machine-jobs 1 --out "$mf1" >/dev/null
cargo run -q --release -p switchless-experiments -- all --machine-jobs 4 --out "$mf4" >/dev/null
if ! diff -r "$mf1" "$mf4"; then
    echo "FAIL: results/ trees differ between --machine-jobs 1 and --machine-jobs 4 (full)" >&2
    exit 1
fi
echo "engine determinism (full): identical results/ trees"

step "superblock determinism (SWITCHLESS_SUPERBLOCKS=0 vs default-on, --quick)"
sbq=target/ci-results-nosb-quick
rm -rf "$sbq"
SWITCHLESS_SUPERBLOCKS=0 cargo run -q --release -p switchless-experiments -- all --quick --jobs 4 --out "$sbq" >/dev/null
if ! diff -r "$mq1" "$sbq"; then
    echo "FAIL: results/ trees differ between superblocks on and off (--quick)" >&2
    exit 1
fi
echo "superblock determinism (quick): identical results/ trees"

step "superblock determinism (SWITCHLESS_SUPERBLOCKS=0 vs default-on, full)"
sbf=target/ci-results-nosb-full
rm -rf "$sbf"
SWITCHLESS_SUPERBLOCKS=0 cargo run -q --release -p switchless-experiments -- all --out "$sbf" >/dev/null
if ! diff -r "$mf1" "$sbf"; then
    echo "FAIL: results/ trees differ between superblocks on and off (full)" >&2
    exit 1
fi
echo "superblock determinism (full): identical results/ trees"

step "memory-superblock determinism (SWITCHLESS_MEM_SUPERBLOCKS=0 vs default-on, --quick)"
msq=target/ci-results-nomemsb-quick
rm -rf "$msq"
SWITCHLESS_MEM_SUPERBLOCKS=0 cargo run -q --release -p switchless-experiments -- all --quick --jobs 4 --out "$msq" >/dev/null
if ! diff -r "$mq1" "$msq"; then
    echo "FAIL: results/ trees differ between memory superblocks on and off (--quick)" >&2
    exit 1
fi
echo "memory-superblock determinism (quick): identical results/ trees"

step "memory-superblock determinism (SWITCHLESS_MEM_SUPERBLOCKS=0 vs default-on, full)"
msf=target/ci-results-nomemsb-full
rm -rf "$msf"
SWITCHLESS_MEM_SUPERBLOCKS=0 cargo run -q --release -p switchless-experiments -- all --out "$msf" >/dev/null
if ! diff -r "$mf1" "$msf"; then
    echo "FAIL: results/ trees differ between memory superblocks on and off (full)" >&2
    exit 1
fi
echo "memory-superblock determinism (full): identical results/ trees"

step "bench smoke (switchless-bench --quick)"
bj=target/bench-smoke.json
rm -f "$bj"
cargo run -q --release -p switchless-bench -- --quick --out "$bj"
python3 - "$bj" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    d = json.load(f)
assert d["schema"] == "switchless-bench/v1", d.get("schema")
for section in ("benches", "baseline", "speedup"):
    assert isinstance(d[section], dict) and d[section], section
for k, v in d["benches"].items():
    assert isinstance(v, (int, float)) and v > 0, (k, v)
print("bench smoke: schema and keys ok")
EOF

step "bench regression gate (median >20% below newest committed BENCH_*.json fails, best of 2 runs)"
base="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [ -z "$base" ]; then
    echo "bench gate: no committed BENCH_*.json baseline, skipping"
else
    bj2=target/bench-smoke-2.json
    rm -f "$bj2"
    cargo run -q --release -p switchless-bench -- --quick --out "$bj2"
    python3 - "$bj" "$bj2" "$base" BENCH_*.json <<'EOF'
import json, sys
# Medians are the comparison numbers; files from before the best-of-3
# schema (no "benches_median" section) fall back to their single-shot
# "benches" values.
def medians(path):
    with open(path) as f:
        d = json.load(f)
    return d.get("benches_median", d["benches"])
run1 = medians(sys.argv[1])
run2 = medians(sys.argv[2])
ref = medians(sys.argv[3])
bad = []
# Coverage: every bench key ever committed (the union over all
# BENCH_*.json) must still be measured. Comparing only against the
# newest file would let a bench vanish silently: drop it from the
# binary, commit a new BENCH_N.json without it, and the gate would
# never look for it again.
ever = {}
for path in sys.argv[4:]:
    for k in medians(path):
        ever.setdefault(k, path)
for k, first in sorted(ever.items()):
    if k not in run1 and k not in run2:
        bad.append(f"{k}: committed in {first} but missing from current runs")
# Regression: thresholds always against the newest committed file.
for k, v in ref.items():
    c = max(run1.get(k, 0), run2.get(k, 0))
    if c == 0:
        bad.append(f"{k}: missing from current runs")
    elif c < 0.8 * v:
        bad.append(f"{k}: {c:.0f} is {c / v:.2f}x of baseline {v:.0f}")
    else:
        print(f"  {k}: {c / v:.2f}x of {sys.argv[3]}")
if bad:
    print("FAIL: bench regression vs " + sys.argv[3], file=sys.stderr)
    for line in bad:
        print("  " + line, file=sys.stderr)
    sys.exit(1)
print(f"bench gate: all ever-committed benches present, within 20% of {sys.argv[3]} (medians, best of 2 runs)")
EOF
fi

printf '\nCI green.\n'

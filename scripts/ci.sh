#!/usr/bin/env bash
# Tier-1 gate: everything here runs fully offline.
#
#   build    release build of the whole workspace
#   test     the ~450 unit/integration/property tests
#   clippy   workspace lints, warnings are errors
#   replay   deterministic-replay check: two same-seed runs of the
#            fault-injected f16 experiment must render byte-identical
#            reports (timing and absolute-path lines stripped)
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n==> %s\n' "$*"; }

step "cargo build --release"
cargo build --release --workspace

step "cargo test"
cargo test -q --workspace

step "cargo clippy -D warnings"
cargo clippy --workspace -- -D warnings

step "deterministic replay (f16 twice, same seed)"
strip_volatile() { grep -v -e '^  ([0-9]' -e '^  csv:'; }
a="$(cargo run -q --release -p switchless-experiments -- f16 --quick | strip_volatile)"
b="$(cargo run -q --release -p switchless-experiments -- f16 --quick | strip_volatile)"
if [ "$a" != "$b" ]; then
    echo "FAIL: same-seed fault-injection runs diverged" >&2
    diff <(printf '%s\n' "$a") <(printf '%s\n' "$b") >&2 || true
    exit 1
fi
echo "replay: byte-identical"

printf '\nCI green.\n'

//! Deterministic pseudo-random number generation.
//!
//! Simulations must be reproducible from a seed regardless of platform or
//! dependency versions, so this crate carries its own tiny generator:
//! xoshiro256\*\* seeded through SplitMix64, the standard combination
//! recommended by the xoshiro authors. Workload crates layer distributions
//! on top of [`Rng::next_f64`].

/// A xoshiro256\*\* pseudo-random generator.
///
/// Not cryptographically secure; statistically strong and extremely fast,
/// which is what a simulator needs.
///
/// # Examples
///
/// ```
/// use switchless_sim::rng::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// ```
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand a single seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a decorrelated seed from a base seed and a stream index.
///
/// Two rounds of the SplitMix64 finalizer: the base seed is mixed first,
/// the stream index is folded in, and the sum is mixed again. Both rounds
/// are bijections on `u64`, so for a fixed `seed` distinct `stream`
/// values can never collide — unlike ad-hoc `seed ^ f(stream)` schemes,
/// which correlate (and can collide) nearby streams.
///
/// This is the canonical way to seed one [`Rng`] per sweep point, shard,
/// or worker from a single experiment seed:
///
/// ```
/// use switchless_sim::rng::{mix_seed, Rng};
///
/// let a = Rng::seed_from(mix_seed(42, 0));
/// let b = Rng::seed_from(mix_seed(42, 1));
/// // streams 0 and 1 are fully decorrelated
/// # let _ = (a, b);
/// assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
/// ```
#[must_use]
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut s = seed;
    let mixed = splitmix64(&mut s);
    let mut t = mixed.wrapping_add(stream);
    splitmix64(&mut t)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Any seed (including 0) produces a valid, well-mixed state.
    #[must_use]
    pub fn seed_from(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child stream, e.g. one per simulated device.
    ///
    /// Mixing a stream index into the parent's output decorrelates children
    /// from the parent and from each other.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::seed_from(base ^ stream.wrapping_mul(0xa24b_aed4_963e_e407))
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Lemire 2019: unbiased bounded generation without division in the
        // common case.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only entered when low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "next_range requires lo <= hi");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform floating-point value in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used directly by Poisson arrival processes (inter-arrival gaps).
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        // Guard against ln(0): next_f64 is in [0,1), so 1-x is in (0,1].
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element, `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.next_below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_decorrelated() {
        let mut root = Rng::seed_from(99);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn mix_seed_streams_never_collide() {
        let mut seen = std::collections::HashSet::new();
        for stream in 0..10_000u64 {
            assert!(seen.insert(mix_seed(123, stream)), "collision at {stream}");
        }
    }

    #[test]
    fn mix_seed_decorrelates_nearby_streams() {
        let mut a = Rng::seed_from(mix_seed(7, 0));
        let mut b = Rng::seed_from(mix_seed(7, 1));
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = Rng::seed_from(3);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = Rng::seed_from(5);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            // Each bucket should be ~10000; allow generous 10% slack.
            assert!((9000..=11000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn next_range_endpoints_reachable() {
        let mut r = Rng::seed_from(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.next_range(4, 6) {
                4 => lo_seen = true,
                6 => hi_seen = true,
                5 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(13);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exp_mean_approximately_correct() {
        let mut r = Rng::seed_from(17);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| r.next_exp(50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from(19);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle changed order");
    }

    #[test]
    fn choose_none_on_empty() {
        let mut r = Rng::seed_from(23);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}

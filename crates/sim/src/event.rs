//! A cancellable, deterministic discrete-event queue.
//!
//! Events are ordered by their scheduled cycle; ties are broken by insertion
//! order (FIFO), which makes simulations deterministic for a fixed seed.
//! Cancellation is by token: [`EventQueue::schedule`] returns an
//! [`EventToken`] which can later be passed to [`EventQueue::cancel`].
//! Cancelled events are dropped lazily when they reach the head of the heap.

use core::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Cycles;

/// Handle identifying a scheduled event, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// A passive priority queue of timestamped events.
///
/// The queue does not dispatch; the owner pops `(time, event)` pairs and
/// acts on them. Same-cycle events pop in the order they were scheduled.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    /// Timestamp of the most recently popped event; pops must be monotone.
    last_popped: Cycles,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            last_popped: Cycles::ZERO,
        }
    }

    /// Schedules `event` to fire at absolute time `at`.
    ///
    /// Returns a token usable with [`EventQueue::cancel`]. Scheduling in the
    /// past is allowed (the event fires "immediately", i.e. before any
    /// later-stamped event), which simplifies zero-latency notifications.
    pub fn schedule(&mut self, at: Cycles, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
        EventToken(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the token had not already fired or been cancelled.
    /// Cancelling an already-popped token is a no-op returning `false`.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if token.0 >= self.next_seq {
            return false;
        }
        // An already-popped seq is not tracked; inserting it is harmless
        // (it can never pop again) but we report `false` for fired events
        // only on a best-effort basis: the heap is scanned lazily.
        self.cancelled.insert(token.0)
    }

    /// Time of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&mut self) -> Option<Cycles> {
        self.drop_cancelled();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        self.drop_cancelled();
        let Reverse(e) = self.heap.pop()?;
        self.last_popped = self.last_popped.max(e.at);
        Some((e.at, e.event))
    }

    /// Pops the earliest event only if it is due at or before `now`.
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        if self.peek_time()? <= now {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending (non-cancelled) events.
    ///
    /// This is O(1) amortised but may count cancelled events that have not
    /// yet been lazily dropped; use [`EventQueue::is_empty`] for an exact
    /// emptiness check.
    #[must_use]
    pub fn approx_len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no live events remain.
    #[must_use]
    pub fn is_empty(&mut self) -> bool {
        self.drop_cancelled();
        self.heap.is_empty()
    }

    fn drop_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), "c");
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(20), "b");
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
        assert_eq!(q.pop(), Some((Cycles(20), "b")));
        assert_eq!(q.pop(), Some((Cycles(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(7), i)));
        }
    }

    #[test]
    fn cancel_prevents_pop() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(Cycles(1), "one");
        let _t2 = q.schedule(Cycles(2), "two");
        assert!(q.cancel(t1));
        assert_eq!(q.pop(), Some((Cycles(2), "two")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_reports_false() {
        let mut q = EventQueue::new();
        let t = q.schedule(Cycles(1), ());
        assert!(q.cancel(t));
        assert!(!q.cancel(t));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "later");
        assert_eq!(q.pop_due(Cycles(5)), None);
        assert_eq!(q.pop_due(Cycles(10)), Some((Cycles(10), "later")));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let t = q.schedule(Cycles(1), "dead");
        q.schedule(Cycles(5), "live");
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(Cycles(5)));
    }

    #[test]
    fn scheduling_in_past_fires_first() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), "future");
        q.pop();
        q.schedule(Cycles(1), "past");
        assert_eq!(q.pop(), Some((Cycles(1), "past")));
    }

    #[test]
    fn is_empty_after_all_cancelled() {
        let mut q: EventQueue<()> = EventQueue::new();
        let a = q.schedule(Cycles(1), ());
        let b = q.schedule(Cycles(2), ());
        q.cancel(a);
        q.cancel(b);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;

    /// Brute-force ordering check: any interleaving of schedules and
    /// cancels pops live events in (time, insertion) order.
    #[test]
    fn random_schedule_cancel_preserves_order() {
        // A deterministic pseudo-random driver (no external RNG in this
        // crate's tests).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..50 {
            let mut q = EventQueue::new();
            let mut live: Vec<(u64, u64)> = Vec::new(); // (time, seq)
            let mut tokens = Vec::new();
            let mut seq = 0u64;
            for _ in 0..200 {
                let r = next();
                if r % 4 == 0 && !tokens.is_empty() {
                    let idx = (r as usize / 7) % tokens.len();
                    let (tok, time, s): (EventToken, u64, u64) = tokens.swap_remove(idx);
                    if q.cancel(tok) {
                        live.retain(|&(t, sq)| !(t == time && sq == s));
                    }
                } else {
                    let at = r % 1000;
                    let tok = q.schedule(Cycles(at), seq);
                    tokens.push((tok, at, seq));
                    live.push((at, seq));
                    seq += 1;
                }
            }
            live.sort();
            let mut popped = Vec::new();
            while let Some((at, s)) = q.pop() {
                popped.push((at.0, s));
            }
            assert_eq!(popped, live, "ordering violated");
        }
    }
}

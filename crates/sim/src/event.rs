//! A cancellable, deterministic discrete-event queue.
//!
//! Events are ordered by their scheduled cycle; ties are broken by insertion
//! order (FIFO), which makes simulations deterministic for a fixed seed.
//! Cancellation is by token: [`EventQueue::schedule`] returns an
//! [`EventToken`] which can later be passed to [`EventQueue::cancel`].
//! Cancelled events are dropped lazily when they reach the head of the queue.
//!
//! # Internals: timing wheel + overflow heap
//!
//! Simulators schedule almost every event a short, bounded distance into
//! the future (instruction costs, activation latencies), so the common
//! case is served by a timing wheel: slot `at % WHEEL_SLOTS` holds a FIFO
//! of the events due at cycle `at`, and an occupancy bitmap finds the
//! next non-empty slot with a handful of word scans. Events outside the
//! wheel horizon — scheduled in the past or more than [`WHEEL_SLOTS`]
//! cycles ahead — go to a binary heap and are merged by `(time, seq)` at
//! pop time.
//!
//! The wheel is exact, not approximate: every wheel entry's time lies in
//! `[cursor, cursor + WHEEL_SLOTS)` where `cursor` is the last popped
//! time (pops are monotone), so a slot never holds two distinct times
//! and slot order equals time order starting from the cursor's slot.

use core::cmp::Reverse;
use std::collections::BinaryHeap;

/// Per-seq state index: seq `s` (with `s >= ring_base`) lives at
/// `s & (RING_WINDOW - 1)` — windowing guarantees at most `RING_WINDOW`
/// in-ring seqs, so the masked indices never collide.
macro_rules! ring_slot {
    ($seq:expr) => {
        ($seq as usize) & (RING_WINDOW - 1)
    };
}

use crate::hash::FxHashSet;
use crate::time::Cycles;

/// Handle identifying a scheduled event, used for cancellation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// Per-seq lifecycle state tracked in the recency ring.
const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const RETIRED: u8 = 2;

/// Seqs within this distance of the newest keep their state in a flat
/// ring (no hashing). Older survivors spill to hash sets on age-out.
/// Simulation hot loops pop events scheduled at most a few thousand
/// schedules earlier (bounded by outstanding events), so steady state
/// never touches a hash table; the ring itself costs `RING_WINDOW`
/// bytes at most.
const RING_WINDOW: usize = 4096;

/// Number of wheel slots; also the wheel horizon in cycles. Power of two
/// so the slot index is a mask. Events due further out overflow to the
/// heap, which is correct but slower.
const WHEEL_SLOTS: usize = 4096;
/// Words in the slot-occupancy bitmap.
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// A passive priority queue of timestamped events.
///
/// The queue does not dispatch; the owner pops `(time, event)` pairs and
/// acts on them. Same-cycle events pop in the order they were scheduled.
///
/// # Complexity
///
/// | operation                         | cost            |
/// |-----------------------------------|-----------------|
/// | [`schedule`](EventQueue::schedule) | O(1) within the wheel horizon, O(log n) beyond |
/// | [`pop`](EventQueue::pop) / [`pop_due`](EventQueue::pop_due) | O(1) amortised within the horizon |
/// | [`cancel`](EventQueue::cancel)    | O(1)            |
/// | [`peek_time`](EventQueue::peek_time) / [`peek`](EventQueue::peek) | O(1) amortised |
/// | [`len`](EventQueue::len) / [`is_empty`](EventQueue::is_empty) | O(1), exact |
///
/// Cancelled events are removed lazily when they reach the head. Seq
/// bookkeeping lives in a fixed-size recency ring (newest
/// [`RING_WINDOW`] seqs) plus spill sets bounded by the number of *live*
/// entries, so long-running simulations that cancel (or cancel-after-
/// pop) heavily never accumulate garbage — and the hot schedule/pop
/// path performs no hashing at all.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Near-future events: slot `at & (WHEEL_SLOTS - 1)` holds a FIFO as
    /// a singly-linked chain of `slab` nodes (head..tail, seq-ascending).
    slots: Box<[Fifo; WHEEL_SLOTS]>,
    /// Node arena backing every slot FIFO. Freed nodes go to a LIFO
    /// freelist threaded through `next`, so a pop-then-schedule cycle —
    /// the steady state of a running simulation — reuses the cache line
    /// it just vacated instead of touching a per-slot buffer that went
    /// cold a full wheel lap ago.
    slab: Vec<Node<E>>,
    /// Head of the freelist through `Node::next`, or [`NIL`].
    free_head: u32,
    /// One bit per wheel slot, set when that slot's FIFO is non-empty.
    occupied: [u64; WHEEL_WORDS],
    /// Events outside the wheel horizon (far future, or scheduled in the
    /// past), merged with the wheel by `(time, seq)` at pop time.
    overflow: BinaryHeap<Reverse<Entry<E>>>,
    /// Lifecycle state of the newest seqs: seq `s` in
    /// `[ring_base, next_seq)` lives at `s & (RING_WINDOW - 1)`. A flat
    /// masked array, not a deque — state lookups on the pop path are one
    /// AND plus one indexed load.
    ring: Box<[u8; RING_WINDOW]>,
    ring_base: u64,
    /// Live seqs that aged out of the ring (still queued).
    old_live: FxHashSet<u64>,
    /// Cancelled-but-still-queued seqs that aged out of the ring.
    old_cancelled: FxHashSet<u64>,
    /// Exact number of live (scheduled, not popped/cancelled) events.
    live: usize,
    /// Cancelled events still physically queued, awaiting lazy removal.
    cancelled_queued: usize,
    next_seq: u64,
    /// Timestamp of the most recently popped event; pops are monotone,
    /// which is what anchors the wheel window.
    last_popped: Cycles,
}

#[derive(Debug)]
struct Entry<E> {
    at: Cycles,
    seq: u64,
    event: E,
}

/// Sentinel slab index: empty FIFO / end of chain / end of freelist.
const NIL: u32 = u32::MAX;

/// Head and tail slab indices of one wheel slot's FIFO, plus a copy of
/// the head node's key so the min scan (`min_src`) never dereferences
/// the slab: `at`/`seq` mirror `slab[head]` whenever `head != NIL`.
#[derive(Clone, Copy, Debug)]
struct Fifo {
    head: u32,
    tail: u32,
    at: Cycles,
    seq: u64,
}

/// One queued wheel event. `event` is `None` only while the node sits on
/// the freelist.
#[derive(Debug)]
struct Node<E> {
    at: Cycles,
    seq: u64,
    next: u32,
    event: Option<E>,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Where the current head (minimum) entry lives.
#[derive(Clone, Copy)]
enum Src {
    Wheel(usize),
    Overflow,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            slots: Box::new(
                [Fifo {
                    head: NIL,
                    tail: NIL,
                    at: Cycles::ZERO,
                    seq: 0,
                }; WHEEL_SLOTS],
            ),
            slab: Vec::new(),
            free_head: NIL,
            occupied: [0; WHEEL_WORDS],
            overflow: BinaryHeap::new(),
            ring: Box::new([RETIRED; RING_WINDOW]),
            ring_base: 0,
            old_live: FxHashSet::default(),
            old_cancelled: FxHashSet::default(),
            live: 0,
            cancelled_queued: 0,
            next_seq: 0,
            last_popped: Cycles::ZERO,
        }
    }

    /// Takes a node from the freelist (or grows the slab) and fills it.
    #[inline]
    fn alloc_node(&mut self, at: Cycles, seq: u64, event: E) -> u32 {
        let i = self.free_head;
        if i != NIL {
            let n = &mut self.slab[i as usize];
            self.free_head = n.next;
            *n = Node {
                at,
                seq,
                next: NIL,
                event: Some(event),
            };
            i
        } else {
            let i = u32::try_from(self.slab.len()).expect("slab fits in u32 indices");
            self.slab.push(Node {
                at,
                seq,
                next: NIL,
                event: Some(event),
            });
            i
        }
    }

    /// Appends a node to `slot`'s FIFO and marks the slot occupied.
    #[inline]
    fn slot_push_back(&mut self, slot: usize, at: Cycles, seq: u64, event: E) {
        let idx = self.alloc_node(at, seq, event);
        let f = self.slots[slot];
        if f.tail == NIL {
            self.slots[slot] = Fifo {
                head: idx,
                tail: idx,
                at,
                seq,
            };
        } else {
            self.slab[f.tail as usize].next = idx;
            self.slots[slot].tail = idx;
        }
        self.occupied[(slot >> 6) & (WHEEL_WORDS - 1)] |= 1 << (slot & 63);
    }

    /// Unlinks and returns `slot`'s head node, clearing the occupancy bit
    /// when the slot empties; the node returns to the freelist.
    #[inline]
    fn slot_pop_front(&mut self, slot: usize) -> Entry<E> {
        let i = self.slots[slot].head;
        debug_assert!(i != NIL, "pop from empty slot");
        let n = &mut self.slab[i as usize];
        let at = n.at;
        let seq = n.seq;
        let event = n.event.take().expect("live node has an event");
        let next = n.next;
        n.next = self.free_head;
        self.free_head = i;
        if next == NIL {
            self.slots[slot].head = NIL;
            self.slots[slot].tail = NIL;
            self.occupied[(slot >> 6) & (WHEEL_WORDS - 1)] &= !(1 << (slot & 63));
        } else {
            let nn = &self.slab[next as usize];
            let (nat, nseq) = (nn.at, nn.seq);
            let f = &mut self.slots[slot];
            f.head = next;
            f.at = nat;
            f.seq = nseq;
        }
        Entry { at, seq, event }
    }

    /// Schedules `event` to fire at absolute time `at`. O(1) for events
    /// within the wheel horizon, O(log n) beyond it.
    ///
    /// Returns a token usable with [`EventQueue::cancel`]. Scheduling in the
    /// past is allowed (the event fires "immediately", i.e. before any
    /// later-stamped event), which simplifies zero-latency notifications.
    pub fn schedule(&mut self, at: Cycles, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        if at >= self.last_popped && at.0 - self.last_popped.0 < WHEEL_SLOTS as u64 {
            let slot = at.0 as usize & (WHEEL_SLOTS - 1);
            self.slot_push_back(slot, at, seq, event);
        } else {
            self.overflow.push(Reverse(Entry { at, seq, event }));
        }
        if seq - self.ring_base == RING_WINDOW as u64 {
            // The oldest ring slot ages out (it is the one `seq` is about
            // to reuse); a seq still in play spills to the hash sets
            // (rare: an event that outlived RING_WINDOW later schedules,
            // or a cancel buried deep in the queue).
            let aged = self.ring_base;
            self.ring_base += 1;
            match self.ring[ring_slot!(aged)] {
                LIVE => {
                    self.old_live.insert(aged);
                }
                CANCELLED => {
                    self.old_cancelled.insert(aged);
                }
                _ => {}
            }
        }
        self.ring[ring_slot!(seq)] = LIVE;
        self.live += 1;
        EventToken(seq)
    }

    /// Cancels a previously scheduled event. O(1).
    ///
    /// Returns `true` if the token had not already fired or been
    /// cancelled. Cancelling an already-popped (or already-cancelled)
    /// token is an exact no-op returning `false`: the seq's lifecycle
    /// state is consulted, so a dead seq never re-enters the lazy-removal
    /// bookkeeping (which would otherwise leak memory over long runs).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let seq = token.0;
        if seq >= self.next_seq {
            return false; // never issued by this queue
        }
        let was_live = if seq >= self.ring_base {
            let slot = &mut self.ring[ring_slot!(seq)];
            let live = *slot == LIVE;
            if live {
                *slot = CANCELLED;
            }
            live
        } else if self.old_live.remove(&seq) {
            self.old_cancelled.insert(seq);
            true
        } else {
            false
        };
        if was_live {
            self.live -= 1;
            self.cancelled_queued += 1;
        }
        was_live
    }

    /// Time of the earliest pending event, if any. O(1) amortised (a
    /// cancelled prefix is dropped first).
    #[must_use]
    pub fn peek_time(&mut self) -> Option<Cycles> {
        self.live_min_src().map(|(_, at, _)| at)
    }

    /// The earliest pending deadline — [`EventQueue::peek_time`] under the
    /// name burst executors use. A simulator executing work inline (without
    /// re-entering the queue per step) must never advance past this time:
    /// anything at or before it (a device callback, a timer, a cross-core
    /// `SlotFree`) has to observe machine state first. The empty-queue
    /// fast path is two loads, so callers can afford to consult it per
    /// step.
    #[must_use]
    #[inline]
    pub fn next_deadline(&mut self) -> Option<Cycles> {
        if self.live == 0 && self.cancelled_queued == 0 {
            return None;
        }
        self.peek_time()
    }

    /// Monotone count of schedules ever issued. A caller that cached
    /// [`EventQueue::next_deadline`] may keep using the cached value while
    /// this mark is unchanged *and* no cancels happen: schedules are the
    /// only operation that can move the deadline **earlier**. (Cancels can
    /// move it later, which makes a cached value conservative, never
    /// unsafe.)
    #[must_use]
    #[inline]
    pub fn schedule_mark(&self) -> u64 {
        self.next_seq
    }

    /// The earliest pending `(time, event)` without removing it. O(1)
    /// amortised. Does not allocate.
    #[must_use]
    pub fn peek(&mut self) -> Option<(Cycles, &E)> {
        // `live_min_src` ends the query borrow of `self` before the
        // chosen entry is re-borrowed for the return value.
        match self.live_min_src()? {
            (Src::Wheel(slot), ..) => {
                let head = self.slots[slot & (WHEEL_SLOTS - 1)].head;
                let n = &self.slab[head as usize];
                Some((n.at, n.event.as_ref().expect("live node has an event")))
            }
            (Src::Overflow, ..) => {
                let Reverse(e) = self.overflow.peek().expect("checked");
                Some((e.at, &e.event))
            }
        }
    }

    /// Pops the earliest pending event. O(1) amortised within the wheel
    /// horizon, O(log n) for overflow events.
    pub fn pop(&mut self) -> Option<(Cycles, E)> {
        let (src, ..) = self.live_min_src()?;
        Some(self.take(src))
    }

    /// Pops the earliest pending event together with its token, so the
    /// caller can later re-insert it *verbatim* with
    /// [`EventQueue::restore`]. Burst executors use this to temporarily
    /// lift a provably-inert event (e.g. a sibling SMT slot's retry) out
    /// of the deadline computation without perturbing the queue's
    /// `(time, seq)` order when it is put back.
    pub fn pop_keyed(&mut self) -> Option<(Cycles, EventToken, E)> {
        let (src, ..) = self.live_min_src()?;
        let e = self.remove_head(src);
        self.retire(e.seq);
        self.live -= 1;
        self.last_popped = self.last_popped.max(e.at);
        Some((e.at, EventToken(e.seq), e.event))
    }

    /// Re-inserts an event previously removed with
    /// [`EventQueue::pop_keyed`], under its **original** `(time, seq)`
    /// key. The queue afterwards pops exactly as if the event had never
    /// been removed: the restored entry keeps its place in FIFO tie-break
    /// order ahead of anything scheduled since. The caller must pass the
    /// exact values returned by `pop_keyed` and restore each key at most
    /// once.
    pub fn restore(&mut self, at: Cycles, token: EventToken, event: E) {
        let seq = token.0;
        debug_assert!(seq < self.next_seq, "restore of a foreign token");
        if at >= self.last_popped && at.0 - self.last_popped.0 < WHEEL_SLOTS as u64 {
            let slot = at.0 as usize & (WHEEL_SLOTS - 1);
            // Slot FIFOs are kept in seq order; the restored entry is
            // older than anything scheduled after it was popped, so it
            // re-enters ahead of those.
            let idx = self.alloc_node(at, seq, event);
            let f = self.slots[slot];
            if f.head == NIL {
                self.slots[slot] = Fifo {
                    head: idx,
                    tail: idx,
                    at,
                    seq,
                };
            } else if seq < f.seq {
                self.slab[idx as usize].next = f.head;
                self.slots[slot] = Fifo {
                    head: idx,
                    tail: f.tail,
                    at,
                    seq,
                };
            } else {
                let mut p = f.head;
                loop {
                    let nxt = self.slab[p as usize].next;
                    if nxt == NIL || self.slab[nxt as usize].seq > seq {
                        break;
                    }
                    p = nxt;
                }
                let nxt = self.slab[p as usize].next;
                self.slab[idx as usize].next = nxt;
                self.slab[p as usize].next = idx;
                if nxt == NIL {
                    self.slots[slot].tail = idx;
                }
            }
            self.occupied[(slot >> 6) & (WHEEL_WORDS - 1)] |= 1 << (slot & 63);
        } else {
            self.overflow.push(Reverse(Entry { at, seq, event }));
        }
        if seq >= self.ring_base {
            self.ring[ring_slot!(seq)] = LIVE;
        } else {
            self.old_live.insert(seq);
        }
        self.live += 1;
    }

    /// Pops the earliest event only if it is due at or before `now`.
    /// Same cost as [`EventQueue::pop`].
    pub fn pop_due(&mut self, now: Cycles) -> Option<(Cycles, E)> {
        let (src, at, ..) = self.live_min_src()?;
        if at > now {
            return None;
        }
        Some(self.take(src))
    }

    /// Number of live (scheduled, not yet popped or cancelled) events.
    /// Exact and O(1): the live count is maintained eagerly even though
    /// removal of cancelled entries is lazy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no live events remain. Exact and O(1).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cancelled events still physically queued, awaiting lazy removal.
    /// Bounded by the number of cancels whose event has not yet reached
    /// the queue head — exposed so tests can assert the queue never
    /// leaks.
    #[must_use]
    pub fn cancelled_backlog(&self) -> usize {
        self.cancelled_queued
    }

    /// Locates the minimum `(time, seq)` entry across wheel and overflow;
    /// returns its source plus that `(time, seq)` so callers do not have
    /// to re-find the front.
    #[inline]
    fn min_src(&self) -> Option<(Src, Cycles, u64)> {
        if self.live == 0 && self.cancelled_queued == 0 {
            return None;
        }
        if self.overflow.is_empty() {
            // Overflow is empty in the steady state of short-horizon
            // simulations; skip the merge entirely.
            let slot = self.next_occupied_slot()?;
            let f = &self.slots[slot & (WHEEL_SLOTS - 1)];
            return Some((Src::Wheel(slot), f.at, f.seq));
        }
        let wheel = self.next_occupied_slot().map(|slot| {
            let f = &self.slots[slot & (WHEEL_SLOTS - 1)];
            (f.at, f.seq, slot)
        });
        let over = self.overflow.peek().map(|Reverse(e)| (e.at, e.seq));
        match (wheel, over) {
            (None, None) => None,
            (Some((at, seq, slot)), None) => Some((Src::Wheel(slot), at, seq)),
            (None, Some((at, seq))) => Some((Src::Overflow, at, seq)),
            (Some((wat, wseq, slot)), Some((oat, oseq))) => {
                if (wat, wseq) <= (oat, oseq) {
                    Some((Src::Wheel(slot), wat, wseq))
                } else {
                    Some((Src::Overflow, oat, oseq))
                }
            }
        }
    }

    /// First occupied wheel slot in time order, starting at the cursor's
    /// slot and wrapping. Bitmap scan: the hot case resolves in the first
    /// word.
    fn next_occupied_slot(&self) -> Option<usize> {
        let start = self.last_popped.0 as usize & (WHEEL_SLOTS - 1);
        let w0 = start >> 6;
        let first = self.occupied[w0] & (!0u64 << (start & 63));
        if first != 0 {
            return Some((w0 << 6) + first.trailing_zeros() as usize);
        }
        for k in 1..=WHEEL_WORDS {
            // k == WHEEL_WORDS revisits the start word to catch slots
            // below `start` (wrapped, i.e. latest-in-window times).
            let w = (w0 + k) & (WHEEL_WORDS - 1);
            let word = self.occupied[w];
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Removes and returns the head entry (which the caller has located
    /// via `min_src` and ensured is live).
    fn take(&mut self, src: Src) -> (Cycles, E) {
        let e = self.remove_head(src);
        self.retire(e.seq);
        self.live -= 1;
        self.last_popped = self.last_popped.max(e.at);
        (e.at, e.event)
    }

    fn remove_head(&mut self, src: Src) -> Entry<E> {
        match src {
            Src::Wheel(slot) => self.slot_pop_front(slot & (WHEEL_SLOTS - 1)),
            Src::Overflow => self.overflow.pop().expect("checked").0,
        }
    }

    /// Marks a live seq leaving the queue as fully dead.
    #[inline]
    fn retire(&mut self, seq: u64) {
        if seq >= self.ring_base {
            self.ring[ring_slot!(seq)] = RETIRED;
        } else {
            self.old_live.remove(&seq);
        }
    }

    /// Locates the live minimum entry, removing any cancelled entries
    /// sitting ahead of it. One `min_src` scan per physical head
    /// examined: a separate drop-then-find pass would pay **two** scans
    /// per pop whenever a cancel is pending anywhere in the queue (the
    /// steady state of cancel-heavy simulations).
    fn live_min_src(&mut self) -> Option<(Src, Cycles, u64)> {
        loop {
            let (src, at, seq) = self.min_src()?;
            if self.cancelled_queued != 0 {
                let head_cancelled = if seq >= self.ring_base {
                    self.ring[ring_slot!(seq)] == CANCELLED
                } else {
                    self.old_cancelled.contains(&seq)
                };
                if head_cancelled {
                    self.remove_head(src);
                    if seq >= self.ring_base {
                        self.ring[ring_slot!(seq)] = RETIRED;
                    } else {
                        self.old_cancelled.remove(&seq);
                    }
                    self.cancelled_queued -= 1;
                    continue;
                }
            }
            return Some((src, at, seq));
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(30), "c");
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(20), "b");
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
        assert_eq!(q.pop(), Some((Cycles(20), "b")));
        assert_eq!(q.pop(), Some((Cycles(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycles(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycles(7), i)));
        }
    }

    #[test]
    fn cancel_prevents_pop() {
        let mut q = EventQueue::new();
        let t1 = q.schedule(Cycles(1), "one");
        let _t2 = q.schedule(Cycles(2), "two");
        assert!(q.cancel(t1));
        assert_eq!(q.pop(), Some((Cycles(2), "two")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_reports_false() {
        let mut q = EventQueue::new();
        let t = q.schedule(Cycles(1), ());
        assert!(q.cancel(t));
        assert!(!q.cancel(t));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "later");
        assert_eq!(q.pop_due(Cycles(5)), None);
        assert_eq!(q.pop_due(Cycles(10)), Some((Cycles(10), "later")));
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let t = q.schedule(Cycles(1), "dead");
        q.schedule(Cycles(5), "live");
        q.cancel(t);
        assert_eq!(q.peek_time(), Some(Cycles(5)));
    }

    #[test]
    fn scheduling_in_past_fires_first() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(100), "future");
        q.pop();
        q.schedule(Cycles(1), "past");
        assert_eq!(q.pop(), Some((Cycles(1), "past")));
    }

    #[test]
    fn is_empty_after_all_cancelled() {
        let mut q: EventQueue<()> = EventQueue::new();
        let a = q.schedule(Cycles(1), ());
        let b = q.schedule(Cycles(2), ());
        q.cancel(a);
        q.cancel(b);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn cancel_after_pop_reports_false_and_leaks_nothing() {
        // Regression: cancelling an already-popped token used to insert
        // its dead seq into the lazy-removal set forever (unbounded
        // growth over long runs) and wrongly return `true`.
        let mut q = EventQueue::new();
        let mut popped_tokens = Vec::new();
        for i in 0..1000 {
            popped_tokens.push(q.schedule(Cycles(i), i));
        }
        for _ in 0..1000 {
            q.pop().unwrap();
        }
        for t in popped_tokens {
            assert!(!q.cancel(t), "cancelling a fired token must be false");
        }
        assert_eq!(q.cancelled_backlog(), 0, "dead seqs must not accumulate");
        assert_eq!(q.len(), 0);
        // A token cancelled while live, whose event then reaches the
        // queue head, is also fully drained.
        let t = q.schedule(Cycles(1), 0);
        q.schedule(Cycles(2), 1);
        assert!(q.cancel(t));
        assert_eq!(q.cancelled_backlog(), 1);
        assert_eq!(q.pop(), Some((Cycles(2), 1)));
        assert_eq!(q.cancelled_backlog(), 0);
        assert!(!q.cancel(t), "second cancel of the same token is false");
    }

    #[test]
    fn cancel_of_unissued_token_is_false() {
        // A token forged beyond next_seq (or from another queue) must not
        // poison the cancellation bookkeeping either.
        let mut q: EventQueue<()> = EventQueue::new();
        let mut other: EventQueue<()> = EventQueue::new();
        other.schedule(Cycles(1), ());
        let foreign = other.schedule(Cycles(2), ());
        assert!(!q.cancel(foreign));
        assert_eq!(q.cancelled_backlog(), 0);
    }

    #[test]
    fn len_is_exact_under_cancels() {
        let mut q = EventQueue::new();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        let a = q.schedule(Cycles(5), "a");
        let b = q.schedule(Cycles(6), "b");
        q.schedule(Cycles(7), "c");
        assert_eq!(q.len(), 3);
        q.cancel(b);
        // Exact immediately, even though the queue still holds "b".
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop().unwrap();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn ring_age_out_keeps_old_tokens_working() {
        // Events that survive more than RING_WINDOW later schedules spill
        // out of the recency ring into the hash sets; cancellation and
        // popping must still behave identically for them.
        let mut q = EventQueue::new();
        let old_live = q.schedule(Cycles(1_000_000), "old-live");
        let old_cancel = q.schedule(Cycles(2_000_000), "old-cancelled");
        assert!(q.cancel(old_cancel));
        for i in 0..(RING_WINDOW as u64 * 3) {
            let t = q.schedule(Cycles(i), "churn");
            assert_eq!(q.pop(), Some((Cycles(i), "churn")));
            assert!(!q.cancel(t), "popped token must stay dead after age-out");
        }
        // Both original events are now far behind the ring window.
        assert_eq!(q.len(), 1);
        assert_eq!(q.cancelled_backlog(), 1);
        assert!(
            !q.cancel(old_cancel),
            "second cancel stays false when spilled"
        );
        assert!(
            q.cancel(old_live),
            "spilled live event is still cancellable"
        );
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.cancelled_backlog(), 0, "lazy removal drains spilled seqs");
    }

    #[test]
    fn ring_age_out_pops_old_live_event() {
        let mut q = EventQueue::new();
        let survivor = q.schedule(Cycles(u64::MAX), "survivor");
        for i in 0..(RING_WINDOW as u64 * 2) {
            q.schedule(Cycles(i), "churn");
            q.pop().unwrap();
        }
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Cycles(u64::MAX), "survivor")));
        assert!(
            !q.cancel(survivor),
            "cancel after pop is false for spilled seq"
        );
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn wheel_horizon_boundary_orders_exactly() {
        // Events just inside and just outside the wheel horizon (and at
        // the same cycle across both structures) must interleave in
        // (time, insertion) order.
        let mut q = EventQueue::new();
        let w = WHEEL_SLOTS as u64;
        q.schedule(Cycles(w + 10), "overflow-first"); // beyond horizon
        q.schedule(Cycles(w - 1), "wheel-edge"); // last in-horizon cycle
        q.schedule(Cycles(w + 10), "overflow-second");
        assert_eq!(q.pop(), Some((Cycles(w - 1), "wheel-edge")));
        // Cursor is now w - 1: cycle w + 10 is inside the new horizon,
        // so this one lands in the wheel while two same-cycle events sit
        // in overflow with smaller seqs.
        q.schedule(Cycles(w + 10), "wheel-third");
        assert_eq!(q.pop(), Some((Cycles(w + 10), "overflow-first")));
        assert_eq!(q.pop(), Some((Cycles(w + 10), "overflow-second")));
        assert_eq!(q.pop(), Some((Cycles(w + 10), "wheel-third")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn wheel_wraps_across_many_laps() {
        // March time forward across several wheel laps with a sparse
        // event every ~1.5 slots-width to exercise bitmap wrap-around.
        let mut q = EventQueue::new();
        let mut at = 0u64;
        for i in 0..64u64 {
            at += (WHEEL_SLOTS as u64 * 3) / 2 + i;
            q.schedule(Cycles(at), i);
            // Half are scheduled one-at-a-time (always overflow, then
            // popped); interleave a near event to keep the wheel hot.
            q.schedule(Cycles(at.saturating_sub(1)), 1000 + i);
            assert_eq!(q.pop(), Some((Cycles(at - 1), 1000 + i)));
            assert_eq!(q.pop(), Some((Cycles(at), i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn next_deadline_tracks_min_and_mark_counts_schedules() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_deadline(), None);
        let m0 = q.schedule_mark();
        q.schedule(Cycles(50), "far");
        assert_eq!(q.schedule_mark(), m0 + 1);
        assert_eq!(q.next_deadline(), Some(Cycles(50)));
        // A later schedule can only pull the deadline earlier.
        q.schedule(Cycles(10), "near");
        assert_eq!(q.schedule_mark(), m0 + 2);
        assert_eq!(q.next_deadline(), Some(Cycles(10)));
        // Popping does not disturb the mark (it only counts schedules).
        assert_eq!(q.pop(), Some((Cycles(10), "near")));
        assert_eq!(q.schedule_mark(), m0 + 2);
        assert_eq!(q.next_deadline(), Some(Cycles(50)));
        // Cancelling the last event drains the deadline too.
        let t = q.schedule(Cycles(60), "dead");
        q.cancel(t);
        assert_eq!(q.pop(), Some((Cycles(50), "far")));
        assert_eq!(q.next_deadline(), None);
    }

    #[test]
    fn pop_keyed_restore_is_invisible_to_ordering() {
        let mut q = EventQueue::new();
        q.schedule(Cycles(10), "a");
        q.schedule(Cycles(10), "b");
        q.schedule(Cycles(20), "c");
        // Lift the head out, schedule newer same-cycle work, put it back:
        // the restored entry must still win its FIFO tie.
        let (at, tok, ev) = q.pop_keyed().unwrap();
        assert_eq!((at, ev), (Cycles(10), "a"));
        q.schedule(Cycles(10), "d");
        q.restore(at, tok, ev);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((Cycles(10), "a")));
        assert_eq!(q.pop(), Some((Cycles(10), "b")));
        assert_eq!(q.pop(), Some((Cycles(10), "d")));
        assert_eq!(q.pop(), Some((Cycles(20), "c")));
        assert_eq!(q.pop(), None);
        // A restore below the advanced cursor lands in overflow and still
        // pops first (and its token stays cancellable across the cycle).
        q.schedule(Cycles(100), "far");
        let (at, tok, ev) = q.pop_keyed().unwrap();
        q.schedule(Cycles(150), "advance");
        assert_eq!(q.pop(), Some((Cycles(150), "advance")));
        q.restore(at, tok, ev);
        assert_eq!(q.peek_time(), Some(Cycles(100)));
        assert!(q.cancel(tok), "restored event is live again");
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn peek_returns_event_without_removing() {
        let mut q = EventQueue::new();
        let t = q.schedule(Cycles(3), "dead");
        q.schedule(Cycles(4), "live");
        q.cancel(t);
        assert_eq!(q.peek(), Some((Cycles(4), &"live")));
        assert_eq!(q.len(), 1, "peek must not remove live events");
        assert_eq!(q.pop(), Some((Cycles(4), "live")));
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;

    /// Brute-force ordering check: any interleaving of schedules and
    /// cancels pops live events in (time, insertion) order.
    #[test]
    fn random_schedule_cancel_preserves_order() {
        // A deterministic pseudo-random driver (no external RNG in this
        // crate's tests).
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..50 {
            let mut q = EventQueue::new();
            let mut live: Vec<(u64, u64)> = Vec::new(); // (time, seq)
            let mut tokens = Vec::new();
            let mut seq = 0u64;
            for _ in 0..200 {
                let r = next();
                if r % 4 == 0 && !tokens.is_empty() {
                    let idx = (r as usize / 7) % tokens.len();
                    let (tok, time, s): (EventToken, u64, u64) = tokens.swap_remove(idx);
                    if q.cancel(tok) {
                        live.retain(|&(t, sq)| !(t == time && sq == s));
                    }
                } else {
                    let at = r % 1000;
                    let tok = q.schedule(Cycles(at), seq);
                    tokens.push((tok, at, seq));
                    live.push((at, seq));
                    seq += 1;
                }
            }
            live.sort();
            let mut popped = Vec::new();
            while let Some((at, s)) = q.pop() {
                popped.push((at.0, s));
            }
            assert_eq!(popped, live, "ordering violated");
        }
    }

    /// Same brute force, but with interleaved pops and a time range that
    /// straddles the wheel horizon, so wheel/overflow merging and the
    /// advancing cursor are both exercised.
    #[test]
    fn random_interleaved_pops_preserve_order() {
        let mut state = 0xdead_beef_cafe_f00du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..20 {
            let mut q = EventQueue::new();
            // Model: sorted list of live (time, seq); pops must match its
            // prefix, respecting monotone time (never schedule before the
            // last popped time so the model stays comparable).
            let mut model: Vec<(u64, u64)> = Vec::new();
            let mut floor = 0u64;
            let mut seq = 0u64;
            let mut tokens: Vec<(EventToken, u64, u64)> = Vec::new();
            for _ in 0..400 {
                let r = next();
                match r % 5 {
                    0 | 1 => {
                        // Spread far beyond one wheel width.
                        let at = floor + r % (3 * WHEEL_SLOTS as u64);
                        let tok = q.schedule(Cycles(at), seq);
                        tokens.push((tok, at, seq));
                        model.push((at, seq));
                        seq += 1;
                    }
                    2 if !tokens.is_empty() => {
                        let idx = (r as usize / 7) % tokens.len();
                        let (tok, time, s) = tokens.swap_remove(idx);
                        if q.cancel(tok) {
                            model.retain(|&(t, sq)| !(t == time && sq == s));
                        }
                    }
                    _ => {
                        model.sort_unstable();
                        if model.is_empty() {
                            assert_eq!(q.pop(), None);
                        } else {
                            let (at, s) = model.remove(0);
                            assert_eq!(q.pop(), Some((Cycles(at), s)));
                            floor = at;
                        }
                    }
                }
            }
            model.sort_unstable();
            for (at, s) in model {
                assert_eq!(q.pop(), Some((Cycles(at), s)));
            }
            assert_eq!(q.pop(), None);
        }
    }
}

//! Machine-wide invariant checking plumbing.
//!
//! Chaos soaks are only as trustworthy as the oracle that watches them: a
//! storm that corrupts state *silently* proves nothing. This module holds
//! the machine-agnostic half of the invariant checker — the violation
//! record, the bounded report, and the conservation [`Ledger`] device
//! models keep their descriptor-ring accounting in. The machine-specific
//! checks (thread-state legality, no-lost-wakeup, queue monotonicity,
//! quarantine liveness) live in `switchless-core`, which walks its own
//! state at event-queue boundaries and records anything illegal here.
//!
//! Checking is **off by default** and enabled per machine for chaos and
//! debug runs, so the measured experiments stay bit-identical.

use crate::time::Cycles;

/// One observed violation of a named invariant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable invariant name, e.g. `"thread.state"` or `"nic.rx.ring"`.
    pub invariant: &'static str,
    /// Simulated time at which the check failed.
    pub at: Cycles,
    /// Human-readable specifics (thread id, counter values, …).
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "[{}] {} at cycle {}",
            self.invariant, self.detail, self.at.0
        )
    }
}

/// Violations kept verbatim before the report starts counting only.
const KEEP: usize = 32;

/// A bounded accumulator of invariant violations.
///
/// Keeps the first [`KEEP`] violations verbatim (a broken invariant tends
/// to fire on every subsequent check, and the *first* occurrence is the
/// diagnostic one) plus an exact total count and the number of checks run.
#[derive(Clone, Debug, Default)]
pub struct InvariantReport {
    kept: Vec<Violation>,
    total: u64,
    checks: u64,
}

impl InvariantReport {
    /// A fresh, empty report.
    #[must_use]
    pub fn new() -> InvariantReport {
        InvariantReport::default()
    }

    /// Records one violation.
    pub fn record(&mut self, invariant: &'static str, at: Cycles, detail: String) {
        self.total += 1;
        if self.kept.len() < KEEP {
            self.kept.push(Violation {
                invariant,
                at,
                detail,
            });
        }
    }

    /// Notes that one checking pass ran (violation-free or not).
    pub fn note_check(&mut self) {
        self.checks += 1;
    }

    /// True when no violation has ever been recorded.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Total violations recorded (including ones beyond the kept window).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of checking passes run.
    #[must_use]
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// The first violations, up to the kept bound.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.kept
    }

    /// Drops all recorded state, keeping checking enabled-ness to the
    /// caller (the report does not know whether it is active).
    pub fn clear(&mut self) {
        self.kept.clear();
        self.total = 0;
        self.checks = 0;
    }
}

/// Descriptor-ring conservation ledger: every posted operation must end up
/// exactly one of completed, in-flight, or dropped.
///
/// Device models account each operation at the moment its fate changes
/// (posted → in-flight → completed/dropped); the checker then asserts
/// `posted == completed + in_flight + dropped`. The value of the check is
/// that the four counters are bumped on *different code paths* — a path
/// that forgets or double-counts an operation (the classic lost-completion
/// bug) unbalances the ledger immediately.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Ledger {
    /// Operations handed to the device.
    pub posted: u64,
    /// Operations whose completion was delivered.
    pub completed: u64,
    /// Operations accepted but not yet completed or dropped.
    pub in_flight: u64,
    /// Operations deliberately lost (injected fault, backpressure).
    pub dropped: u64,
}

impl Ledger {
    /// True when the ring conserves descriptors.
    #[must_use]
    pub fn balanced(&self) -> bool {
        self.posted == self.completed + self.in_flight + self.dropped
    }

    /// Diagnostic rendering for violation details.
    #[must_use]
    pub fn describe(&self) -> String {
        format!(
            "posted={} completed={} in_flight={} dropped={}",
            self.posted, self.completed, self.in_flight, self.dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_keeps_first_violations_and_exact_total() {
        let mut r = InvariantReport::new();
        assert!(r.is_clean());
        for i in 0..100u64 {
            r.record("thread.state", Cycles(i), format!("v{i}"));
        }
        assert!(!r.is_clean());
        assert_eq!(r.total(), 100);
        assert_eq!(r.violations().len(), KEEP);
        assert_eq!(r.violations()[0].detail, "v0");
        r.clear();
        assert!(r.is_clean());
        assert_eq!(r.checks(), 0);
    }

    #[test]
    fn ledger_balance() {
        let mut l = Ledger::default();
        assert!(l.balanced());
        l.posted = 10;
        l.completed = 6;
        l.in_flight = 3;
        l.dropped = 1;
        assert!(l.balanced());
        l.dropped = 0; // a lost completion
        assert!(!l.balanced());
        assert!(l.describe().contains("posted=10"));
    }

    #[test]
    fn violation_display_names_invariant() {
        let v = Violation {
            invariant: "queue.monotone",
            at: Cycles(42),
            detail: "t=41 after t=42".into(),
        };
        let s = v.to_string();
        assert!(s.contains("queue.monotone") && s.contains("42"), "{s}");
    }
}

//! Table rendering for the experiment harness.
//!
//! Every reproduced table/figure is emitted both as an aligned plain-text
//! table (human inspection) and as CSV (plotting). [`Table`] is a tiny,
//! dependency-free formatter shared by all experiments.

use core::fmt::Write as _;

/// A simple column-aligned table with a title and optional caption.
///
/// # Examples
///
/// ```
/// use switchless_sim::report::Table;
///
/// let mut t = Table::new("F1: wakeup latency", &["design", "p50 (ns)", "p99 (ns)"]);
/// t.row(&["legacy-irq", "2100", "4800"]);
/// t.row(&["hwt-mwait", "15", "40"]);
/// let text = t.render();
/// assert!(text.contains("legacy-irq"));
/// let csv = t.to_csv();
/// assert!(csv.starts_with("design,p50 (ns),p99 (ns)\n"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    caption: Option<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            caption: None,
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// allowed (extra cells render but get no header).
    pub fn row(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of already-owned strings (convenient with `format!`).
    pub fn row_owned(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Sets a caption rendered under the table.
    pub fn caption(&mut self, text: &str) {
        self.caption = Some(text.to_owned());
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned plain-text form.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let measure = |widths: &mut Vec<usize>, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        };
        measure(&mut widths, &self.headers);
        for r in &self.rows {
            measure(&mut widths, r);
        }

        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                let pad = w - cell.chars().count();
                // Right-align numeric-looking cells, left-align text.
                let numeric = !cell.is_empty()
                    && cell
                        .chars()
                        .all(|ch| ch.is_ascii_digit() || ".-+e%x".contains(ch));
                if numeric {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_owned()
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(r, &widths));
        }
        if let Some(c) = &self.caption {
            let _ = writeln!(out, "  note: {c}");
        }
        out
    }

    /// Renders the CSV form (RFC-4180 quoting for cells that need it).
    ///
    /// The output is always rectangular: every line is padded with empty
    /// cells to the widest of the header and any data row, matching the
    /// padding promise [`Table::row`] makes for the rendered form.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.headers.len()])
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        let line = |cells: &[String]| {
            let mut csv: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            csv.resize(ncols, String::new());
            csv.join(",")
        };
        let _ = writeln!(out, "{}", line(&self.headers));
        for r in &self.rows {
            let _ = writeln!(out, "{}", line(r));
        }
        out
    }

    /// The file-name slug derived from the title: lowercased, runs of
    /// non-alphanumerics collapsed to `_`.
    ///
    /// Distinct titles can share a slug (they may differ only in
    /// punctuation); [`CsvSink`] detects and uniquifies such collisions
    /// within a run.
    #[must_use]
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Writes the CSV form to `dir/<slug>.csv`, creating the directory.
    ///
    /// Returns the written path. Note this overwrites whatever is at that
    /// path; when emitting many tables in one run, prefer [`CsvSink`],
    /// which detects slug collisions between distinct titles.
    pub fn write_csv(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.slug()));
        std::fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Writes a run's tables into one directory, uniquifying slug collisions.
///
/// Two titles differing only in punctuation (`"F9: x!"` vs `"F9; x?"`)
/// map to the same [`Table::slug`]; writing both through
/// [`Table::write_csv`] would silently clobber the first. A sink tracks
/// every file name it has produced and gives later colliders a `_2`,
/// `_3`, ... suffix, so each table in a run lands in its own file.
///
/// File-name assignment depends only on the order of [`CsvSink::write`]
/// calls, so a harness that writes tables in a fixed (registry) order
/// produces identical trees regardless of how the tables were computed.
#[derive(Clone, Debug)]
pub struct CsvSink {
    dir: std::path::PathBuf,
    used: std::collections::BTreeSet<String>,
}

impl CsvSink {
    /// Creates a sink writing into `dir` (created on first write).
    #[must_use]
    pub fn new(dir: &std::path::Path) -> CsvSink {
        CsvSink {
            dir: dir.to_owned(),
            used: std::collections::BTreeSet::new(),
        }
    }

    /// Writes `table` to `<dir>/<slug>.csv`, appending `_2`, `_3`, ... to
    /// the slug if a previous write in this run already took it. Returns
    /// the written path.
    pub fn write(&mut self, table: &Table) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let base = table.slug();
        let mut slug = base.clone();
        let mut n = 1u32;
        while !self.used.insert(slug.clone()) {
            n += 1;
            slug = format!("{base}_{n}");
        }
        let path = self.dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.to_csv())?;
        Ok(path)
    }
}

/// Builds a two-column table from every counter whose name starts with
/// `prefix`, in name order.
///
/// Used by fault-injection experiments to report per-fault-kind totals
/// (e.g. every `fault.*` counter) without hand-listing the names.
#[must_use]
pub fn counters_table(title: &str, counters: &crate::stats::Counters, prefix: &str) -> Table {
    let mut t = Table::new(title, &["counter", "count"]);
    for (name, value) in counters.iter() {
        if name.starts_with(prefix) {
            t.row_owned(vec![name.to_owned(), value.to_string()]);
        }
    }
    t
}

/// Formats a float with engineering-friendly precision.
///
/// Values ≥ 100 get no decimals, ≥ 10 one decimal, otherwise two.
#[must_use]
pub fn fnum(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    let a = x.abs();
    if a >= 100.0 {
        format!("{x:.0}")
    } else if a >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short", "1"]);
        t.row(&["much-longer-name", "23456"]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        assert!(lines[3].starts_with("short"));
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("switchless_report_test");
        let mut t = Table::new("F9: Priority vs RR!", &["n", "lat"]);
        t.row(&["1", "2"]);
        let path = t.write_csv(&dir).unwrap();
        assert!(path.ends_with("f9_priority_vs_rr.csv"));
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "n,lat\n1,2\n");
    }

    #[test]
    fn short_rows_pad() {
        let mut t = Table::new("p", &["a", "b", "c"]);
        t.row(&["only-one"]);
        let s = t.render();
        assert!(s.contains("only-one"));
    }

    #[test]
    fn csv_is_rectangular_with_short_and_long_rows() {
        let mut t = Table::new("p", &["a", "b", "c"]);
        t.row(&["only-one"]);
        t.row(&["1", "2", "3", "4"]); // longer than the header
        let csv = t.to_csv();
        let widths: Vec<usize> = csv.lines().map(|l| l.split(',').count()).collect();
        assert_eq!(widths, vec![4, 4, 4], "every line padded to the widest");
        assert!(csv.contains("only-one,,,"));
        assert!(csv.starts_with("a,b,c,\n"));
    }

    #[test]
    fn csv_sink_uniquifies_colliding_slugs() {
        let dir = std::env::temp_dir().join("switchless_csv_sink_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = CsvSink::new(&dir);
        let mut a = Table::new("F9: priority, vs RR!", &["n"]);
        a.row(&["1"]);
        let mut b = Table::new("F9; priority vs RR?", &["n"]);
        b.row(&["2"]);
        let pa = sink.write(&a).unwrap();
        let pb = sink.write(&b).unwrap();
        assert_eq!(a.slug(), b.slug(), "titles collide by construction");
        assert_ne!(pa, pb);
        assert!(pa.ends_with("f9_priority_vs_rr.csv"));
        assert!(pb.ends_with("f9_priority_vs_rr_2.csv"));
        assert_eq!(std::fs::read_to_string(&pa).unwrap(), "n\n1\n");
        assert_eq!(std::fs::read_to_string(&pb).unwrap(), "n\n2\n");
    }

    #[test]
    fn csv_sink_suffix_skips_taken_names() {
        let dir = std::env::temp_dir().join("switchless_csv_sink_suffix_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut sink = CsvSink::new(&dir);
        // "x 2" claims the slug "x_2" before "x" ever collides.
        for title in ["x 2", "x", "x!"] {
            let mut t = Table::new(title, &["h"]);
            t.row(&["v"]);
            sink.write(&t).unwrap();
        }
        let mut names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        names.sort();
        assert_eq!(names, vec!["x.csv", "x_2.csv", "x_3.csv"]);
    }

    #[test]
    fn fnum_precision() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.25), "42.2");
        assert_eq!(fnum(3.21987), "3.22");
        assert_eq!(fnum(0.5), "0.50");
    }

    #[test]
    fn counters_table_filters_by_prefix() {
        let mut c = crate::stats::Counters::default();
        c.add("fault.nic.drop", 3);
        c.add("fault.ssd.read_error", 1);
        c.add("nic.rx.packets", 500);
        let t = counters_table("faults", &c, "fault.");
        assert_eq!(t.len(), 2);
        let csv = t.to_csv();
        assert!(csv.contains("fault.nic.drop,3"));
        assert!(!csv.contains("nic.rx.packets"));
    }

    #[test]
    fn caption_rendered() {
        let mut t = Table::new("t", &["h"]);
        t.row(&["v"]);
        t.caption("hello");
        assert!(t.render().contains("note: hello"));
    }
}

//! Seeded chaos plans: composed fault storms, replay artifacts, and an
//! automatic plan shrinker.
//!
//! F16 demonstrated switchless recovery under hand-written single-fault
//! scenarios. A chaos soak asks the harder question: does the machine hold
//! its invariants under *composed* storms — several fault kinds bursting
//! in overlapping windows, intensities sweeping up mid-storm, faults
//! landing inside instruction bursts? A [`ChaosPlan`] is the deterministic
//! unit of that campaign:
//!
//! * [`ChaosPlan::generate`] derives a storm schedule from a single seed —
//!   correlated multi-kind episodes, log-uniform intensities, optional
//!   ramping sweeps — and resolves same-kind window collisions
//!   deterministically, so the result always converts to a valid
//!   [`FaultPlan`].
//! * [`ChaosPlan::to_text`] / [`ChaosPlan::parse`] round-trip the plan
//!   through the `chaos-plan/v1` artifact format (rates serialized as
//!   f64 bit patterns, so replay is exact, never a decimal approximation).
//! * [`shrink`] reduces a failing plan to a minimal reproducer with a
//!   caller-supplied oracle — delta-debugging over the burst set, then
//!   bisection of each surviving window.
//!
//! The module is machine-agnostic on purpose: running a plan (and deciding
//! what "fails" means) belongs to the experiment harness; expressing,
//! persisting and minimising plans belongs here.

use crate::error::SimError;
use crate::fault::{FaultKind, FaultPlan, FaultPlanError};
use crate::rng::{mix_seed, Rng};
use crate::time::Cycles;

/// RNG stream tag for chaos-plan generation ("CHAS").
const CHAOS_STREAM: u64 = 0x4348_4153;

/// Oracle-call budget for [`shrink`]; generous for plans of tens of
/// bursts, and a hard stop against pathological oracles.
const SHRINK_BUDGET: u32 = 512;

/// One windowed storm burst: `kind` fires on `device` at `rate` while the
/// clock is in `[from, to)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosBurst {
    /// The fault kind this burst drives.
    pub kind: FaultKind,
    /// Device instance the burst targets.
    pub device: u8,
    /// Per-operation fault probability inside the window.
    pub rate: f64,
    /// Window start (inclusive).
    pub from: Cycles,
    /// Window end (exclusive).
    pub to: Cycles,
}

/// Tunables for [`ChaosPlan::generate`].
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Soak duration; every burst window lives inside `[0, duration)`.
    pub duration: Cycles,
    /// Storm episodes to compose (each contributes 1–3 kinds).
    pub episodes: u32,
    /// Upper bound on per-operation fault rates; intensities are drawn
    /// log-uniformly from three decades below this.
    pub max_rate: f64,
    /// Device instances per class (burst device ids are drawn below this).
    pub devices: u8,
}

impl ChaosConfig {
    /// A storm config for a soak of the given duration: 6 episodes,
    /// rates up to 10%, single device instances.
    #[must_use]
    pub fn new(duration: Cycles) -> ChaosConfig {
        ChaosConfig {
            duration,
            episodes: 6,
            max_rate: 0.1,
            devices: 1,
        }
    }
}

/// A seeded, serializable, shrinkable storm schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPlan {
    /// Seed for the [`FaultPlan`]'s component streams (and, for generated
    /// plans, the schedule itself).
    pub seed: u64,
    /// Soak duration the plan was built for.
    pub duration: Cycles,
    /// Device instances per class.
    pub devices: u8,
    /// The composed storm, sorted canonically (kind, device, window).
    pub bursts: Vec<ChaosBurst>,
    /// Outcome digest recorded by a previous run, if any; replay compares
    /// against this to prove bit-identical re-execution.
    pub digest: Option<u64>,
}

impl ChaosPlan {
    /// Generates a composed storm schedule deterministically from `seed`.
    ///
    /// Each episode picks a window, 1–3 correlated kinds sharing it, and a
    /// log-uniform intensity; ~30% of episodes become three-step ramping
    /// intensity sweeps instead of flat bursts. Same-kind window
    /// collisions are resolved by clipping the later burst, so the result
    /// always satisfies [`FaultPlan`] validation.
    #[must_use]
    pub fn generate(seed: u64, cfg: &ChaosConfig) -> ChaosPlan {
        let mut rng = Rng::seed_from(mix_seed(seed, CHAOS_STREAM));
        let dur = cfg.duration.0.max(64);
        let mut bursts: Vec<ChaosBurst> = Vec::new();
        for _ in 0..cfg.episodes {
            let start = rng.next_below(dur - dur / 8);
            let len = (dur / 64).max(1) + rng.next_below((dur / 8).max(1));
            let from = start;
            let to = (start + len).min(dur);
            if from >= to {
                continue;
            }
            // Correlated episode: up to 3 distinct kinds share the window.
            let kinds_n = 1 + rng.next_below(3) as usize;
            let mut pool: Vec<FaultKind> = FaultKind::ALL.to_vec();
            rng.shuffle(&mut pool);
            // Log-uniform intensity across three decades below max_rate.
            let rate = cfg.max_rate * 10f64.powf(-3.0 * rng.next_f64());
            let sweep = rng.chance(0.3) && (to - from) >= 3;
            for kind in pool.into_iter().take(kinds_n) {
                let device = rng.next_below(u64::from(cfg.devices.max(1))) as u8;
                if sweep {
                    // Ramp: third the window at rate/4, rate/2, rate.
                    let step = (to - from) / 3;
                    for (i, r) in [rate / 4.0, rate / 2.0, rate].iter().enumerate() {
                        let f = from + step * i as u64;
                        let t = if i == 2 {
                            to
                        } else {
                            from + step * (i as u64 + 1)
                        };
                        bursts.push(ChaosBurst {
                            kind,
                            device,
                            rate: *r,
                            from: Cycles(f),
                            to: Cycles(t),
                        });
                    }
                } else {
                    bursts.push(ChaosBurst {
                        kind,
                        device,
                        rate,
                        from: Cycles(from),
                        to: Cycles(to),
                    });
                }
            }
        }
        let mut plan = ChaosPlan {
            seed,
            duration: cfg.duration,
            devices: cfg.devices.max(1),
            bursts,
            digest: None,
        };
        plan.canonicalise();
        plan
    }

    /// Sorts bursts canonically and clips same-(kind, device) overlaps so
    /// the plan always passes [`FaultPlan`] validation.
    fn canonicalise(&mut self) {
        self.bursts.sort_by(|a, b| {
            (a.kind.index(), a.device, a.from.0, a.to.0).cmp(&(
                b.kind.index(),
                b.device,
                b.from.0,
                b.to.0,
            ))
        });
        let mut out: Vec<ChaosBurst> = Vec::with_capacity(self.bursts.len());
        let mut cursor: Option<(usize, u8, u64)> = None;
        for mut b in self.bursts.drain(..) {
            if let Some((k, d, end)) = cursor {
                if k == b.kind.index() && d == b.device {
                    b.from = Cycles(b.from.0.max(end));
                }
            }
            if b.from >= b.to {
                continue; // fully shadowed by an earlier burst
            }
            cursor = Some((b.kind.index(), b.device, b.to.0));
            out.push(b);
        }
        self.bursts = out;
    }

    /// Builds the executable [`FaultPlan`] for this schedule.
    pub fn to_fault_plan(&self) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::new(self.seed).with_devices(self.devices);
        for b in &self.bursts {
            plan = plan.try_with_burst(b.kind, b.device, b.rate, b.from, b.to)?;
        }
        Ok(plan)
    }

    /// Renders the plan in the `chaos-plan/v1` replay-artifact format.
    ///
    /// Rates are serialized as hexadecimal f64 bit patterns (with an
    /// approximate decimal in a trailing comment) so a parsed plan is
    /// *bit-identical* to the one that was written, never a rounding
    /// neighbour.
    #[must_use]
    pub fn to_text(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        s.push_str("chaos-plan/v1\n");
        let _ = writeln!(s, "seed {}", self.seed);
        let _ = writeln!(s, "duration {}", self.duration.0);
        let _ = writeln!(s, "devices {}", self.devices);
        for b in &self.bursts {
            let _ = writeln!(
                s,
                "burst {} {} {} {} {:016x} # rate≈{:.2e}",
                b.kind,
                b.device,
                b.from.0,
                b.to.0,
                b.rate.to_bits(),
                b.rate
            );
        }
        if let Some(d) = self.digest {
            let _ = writeln!(s, "digest {d:016x}");
        }
        s
    }

    /// Parses a `chaos-plan/v1` artifact.
    pub fn parse(text: &str) -> Result<ChaosPlan, SimError> {
        let bad = |line: usize, detail: String| SimError::Parse { line, detail };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, "chaos-plan/v1")) => {}
            other => {
                return Err(bad(
                    1,
                    format!(
                        "expected header `chaos-plan/v1`, got {:?}",
                        other.map(|(_, l)| l).unwrap_or("")
                    ),
                ))
            }
        }
        let mut plan = ChaosPlan {
            seed: 0,
            duration: Cycles(0),
            devices: 1,
            bursts: Vec::new(),
            digest: None,
        };
        fn take_u64<'a, I>(f: &mut I, n: usize, what: &str, radix: u32) -> Result<u64, SimError>
        where
            I: Iterator<Item = &'a str>,
        {
            let tok = f.next().ok_or(SimError::Parse {
                line: n,
                detail: format!("missing {what}"),
            })?;
            u64::from_str_radix(tok, radix).map_err(|e| SimError::Parse {
                line: n,
                detail: format!("bad {what} `{tok}`: {e}"),
            })
        }
        for (i, raw) in lines {
            let n = i + 1; // 1-based for diagnostics
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_ascii_whitespace();
            match f.next().unwrap_or("") {
                "seed" => plan.seed = take_u64(&mut f, n, "seed", 10)?,
                "duration" => plan.duration = Cycles(take_u64(&mut f, n, "duration", 10)?),
                "devices" => {
                    plan.devices = take_u64(&mut f, n, "device count", 10)?.clamp(1, 255) as u8;
                }
                "digest" => plan.digest = Some(take_u64(&mut f, n, "digest", 16)?),
                "burst" => {
                    let name = f
                        .next()
                        .ok_or_else(|| bad(n, "missing fault kind".into()))?;
                    let kind = FaultKind::ALL
                        .into_iter()
                        .find(|k| k.to_string() == name)
                        .ok_or_else(|| bad(n, format!("unknown fault kind `{name}`")))?;
                    let device = take_u64(&mut f, n, "device", 10)?.min(255) as u8;
                    let from = Cycles(take_u64(&mut f, n, "window start", 10)?);
                    let to = Cycles(take_u64(&mut f, n, "window end", 10)?);
                    let rate = f64::from_bits(take_u64(&mut f, n, "rate bits", 16)?);
                    plan.bursts.push(ChaosBurst {
                        kind,
                        device,
                        rate,
                        from,
                        to,
                    });
                }
                other => return Err(bad(n, format!("unknown directive `{other}`"))),
            }
        }
        // Surface invalid windows/rates/devices now, structurally, rather
        // than as a panic at run time.
        plan.to_fault_plan().map_err(SimError::FaultPlan)?;
        Ok(plan)
    }
}

/// What [`shrink`] did, for logging and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Oracle invocations spent.
    pub oracle_calls: u32,
    /// Bursts removed by delta-debugging.
    pub removed: usize,
    /// Windows narrowed by bisection.
    pub narrowed: usize,
}

/// Reduces a failing chaos plan to a minimal reproducer.
///
/// `fails` must return `true` for any plan that still reproduces the
/// problem (invariant violation, replay divergence, …); it is assumed to
/// hold for `plan` itself. Two phases, both deterministic and bounded by
/// an internal oracle budget:
///
/// 1. **Burst minimisation** (ddmin): repeatedly drop chunks of the burst
///    list while the failure persists, down to single-burst granularity.
/// 2. **Window narrowing**: bisect each surviving burst's window — keep
///    the failing half — until neither half alone reproduces.
///
/// Returns the reduced plan (digest cleared; it describes a different run)
/// and statistics about the reduction.
pub fn shrink<F>(plan: &ChaosPlan, mut fails: F) -> (ChaosPlan, ShrinkStats)
where
    F: FnMut(&ChaosPlan) -> bool,
{
    let mut stats = ShrinkStats::default();
    let mut cur = plan.clone();
    cur.digest = None;
    let before = cur.bursts.len();

    // Phase 1: ddmin over the burst set.
    let mut n = 2usize;
    'outer: while cur.bursts.len() >= 2 && stats.oracle_calls < SHRINK_BUDGET {
        let len = cur.bursts.len();
        let gran = n.min(len);
        let chunk = len.div_ceil(gran);
        for i in 0..gran {
            let lo = i * chunk;
            if lo >= len {
                break;
            }
            let hi = (lo + chunk).min(len);
            let mut cand = cur.clone();
            cand.bursts.drain(lo..hi);
            if cand.bursts.is_empty() {
                continue;
            }
            stats.oracle_calls += 1;
            if fails(&cand) {
                cur = cand;
                n = 2;
                continue 'outer;
            }
            if stats.oracle_calls >= SHRINK_BUDGET {
                break 'outer;
            }
        }
        if gran >= len {
            break;
        }
        n = (n * 2).min(len);
    }
    stats.removed = before - cur.bursts.len();

    // Phase 2: bisect each surviving window.
    for i in 0..cur.bursts.len() {
        loop {
            if stats.oracle_calls + 2 > SHRINK_BUDGET {
                break;
            }
            let b = cur.bursts[i];
            if b.to.0 - b.from.0 <= 1 {
                break;
            }
            let mid = Cycles(b.from.0 + (b.to.0 - b.from.0) / 2);
            let mut left = cur.clone();
            left.bursts[i].to = mid;
            stats.oracle_calls += 1;
            if fails(&left) {
                cur = left;
                stats.narrowed += 1;
                continue;
            }
            let mut right = cur.clone();
            right.bursts[i].from = mid;
            stats.oracle_calls += 1;
            if fails(&right) {
                cur = right;
                stats.narrowed += 1;
                continue;
            }
            break;
        }
    }
    (cur, stats)
}

/// A tiny streaming FNV-1a 64 digest for run outcomes.
///
/// Replay needs a cheap, dependency-free way to compare two whole-machine
/// runs bit-for-bit: fold every observable (counters, histogram buckets,
/// final cycle count) into one of these on both sides.
#[derive(Clone, Copy, Debug)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Digest {
        Digest::new()
    }
}

impl Digest {
    /// FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the digest.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a u64 (little-endian) into the digest.
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Folds a string into the digest.
    pub fn push_str(&mut self, s: &str) {
        self.push_bytes(s.as_bytes());
    }

    /// The accumulated 64-bit digest.
    #[must_use]
    pub fn finish(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChaosConfig {
        ChaosConfig::new(Cycles(1_000_000))
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        for seed in 0..50u64 {
            let a = ChaosPlan::generate(seed, &cfg());
            let b = ChaosPlan::generate(seed, &cfg());
            assert_eq!(a, b, "seed {seed}");
            assert!(!a.bursts.is_empty(), "seed {seed} generated no storm");
            a.to_fault_plan()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for w in &a.bursts {
                assert!(w.from < w.to && w.to.0 <= a.duration.0, "seed {seed}");
            }
        }
    }

    #[test]
    fn distinct_seeds_generate_distinct_storms() {
        let a = ChaosPlan::generate(1, &cfg());
        let b = ChaosPlan::generate(2, &cfg());
        assert_ne!(a.bursts, b.bursts);
    }

    #[test]
    fn text_round_trip_is_exact() {
        for seed in [0u64, 7, 42, 1 << 40] {
            let mut plan = ChaosPlan::generate(seed, &cfg());
            plan.digest = Some(0xdead_beef_cafe_f00d);
            let parsed = ChaosPlan::parse(&plan.to_text()).unwrap();
            assert_eq!(plan, parsed, "seed {seed}");
            // Exact f64 bits survive, not a decimal approximation.
            for (a, b) in plan.bursts.iter().zip(&parsed.bursts) {
                assert_eq!(a.rate.to_bits(), b.rate.to_bits());
            }
        }
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let e = ChaosPlan::parse("not-a-plan\n").unwrap_err();
        assert!(matches!(e, SimError::Parse { line: 1, .. }), "{e}");
        let text = "chaos-plan/v1\nseed 1\nburst nic.blorp 0 0 10 0\n";
        let e = ChaosPlan::parse(text).unwrap_err();
        assert!(matches!(e, SimError::Parse { line: 3, .. }), "{e}");
        // Structurally invalid plans are refused at parse time too.
        let text = "chaos-plan/v1\nseed 1\nburst nic.drop 0 20 10 3fb999999999999a\n";
        let e = ChaosPlan::parse(text).unwrap_err();
        assert!(matches!(e, SimError::FaultPlan(_)), "{e}");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "chaos-plan/v1\n# a comment\n\nseed 9\nduration 100\n";
        let plan = ChaosPlan::parse(text).unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.duration, Cycles(100));
    }

    #[test]
    fn shrinker_finds_minimal_reproducer() {
        // Synthetic oracle: the "bug" needs a FabricLoss burst covering
        // cycle 500_000 AND a NicDrop burst covering cycle 200_000.
        let needs = |p: &ChaosPlan| {
            let covers = |k: FaultKind, c: u64| {
                p.bursts
                    .iter()
                    .any(|b| b.kind == k && b.from.0 <= c && c < b.to.0 && b.rate > 0.0)
            };
            covers(FaultKind::FabricLoss, 500_000) && covers(FaultKind::NicDrop, 200_000)
        };
        // Find a generated plan that actually triggers the oracle.
        let plan = (0..2000u64)
            .map(|s| ChaosPlan::generate(s, &cfg()))
            .find(|p| needs(p))
            .expect("some seed composes the required storm");
        let (small, stats) = shrink(&plan, needs);
        assert!(needs(&small), "shrunk plan no longer reproduces");
        // Minimal: exactly the two necessary bursts survive…
        assert_eq!(small.bursts.len(), 2, "{small:?}");
        // …and each window is pinned tightly around its trigger cycle.
        for b in &small.bursts {
            assert!(b.to.0 - b.from.0 <= 2, "window not narrowed: {b:?}");
        }
        assert!(stats.oracle_calls <= SHRINK_BUDGET);
        assert!(stats.removed >= plan.bursts.len() - 2);
        // Shrinking is deterministic.
        let (again, _) = shrink(&plan, needs);
        assert_eq!(small, again);
    }

    #[test]
    fn shrinker_is_identity_for_single_necessary_burst() {
        let mut plan = ChaosPlan {
            seed: 3,
            duration: Cycles(1000),
            devices: 1,
            bursts: vec![ChaosBurst {
                kind: FaultKind::SsdReadError,
                device: 0,
                rate: 1.0,
                from: Cycles(0),
                to: Cycles(1000),
            }],
            digest: Some(1),
        };
        let (small, stats) = shrink(&plan, |p| !p.bursts.is_empty());
        assert_eq!(small.bursts.len(), 1);
        assert!(small.digest.is_none(), "digest must be cleared");
        // Window narrows to a single cycle: any non-empty plan fails.
        assert_eq!(small.bursts[0].to.0 - small.bursts[0].from.0, 1);
        assert!(stats.oracle_calls > 0);
        plan.digest = None;
        assert_ne!(small, plan);
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        let mut a = Digest::new();
        a.push_u64(1);
        a.push_str("x");
        let mut b = Digest::new();
        b.push_str("x");
        b.push_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Digest::new();
        c.push_u64(1);
        c.push_str("x");
        assert_eq!(a.finish(), c.finish());
    }
}

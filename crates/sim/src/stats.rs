//! Streaming statistics: summaries, latency histograms, counters.
//!
//! The experiment harness reports percentiles (p50/p90/p99/p99.9) of
//! latency distributions, as the papers cited by our target (`[46]` Shinjuku,
//! `[63]` Shenango) do. [`Histogram`] is a log-bucketed (HDR-style) histogram
//! with bounded relative error, so recording is O(1) and memory is constant
//! regardless of sample count.

use core::fmt;

use crate::hash::FxHashMap;

/// Welford streaming mean/variance plus min/max.
///
/// # Examples
///
/// ```
/// use switchless_sim::stats::Summary;
///
/// let mut s = Summary::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.record(x);
/// }
/// assert_eq!(s.count(), 4);
/// assert!((s.mean() - 2.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Summary {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of observations (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram of non-negative integer values (e.g. cycles).
///
/// Values are bucketed with `SUB_BITS` sub-buckets per power of two, giving
/// a worst-case relative quantile error of `2^-SUB_BITS` (< 2% with the
/// default 6 bits). Recording saturates at `2^62` rather than panicking.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: u128,
    max: u64,
    min: u64,
}

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per octave (<2% error).
const SUB_BITS: u32 = 6;
const SUBS: usize = 1 << SUB_BITS;
/// 63 octaves × 64 sub-buckets covers the full u64-ish range.
const NBUCKETS: usize = 63 * SUBS;

fn bucket_index(v: u64) -> usize {
    if v < SUBS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - SUB_BITS;
    let sub = (v >> octave) as usize - SUBS;
    ((octave as usize) * SUBS + SUBS + sub).min(NBUCKETS - 1)
}

/// Representative (midpoint) value for a bucket index.
fn bucket_value(idx: usize) -> u64 {
    if idx < SUBS {
        return idx as u64;
    }
    let octave = (idx - SUBS) / SUBS;
    let sub = (idx - SUBS) % SUBS;
    let lo = ((SUBS + sub) as u64) << octave;
    let width = 1u64 << octave;
    lo + width / 2
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; NBUCKETS],
            count: 0,
            total: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let v = v.min(1 << 62);
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.total += u128::from(v);
        self.max = self.max.max(v);
        self.min = self.min.min(v);
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded value (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    /// Exact minimum recorded value (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Value at quantile `q` in `[0, 1]`, within the bucket resolution.
    ///
    /// Returns 0 for an empty histogram. `q` outside `[0,1]` is clamped.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based ceil like HdrHistogram.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Median (p50) shorthand.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile shorthand.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile shorthand.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.total += other.total;
        if other.count > 0 {
            self.max = self.max.max(other.max);
            self.min = self.min.min(other.min);
        }
    }

    /// Clears all recorded samples (e.g. at the end of a warmup window).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.total = 0;
        self.max = 0;
        self.min = u64::MAX;
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} p50={} p99={} p99.9={} max={}",
            self.count,
            self.mean(),
            self.p50(),
            self.p99(),
            self.p999(),
            self.max()
        )
    }
}

/// A registry of named monotonically increasing counters.
///
/// Kernels and devices bump counters ("irq.delivered", "nic.rx.drops") and
/// experiments snapshot them. [`Counters::iter`] sorts, so output stays in
/// name order while the hot `add`/`inc` path is a single hash lookup that
/// allocates only the first time a name is seen.
///
/// For the hottest sites (bumped once or more per simulated instruction),
/// [`Counters::id`] resolves a name to a [`CounterId`] once, and
/// [`Counters::bump`] is then a bare array index — no hashing, no string
/// compare. Still-zero counters are not reported by [`Counters::iter`],
/// so pre-registering an id does not change output.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    index: FxHashMap<String, u32>,
    /// Parallel arrays; `index` maps a name to its slot in both.
    names: Vec<String>,
    slots: Vec<u64>,
}

/// A pre-resolved counter handle; see [`Counters::id`].
///
/// Ids stay valid for the lifetime of the registry ([`Counters::reset`]
/// zeroes values but keeps registrations).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(u32);

impl Counters {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Resolves `name` to a stable [`CounterId`], registering it at zero
    /// on first use. O(name) once; [`Counters::bump`] is O(1) after.
    pub fn id(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.index.get(name) {
            return CounterId(i);
        }
        let i = u32::try_from(self.slots.len()).expect("counter registry overflow");
        self.index.insert(name.to_owned(), i);
        self.names.push(name.to_owned());
        self.slots.push(0);
        CounterId(i)
    }

    /// Adds `n` to the counter behind a pre-resolved id (O(1), no hash).
    #[inline]
    pub fn bump(&mut self, id: CounterId, n: u64) {
        self.slots[id.0 as usize] += n;
    }

    /// Adds `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, n: u64) {
        let id = self.id(name);
        self.bump(id, n);
    }

    /// Increments counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of `name` (0 if never bumped).
    #[must_use]
    pub fn get(&self, name: &str) -> u64 {
        self.index.get(name).map_or(0, |&i| self.slots[i as usize])
    }

    /// Iterates `(name, value)` of every nonzero counter, in name order
    /// (sorted on each call; registered-but-never-bumped names are
    /// omitted, matching the output of a purely on-demand registry).
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut all: Vec<(&str, u64)> = self
            .names
            .iter()
            .zip(&self.slots)
            .filter(|&(_, &v)| v != 0)
            .map(|(k, &v)| (k.as_str(), v))
            .collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        all.into_iter()
    }

    /// Zeroes all counters. Registered [`CounterId`]s remain valid.
    pub fn reset(&mut self) {
        self.slots.iter_mut().for_each(|v| *v = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i * 37 % 91) as f64).collect();
        let mut whole = Summary::new();
        let mut left = Summary::new();
        let mut right = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i < 40 {
                left.record(x);
            } else {
                right.record(x);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-6);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..SUBS as u64 {
            h.record(v);
        }
        // Below SUBS every value has its own bucket, so quantiles are exact.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), SUBS as u64 - 1);
    }

    #[test]
    fn histogram_quantiles_bounded_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let expect = (q * 100_000.0) as u64;
            let got = h.quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.03, "q={q} got={got} expect={expect} err={err}");
        }
    }

    #[test]
    fn histogram_mean_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert!((h.mean() - 25.0).abs() < 1e-12);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn histogram_merge_matches_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut u = Histogram::new();
        for v in 0..1000u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            u.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), u.count());
        assert_eq!(a.p50(), u.p50());
        assert_eq!(a.p99(), u.p99());
        assert_eq!(a.max(), u.max());
    }

    #[test]
    fn histogram_reset() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn histogram_single_value() {
        let mut h = Histogram::new();
        h.record(77);
        assert_eq!(h.p50(), 77);
        assert_eq!(h.p999(), 77);
        assert_eq!(h.min(), 77);
    }

    #[test]
    fn histogram_huge_value_saturates() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), 1 << 62);
    }

    #[test]
    fn quantile_empty_histogram_is_zero() {
        let h = Histogram::new();
        for q in [0.0, 0.5, 0.99, 1.0, -1.0, 2.0] {
            assert_eq!(h.quantile(q), 0);
        }
    }

    #[test]
    fn quantile_single_sample_every_q() {
        let mut h = Histogram::new();
        h.record(777);
        for q in [0.0, 0.25, 0.5, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 777);
        }
    }

    #[test]
    fn quantile_extremes_hit_min_and_max_exactly() {
        // Values below SUBS have exact buckets, so q=0 / q=1 are exact.
        let mut h = Histogram::new();
        for v in 5..=60u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 5);
        assert_eq!(h.quantile(1.0), 60);
        // Out-of-range q clamps to the same extremes.
        assert_eq!(h.quantile(-3.5), 5);
        assert_eq!(h.quantile(7.0), 60);
    }

    #[test]
    fn quantile_at_saturation_boundary() {
        // Everything at or above 2^62 saturates into one exact point.
        let mut h = Histogram::new();
        h.record(1 << 62);
        h.record(u64::MAX);
        h.record((1 << 62) + 1);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 1 << 62);
        }
        assert_eq!(h.min(), 1 << 62);
        // A mixed histogram still reports the saturated value at the tail.
        h.record(10);
        assert_eq!(h.quantile(0.0), 10);
        assert_eq!(h.quantile(1.0), 1 << 62);
    }

    #[test]
    fn bucket_roundtrip_error_bounded() {
        for v in [1u64, 63, 64, 65, 100, 1000, 123_456, 1 << 30, 1 << 45] {
            let idx = bucket_index(v);
            let rep = bucket_value(idx);
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.02, "v={v} rep={rep} err={err}");
        }
    }

    #[test]
    fn counter_ids_bump_fast_path() {
        let mut c = Counters::new();
        let id = c.id("hot");
        assert_eq!(c.id("hot"), id, "id() is idempotent per name");
        c.bump(id, 3);
        c.inc("hot");
        assert_eq!(c.get("hot"), 4);
        // Registered-but-never-bumped names don't leak into iter().
        let _cold = c.id("cold");
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["hot"]);
        // reset zeroes values but ids stay valid.
        c.reset();
        assert_eq!(c.get("hot"), 0);
        c.bump(id, 1);
        assert_eq!(c.get("hot"), 1);
    }

    #[test]
    fn counters_basic() {
        let mut c = Counters::new();
        c.inc("a");
        c.add("a", 4);
        c.inc("b");
        assert_eq!(c.get("a"), 5);
        assert_eq!(c.get("b"), 1);
        assert_eq!(c.get("missing"), 0);
        let names: Vec<&str> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}

//! A deterministic, dependency-free FxHash-style hasher for hot paths.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3 with per-instance random
//! keys) is designed to resist hash-flooding from untrusted input. The
//! simulator's hot-path maps are keyed by small trusted integers — event
//! sequence numbers, cache-line addresses, hcall numbers, ptids — where
//! SipHash is pure overhead and the random seed adds nothing (map
//! *iteration order* still must never leak into simulated behaviour; see
//! the determinism notes on each use site). This module provides the
//! classic Firefox/rustc "Fx" multiply-xor hash: one rotate, one xor and
//! one multiply per 8-byte chunk, fully deterministic across runs and
//! platforms of the same pointer width.
//!
//! # Examples
//!
//! ```
//! use switchless_sim::hash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

use core::hash::{BuildHasherDefault, Hasher};
use std::collections::{HashMap, HashSet};

/// `HashMap` with the Fx hasher. `Default` gives an empty map.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` with the Fx hasher. `Default` gives an empty set.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Creates an empty [`FxHashMap`] with space for `cap` elements.
#[must_use]
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The rustc/Firefox Fx word-at-a-time multiply-xor hasher.
///
/// Not flooding-resistant — only for maps keyed by trusted simulator
/// state.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::hash::Hash;

    fn hash_of<T: Hash>(x: T) -> u64 {
        let mut h = FxHasher::default();
        x.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("inst.executed"), hash_of("inst.executed"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test — just a sanity check that the low bits
        // (which HashMap uses for bucket selection) vary for small keys.
        let hashes: Vec<u64> = (0u64..64).map(hash_of).collect();
        let mut low7: Vec<u64> = hashes.iter().map(|h| h >> 57).collect();
        low7.sort_unstable();
        low7.dedup();
        assert!(low7.len() > 32, "small keys collapse to few buckets");
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FxHashMap<u64, u64> = fx_map_with_capacity(16);
        for i in 0..1000u64 {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&999), Some(&2997));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.remove(&5));
        assert!(!s.remove(&5));
    }

    #[test]
    fn string_tail_length_matters() {
        // The tail is tagged with its length so prefixes of zero bytes
        // do not collide trivially.
        assert_ne!(hash_of([0u8; 3].as_slice()), hash_of([0u8; 4].as_slice()));
    }
}

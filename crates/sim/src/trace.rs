//! Bounded in-memory event tracing.
//!
//! A [`TraceRing`] records `(cycle, category, message)` triples into a fixed
//! ring buffer. Tracing is off by default; tests enable it to assert on
//! ordering (e.g. "the handler thread started before the second packet
//! arrived") and determinism (equal seeds produce equal traces).

use core::fmt;

use crate::time::Cycles;

/// One trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time at which the event was recorded.
    pub at: Cycles,
    /// Short category tag, e.g. `"sched"`, `"irq"`, `"mwait"`.
    pub category: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}] {:<8} {}",
            self.at.0, self.category, self.message
        )
    }
}

/// A bounded ring of trace events.
#[derive(Clone, Debug)]
pub struct TraceRing {
    events: Vec<TraceEvent>,
    capacity: usize,
    head: usize,
    enabled: bool,
    dropped: u64,
}

impl TraceRing {
    /// Creates a disabled ring that can hold `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TraceRing {
        assert!(capacity > 0, "trace ring capacity must be positive");
        TraceRing {
            events: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            enabled: false,
            dropped: 0,
        }
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is enabled.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if tracing is enabled.
    ///
    /// When the ring is full the oldest event is overwritten and the
    /// `dropped` count incremented.
    ///
    /// The message is built before the enabled check; on paths that
    /// record per wake or per block, prefer [`TraceRing::record_with`]
    /// so the allocation only happens when tracing is on.
    pub fn record(&mut self, at: Cycles, category: &'static str, message: String) {
        if !self.enabled {
            return;
        }
        let ev = TraceEvent {
            at,
            category,
            message,
        };
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records an event if tracing is enabled, building the message
    /// lazily: `message()` runs only when the ring will actually store
    /// it. Use this on hot paths — with tracing disabled (the default)
    /// the call is a single branch, no formatting, no allocation.
    pub fn record_with(
        &mut self,
        at: Cycles,
        category: &'static str,
        message: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        self.record(at, category, message());
    }

    /// Returns events oldest-first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Number of events overwritten because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Clears all recorded events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
        self.head = 0;
        self.dropped = 0;
    }

    /// Renders the trace as one line per event, oldest first.
    #[must_use]
    pub fn dump(&self) -> String {
        self.snapshot()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut t = TraceRing::new(4);
        t.record(Cycles(1), "x", "hi".into());
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn records_in_order() {
        let mut t = TraceRing::new(8);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(Cycles(i), "c", format!("e{i}"));
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0].message, "e0");
        assert_eq!(snap[4].message, "e4");
    }

    #[test]
    fn wraps_and_counts_drops() {
        let mut t = TraceRing::new(3);
        t.set_enabled(true);
        for i in 0..5u64 {
            t.record(Cycles(i), "c", format!("e{i}"));
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].message, "e2");
        assert_eq!(snap[2].message, "e4");
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut t = TraceRing::new(2);
        t.set_enabled(true);
        t.record(Cycles(1), "c", "a".into());
        t.clear();
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.enabled());
    }

    #[test]
    fn dump_format() {
        let mut t = TraceRing::new(2);
        t.set_enabled(true);
        t.record(Cycles(42), "irq", "delivered".into());
        let d = t.dump();
        assert!(d.contains("42"));
        assert!(d.contains("irq"));
        assert!(d.contains("delivered"));
    }
}

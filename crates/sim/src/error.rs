//! Structured simulator errors.
//!
//! Fault-injection and recovery paths used to fail with bare `unwrap()` /
//! `expect()` panics, which is acceptable in a unit test and useless in a
//! thousand-plan chaos soak: the panic message says *what* exploded but not
//! *which configuration* did it. [`SimError`] is the shared, structured
//! error those paths propagate instead, so a failing soak run can report
//! the offending plan, seed and context before exiting.
//!
//! Crate layering: `switchless-sim` sits at the bottom of the workspace, so
//! the variants here are deliberately generic (context + detail strings).
//! Higher crates convert their own error types into it — e.g.
//! `switchless-core` provides `impl From<MachineError> for SimError`.

use crate::fault::FaultPlanError;

/// A structured error from simulator construction or recovery paths.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// An invalid [`crate::fault::FaultPlan`] configuration.
    FaultPlan(FaultPlanError),
    /// A guest program failed to assemble.
    Assemble {
        /// What was being assembled ("supervisor template", …).
        context: &'static str,
        /// The assembler's diagnostic.
        detail: String,
    },
    /// A machine operation failed (thread allocation, image load, …).
    Machine {
        /// What was being set up ("io engine worker", …).
        context: &'static str,
        /// The machine's diagnostic.
        detail: String,
    },
    /// A component was configured inconsistently.
    Config {
        /// Which component rejected its configuration.
        context: &'static str,
        /// Why the configuration is invalid.
        detail: String,
    },
    /// A replay artifact failed to parse.
    Parse {
        /// 1-based line number in the artifact.
        line: usize,
        /// Why the line was rejected.
        detail: String,
    },
}

impl core::fmt::Display for SimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SimError::FaultPlan(e) => write!(f, "invalid fault plan: {e}"),
            SimError::Assemble { context, detail } => {
                write!(f, "assembling {context}: {detail}")
            }
            SimError::Machine { context, detail } => {
                write!(f, "machine setup for {context}: {detail}")
            }
            SimError::Config { context, detail } => {
                write!(f, "invalid {context} configuration: {detail}")
            }
            SimError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<FaultPlanError> for SimError {
    fn from(e: FaultPlanError) -> SimError {
        SimError::FaultPlan(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultKind, FaultPlan};
    use crate::time::Cycles;

    #[test]
    fn display_carries_context() {
        let e = SimError::Assemble {
            context: "supervisor template",
            detail: "unknown mnemonic `mwiat`".into(),
        };
        let s = e.to_string();
        assert!(s.contains("supervisor template"), "{s}");
        assert!(s.contains("mwiat"), "{s}");
    }

    #[test]
    fn fault_plan_errors_convert() {
        let err = FaultPlan::new(1)
            .try_with_burst(FaultKind::NicDrop, 0, 0.5, Cycles(10), Cycles(10))
            .unwrap_err();
        let sim: SimError = err.into();
        assert!(matches!(sim, SimError::FaultPlan(_)));
        assert!(sim.to_string().contains("invalid fault plan"));
    }
}

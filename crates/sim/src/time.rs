//! Simulated time: cycle counts and frequency conversion.
//!
//! All simulation state advances in units of [`Cycles`]. Experiments that
//! report nanoseconds (as the paper does in §4, e.g. "3ns to 16ns for a 3GHz
//! CPU") convert through a [`Freq`].

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, measured in CPU clock cycles.
///
/// `Cycles` is used for both instants and durations; the arithmetic is the
/// same and the simulator never needs the distinction enforced by the type
/// system.
///
/// # Examples
///
/// ```
/// use switchless_sim::time::Cycles;
///
/// let start = Cycles(100);
/// let lat = Cycles(20);
/// assert_eq!(start + lat, Cycles(120));
/// assert_eq!((start + lat) - start, lat);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(pub u64);

impl Cycles {
    /// The zero instant / duration.
    pub const ZERO: Cycles = Cycles(0);

    /// The maximum representable instant; used as "never" in schedulers.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// Saturating addition; stays at [`Cycles::MAX`] on overflow.
    #[must_use]
    pub fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction; stays at zero on underflow.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction, `None` if `rhs > self`.
    #[must_use]
    pub fn checked_sub(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_sub(rhs.0).map(Cycles)
    }

    /// Returns the larger of two instants.
    #[must_use]
    pub fn max(self, other: Cycles) -> Cycles {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two instants.
    #[must_use]
    pub fn min(self, other: Cycles) -> Cycles {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Converts to a floating-point cycle count, for statistics.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Cycles {
    type Output = Cycles;

    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;

    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;

    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;

    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

/// A CPU clock frequency, used to convert cycles to wall-clock time.
///
/// The paper's §4 arithmetic assumes a 3 GHz part; [`Freq::GHZ3`] is the
/// default everywhere in this project.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Freq {
    /// Clock rate in kilohertz. Kilohertz keeps all conversions exact for
    /// realistic clock rates while avoiding floating point in the common
    /// path.
    pub khz: u64,
}

impl Freq {
    /// A 3 GHz clock, the paper's reference frequency.
    pub const GHZ3: Freq = Freq { khz: 3_000_000 };

    /// A 2 GHz clock.
    pub const GHZ2: Freq = Freq { khz: 2_000_000 };

    /// Creates a frequency from megahertz.
    #[must_use]
    pub const fn from_mhz(mhz: u64) -> Freq {
        Freq { khz: mhz * 1000 }
    }

    /// Converts a duration in cycles to nanoseconds (floating point).
    ///
    /// # Examples
    ///
    /// ```
    /// use switchless_sim::time::{Cycles, Freq};
    ///
    /// // The paper: 10-50 cycles is "3ns to 16ns for a 3GHz CPU".
    /// let ns = Freq::GHZ3.cycles_to_ns(Cycles(50));
    /// assert!((ns - 16.6).abs() < 0.1);
    /// ```
    #[must_use]
    pub fn cycles_to_ns(self, c: Cycles) -> f64 {
        c.0 as f64 * 1e6 / self.khz as f64
    }

    /// Converts nanoseconds to a (rounded) cycle count.
    #[must_use]
    pub fn ns_to_cycles(self, ns: f64) -> Cycles {
        Cycles((ns * self.khz as f64 / 1e6).round() as u64)
    }

    /// Converts microseconds to a (rounded) cycle count.
    #[must_use]
    pub fn us_to_cycles(self, us: f64) -> Cycles {
        self.ns_to_cycles(us * 1e3)
    }

    /// Cycles per second, as a float (for throughput computations).
    #[must_use]
    pub fn hz(self) -> f64 {
        self.khz as f64 * 1e3
    }
}

impl Default for Freq {
    fn default() -> Freq {
        Freq::GHZ3
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.khz.is_multiple_of(1_000_000) {
            write!(f, "{}GHz", self.khz / 1_000_000)
        } else {
            write!(f, "{}MHz", self.khz / 1000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles(10);
        let b = Cycles(3);
        assert_eq!(a + b, Cycles(13));
        assert_eq!(a - b, Cycles(7));
        assert_eq!(a * 4, Cycles(40));
        assert_eq!(a / 2, Cycles(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn cycles_saturating() {
        assert_eq!(Cycles::MAX.saturating_add(Cycles(1)), Cycles::MAX);
        assert_eq!(Cycles(1).saturating_sub(Cycles(5)), Cycles::ZERO);
        assert_eq!(Cycles(1).checked_sub(Cycles(5)), None);
        assert_eq!(Cycles(5).checked_sub(Cycles(1)), Some(Cycles(4)));
    }

    #[test]
    fn cycles_sum_and_display() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert_eq!(total.to_string(), "6cy");
    }

    #[test]
    fn freq_conversions_match_paper() {
        // §4: bulk transfer of 10-50 cycles is "3ns to 16ns for a 3GHz CPU".
        let low = Freq::GHZ3.cycles_to_ns(Cycles(10));
        let high = Freq::GHZ3.cycles_to_ns(Cycles(50));
        assert!((low - 3.33).abs() < 0.01);
        assert!((high - 16.67).abs() < 0.01);
    }

    #[test]
    fn freq_roundtrip() {
        let f = Freq::GHZ3;
        let c = f.ns_to_cycles(100.0);
        assert_eq!(c, Cycles(300));
        assert!((f.cycles_to_ns(c) - 100.0).abs() < 1e-9);
        assert_eq!(f.us_to_cycles(1.0), Cycles(3000));
    }

    #[test]
    fn freq_display() {
        assert_eq!(Freq::GHZ3.to_string(), "3GHz");
        assert_eq!(Freq::from_mhz(2500).to_string(), "2500MHz");
    }
}

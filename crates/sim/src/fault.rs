//! Deterministic fault-injection plans.
//!
//! The paper's §3 claim is not just that switchless I/O is fast, but that
//! fault *containment and recovery* work without context switches. To
//! measure that, device models must be able to fail — on demand, and
//! reproducibly. A [`FaultPlan`] schedules faults by component, kind, rate
//! and cycle window, drawing from per-component [`Rng`] streams forked from
//! one seed so that:
//!
//! * two runs with the same seed inject the byte-identical fault sequence;
//! * adding draws for one component never perturbs another component's
//!   sequence (streams are decorrelated);
//! * a kind with rate 0 consumes **no** randomness, so an installed plan
//!   with all rates at zero is behaviourally identical to no plan at all.
//!
//! Device models ask the machine (which owns the plan) a single question
//! per operation — "does fault K fire now?" — and express the failure
//! through their existing completion-queue/doorbell protocol, never as a
//! Rust error.
//!
//! # Examples
//!
//! ```
//! use switchless_sim::fault::{FaultKind, FaultPlan};
//! use switchless_sim::time::Cycles;
//!
//! let mut plan = FaultPlan::new(42).with_rate(FaultKind::NicDrop, 0.5);
//! let fired: u32 = (0..1000)
//!     .map(|i| u32::from(plan.draw(Cycles(i), FaultKind::NicDrop)))
//!     .sum();
//! assert!((400..600).contains(&fired)); // ~half the packets drop
//! ```

use crate::rng::Rng;
use crate::time::Cycles;

/// The component a fault kind belongs to; each gets its own RNG stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultComponent {
    /// Network interface (RX path).
    Nic,
    /// Storage device (submission/completion path).
    Ssd,
    /// Inter-node fabric (RPC path).
    Fabric,
    /// Legacy MSI-X interrupt bridge.
    Msix,
}

impl FaultComponent {
    const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            FaultComponent::Nic => 0,
            FaultComponent::Ssd => 1,
            FaultComponent::Fabric => 2,
            FaultComponent::Msix => 3,
        }
    }
}

/// A specific way a device operation can fail.
///
/// Kinds are deliberately concrete — each maps to one injection point in
/// one device model, surfaced through that device's normal completion
/// protocol (a skipped descriptor write, a flipped payload byte, a status
/// bit in the completion word, a delayed tail bump, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// NIC silently drops an RX packet: no DMA, no descriptor, no tail.
    NicDrop,
    /// NIC delivers the packet with a corrupted payload byte.
    NicCorrupt,
    /// NIC delivers the packet late by a drawn stall delay.
    NicStall,
    /// SSD read completes with the error bit set and no data DMA.
    SsdReadError,
    /// SSD operation completes after an extra drawn latency spike.
    SsdLatencySpike,
    /// SSD completion-queue entry is torn: the tail bump and cookie land
    /// on time, the sequence word lands later.
    SsdTornCompletion,
    /// Fabric loses an RPC response outright; the caller never hears back.
    FabricLoss,
    /// Fabric delays an RPC response by a drawn reorder gap.
    FabricReorder,
    /// MSI-X bridge loses a routed interrupt (legacy baseline only).
    MsixLostInterrupt,
}

impl FaultKind {
    /// Every kind, in stable declaration order.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::NicDrop,
        FaultKind::NicCorrupt,
        FaultKind::NicStall,
        FaultKind::SsdReadError,
        FaultKind::SsdLatencySpike,
        FaultKind::SsdTornCompletion,
        FaultKind::FabricLoss,
        FaultKind::FabricReorder,
        FaultKind::MsixLostInterrupt,
    ];

    pub(crate) fn index(self) -> usize {
        match self {
            FaultKind::NicDrop => 0,
            FaultKind::NicCorrupt => 1,
            FaultKind::NicStall => 2,
            FaultKind::SsdReadError => 3,
            FaultKind::SsdLatencySpike => 4,
            FaultKind::SsdTornCompletion => 5,
            FaultKind::FabricLoss => 6,
            FaultKind::FabricReorder => 7,
            FaultKind::MsixLostInterrupt => 8,
        }
    }

    /// The component whose RNG stream this kind draws from.
    #[must_use]
    pub fn component(self) -> FaultComponent {
        match self {
            FaultKind::NicDrop | FaultKind::NicCorrupt | FaultKind::NicStall => FaultComponent::Nic,
            FaultKind::SsdReadError | FaultKind::SsdLatencySpike | FaultKind::SsdTornCompletion => {
                FaultComponent::Ssd
            }
            FaultKind::FabricLoss | FaultKind::FabricReorder => FaultComponent::Fabric,
            FaultKind::MsixLostInterrupt => FaultComponent::Msix,
        }
    }

    /// The machine counter incremented when this kind fires.
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            FaultKind::NicDrop => "fault.nic.drop",
            FaultKind::NicCorrupt => "fault.nic.corrupt",
            FaultKind::NicStall => "fault.nic.stall",
            FaultKind::SsdReadError => "fault.ssd.read_error",
            FaultKind::SsdLatencySpike => "fault.ssd.latency_spike",
            FaultKind::SsdTornCompletion => "fault.ssd.torn_completion",
            FaultKind::FabricLoss => "fault.fabric.loss",
            FaultKind::FabricReorder => "fault.fabric.reorder",
            FaultKind::MsixLostInterrupt => "fault.msix.lost",
        }
    }

    /// Default extra-delay range (cycles) for delay-shaped kinds.
    ///
    /// Only meaningful for kinds whose failure mode is "late, not lost":
    /// stalls, spikes, torn completions and reorders. On a 3 GHz clock,
    /// 3000 cycles = 1 µs.
    fn default_delay(self) -> (Cycles, Cycles) {
        match self {
            // NIC RX stall: 1–10 µs, a PCIe replay / pause-frame hiccup.
            FaultKind::NicStall => (Cycles(3_000), Cycles(30_000)),
            // SSD latency spike: 100 µs – 1 ms, GC or error-recovery pause.
            FaultKind::SsdLatencySpike => (Cycles(300_000), Cycles(3_000_000)),
            // Torn completion: the seq word lags the cookie by 1–10 µs.
            FaultKind::SsdTornCompletion => (Cycles(3_000), Cycles(30_000)),
            // Fabric reorder: one extra RTT-ish of skew.
            FaultKind::FabricReorder => (Cycles(6_000), Cycles(60_000)),
            // Loss-shaped kinds never ask for a delay; keep it degenerate.
            _ => (Cycles(0), Cycles(0)),
        }
    }
}

impl core::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // "fault.nic.drop" -> "nic.drop"
        let name = self
            .counter_name()
            .strip_prefix("fault.")
            .unwrap_or_else(|| self.counter_name());
        f.write_str(name)
    }
}

/// A structured reason a [`FaultPlan`] configuration was rejected.
///
/// Returned by the `try_*` builders so callers (the chaos generator, the
/// replay parser) can refuse a bad plan at construction time instead of
/// panicking — or worse, silently misbehaving — mid-soak.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A window with `from >= to` can never fire; almost certainly a bug
    /// in the caller's schedule arithmetic.
    EmptyWindow {
        /// The kind whose window is degenerate.
        kind: FaultKind,
        /// Window start (inclusive).
        from: Cycles,
        /// Window end (exclusive).
        to: Cycles,
    },
    /// Two bursts for the same kind and device overlap in time, which
    /// would make the effective rate ambiguous.
    OverlappingWindows {
        /// The kind with conflicting bursts.
        kind: FaultKind,
        /// The device both bursts target.
        device: u8,
        /// The previously accepted window.
        first: (Cycles, Cycles),
        /// The rejected window.
        second: (Cycles, Cycles),
    },
    /// A rate outside `[0, 1]` (or NaN) is not a probability.
    RateOutOfRange {
        /// The kind with the bad rate.
        kind: FaultKind,
        /// The offending value.
        rate: f64,
    },
    /// A delay range with `lo > hi`.
    DelayInverted {
        /// The kind with the bad delay range.
        kind: FaultKind,
        /// Lower bound.
        lo: Cycles,
        /// Upper bound.
        hi: Cycles,
    },
    /// A burst targets a device id at or beyond the plan's device count.
    DeviceOutOfRange {
        /// The offending device id.
        device: u8,
        /// The plan's configured device count.
        count: u8,
    },
}

impl core::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FaultPlanError::EmptyWindow { kind, from, to } => {
                write!(f, "{kind}: window [{}, {}) is empty", from.0, to.0)
            }
            FaultPlanError::OverlappingWindows {
                kind,
                device,
                first,
                second,
            } => write!(
                f,
                "{kind} on device {device}: burst [{}, {}) overlaps [{}, {})",
                second.0 .0, second.1 .0, first.0 .0, first.1 .0
            ),
            FaultPlanError::RateOutOfRange { kind, rate } => {
                write!(f, "{kind}: rate {rate} is not in [0, 1]")
            }
            FaultPlanError::DelayInverted { kind, lo, hi } => {
                write!(f, "{kind}: delay range {}..{} is inverted", lo.0, hi.0)
            }
            FaultPlanError::DeviceOutOfRange { device, count } => {
                write!(f, "device id {device} out of range (plan has {count})")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A validated, windowed rate override for one kind on one device.
#[derive(Clone, Copy, Debug)]
struct Burst {
    kind: FaultKind,
    device: u8,
    rate: f64,
    from: Cycles,
    to: Cycles,
}

/// Per-kind injection settings.
#[derive(Clone, Copy, Debug)]
struct KindSetting {
    /// Probability a single eligible operation faults, in `[0, 1]`.
    rate: f64,
    /// Faults fire only in `[from, to)` simulated cycles.
    from: Cycles,
    to: Cycles,
    /// Extra-delay range for delay-shaped kinds.
    delay: (Cycles, Cycles),
}

/// A seeded, deterministic schedule of device faults.
///
/// Construct with [`FaultPlan::new`], configure with the builder methods,
/// then install on the machine. Devices never hold the plan directly; they
/// query it through the machine so counters and tracing stay centralised.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    /// One decorrelated stream per component, forked from the seed.
    streams: [Rng; FaultComponent::COUNT],
    settings: [KindSetting; FaultKind::ALL.len()],
    /// How many instances of each device class the machine exposes;
    /// bursts must target a device id below this.
    devices: u8,
    /// Validated windowed overrides, sorted by nothing in particular —
    /// at most one burst per (kind, device) covers any instant.
    bursts: Vec<Burst>,
}

impl FaultPlan {
    /// Creates a plan with every rate at zero (injects nothing).
    #[must_use]
    pub fn new(seed: u64) -> FaultPlan {
        let mut root = Rng::seed_from(seed);
        let streams = [root.fork(1), root.fork(2), root.fork(3), root.fork(4)];
        let settings = FaultKind::ALL.map(|k| KindSetting {
            rate: 0.0,
            from: Cycles(0),
            to: Cycles(u64::MAX),
            delay: k.default_delay(),
        });
        FaultPlan {
            seed,
            streams,
            settings,
            devices: 1,
            bursts: Vec::new(),
        }
    }

    /// Sets the per-operation fault probability for one kind.
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> FaultPlan {
        self.settings[kind.index()].rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the same per-operation fault probability for every kind.
    #[must_use]
    pub fn with_all_rates(mut self, rate: f64) -> FaultPlan {
        for s in &mut self.settings {
            s.rate = rate.clamp(0.0, 1.0);
        }
        self
    }

    /// Restricts one kind to the cycle window `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window; use [`FaultPlan::try_with_window`] to
    /// handle the error structurally.
    #[must_use]
    pub fn with_window(self, kind: FaultKind, from: Cycles, to: Cycles) -> FaultPlan {
        self.try_with_window(kind, from, to)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Restricts one kind to the cycle window `[from, to)`, rejecting
    /// empty windows with a structured error.
    pub fn try_with_window(
        mut self,
        kind: FaultKind,
        from: Cycles,
        to: Cycles,
    ) -> Result<FaultPlan, FaultPlanError> {
        if from >= to {
            return Err(FaultPlanError::EmptyWindow { kind, from, to });
        }
        let s = &mut self.settings[kind.index()];
        s.from = from;
        s.to = to;
        Ok(self)
    }

    /// Overrides the extra-delay range for a delay-shaped kind.
    ///
    /// # Panics
    ///
    /// Panics on an inverted range; use [`FaultPlan::try_with_delay`] to
    /// handle the error structurally.
    #[must_use]
    pub fn with_delay(self, kind: FaultKind, lo: Cycles, hi: Cycles) -> FaultPlan {
        self.try_with_delay(kind, lo, hi)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Overrides the extra-delay range for a delay-shaped kind, rejecting
    /// an inverted range with a structured error.
    pub fn try_with_delay(
        mut self,
        kind: FaultKind,
        lo: Cycles,
        hi: Cycles,
    ) -> Result<FaultPlan, FaultPlanError> {
        if lo > hi {
            return Err(FaultPlanError::DelayInverted { kind, lo, hi });
        }
        self.settings[kind.index()].delay = (lo, hi);
        Ok(self)
    }

    /// Declares how many instances of each device class the machine
    /// exposes (default 1). Burst device ids are validated against this.
    #[must_use]
    pub fn with_devices(mut self, count: u8) -> FaultPlan {
        self.devices = count.max(1);
        self
    }

    /// Adds a validated, windowed rate override for `kind` on `device`.
    ///
    /// While `now` is inside `[from, to)` the burst's rate replaces the
    /// kind's base rate — so a plan can layer storms (and calm stretches)
    /// over a background rate. Bursts for the *same* kind and device must
    /// not overlap; bursts for different kinds may, which is how composed
    /// storms are expressed.
    pub fn try_with_burst(
        mut self,
        kind: FaultKind,
        device: u8,
        rate: f64,
        from: Cycles,
        to: Cycles,
    ) -> Result<FaultPlan, FaultPlanError> {
        if device >= self.devices {
            return Err(FaultPlanError::DeviceOutOfRange {
                device,
                count: self.devices,
            });
        }
        if !(0.0..=1.0).contains(&rate) {
            return Err(FaultPlanError::RateOutOfRange { kind, rate });
        }
        if from >= to {
            return Err(FaultPlanError::EmptyWindow { kind, from, to });
        }
        if let Some(prev) = self
            .bursts
            .iter()
            .find(|b| b.kind == kind && b.device == device && from < b.to && b.from < to)
        {
            return Err(FaultPlanError::OverlappingWindows {
                kind,
                device,
                first: (prev.from, prev.to),
                second: (from, to),
            });
        }
        self.bursts.push(Burst {
            kind,
            device,
            rate,
            from,
            to,
        });
        Ok(self)
    }

    /// The seed this plan was built from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Configured rate for a kind.
    #[must_use]
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.settings[kind.index()].rate
    }

    /// Decides whether `kind` fires for one operation at time `now`.
    ///
    /// Randomness is consumed **only** when the kind's effective rate is
    /// positive at `now`, so disabled kinds (and windows) leave every
    /// stream untouched — determinism of the active kinds is unaffected
    /// by how often inactive ones are queried. Draws for device 0; see
    /// [`FaultPlan::draw_on`] for multi-instance machines.
    pub fn draw(&mut self, now: Cycles, kind: FaultKind) -> bool {
        self.draw_on(0, now, kind)
    }

    /// Decides whether `kind` fires on `device` for one operation at
    /// `now`, honouring any burst override covering that instant.
    pub fn draw_on(&mut self, device: u8, now: Cycles, kind: FaultKind) -> bool {
        let rate = self.effective_rate(device, now, kind);
        if rate <= 0.0 {
            return false;
        }
        self.streams[kind.component().index()].chance(rate)
    }

    /// The rate in force for `(kind, device)` at `now`: the covering
    /// burst's rate if one exists, else the base setting inside its
    /// window, else zero.
    fn effective_rate(&self, device: u8, now: Cycles, kind: FaultKind) -> f64 {
        for b in &self.bursts {
            if b.kind == kind && b.device == device && now >= b.from && now < b.to {
                return b.rate;
            }
        }
        let s = &self.settings[kind.index()];
        if now < s.from || now >= s.to {
            0.0
        } else {
            s.rate
        }
    }

    /// Draws the extra delay for a delay-shaped kind that just fired.
    ///
    /// Returns [`Cycles::ZERO`]-ish degenerate values for loss-shaped
    /// kinds (their default range is `0..=0`).
    pub fn draw_delay(&mut self, kind: FaultKind) -> Cycles {
        let (lo, hi) = self.settings[kind.index()].delay;
        if lo == hi {
            return lo;
        }
        Cycles(self.streams[kind.component().index()].next_range(lo.0, hi.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire_seq(plan: &mut FaultPlan, kind: FaultKind, n: u64) -> Vec<bool> {
        (0..n).map(|i| plan.draw(Cycles(i), kind)).collect()
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = FaultPlan::new(7).with_rate(FaultKind::NicDrop, 0.01);
        let mut b = FaultPlan::new(7).with_rate(FaultKind::NicDrop, 0.01);
        assert_eq!(
            fire_seq(&mut a, FaultKind::NicDrop, 10_000),
            fire_seq(&mut b, FaultKind::NicDrop, 10_000)
        );
    }

    #[test]
    fn zero_rate_consumes_no_randomness() {
        // Interleaving draws of a zero-rate kind must not perturb the
        // active kind's sequence, even within the same component stream.
        let mut plain = FaultPlan::new(9).with_rate(FaultKind::NicDrop, 0.05);
        let expect = fire_seq(&mut plain, FaultKind::NicDrop, 2_000);

        let mut mixed = FaultPlan::new(9).with_rate(FaultKind::NicDrop, 0.05);
        let got: Vec<bool> = (0..2_000)
            .map(|i| {
                // NicCorrupt shares the Nic stream but has rate 0.
                assert!(!mixed.draw(Cycles(i), FaultKind::NicCorrupt));
                mixed.draw(Cycles(i), FaultKind::NicDrop)
            })
            .collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn window_gates_firing() {
        let mut p = FaultPlan::new(3)
            .with_rate(FaultKind::FabricLoss, 1.0)
            .with_window(FaultKind::FabricLoss, Cycles(100), Cycles(200));
        assert!(!p.draw(Cycles(99), FaultKind::FabricLoss));
        assert!(p.draw(Cycles(100), FaultKind::FabricLoss));
        assert!(p.draw(Cycles(199), FaultKind::FabricLoss));
        assert!(!p.draw(Cycles(200), FaultKind::FabricLoss));
    }

    #[test]
    fn component_streams_are_independent() {
        // Drawing lots of SSD faults must not change the NIC sequence.
        let mut a = FaultPlan::new(11)
            .with_rate(FaultKind::NicDrop, 0.02)
            .with_rate(FaultKind::SsdReadError, 0.5);
        let mut b = FaultPlan::new(11)
            .with_rate(FaultKind::NicDrop, 0.02)
            .with_rate(FaultKind::SsdReadError, 0.5);
        let nic_a = fire_seq(&mut a, FaultKind::NicDrop, 1_000);
        let nic_b: Vec<bool> = (0..1_000)
            .map(|i| {
                b.draw(Cycles(i), FaultKind::SsdReadError);
                b.draw(Cycles(i), FaultKind::NicDrop)
            })
            .collect();
        assert_eq!(nic_a, nic_b);
    }

    #[test]
    fn empirical_rate_matches() {
        let mut p = FaultPlan::new(21).with_rate(FaultKind::SsdLatencySpike, 0.1);
        let n = 100_000;
        let fired = fire_seq(&mut p, FaultKind::SsdLatencySpike, n)
            .iter()
            .filter(|&&f| f)
            .count();
        let rate = fired as f64 / n as f64;
        assert!((0.09..0.11).contains(&rate), "empirical rate {rate}");
    }

    #[test]
    fn delay_in_configured_range() {
        let mut p = FaultPlan::new(5).with_delay(FaultKind::FabricReorder, Cycles(10), Cycles(20));
        for _ in 0..1_000 {
            let d = p.draw_delay(FaultKind::FabricReorder);
            assert!((10..=20).contains(&d.0), "delay {d:?}");
        }
        // Loss-shaped kinds have a degenerate range and draw nothing.
        assert_eq!(p.draw_delay(FaultKind::NicDrop), Cycles(0));
    }

    #[test]
    fn counter_names_unique_and_prefixed() {
        let mut seen = std::collections::HashSet::new();
        for k in FaultKind::ALL {
            let name = k.counter_name();
            assert!(name.starts_with("fault."), "{name}");
            assert!(seen.insert(name), "duplicate counter {name}");
            assert_eq!(format!("{k}"), name.strip_prefix("fault.").unwrap());
        }
    }

    #[test]
    fn empty_windows_are_rejected() {
        let err = FaultPlan::new(1)
            .try_with_window(FaultKind::NicDrop, Cycles(50), Cycles(50))
            .unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::EmptyWindow {
                kind: FaultKind::NicDrop,
                from: Cycles(50),
                to: Cycles(50)
            }
        );
        let err = FaultPlan::new(1)
            .try_with_burst(FaultKind::SsdReadError, 0, 0.1, Cycles(9), Cycles(3))
            .unwrap_err();
        assert!(matches!(err, FaultPlanError::EmptyWindow { .. }));
    }

    #[test]
    fn overlapping_bursts_same_kind_are_rejected() {
        let err = FaultPlan::new(1)
            .try_with_burst(FaultKind::FabricLoss, 0, 0.2, Cycles(100), Cycles(200))
            .unwrap()
            .try_with_burst(FaultKind::FabricLoss, 0, 0.4, Cycles(150), Cycles(300))
            .unwrap_err();
        assert!(
            matches!(err, FaultPlanError::OverlappingWindows { kind, .. }
                if kind == FaultKind::FabricLoss),
            "{err}"
        );
        // Adjacent ([100,200) then [200,300)) is fine.
        FaultPlan::new(1)
            .try_with_burst(FaultKind::FabricLoss, 0, 0.2, Cycles(100), Cycles(200))
            .unwrap()
            .try_with_burst(FaultKind::FabricLoss, 0, 0.4, Cycles(200), Cycles(300))
            .unwrap();
        // Same window on a *different* kind overlaps freely (composed storm).
        FaultPlan::new(1)
            .try_with_burst(FaultKind::FabricLoss, 0, 0.2, Cycles(100), Cycles(200))
            .unwrap()
            .try_with_burst(FaultKind::NicDrop, 0, 0.2, Cycles(100), Cycles(200))
            .unwrap();
    }

    #[test]
    fn burst_device_ids_are_validated() {
        let err = FaultPlan::new(1)
            .try_with_burst(FaultKind::NicDrop, 2, 0.1, Cycles(0), Cycles(10))
            .unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::DeviceOutOfRange {
                device: 2,
                count: 1
            }
        );
        FaultPlan::new(1)
            .with_devices(3)
            .try_with_burst(FaultKind::NicDrop, 2, 0.1, Cycles(0), Cycles(10))
            .unwrap();
    }

    #[test]
    fn burst_rates_are_validated() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let err = FaultPlan::new(1)
                .try_with_burst(FaultKind::NicDrop, 0, bad, Cycles(0), Cycles(10))
                .unwrap_err();
            assert!(
                matches!(err, FaultPlanError::RateOutOfRange { .. }),
                "{bad}"
            );
        }
    }

    #[test]
    fn inverted_delay_is_structured() {
        let err = FaultPlan::new(1)
            .try_with_delay(FaultKind::NicStall, Cycles(20), Cycles(10))
            .unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::DelayInverted {
                kind: FaultKind::NicStall,
                lo: Cycles(20),
                hi: Cycles(10)
            }
        );
    }

    #[test]
    fn burst_overrides_base_rate_inside_window_only() {
        let mut p = FaultPlan::new(4)
            .with_rate(FaultKind::FabricLoss, 1.0)
            .try_with_burst(FaultKind::FabricLoss, 0, 0.0, Cycles(100), Cycles(200))
            .unwrap();
        // Base rate 1.0 outside the burst, calm (0.0) inside it.
        assert!(p.draw(Cycles(99), FaultKind::FabricLoss));
        assert!(!p.draw(Cycles(100), FaultKind::FabricLoss));
        assert!(!p.draw(Cycles(199), FaultKind::FabricLoss));
        assert!(p.draw(Cycles(200), FaultKind::FabricLoss));
    }

    #[test]
    fn burstless_plan_draws_are_bit_identical_to_legacy_path() {
        // A plan with no bursts must consume the exact same randomness as
        // before bursts existed: draw() == draw_on(0).
        let mut a = FaultPlan::new(77).with_rate(FaultKind::SsdReadError, 0.3);
        let mut b = FaultPlan::new(77).with_rate(FaultKind::SsdReadError, 0.3);
        for i in 0..5_000 {
            assert_eq!(
                a.draw(Cycles(i), FaultKind::SsdReadError),
                b.draw_on(0, Cycles(i), FaultKind::SsdReadError)
            );
        }
    }

    #[test]
    fn calm_burst_consumes_no_randomness() {
        // A zero-rate burst must leave the stream untouched so draws after
        // the calm window realign with an uninterrupted plan.
        let mut plain = FaultPlan::new(8).with_rate(FaultKind::NicDrop, 0.5);
        let mut calmed = FaultPlan::new(8)
            .with_rate(FaultKind::NicDrop, 0.5)
            .try_with_burst(FaultKind::NicDrop, 0, 0.0, Cycles(10), Cycles(20))
            .unwrap();
        let a: Vec<bool> = (0..10)
            .map(|i| plain.draw(Cycles(i), FaultKind::NicDrop))
            .collect();
        let b: Vec<bool> = (0..10)
            .map(|i| calmed.draw(Cycles(i), FaultKind::NicDrop))
            .collect();
        assert_eq!(a, b);
        // Querying inside the calm window fires nothing and draws nothing…
        for i in 10..20 {
            assert!(!calmed.draw(Cycles(i), FaultKind::NicDrop));
        }
        // …so after the window the calmed plan's stream matches a plan
        // that was simply never queried during [10, 20).
        let a: Vec<bool> = (20..40)
            .map(|i| plain.draw(Cycles(i), FaultKind::NicDrop))
            .collect();
        let b: Vec<bool> = (20..40)
            .map(|i| calmed.draw(Cycles(i), FaultKind::NicDrop))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn all_rates_builder_covers_every_kind() {
        let mut p = FaultPlan::new(1).with_all_rates(1.0);
        for k in FaultKind::ALL {
            assert!((p.rate(k) - 1.0).abs() < f64::EPSILON);
            assert!(p.draw(Cycles(0), k), "{k} should fire at rate 1");
        }
    }
}

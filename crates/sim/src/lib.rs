//! Discrete-event simulation substrate for the `switchless` project.
//!
//! This crate provides the foundations every other `switchless` crate builds
//! on:
//!
//! * [`time`] — a cycle-granular simulated clock ([`time::Cycles`]) and
//!   frequency conversions to wall-clock nanoseconds.
//! * [`event`] — a cancellable discrete-event queue ([`event::EventQueue`])
//!   with deterministic FIFO ordering among same-cycle events.
//! * [`rng`] — a small, fully deterministic xoshiro256\*\* random number
//!   generator ([`rng::Rng`]) so that every simulation is reproducible from
//!   a seed, independent of external crates.
//! * [`fault`] — seeded, deterministic fault-injection plans
//!   ([`fault::FaultPlan`]) that schedule device faults by component, kind,
//!   rate and cycle window, validated at construction
//!   ([`fault::FaultPlanError`]).
//! * [`chaos`] — seeded composed fault storms ([`chaos::ChaosPlan`]):
//!   generation, the `chaos-plan/v1` replay-artifact format, and an
//!   automatic shrinker ([`chaos::shrink`]) that reduces a failing plan to
//!   a minimal reproducer.
//! * [`invariant`] — machine-wide invariant-checking plumbing: violation
//!   reports and the descriptor-ring conservation [`invariant::Ledger`]
//!   device models account into.
//! * [`error`] — the structured [`error::SimError`] fault/recovery paths
//!   propagate instead of panicking.
//! * [`hash`] — a deterministic FxHash-style hasher ([`hash::FxHashMap`],
//!   [`hash::FxHashSet`]) replacing SipHash on hot-path maps keyed by
//!   trusted small integers.
//! * [`par`] — a dependency-free scoped-thread work pool
//!   ([`par::par_map`], [`par::for_each_ordered`]) whose results are
//!   collected in input order, so parallel runs are bit-identical to
//!   serial ones.
//! * [`stats`] — streaming summaries, log-bucketed latency histograms with
//!   percentile queries, and named counter registries.
//! * [`report`] — plain-text/CSV table rendering used by the experiment
//!   harness to regenerate the paper's tables and figures.
//! * [`trace`] — a bounded in-memory trace ring for debugging simulations.
//!
//! The event queue is deliberately *passive*: it orders and stores events
//! but does not own the dispatch loop. The machine model in
//! `switchless-core` owns its own loop, popping events and mutating the
//! world, which keeps borrow-checking simple and the control flow explicit.
//!
//! # Examples
//!
//! ```
//! use switchless_sim::event::EventQueue;
//! use switchless_sim::time::Cycles;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev {
//!     Tick,
//!     Tock,
//! }
//!
//! let mut q = EventQueue::new();
//! q.schedule(Cycles(10), Ev::Tock);
//! q.schedule(Cycles(5), Ev::Tick);
//! assert_eq!(q.pop().unwrap(), (Cycles(5), Ev::Tick));
//! assert_eq!(q.pop().unwrap(), (Cycles(10), Ev::Tock));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod error;
pub mod event;
pub mod fault;
pub mod hash;
pub mod invariant;
pub mod par;
pub mod report;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use chaos::{ChaosConfig, ChaosPlan};
pub use error::SimError;
pub use event::EventQueue;
pub use fault::{FaultComponent, FaultKind, FaultPlan, FaultPlanError};
pub use invariant::{InvariantReport, Violation};
pub use rng::Rng;
pub use stats::{Counters, Histogram, Summary};
pub use time::{Cycles, Freq};

//! Deterministic merge machinery for conservative parallel
//! discrete-event execution (the core-sharded epoch engine).
//!
//! An *epoch* runs one worker per simulated core on a disjoint slice of
//! machine state. Each worker replays the events staged for its core —
//! plus any events it creates for itself — strictly in the serial
//! engine's order *restricted to that core*. To commit the epoch, the
//! host must reconstruct the **global** serial order (so cross-record
//! effects such as wake-latency samples and `now` evolution land in the
//! right sequence) and assign every worker-created event the queue
//! sequence number the serial engine would have given it.
//!
//! That reconstruction is [`merge_epoch`]: a k-way merge keyed by
//! `(time, virtual sequence)`, where the virtual sequence of a staged
//! event is its staging index (staging pops events in `(time, seq)`
//! order, so staging order *is* relative seq order) and worker-created
//! events receive fresh sequences — `staged_total + n` — in merged
//! creation order, which equals serial creation order by induction:
//! a record's creations are assigned when the record merges, and the
//! record merges exactly at its serial position.

use crate::time::Cycles;

/// Identity of one event popped by an epoch worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PopKey {
    /// An event staged out of the real queue before the epoch; the
    /// payload is its staging index (0-based, in staging pop order).
    Staged(u64),
    /// An event the worker created during the epoch; the payload is the
    /// worker's local creation index (0-based, in creation order).
    Fresh(u64),
}

/// One pop performed by an epoch worker, in local execution order.
pub trait EpochRecord {
    /// Simulated time the event was due (and was handled).
    fn time(&self) -> Cycles;
    /// Which event was popped.
    fn key(&self) -> PopKey;
    /// How many fresh events handling this pop scheduled.
    fn creates(&self) -> u64;
}

/// Reconstructs the global serial order of per-core record streams.
///
/// `streams[c]` is core `c`'s pops in local order; `staged_total` is the
/// number of events staged out of the real queue for the whole epoch.
/// Returns the records in global serial order (tagged with their core)
/// and, per core, the global virtual sequence assigned to each of its
/// fresh creations (index = local creation index).
///
/// Virtual sequences order exactly like the serial queue's sequence
/// numbers: events alive at epoch start predate anything scheduled
/// during the epoch, and staging order / creation order preserve
/// relative sequence order within each class.
///
/// # Panics
///
/// Panics if a stream references a fresh event whose creating record has
/// not merged yet — impossible for well-formed worker output (a worker
/// can only pop events it already created) and a bug worth halting on.
pub fn merge_epoch<R: EpochRecord>(
    staged_total: u64,
    streams: Vec<Vec<R>>,
) -> (Vec<(usize, R)>, Vec<Vec<u64>>) {
    let ncores = streams.len();
    let mut iters: Vec<std::vec::IntoIter<R>> = streams.into_iter().map(Vec::into_iter).collect();
    // One-slot lookahead per stream (heads under comparison).
    let mut heads: Vec<Option<R>> = iters.iter_mut().map(Iterator::next).collect();
    let mut fresh_seq: Vec<Vec<u64>> = vec![Vec::new(); ncores];
    let mut next_fresh = staged_total;
    let total: usize =
        iters.iter().map(|i| i.len()).sum::<usize>() + heads.iter().filter(|h| h.is_some()).count();
    let mut merged: Vec<(usize, R)> = Vec::with_capacity(total);

    loop {
        // Resolve each live head to its (time, vseq) sort key. Heads are
        // always resolvable: every earlier record of the same core has
        // merged, so every fresh event this core popped has its seq.
        let mut best: Option<(Cycles, u64, usize)> = None;
        for (core, head) in heads.iter().enumerate() {
            let Some(r) = head else { continue };
            let vseq = match r.key() {
                PopKey::Staged(i) => {
                    debug_assert!(i < staged_total, "staging index out of range");
                    i
                }
                PopKey::Fresh(local) => *fresh_seq[core].get(local as usize).unwrap_or_else(|| {
                    panic!("core {core} popped fresh event {local} before creating it")
                }),
            };
            let key = (r.time(), vseq, core);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let Some((_, _, core)) = best else { break };
        let r = heads[core].take().expect("best head exists");
        for _ in 0..r.creates() {
            fresh_seq[core].push(next_fresh);
            next_fresh += 1;
        }
        merged.push((core, r));
        heads[core] = iters[core].next();
    }
    (merged, fresh_seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Rec {
        time: Cycles,
        key: PopKey,
        creates: u64,
    }

    impl Rec {
        fn new(time: u64, key: PopKey, creates: u64) -> Rec {
            Rec {
                time: Cycles(time),
                key,
                creates,
            }
        }
    }

    impl EpochRecord for Rec {
        fn time(&self) -> Cycles {
            self.time
        }
        fn key(&self) -> PopKey {
            self.key
        }
        fn creates(&self) -> u64 {
            self.creates
        }
    }

    fn keys(merged: &[(usize, Rec)]) -> Vec<(usize, PopKey)> {
        merged.iter().map(|(c, r)| (*c, r.key())).collect()
    }

    #[test]
    fn staged_interleave_by_time_then_staging_index() {
        // Staging order: idx 0 @ t=5 (core 0), idx 1 @ t=5 (core 1),
        // idx 2 @ t=3 (core 1). Global order sorts by (time, idx).
        let c0 = vec![Rec::new(5, PopKey::Staged(0), 0)];
        let c1 = vec![
            Rec::new(3, PopKey::Staged(2), 0),
            Rec::new(5, PopKey::Staged(1), 0),
        ];
        let (merged, fresh) = merge_epoch(3, vec![c0, c1]);
        assert_eq!(
            keys(&merged),
            vec![
                (1, PopKey::Staged(2)),
                (0, PopKey::Staged(0)),
                (1, PopKey::Staged(1)),
            ]
        );
        assert!(fresh.iter().all(Vec::is_empty));
    }

    #[test]
    fn fresh_chain_gets_sequences_in_merged_creation_order() {
        // Core 0: staged pop at t=10 creates one event, popped at t=20
        // (creating another, left unpopped). Core 1: staged pop at t=15
        // creating one event popped at t=16.
        let c0 = vec![
            Rec::new(10, PopKey::Staged(0), 1),
            Rec::new(20, PopKey::Fresh(0), 1),
        ];
        let c1 = vec![
            Rec::new(15, PopKey::Staged(1), 1),
            Rec::new(16, PopKey::Fresh(0), 0),
        ];
        let (merged, fresh) = merge_epoch(2, vec![c0, c1]);
        assert_eq!(
            keys(&merged),
            vec![
                (0, PopKey::Staged(0)),
                (1, PopKey::Staged(1)),
                (1, PopKey::Fresh(0)),
                (0, PopKey::Fresh(0)),
            ]
        );
        // Creation order: core 0's first (t=10 record), core 1's (t=15),
        // core 0's second (t=20). Sequences continue after the 2 staged.
        assert_eq!(fresh[0], vec![2, 4]);
        assert_eq!(fresh[1], vec![3]);
    }

    #[test]
    fn staged_beats_fresh_on_time_tie() {
        // Core 0 creates an event then pops it at t=7; core 1 pops a
        // staged event also due at t=7. Staged seqs predate any epoch
        // creation, so core 1 goes first.
        let c0 = vec![
            Rec::new(3, PopKey::Staged(0), 1),
            Rec::new(7, PopKey::Fresh(0), 0),
        ];
        let c1 = vec![Rec::new(7, PopKey::Staged(1), 0)];
        let (merged, _) = merge_epoch(2, vec![c0, c1]);
        assert_eq!(
            keys(&merged),
            vec![
                (0, PopKey::Staged(0)),
                (1, PopKey::Staged(1)),
                (0, PopKey::Fresh(0)),
            ]
        );
    }

    #[test]
    fn fresh_tie_resolved_by_creation_order() {
        // Both cores create at their first (staged) record; core 1's
        // record merges first (earlier time), so its creation gets the
        // lower sequence and wins the t=9 tie.
        let c0 = vec![
            Rec::new(5, PopKey::Staged(1), 1),
            Rec::new(9, PopKey::Fresh(0), 0),
        ];
        let c1 = vec![
            Rec::new(4, PopKey::Staged(0), 1),
            Rec::new(9, PopKey::Fresh(0), 0),
        ];
        let (merged, fresh) = merge_epoch(2, vec![c0, c1]);
        assert_eq!(
            keys(&merged),
            vec![
                (1, PopKey::Staged(0)),
                (0, PopKey::Staged(1)),
                (1, PopKey::Fresh(0)),
                (0, PopKey::Fresh(0)),
            ]
        );
        assert_eq!(fresh[0], vec![3]);
        assert_eq!(fresh[1], vec![2]);
    }

    #[test]
    fn empty_streams_merge_to_nothing() {
        let (merged, fresh) = merge_epoch::<Rec>(0, vec![Vec::new(), Vec::new()]);
        assert!(merged.is_empty());
        assert_eq!(fresh, vec![Vec::<u64>::new(), Vec::new()]);
    }

    #[test]
    #[should_panic(expected = "before creating it")]
    fn popping_uncreated_fresh_event_panics() {
        let c0 = vec![Rec::new(1, PopKey::Fresh(0), 0)];
        let _ = merge_epoch(0, vec![c0]);
    }
}

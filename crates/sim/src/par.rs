//! Dependency-free parallel execution for the experiment harness.
//!
//! A tiny scoped-thread work pool with **deterministic, input-ordered
//! result collection**: workers claim items from a shared atomic cursor
//! (so load-balancing is dynamic), but results are delivered to the
//! caller strictly in input order. The contract every caller relies on:
//!
//! > For a pure per-item function `f`, the observable output of
//! > [`par_map`] / [`for_each_ordered`] is **bit-identical** for any
//! > worker count, including 1.
//!
//! Worker count resolution (see [`resolve_jobs`]): an explicit request
//! (e.g. a `--jobs N` flag) wins, then the `SWITCHLESS_JOBS` environment
//! variable, then [`std::thread::available_parallelism`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// worker count is requested.
pub const JOBS_ENV: &str = "SWITCHLESS_JOBS";

/// Resolves a worker count: `requested` (a CLI `--jobs N`) wins, then the
/// `SWITCHLESS_JOBS` environment variable, then the host's available
/// parallelism. The result is always at least 1.
#[must_use]
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    let n = requested
        .or_else(|| {
            std::env::var(JOBS_ENV)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        });
    n.max(1)
}

/// Applies `f` to every item on up to `jobs` worker threads and returns
/// the results **in input order**.
///
/// `f` receives `(index, &item)`; the index is the item's position in
/// `items`, which callers typically fold into a per-item RNG seed so
/// results do not depend on which worker ran which item.
///
/// # Examples
///
/// ```
/// use switchless_sim::par::par_map;
///
/// let squares = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for_each_ordered(jobs, items, f, |_, r| out.push(r));
    out
}

/// Like [`par_map`], but streams each result to `sink` on the calling
/// thread, strictly in input order, as soon as its ordered prefix is
/// complete.
///
/// This is what lets a parallel harness print experiment output in
/// registry order while later experiments are still running: `sink(i, r)`
/// is called for `i = 0, 1, 2, ...` with no gaps, on the caller's thread.
///
/// With `jobs <= 1` (or fewer than two items) everything runs inline on
/// the calling thread with no threads spawned; the outputs are identical.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn for_each_ordered<T, R, F, S>(jobs: usize, items: &[T], f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        for (i, item) in items.iter().enumerate() {
            sink(i, f(i, item));
        }
        return;
    }
    let workers = jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send can only fail if the receiver is gone, which
                // only happens when another worker panicked; stop too.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        while next < n {
            let (i, r) = rx
                .recv()
                .expect("worker thread died before finishing its items");
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next) {
                sink(next, r);
                next += 1;
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = par_map(1, &items, |i, &x| x * 3 + i as u64);
        for jobs in [2, 4, 7, 128] {
            assert_eq!(par_map(jobs, &items, |i, &x| x * 3 + i as u64), seq);
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: [u8; 0] = [];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn for_each_ordered_sink_sees_contiguous_indices() {
        let items: Vec<usize> = (0..50).collect();
        let mut seen = Vec::new();
        for_each_ordered(8, &items, |i, &x| i + x, |i, r| seen.push((i, r)));
        let expect: Vec<(usize, usize)> = (0..50).map(|i| (i, 2 * i)).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn resolve_jobs_explicit_request_wins_and_is_positive() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn uneven_work_still_collects_in_order() {
        // Make early items the slowest so out-of-order completion is likely.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(8, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }
}

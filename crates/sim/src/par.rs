//! Dependency-free parallel execution for the experiment harness.
//!
//! A tiny scoped-thread work pool with **deterministic, input-ordered
//! result collection**: workers claim items from a shared atomic cursor
//! (so load-balancing is dynamic), but results are delivered to the
//! caller strictly in input order. The contract every caller relies on:
//!
//! > For a pure per-item function `f`, the observable output of
//! > [`par_map`] / [`for_each_ordered`] is **bit-identical** for any
//! > worker count, including 1.
//!
//! Worker count resolution (see [`resolve_jobs`]): an explicit request
//! (e.g. a `--jobs N` flag) wins, then the `SWITCHLESS_JOBS` environment
//! variable, then [`std::thread::available_parallelism`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Environment variable consulted by [`resolve_jobs`] when no explicit
/// worker count is requested.
pub const JOBS_ENV: &str = "SWITCHLESS_JOBS";

/// Parses a `SWITCHLESS_JOBS` value: `Ok(Some(n))` for a positive count,
/// `Ok(None)` for "auto" (empty/whitespace or an explicit `0`, deferring
/// to the host's available parallelism), `Err` for anything else.
///
/// Malformed values are errors, never silently ignored: a typo like
/// `SWITCHLESS_JOBS=4x` in CI would otherwise fall back to host
/// parallelism and quietly change what a determinism diff covers.
///
/// # Errors
///
/// Returns a human-readable message naming the variable and the rejected
/// value.
pub fn parse_jobs_env(raw: &str) -> Result<Option<usize>, String> {
    let v = raw.trim();
    if v.is_empty() {
        return Ok(None);
    }
    match v.parse::<usize>() {
        Ok(0) => Ok(None), // explicit "auto"
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{JOBS_ENV} must be a worker count (0 means auto), got {v:?}"
        )),
    }
}

/// Resolves a worker count: `requested` (a CLI `--jobs N`) wins, then the
/// `SWITCHLESS_JOBS` environment variable (`0` or empty means "auto"),
/// then the host's available parallelism. The result is always at least 1.
///
/// # Panics
///
/// Panics on a malformed `SWITCHLESS_JOBS` value (see [`parse_jobs_env`]).
#[must_use]
pub fn resolve_jobs(requested: Option<usize>) -> usize {
    let from_env = || match std::env::var(JOBS_ENV) {
        Ok(raw) => parse_jobs_env(&raw).unwrap_or_else(|msg| panic!("{msg}")),
        Err(_) => None,
    };
    let n = requested.or_else(from_env).unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    n.max(1)
}

/// Applies `f` to every item on up to `jobs` worker threads and returns
/// the results **in input order**.
///
/// `f` receives `(index, &item)`; the index is the item's position in
/// `items`, which callers typically fold into a per-item RNG seed so
/// results do not depend on which worker ran which item.
///
/// # Examples
///
/// ```
/// use switchless_sim::par::par_map;
///
/// let squares = par_map(4, &[1u64, 2, 3, 4], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for_each_ordered(jobs, items, f, |_, r| out.push(r));
    out
}

/// Like [`par_map`], but streams each result to `sink` on the calling
/// thread, strictly in input order, as soon as its ordered prefix is
/// complete.
///
/// This is what lets a parallel harness print experiment output in
/// registry order while later experiments are still running: `sink(i, r)`
/// is called for `i = 0, 1, 2, ...` with no gaps, on the caller's thread.
///
/// With `jobs <= 1` (or fewer than two items) everything runs inline on
/// the calling thread with no threads spawned; the outputs are identical.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn for_each_ordered<T, R, F, S>(jobs: usize, items: &[T], f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    S: FnMut(usize, R),
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        for (i, item) in items.iter().enumerate() {
            sink(i, f(i, item));
        }
        return;
    }
    let workers = jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let f = &f;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                // A send can only fail if the receiver is gone, which
                // only happens when another worker panicked; stop too.
                if tx.send((i, f(i, &items[i]))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        while next < n {
            let (i, r) = rx
                .recv()
                .expect("worker thread died before finishing its items");
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next) {
                sink(next, r);
                next += 1;
            }
        }
    });
}

/// Like [`par_map`], but each worker takes **ownership** of its item —
/// for per-item state that is `Send` but not `Sync`, or that `f` must
/// consume (e.g. a shard worker consuming its per-core staging state).
/// Results are returned in input order; with `jobs <= 1` (or fewer than
/// two items) everything runs inline with no threads spawned.
///
/// # Panics
///
/// Propagates a panic from any worker thread.
pub fn par_map_owned<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let workers = jobs.min(n);
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let (cursor, slots, f) = (&cursor, &slots, &f);
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("item slot poisoned")
                    .take()
                    .expect("item claimed twice");
                if tx.send((i, f(i, item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        for _ in 0..n {
            let (i, r) = rx
                .recv()
                .expect("worker thread died before finishing its items");
            pending.insert(i, r);
        }
        pending.into_values().collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let seq = par_map(1, &items, |i, &x| x * 3 + i as u64);
        for jobs in [2, 4, 7, 128] {
            assert_eq!(par_map(jobs, &items, |i, &x| x * 3 + i as u64), seq);
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: [u8; 0] = [];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[9u8], |_, &x| x + 1), vec![10]);
    }

    #[test]
    fn for_each_ordered_sink_sees_contiguous_indices() {
        let items: Vec<usize> = (0..50).collect();
        let mut seen = Vec::new();
        for_each_ordered(8, &items, |i, &x| i + x, |i, r| seen.push((i, r)));
        let expect: Vec<(usize, usize)> = (0..50).map(|i| (i, 2 * i)).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn resolve_jobs_explicit_request_wins_and_is_positive() {
        assert_eq!(resolve_jobs(Some(3)), 3);
        assert_eq!(resolve_jobs(Some(0)), 1);
        assert!(resolve_jobs(None) >= 1);
    }

    #[test]
    fn parse_jobs_env_accepts_counts_and_auto() {
        assert_eq!(parse_jobs_env("4"), Ok(Some(4)));
        assert_eq!(parse_jobs_env(" 16 "), Ok(Some(16)));
        assert_eq!(parse_jobs_env("0"), Ok(None), "0 means auto");
        assert_eq!(parse_jobs_env(""), Ok(None));
        assert_eq!(parse_jobs_env("   "), Ok(None));
    }

    #[test]
    fn parse_jobs_env_rejects_malformed_values() {
        for bad in ["4x", "x4", "-1", "1.5", "four", "0x4"] {
            let err = parse_jobs_env(bad).unwrap_err();
            assert!(err.contains(JOBS_ENV), "{err}");
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn par_map_owned_matches_serial_for_any_worker_count() {
        // Items are owned (and not Copy) to exercise the move path.
        let mk = || -> Vec<String> { (0..40).map(|i| format!("item-{i}")).collect() };
        let seq = par_map_owned(1, mk(), |i, s| format!("{s}/{i}"));
        for jobs in [2, 4, 9, 64] {
            assert_eq!(par_map_owned(jobs, mk(), |i, s| format!("{s}/{i}")), seq);
        }
        assert!(par_map_owned(4, Vec::<String>::new(), |_, s| s).is_empty());
    }

    #[test]
    fn uneven_work_still_collects_in_order() {
        // Make early items the slowest so out-of-order completion is likely.
        let items: Vec<u64> = (0..16).collect();
        let out = par_map(8, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }
}

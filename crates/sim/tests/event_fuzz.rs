//! Differential fuzz for `EventQueue`: random interleavings of
//! `schedule` / `cancel` / `pop_due` / `pop_keyed` / `restore` with times
//! spanning well past the 4096-cycle wheel horizon, checked against a
//! naive reference model (a flat list ordered by the same `(time, issue
//! order)` key). This is exactly the API surface the burst engine and the
//! shard engine lean on; wheel-cursor and overflow-spill bugs hide here.

use std::collections::BTreeSet;

use switchless_sim::event::{EventQueue, EventToken};
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// Where a scheduled event currently is, from the model's point of view.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Where {
    /// In the queue, poppable.
    Live,
    /// Removed with `pop_keyed`, restorable.
    Held,
    /// Popped for good or cancelled.
    Gone,
}

struct Rec {
    at: Cycles,
    token: EventToken,
    val: u64,
    site: Where,
}

/// The reference model. The queue orders by `(time, schedule order)` and
/// `restore` preserves the original key, so an ordered set of
/// `(time, issue index)` pairs — the textbook priority-queue semantics —
/// is the whole specification.
struct Model {
    recs: Vec<Rec>,
    live: BTreeSet<(Cycles, usize)>,
}

impl Model {
    fn min_live(&self) -> Option<usize> {
        self.live.first().map(|&(_, i)| i)
    }

    fn live_len(&self) -> usize {
        self.live.len()
    }

    fn set_site(&mut self, i: usize, site: Where) {
        let key = (self.recs[i].at, i);
        if site == Where::Live {
            self.live.insert(key);
        } else {
            self.live.remove(&key);
        }
        self.recs[i].site = site;
    }
}

fn fuzz_once(seed: u64, ops: u32) {
    let mut rng = Rng::seed_from(seed);
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut model = Model {
        recs: Vec::new(),
        live: BTreeSet::new(),
    };
    // The clock only moves forward (as in the machine): events are always
    // scheduled at or after the highest time handed out by `pop_due`.
    let mut now = Cycles(0);
    let mut next_val = 0u64;

    for step in 0..ops {
        let ctx = |what: &str| format!("seed {seed} step {step}: {what}");
        match rng.next_below(100) {
            // schedule: spread times across several wheel horizons.
            0..=39 => {
                let at = now + Cycles(rng.next_below(3 * 4096));
                let val = next_val;
                next_val += 1;
                let token = q.schedule(at, val);
                let i = model.recs.len();
                model.recs.push(Rec {
                    at,
                    token,
                    val,
                    site: Where::Live,
                });
                model.live.insert((at, i));
            }
            // pop_due: bounded pop, advances the clock.
            40..=64 => {
                let bound = now + Cycles(rng.next_below(2 * 4096));
                let got = q.pop_due(bound);
                let want = model.min_live().filter(|&i| model.recs[i].at <= bound);
                match (got, want) {
                    (None, None) => {}
                    (Some((at, val)), Some(i)) => {
                        let r = &model.recs[i];
                        assert_eq!((at, val), (r.at, r.val), "{}", ctx("pop_due"));
                        model.set_site(i, Where::Gone);
                        now = now.max(at);
                    }
                    (got, want) => panic!(
                        "{}: queue {:?} vs model {:?}",
                        ctx("pop_due diverged"),
                        got,
                        want.map(|i| (model.recs[i].at, model.recs[i].val)),
                    ),
                }
            }
            // pop_keyed: unbounded pop that can be restored.
            65..=79 => {
                let got = q.pop_keyed();
                match (got, model.min_live()) {
                    (None, None) => {}
                    (Some((at, token, val)), Some(i)) => {
                        let r = &model.recs[i];
                        assert_eq!(
                            (at, token, val),
                            (r.at, r.token, r.val),
                            "{}",
                            ctx("pop_keyed")
                        );
                        model.set_site(i, Where::Held);
                    }
                    (got, want) => panic!(
                        "{}: queue {:?} vs model {:?}",
                        ctx("pop_keyed diverged"),
                        got,
                        want.map(|i| (model.recs[i].at, model.recs[i].val)),
                    ),
                }
            }
            // restore: put a held entry back under its original key.
            80..=89 => {
                let held: Vec<usize> = (0..model.recs.len())
                    .filter(|&i| model.recs[i].site == Where::Held)
                    .collect();
                if held.is_empty() {
                    continue;
                }
                let i = held[rng.next_below(held.len() as u64) as usize];
                let r = &model.recs[i];
                q.restore(r.at, r.token, r.val);
                model.set_site(i, Where::Live);
            }
            // cancel: any token ever issued; must report whether it was
            // actually live (popped/cancelled tokens are refused).
            _ => {
                if model.recs.is_empty() {
                    continue;
                }
                let i = rng.next_below(model.recs.len() as u64) as usize;
                let r = &model.recs[i];
                let want = r.site == Where::Live;
                assert_eq!(q.cancel(r.token), want, "{}", ctx("cancel"));
                if want {
                    model.set_site(i, Where::Gone);
                }
            }
        }
        assert_eq!(q.len(), model.live_len(), "{}", ctx("len"));
        let want_deadline = model.min_live().map(|i| model.recs[i].at);
        assert_eq!(q.peek_time(), want_deadline, "{}", ctx("peek_time"));
        if let Some(t) = q.next_deadline() {
            // next_deadline may report a stale (cancelled) earlier time —
            // it is a cheap lower bound — but never a later one.
            assert!(
                want_deadline.is_some_and(|w| t <= w) || want_deadline.is_none(),
                "{}",
                ctx("next_deadline above true min")
            );
        }
    }

    // Drain what is left in the queue and check full order agreement.
    while let Some((at, val)) = q.pop_due(Cycles(u64::MAX)) {
        let i = model.min_live().expect("queue has more events than model");
        let r = &model.recs[i];
        assert_eq!((at, val), (r.at, r.val), "seed {seed}: drain order");
        model.set_site(i, Where::Gone);
    }
    assert_eq!(
        model.live_len(),
        0,
        "seed {seed}: model has leftover events"
    );
}

#[test]
fn event_queue_matches_reference_model_across_wheel_horizon() {
    for seed in 0..12 {
        fuzz_once(seed, 6_000);
    }
}

#[test]
fn event_queue_matches_reference_model_long_run() {
    // One long run so the wheel window wraps many times and the recency
    // ring (4096 entries) spills into its old_live/old_cancelled sets.
    fuzz_once(0xfeed, 40_000);
}

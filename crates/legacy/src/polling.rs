//! Dedicated-core polling dataplanes (IX `[24]`, ZygOS `[65]`, DPDK `[3]`,
//! TAS `[48]`, Snap `[55]`): the design §2 says the new model makes
//! unnecessary. Polling gets near-zero notification latency but "wastes
//! one or more cores and complicates core allocation under varying I/O
//! load".

use switchless_sim::time::Cycles;
use switchless_wl::queue::{Discipline, QueueConfig};

use crate::costs::LegacyCosts;

/// A polling dataplane with a fixed set of dedicated cores.
#[derive(Clone, Copy, Debug)]
pub struct PollingPlane {
    /// Cost book.
    pub costs: LegacyCosts,
    /// Cores dedicated to spinning.
    pub polling_cores: usize,
}

impl PollingPlane {
    /// Creates a plane with `polling_cores` burned cores.
    #[must_use]
    pub fn new(costs: LegacyCosts, polling_cores: usize) -> PollingPlane {
        assert!(polling_cores > 0, "polling needs at least one core");
        PollingPlane {
            costs,
            polling_cores,
        }
    }

    /// Mean notification latency: half a poll iteration.
    #[must_use]
    pub fn mean_notification(&self) -> Cycles {
        Cycles(self.costs.poll_iteration.0 / 2)
    }

    /// Maps run-to-completion polling onto the queueing simulator: FCFS
    /// on the dedicated cores with the poll-freshness wakeup term.
    #[must_use]
    pub fn to_queue_config(&self) -> QueueConfig {
        QueueConfig {
            servers: self.polling_cores,
            discipline: Discipline::Fcfs,
            wakeup_overhead: self.mean_notification(),
            dispatch_overhead: Cycles::ZERO,
        }
    }

    /// Cycles burned by spinning over a window in which the cores were
    /// busy `busy_cycles` in total: everything not spent on work is
    /// wasted spin.
    #[must_use]
    pub fn wasted_cycles(&self, window: Cycles, busy_cycles: u64) -> u64 {
        (window.0 * self.polling_cores as u64).saturating_sub(busy_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_sim::rng::Rng;
    use switchless_wl::dist::ServiceDist;
    use switchless_wl::queue::QueueSim;
    use switchless_wl::sweep::make_jobs;

    #[test]
    fn notification_is_sub_microsecond() {
        let p = PollingPlane::new(LegacyCosts::default(), 1);
        assert!(p.mean_notification().0 < 300);
    }

    #[test]
    fn low_load_wastes_nearly_everything() {
        let p = PollingPlane::new(LegacyCosts::default(), 2);
        let mut rng = Rng::seed_from(1);
        // 5% load on 2 cores.
        let jobs = make_jobs(&mut rng, &ServiceDist::Fixed(3000), 2, 0.05, 2_000);
        let r = QueueSim::run(&p.to_queue_config(), &jobs, Cycles::ZERO);
        let wasted = p.wasted_cycles(r.makespan, r.busy_cycles);
        let total = r.makespan.0 * 2;
        assert!(
            wasted as f64 / total as f64 > 0.9,
            "only {:.0}% wasted",
            100.0 * wasted as f64 / total as f64
        );
    }

    #[test]
    fn latency_is_excellent_when_cores_free() {
        let p = PollingPlane::new(LegacyCosts::default(), 2);
        let mut rng = Rng::seed_from(2);
        let jobs = make_jobs(&mut rng, &ServiceDist::Fixed(3000), 2, 0.3, 5_000);
        let r = QueueSim::run(&p.to_queue_config(), &jobs, Cycles::ZERO);
        // Near service time: 3000 + 150 mean notification + queueing.
        assert!(r.sojourn.p50() < 3000 * 2, "p50 {}", r.sojourn.p50());
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = PollingPlane::new(LegacyCosts::default(), 0);
    }
}

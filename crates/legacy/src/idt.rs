//! Interrupt delivery through an interrupt descriptor table.
//!
//! This is the machinery §2 "No More Interrupts" deletes: the kernel
//! registers handlers in the IDT; a device interrupt vectors the current
//! execution into IRQ context (entry cost), runs the handler, and exits
//! (EOI + restore). The model tracks vector registration, masks, delivery
//! counts, and produces the handler-start latency for each delivery.

use std::collections::HashMap;

use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

use crate::costs::LegacyCosts;

/// One registered interrupt handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdtEntry {
    /// Cycles of handler work charged per delivery (top half).
    pub handler_cost: Cycles,
    /// Whether the vector is currently masked.
    pub masked: bool,
}

/// Outcome of one delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the handler began running (after IRQ entry).
    pub handler_start: Cycles,
    /// When IRQ context was exited (entry + handler + exit).
    pub done: Cycles,
}

/// The interrupt controller + IDT model for one core.
#[derive(Clone, Debug)]
pub struct Idt {
    costs: LegacyCosts,
    vectors: HashMap<u32, IdtEntry>,
    /// IRQ context is non-reentrant: deliveries queue behind this time.
    busy_until: Cycles,
    delivered: u64,
    dropped: u64,
    /// Handler-start latency relative to raise time.
    latency: Histogram,
}

impl Idt {
    /// Creates an empty IDT with the given cost book.
    #[must_use]
    pub fn new(costs: LegacyCosts) -> Idt {
        Idt {
            costs,
            vectors: HashMap::new(),
            busy_until: Cycles::ZERO,
            delivered: 0,
            dropped: 0,
            latency: Histogram::new(),
        }
    }

    /// Registers a handler for `vector`.
    pub fn register(&mut self, vector: u32, handler_cost: Cycles) {
        self.vectors.insert(
            vector,
            IdtEntry {
                handler_cost,
                masked: false,
            },
        );
    }

    /// Masks or unmasks a vector.
    pub fn set_masked(&mut self, vector: u32, masked: bool) {
        if let Some(e) = self.vectors.get_mut(&vector) {
            e.masked = masked;
        }
    }

    /// Raises `vector` at time `now`. Returns the delivery timing, or
    /// `None` if the vector is unregistered/masked (dropped/pended).
    pub fn raise(&mut self, now: Cycles, vector: u32) -> Option<Delivery> {
        let entry = match self.vectors.get(&vector) {
            Some(e) if !e.masked => *e,
            _ => {
                self.dropped += 1;
                return None;
            }
        };
        // Non-reentrant IRQ context: wait for any in-flight handler.
        let begin = now.max(self.busy_until);
        let handler_start = begin + self.costs.irq_entry;
        let done = handler_start + entry.handler_cost + self.costs.irq_exit;
        self.busy_until = done;
        self.delivered += 1;
        self.latency.record((handler_start - now).0);
        Some(Delivery {
            handler_start,
            done,
        })
    }

    /// `(delivered, dropped)` counts.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.delivered, self.dropped)
    }

    /// Handler-start latency distribution.
    #[must_use]
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idt() -> Idt {
        Idt::new(LegacyCosts::default())
    }

    #[test]
    fn delivery_charges_entry_and_exit() {
        let mut i = idt();
        i.register(32, Cycles(1000));
        let d = i.raise(Cycles(0), 32).unwrap();
        assert_eq!(d.handler_start, Cycles(600));
        assert_eq!(d.done, Cycles(600 + 1000 + 300));
    }

    #[test]
    fn unregistered_vector_dropped() {
        let mut i = idt();
        assert!(i.raise(Cycles(0), 99).is_none());
        assert_eq!(i.stats(), (0, 1));
    }

    #[test]
    fn masked_vector_dropped() {
        let mut i = idt();
        i.register(32, Cycles(100));
        i.set_masked(32, true);
        assert!(i.raise(Cycles(0), 32).is_none());
        i.set_masked(32, false);
        assert!(i.raise(Cycles(0), 32).is_some());
    }

    #[test]
    fn irq_context_serialises_back_to_back_interrupts() {
        let mut i = idt();
        i.register(32, Cycles(1000));
        let d1 = i.raise(Cycles(0), 32).unwrap();
        let d2 = i.raise(Cycles(100), 32).unwrap();
        assert!(d2.handler_start >= d1.done, "second waits for first");
        // The queueing shows up in the latency histogram.
        assert!(i.latency().max() > i.latency().min());
    }

    #[test]
    fn idle_system_delivers_at_entry_cost() {
        let mut i = idt();
        i.register(40, Cycles(0));
        let d = i.raise(Cycles(10_000), 40).unwrap();
        assert_eq!((d.handler_start - Cycles(10_000)).0, 600);
    }
}

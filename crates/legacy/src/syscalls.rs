//! System-call delivery models: synchronous mode switches and
//! FlexSC-style batched asynchronous calls (the two designs §2
//! "Exception-less System Calls" says force an unnecessary trade-off).

use switchless_sim::time::Cycles;

use crate::costs::LegacyCosts;

/// Per-call cost breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SyscallCost {
    /// Cycles until the kernel work *begins* (caller-visible entry).
    pub entry_latency: Cycles,
    /// Total caller-visible round trip excluding kernel work.
    pub round_trip_overhead: Cycles,
}

/// The synchronous (same-thread mode switch) design: Linux, Dune, IX.
#[derive(Clone, Copy, Debug, Default)]
pub struct SyncSyscalls {
    /// Cost book.
    pub costs: LegacyCosts,
}

impl SyncSyscalls {
    /// Cost of one call.
    #[must_use]
    pub fn call(&self) -> SyscallCost {
        // Entry is half the mode switch; the rest is paid on return.
        let half = Cycles(self.costs.syscall_mode_switch.0 / 2);
        SyscallCost {
            entry_latency: half,
            round_trip_overhead: self.costs.syscall_mode_switch,
        }
    }
}

/// FlexSC-style batched asynchronous system calls `[69]`: user code posts
/// requests to a shared page; a kernel thread processes batches. The
/// mode switch is amortized over the batch, but each call waits for its
/// batch to fill and for the kernel thread to be scheduled.
#[derive(Clone, Copy, Debug)]
pub struct FlexScSyscalls {
    /// Cost book.
    pub costs: LegacyCosts,
    /// Calls per batch.
    pub batch: u32,
    /// Mean cycles between call arrivals (sets the batch fill time).
    pub mean_interarrival: Cycles,
    /// Delay until the kernel syscall thread gets scheduled once a batch
    /// is ready (a scheduler quantum boundary in the worst case; FlexSC
    /// dedicates cores to shrink this — we model a light 1/4 wakeup).
    pub kernel_thread_delay: Cycles,
}

impl FlexScSyscalls {
    /// A configuration matched to an arrival rate.
    #[must_use]
    pub fn new(costs: LegacyCosts, batch: u32, mean_interarrival: Cycles) -> FlexScSyscalls {
        FlexScSyscalls {
            costs,
            batch: batch.max(1),
            mean_interarrival,
            kernel_thread_delay: Cycles(costs.sched_wakeup.0 / 4),
        }
    }

    /// Mean per-call cost: amortized switch + batching delay.
    #[must_use]
    pub fn call(&self) -> SyscallCost {
        // A call waits on average for half the remaining batch to fill.
        let fill_wait =
            Cycles(self.mean_interarrival.0 * u64::from(self.batch.saturating_sub(1)) / 2);
        let amortized_switch = Cycles(
            (self.costs.syscall_mode_switch.0 + self.costs.ctx_switch_direct.0)
                / u64::from(self.batch),
        );
        let entry = fill_wait + self.kernel_thread_delay + amortized_switch;
        SyscallCost {
            entry_latency: entry,
            round_trip_overhead: entry + amortized_switch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_overhead_is_the_mode_switch() {
        let s = SyncSyscalls::default();
        assert_eq!(s.call().round_trip_overhead, Cycles(300));
        assert!(s.call().entry_latency < s.call().round_trip_overhead);
    }

    #[test]
    fn flexsc_amortizes_per_call_switch_cost() {
        let costs = LegacyCosts::default();
        // Per-call switch contribution shrinks with batch size...
        let amort32 = (costs.syscall_mode_switch.0 + costs.ctx_switch_direct.0) / 32;
        let amort1 = costs.syscall_mode_switch.0 + costs.ctx_switch_direct.0;
        assert!(amort32 < amort1 / 16);
        // ...but latency *grows* with the batch-fill delay when calls are
        // sparse: the FlexSC trade.
        let sparse = FlexScSyscalls::new(costs, 32, Cycles(500));
        let dense = FlexScSyscalls::new(costs, 32, Cycles(50));
        assert!(sparse.call().entry_latency > dense.call().entry_latency * 3);
    }

    #[test]
    fn flexsc_high_rate_beats_sync_on_throughput_cost() {
        // At high call rates (small interarrival), FlexSC's per-call
        // overhead beats the sync mode switch.
        let costs = LegacyCosts::default();
        let f = FlexScSyscalls::new(costs, 64, Cycles(5));
        let sync = SyncSyscalls { costs };
        let f_cpu_per_call = (costs.syscall_mode_switch.0 + costs.ctx_switch_direct.0) / 64;
        assert!(f_cpu_per_call < sync.call().round_trip_overhead.0 / 4);
        // And yet its *latency* is worse — the paper's "unnecessary
        // trade-off".
        assert!(f.call().entry_latency > sync.call().entry_latency);
    }

    #[test]
    fn batch_of_zero_clamped() {
        let f = FlexScSyscalls::new(LegacyCosts::default(), 0, Cycles(10));
        assert_eq!(f.batch, 1);
        let _ = f.call();
    }
}

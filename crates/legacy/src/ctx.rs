//! Software context-switch cost: direct plus cache pollution.
//!
//! §1: "Even switching between software threads in the same protection
//! level incurs hundreds of cycles of overhead as registers are
//! saved/restored and caches are warmed `[25, 46]`." The direct term is
//! the save/restore + stack/address-space switch; the indirect term is
//! re-warming the incoming thread's working set through the cache
//! hierarchy.

use switchless_sim::time::Cycles;

use crate::costs::LegacyCosts;

/// Cache-pollution parameters for the indirect term.
#[derive(Clone, Copy, Debug)]
pub struct PollutionModel {
    /// Average refill penalty per working-set line that was evicted
    /// while the thread was off-CPU (a blend of L2/L3/DRAM hits; ~60
    /// cycles is a mild, L3-heavy blend).
    pub refill_per_line: Cycles,
    /// Fraction of the working set evicted while descheduled, in `[0, 1]`.
    /// Grows with time off-CPU and competing threads; 0.5 is typical for
    /// a loaded server.
    pub evicted_fraction: f64,
}

impl Default for PollutionModel {
    fn default() -> PollutionModel {
        PollutionModel {
            refill_per_line: Cycles(60),
            evicted_fraction: 0.5,
        }
    }
}

/// The full context-switch model.
#[derive(Clone, Copy, Debug, Default)]
pub struct CtxSwitchModel {
    /// Direct-cost book.
    pub costs: LegacyCosts,
    /// Indirect-cost parameters.
    pub pollution: PollutionModel,
}

impl CtxSwitchModel {
    /// Direct cost only (register save/restore, stack switch).
    #[must_use]
    pub fn direct(&self) -> Cycles {
        self.costs.ctx_switch_direct
    }

    /// Indirect (pollution) cost for a thread with `working_set_bytes`.
    #[must_use]
    pub fn pollution(&self, working_set_bytes: u64) -> Cycles {
        let lines = working_set_bytes.div_ceil(64);
        let evicted = (lines as f64 * self.pollution.evicted_fraction).round() as u64;
        Cycles(evicted * self.pollution.refill_per_line.0)
    }

    /// Total switch cost for a given incoming working set.
    #[must_use]
    pub fn total(&self, working_set_bytes: u64) -> Cycles {
        self.direct() + self.pollution(working_set_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_sim::time::Freq;

    #[test]
    fn direct_is_hundreds_of_cycles() {
        let m = CtxSwitchModel::default();
        assert!((500..5000).contains(&m.direct().0));
    }

    #[test]
    fn pollution_scales_with_working_set() {
        let m = CtxSwitchModel::default();
        let small = m.pollution(4 * 1024);
        let large = m.pollution(64 * 1024);
        assert!(large > small * 10);
        assert_eq!(m.pollution(0), Cycles::ZERO);
    }

    #[test]
    fn total_for_typical_thread_is_microsecond_class() {
        // 32 KiB working set, default model -> ~1500 + 256*60 = ~16.9k
        // cycles ≈ 5.6 µs: the "hidden" cost the paper highlights.
        let m = CtxSwitchModel::default();
        let ns = Freq::GHZ3.cycles_to_ns(m.total(32 * 1024));
        assert!((2000.0..10_000.0).contains(&ns), "{ns}ns");
    }
}

//! The OS scheduler's wakeup path, and the mapping of "software threads
//! on an OS scheduler" onto the queueing simulator.

use switchless_sim::time::Cycles;
use switchless_wl::queue::{Discipline, QueueConfig};

use crate::costs::LegacyCosts;
use crate::ctx::CtxSwitchModel;

/// The software-thread scheduling model.
#[derive(Clone, Copy, Debug, Default)]
pub struct SwScheduler {
    /// Cost book.
    pub costs: LegacyCosts,
    /// Context-switch model used per dispatch.
    pub ctx: CtxSwitchModel,
}

impl SwScheduler {
    /// End-to-end latency to wake a blocked software thread from an I/O
    /// event: interrupt entry → scheduler → (IPI) → context switch.
    #[must_use]
    pub fn wakeup_latency(&self, cross_core: bool) -> Cycles {
        self.costs.blocked_wakeup_path(cross_core)
    }

    /// Maps "thread-per-request on the OS scheduler" onto the queueing
    /// simulator: millisecond quantum, context-switch per dispatch, and
    /// the IRQ+scheduler wakeup path charged per request.
    ///
    /// `working_set_bytes` sizes the pollution term per context switch.
    #[must_use]
    pub fn to_queue_config(&self, servers: usize, working_set_bytes: u64) -> QueueConfig {
        QueueConfig {
            servers,
            discipline: Discipline::Rr {
                quantum: self.costs.quantum,
            },
            wakeup_overhead: self.wakeup_latency(true),
            dispatch_overhead: self.ctx.total(working_set_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_sim::rng::Rng;
    use switchless_wl::dist::ServiceDist;
    use switchless_wl::queue::QueueSim;
    use switchless_wl::sweep::make_jobs;

    #[test]
    fn wakeup_is_microseconds() {
        let s = SwScheduler::default();
        assert!(s.wakeup_latency(true).0 > 3000);
    }

    #[test]
    fn queue_config_has_ms_quantum_and_ctx_cost() {
        let s = SwScheduler::default();
        let cfg = s.to_queue_config(2, 16 * 1024);
        match cfg.discipline {
            Discipline::Rr { quantum } => assert!(quantum.0 >= 1_000_000),
            Discipline::Fcfs => panic!("legacy threads must preempt"),
        }
        assert!(cfg.dispatch_overhead.0 >= 1500);
    }

    #[test]
    fn microsecond_tasks_dominated_by_overheads() {
        // A 3000-cycle (1 µs) service behind a ~7µs wakeup + ctx switch:
        // sojourn is dominated by the legacy path, the paper's complaint.
        let s = SwScheduler::default();
        let cfg = s.to_queue_config(1, 16 * 1024);
        let mut rng = Rng::seed_from(1);
        let jobs = make_jobs(&mut rng, &ServiceDist::Fixed(3000), 1, 0.10, 2000);
        let r = QueueSim::run(&cfg, &jobs, Cycles::ZERO);
        let min_sojourn = r.sojourn.min();
        assert!(
            min_sojourn > 3000 * 3,
            "overheads should dominate: {min_sojourn}"
        );
    }
}

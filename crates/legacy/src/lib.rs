//! The world being argued against: interrupts, mode switches, software
//! context switches, OS scheduling, and polling dataplanes.
//!
//! The paper's comparisons are against *today's* mechanisms, whose costs
//! are established in the literature it cites: hundreds of cycles for
//! system-call mode switches (FlexSC `[69]`, Shinjuku `[46]`), ~1000+ cycles
//! for VM-exits (Agesen et al. `[20]`, SplitX `[53]`), microseconds for the
//! interrupt → scheduler → context-switch wakeup path (`[40, 41, 49]`),
//! and one or more burned cores for polling designs (IX `[24]`,
//! Shenango/TAS/Snap `[63, 48, 55]`). This crate packages those mechanisms
//! as explicit, testable models:
//!
//! * [`costs`] — the parameter set, with per-field provenance.
//! * [`idt`] — interrupt delivery through an IDT: vectoring, IRQ-context
//!   entry/exit, and inter-processor interrupts.
//! * [`ctx`] — software context switches: direct save/restore cost plus
//!   the indirect cache-pollution term.
//! * [`swsched`] — the software scheduler's wakeup path (enqueue, IPI,
//!   quantum preemption) and its mapping onto the queueing simulator.
//! * [`syscalls`] — synchronous mode-switch system calls and FlexSC-style
//!   batched asynchronous system calls.
//! * [`polling`] — dedicated-core polling dataplanes: near-zero
//!   notification latency, whole cores burned.
//!
//! Everything here is *modeled*, not measured on the switchless machine —
//! these mechanisms are precisely the hardware behaviours the paper
//! proposes to delete, so they exist as calibrated cost models (see
//! DESIGN.md "Substitutions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod ctx;
pub mod idt;
pub mod polling;
pub mod swsched;
pub mod syscalls;

pub use costs::LegacyCosts;

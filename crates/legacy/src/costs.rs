//! Cost parameters of today's mechanisms, with provenance.
//!
//! All values are cycles on the project's reference 3 GHz clock
//! (1 µs = 3000 cycles). They are deliberately *favourable to the
//! baseline* where the literature gives a range — the paper's argument
//! should not need a strawman.

use switchless_sim::time::Cycles;

/// The legacy-mechanism cost book.
#[derive(Clone, Copy, Debug)]
pub struct LegacyCosts {
    /// Hardware interrupt entry: vector through the IDT, save frame,
    /// enter hard-IRQ context. Literature: ~200–600 ns end-to-end for
    /// NIC interrupt delivery; entry alone ~600 cycles.
    pub irq_entry: Cycles,
    /// IRQ exit: EOI, restore, return. ~300 cycles.
    pub irq_exit: Cycles,
    /// Running the scheduler to wake a blocked thread: runqueue lock,
    /// enqueue, pick. ~1–2 µs in Linux (`[63]` measures multi-µs wakeups);
    /// 3000 cycles = 1 µs.
    pub sched_wakeup: Cycles,
    /// Cross-core inter-processor interrupt: trigger + remote entry.
    /// ~2000 cycles (~0.7 µs).
    pub ipi: Cycles,
    /// Direct software context-switch cost: save/restore registers,
    /// switch stacks and address space. "hundreds of cycles" `[25, 46]`;
    /// Linux measures ~1–2 µs with cache effects; direct part ~1500.
    pub ctx_switch_direct: Cycles,
    /// System-call mode switch, entry + exit: "can take hundreds of
    /// cycles" `[46, 69]`; with KPTI considerably more. 300 cycles.
    pub syscall_mode_switch: Cycles,
    /// VM-exit + VM-entry round trip: ~1000–2000 cycles on modern parts
    /// (`[20]` reports higher for older parts). 1500 cycles.
    pub vmexit_roundtrip: Cycles,
    /// OS scheduler preemption quantum. Linux CFS targets milliseconds;
    /// 1 ms = 3_000_000 cycles.
    pub quantum: Cycles,
    /// One iteration of a polling loop (ring check, branch). ~100 ns
    /// budget per DPDK-style iteration: 300 cycles worst-case freshness.
    pub poll_iteration: Cycles,
}

impl Default for LegacyCosts {
    fn default() -> LegacyCosts {
        LegacyCosts {
            irq_entry: Cycles(600),
            irq_exit: Cycles(300),
            sched_wakeup: Cycles(3000),
            ipi: Cycles(2000),
            ctx_switch_direct: Cycles(1500),
            syscall_mode_switch: Cycles(300),
            vmexit_roundtrip: Cycles(1500),
            quantum: Cycles(3_000_000),
            poll_iteration: Cycles(300),
        }
    }
}

impl LegacyCosts {
    /// Full interrupt-driven wakeup path for a blocked thread:
    /// IRQ entry + handler bookkeeping is charged by the caller; this is
    /// the post-handler path — scheduler wakeup, optional cross-core IPI,
    /// and the context switch onto the CPU.
    #[must_use]
    pub fn blocked_wakeup_path(&self, cross_core: bool) -> Cycles {
        let ipi = if cross_core { self.ipi } else { Cycles::ZERO };
        self.irq_entry + self.sched_wakeup + ipi + self.ctx_switch_direct + self.irq_exit
    }

    /// Round-trip cost of one synchronous system call, excluding the
    /// kernel work itself.
    #[must_use]
    pub fn syscall_round(&self) -> Cycles {
        self.syscall_mode_switch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_sim::time::Freq;

    #[test]
    fn wakeup_path_is_microsecond_scale() {
        let c = LegacyCosts::default();
        let same = c.blocked_wakeup_path(false);
        let cross = c.blocked_wakeup_path(true);
        assert!(cross > same);
        let ns = Freq::GHZ3.cycles_to_ns(cross);
        // The paper's motivation: interrupt wakeups are ~µs scale.
        assert!((1000.0..4000.0).contains(&ns), "cross-core wakeup {ns}ns");
    }

    #[test]
    fn syscall_is_hundreds_of_cycles() {
        let c = LegacyCosts::default();
        assert!((100..1000).contains(&c.syscall_round().0));
    }

    #[test]
    fn quantum_is_milliseconds() {
        let c = LegacyCosts::default();
        assert!(c.quantum.0 >= 1_000_000, "quantum must be ms-scale");
    }
}

//! F12 — ablation of the generalized monitor filter (§4): the hardware
//! structure consulted on every store must scale to many armed watches.
//!
//! * **CAM**: exact byte-range matching, ~1-cycle lookups, but bounded
//!   capacity — arming beyond it fails over to software.
//! * **hashed banks**: unbounded, line-granular — colliding watches add
//!   lookup latency and unrelated writes to a watched line cause false
//!   wakeups (the woken thread re-checks and re-parks).

use switchless_core::machine::{Machine, MachineConfig, MonitorKind};
use switchless_isa::asm::assemble;
use switchless_mem::addr::PAddr;
use switchless_mem::monitor::{CamFilter, HashFilter, MonitorFilter, WatchId};
use switchless_sim::report::{fnum, Table};
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// Microbench: arm `n` watches spaced `stride` bytes apart, fire random
/// stores, return (mean lookup cycles, wakes, false wakes, armed ok).
fn drive(filter: &mut dyn MonitorFilter, n: u64, stride: u64, stores: u64) -> (f64, u64, u64, u64) {
    let base = 0x10000u64;
    let mut armed = 0;
    for i in 0..n {
        if filter.arm(WatchId(i), PAddr(base + i * stride), 8).is_ok() {
            armed += 1;
        }
    }
    let mut rng = Rng::seed_from(3);
    let mut total_cost = 0u64;
    let mut wakes = 0u64;
    let mut false_wakes = 0u64;
    let mut out = Vec::new();
    for _ in 0..stores {
        // Half the stores hit watched addresses, half miss.
        let addr = if rng.chance(0.5) {
            base + rng.next_below(n.max(1)) * stride
        } else {
            base + n * stride + rng.next_below(1 << 16)
        };
        out.clear();
        total_cost += filter.on_store(PAddr(addr), 8, &mut out).0;
        wakes += out.len() as u64;
        false_wakes += out.iter().filter(|w| !w.exact).count() as u64;
        // Woken watchers re-arm (as real mwait users would).
        for w in out.clone() {
            filter.disarm_all(w.watcher);
            let idx = w.watcher.0;
            let _ = filter.arm(w.watcher, PAddr(base + idx * stride), 8);
        }
    }
    (total_cost as f64 / stores as f64, wakes, false_wakes, armed)
}

/// Machine-level false-wakeup demo: two mailboxes in one cache line
/// under the hashed filter.
fn false_wake_on_machine() -> (u64, u64) {
    let mut cfg = MachineConfig::small();
    cfg.monitor = MonitorKind::Hash;
    let mut m = Machine::new(cfg);
    let line = m.alloc(64); // both words share this line
    let a = line;
    let b = line + 8;
    let prog = assemble(&format!(
        r#"
        entry:
            movi r1, 0
        loop:
            monitor {a}
            ld r2, {a}
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            jmp loop
        "#,
        a = a
    ))
    .expect("prog");
    let tid = m.load_program(0, &prog).expect("load");
    m.start_thread(tid);
    m.run_for(Cycles(20_000));
    // Write only the *other* word of the line, repeatedly.
    for i in 1..=50u64 {
        m.poke_u64(b, i);
        m.run_for(Cycles(5_000));
    }
    (
        m.counters().get("monitor.wakes"),
        m.counters().get("monitor.false_wakes"),
    )
}

/// Runs F12.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let stores = if quick { 20_000 } else { 100_000 };
    let mut t = Table::new(
        "F12: monitor-filter designs vs armed watch count",
        &[
            "watches",
            "stride",
            "cam cost/store",
            "cam armed",
            "hash cost/store",
            "hash false-wake %",
        ],
    );
    for &(n, stride) in &[(16u64, 64u64), (256, 64), (1024, 64), (4096, 64), (256, 8)] {
        let mut cam = CamFilter::new(1024);
        let (cam_cost, _, _, cam_armed) = drive(&mut cam, n, stride, stores);
        let mut hash = HashFilter::new();
        let (hash_cost, wakes, fw, _) = drive(&mut hash, n, stride, stores);
        t.row_owned(vec![
            n.to_string(),
            stride.to_string(),
            fnum(cam_cost),
            format!("{cam_armed}/{n}"),
            fnum(hash_cost),
            fnum(100.0 * fw as f64 / wakes.max(1) as f64),
        ]);
    }
    t.caption(
        "expected shape: CAM lookups stay 1 cycle but arming fails past \
         1024 entries; the hashed filter scales to 4096+ with ~2-3 cycle \
         lookups, and dense 8-byte-stride watches (8 per line) produce \
         ~87% false wakeups — the capacity/precision trade §4 leaves open",
    );

    let (wakes, false_wakes) = false_wake_on_machine();
    let mut t2 = Table::new(
        "F12b: machine-level false wakeups (hashed filter, shared line)",
        &["metric", "count"],
    );
    t2.row_owned(vec!["wakes delivered".into(), wakes.to_string()]);
    t2.row_owned(vec![
        "of which false (same line, other word)".into(),
        false_wakes.to_string(),
    ]);
    t2.caption("the woken thread re-checks its predicate and re-parks: correct, just wasteful");
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cam_capacity_fails_over() {
        let mut cam = CamFilter::new(1024);
        let (_, _, _, armed) = drive(&mut cam, 4096, 64, 1000);
        assert_eq!(armed, 1024);
    }

    #[test]
    fn hash_dense_watches_false_wake() {
        let mut hash = HashFilter::new();
        let (_, wakes, fw, _) = drive(&mut hash, 256, 8, 20_000);
        assert!(wakes > 0);
        assert!(
            fw as f64 / wakes as f64 > 0.5,
            "dense watches should mostly false-wake: {fw}/{wakes}"
        );
    }

    #[test]
    fn machine_false_wakes_counted_and_survived() {
        let (wakes, fw) = false_wake_on_machine();
        assert_eq!(wakes, 50, "every poke woke the thread");
        assert_eq!(fw, 50, "every wake was false (other word)");
    }
}

//! F5 — "No VM-Exits" + "Untrusted Hypervisors" (§2).
//!
//! Designs:
//!
//! * **in-kernel hv (same-thread)**: today's KVM shape — the VM-exit
//!   mode-switches into a privileged hypervisor in the same thread
//!   (*measured* on the machine in `TrapMode::SameThread`, 1500-cycle
//!   exit cost).
//! * **userspace hv (scheduled)**: an isolated hypervisor *process*
//!   without the new hardware: every exit pays the VM-exit plus a
//!   scheduler wakeup and two context switches (cost model).
//! * **hwt unprivileged hv**: the paper's design, measured — exit
//!   descriptor + disable, user-mode hypervisor thread wakes, restarts
//!   the guest via its TDT `start` right.

use switchless_core::machine::{Machine, MachineConfig, TrapMode};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_kern::hypervisor::{self, exits, HvConfig};
use switchless_legacy::costs::LegacyCosts;
use switchless_sim::report::Table;
use switchless_sim::time::Cycles;

use crate::common::cy_ns;

/// Measured same-thread (in-kernel) VM-exit handling.
fn measure_same_thread(hv_work: u32, iters: u32) -> u64 {
    let mut cfg = MachineConfig::small();
    cfg.trap = TrapMode::SameThread {
        syscall_cost: Cycles(300),
        vmexit_cost: LegacyCosts::default().vmexit_roundtrip,
    };
    let mut m = Machine::new(cfg);
    let image = assemble(&format!(
        r#"
        .base 0x10000
        entry:
            movi r7, 0
            movi r6, {iters}
        loop:
            vmcall 1
            addi r7, r7, 1
            bne r7, r6, loop
            halt
        hv:
            work {work}
            movi r13, 0
            csrw mode, r13
            jr r14
        "#,
        iters = iters,
        work = hv_work.max(1),
    ))
    .expect("image is valid");
    let tid = m.load_program(0, &image).expect("load");
    m.set_vm_vector(image.symbol("hv").expect("hv label"));
    m.start_thread(tid);
    let t0 = m.now();
    assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Measured hwt unprivileged-hypervisor exit handling.
fn measure_hwt(exit_num: u16, hv_work: u32, iters: u32) -> u64 {
    let mut m = Machine::new(MachineConfig::small());
    let h = hypervisor::install(
        &mut m,
        0,
        HvConfig {
            guest_work: 1,
            hv_work,
            kernel_work: 800,
            iters,
            exit_num,
        },
    )
    .expect("install");
    let t0 = m.now();
    assert!(m.run_until_state(h.guest, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Runs F5.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let iters = if quick { 200 } else { 2_000 };
    let costs = LegacyCosts::default();
    let hv_work = 500u32;

    let same = measure_same_thread(hv_work, iters);
    let hwt_cpuid = measure_hwt(exits::CPUID, hv_work, iters);
    let hwt_io = measure_hwt(exits::IO, hv_work, iters);
    // Userspace hypervisor process without new hardware: exit + wakeup
    // of the hv process + 2 context switches (in and out) + hv work.
    let user_sched = costs.vmexit_roundtrip.0
        + costs.sched_wakeup.0
        + 2 * costs.ctx_switch_direct.0
        + u64::from(hv_work);

    let mut t = Table::new(
        "F5: VM-exit handling cost by design (cycles incl. 500cy hv work)",
        &["design", "privileged?", "cpuid-class exit", "io-class exit"],
    );
    t.row_owned(vec![
        "in-kernel hv, same-thread (KVM shape)".into(),
        "yes".into(),
        cy_ns(same),
        cy_ns(same + 800), // plus kernel I/O work inline
    ]);
    t.row_owned(vec![
        "userspace hv process (scheduled)".into(),
        "no".into(),
        cy_ns(user_sched),
        cy_ns(user_sched + costs.sched_wakeup.0 + 800),
    ]);
    t.row_owned(vec![
        "hwt unprivileged hv (this paper, measured)".into(),
        "no".into(),
        cy_ns(hwt_cpuid),
        cy_ns(hwt_io),
    ]);
    t.caption(
        "expected shape: the hwt design gives userspace-grade isolation at \
         (or below) in-kernel cost; the scheduled-userspace design pays \
         several microseconds per exit, which is why nobody ships it",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwt_isolated_hv_cheaper_than_same_thread() {
        let same = measure_same_thread(500, 200);
        let hwt = measure_hwt(exits::CPUID, 500, 200);
        assert!(
            hwt < same,
            "hwt unprivileged {hwt} should beat same-thread {same}"
        );
    }

    #[test]
    fn io_exits_cost_more_than_cpuid_exits() {
        let cpuid = measure_hwt(exits::CPUID, 500, 200);
        let io = measure_hwt(exits::IO, 500, 200);
        assert!(io > cpuid, "io {io} vs cpuid {cpuid}");
    }
}

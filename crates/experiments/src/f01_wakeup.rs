//! F1 — the headline microbenchmark: how long from "event happens" to
//! "handler thread executes"?
//!
//! * **legacy-irq**: the interrupt path alone (IDT vectoring into IRQ
//!   context), which is the *best case* for today's kernels — the
//!   handler runs in IRQ context.
//! * **legacy-wakeup**: the realistic case the paper opens with: waking
//!   a *blocked thread* needs IRQ + scheduler + (IPI) + context switch.
//! * **hwt-mwait**: the paper's design, measured on the machine — a
//!   hardware thread parked in `mwait` on the event word, woken by the
//!   event write.

use switchless_core::machine::MachineConfig;
use switchless_core::Machine;
use switchless_kern::nointr::EventHandlerSet;
use switchless_legacy::costs::LegacyCosts;
use switchless_legacy::idt::Idt;
use switchless_sim::report::Table;
use switchless_sim::rng::Rng;
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;
use switchless_wl::arrivals::poisson_arrivals;

use crate::common::{cy_ns, FREQ};

/// Measures the hwt design on the machine: Poisson event stream into a
/// parked handler thread; returns the machine's wake histogram.
fn measure_hwt(n_events: usize, mean_gap: f64) -> Histogram {
    let mut m = Machine::new(MachineConfig::small());
    let set =
        EventHandlerSet::install(&mut m, 0, &[("ev", 500, 7)], 0x40000).expect("install handler");
    m.run_for(Cycles(20_000));
    m.reset_wake_latency();
    let mut rng = Rng::seed_from(11);
    let start = m.now();
    let times = poisson_arrivals(&mut rng, start + Cycles(1000), mean_gap, n_events);
    let word = set.handlers[0].event_word;
    for (i, at) in times.iter().enumerate() {
        let v = (i + 1) as u64;
        m.at(*at, move |mach| {
            mach.dma_write(word, &v.to_le_bytes());
        });
    }
    let horizon = times.last().copied().unwrap_or(start) + Cycles(1_000_000);
    m.run_until(horizon);
    assert_eq!(set.handled(&m, 0), n_events as u64, "all events handled");
    m.wake_latency().clone()
}

/// Measures the legacy IRQ path through the IDT model with the same
/// arrival process.
fn measure_legacy_irq(n_events: usize, mean_gap: f64) -> Histogram {
    let mut idt = Idt::new(LegacyCosts::default());
    idt.register(33, Cycles(500));
    let mut rng = Rng::seed_from(11);
    let times = poisson_arrivals(&mut rng, Cycles(1000), mean_gap, n_events);
    for at in times {
        idt.raise(at, 33);
    }
    idt.latency().clone()
}

/// Runs F1.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let n = if quick { 1_000 } else { 10_000 };
    let mean_gap = 30_000.0; // 10 µs between events: uncontended.

    let hwt = measure_hwt(n, mean_gap);
    let irq = measure_legacy_irq(n, mean_gap);
    let costs = LegacyCosts::default();
    let wake_same = costs.blocked_wakeup_path(false);
    let wake_cross = costs.blocked_wakeup_path(true);

    let mut t = Table::new(
        "F1: event-to-handler latency by design",
        &["design", "p50", "p99", "mean"],
    );
    t.row_owned(vec![
        "legacy-irq (handler in IRQ ctx)".into(),
        cy_ns(irq.p50()),
        cy_ns(irq.p99()),
        cy_ns(irq.mean() as u64),
    ]);
    t.row_owned(vec![
        "legacy-wakeup (blocked thread, same core)".into(),
        cy_ns(wake_same.0),
        cy_ns(wake_same.0),
        cy_ns(wake_same.0),
    ]);
    t.row_owned(vec![
        "legacy-wakeup (blocked thread, cross core)".into(),
        cy_ns(wake_cross.0),
        cy_ns(wake_cross.0),
        cy_ns(wake_cross.0),
    ]);
    t.row_owned(vec![
        "hwt-mwait (this paper, measured)".into(),
        cy_ns(hwt.p50()),
        cy_ns(hwt.p99()),
        cy_ns(hwt.mean() as u64),
    ]);
    let speedup = wake_cross.0 as f64 / hwt.p50().max(1) as f64;
    t.caption(&format!(
        "hwt wake beats the blocked-thread path by ~{speedup:.0}x \
         ({:.0}ns vs {:.0}ns); the paper argues exactly this gap",
        FREQ.cycles_to_ns(Cycles(hwt.p50())),
        FREQ.cycles_to_ns(wake_cross),
    ));
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwt_wake_is_orders_of_magnitude_faster() {
        let hwt = measure_hwt(200, 30_000.0);
        let legacy = LegacyCosts::default().blocked_wakeup_path(true);
        assert!(
            hwt.p50() * 20 < legacy.0,
            "hwt p50 {} vs legacy {}",
            hwt.p50(),
            legacy.0
        );
    }

    #[test]
    fn legacy_irq_alone_still_slower_than_mwait() {
        let hwt = measure_hwt(200, 30_000.0);
        let irq = measure_legacy_irq(200, 30_000.0);
        assert!(hwt.p50() < irq.p50(), "{} vs {}", hwt.p50(), irq.p50());
    }
}

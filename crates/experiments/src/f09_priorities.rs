//! F9 — "Support for Thread Scheduling" (§4): hardware priorities keep
//! time-critical handler threads fast no matter how many background
//! threads are runnable.
//!
//! One event-handler thread (the "time-critical interrupt" §2 mentions)
//! competes with K compute-bound background threads for the core's two
//! pipeline slots. Under plain round-robin the handler's wake-to-run
//! time grows with K; with hardware priorities it stays flat.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::sched::SchedPolicy;
use switchless_isa::asm::assemble;
use switchless_sim::report::Table;
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

use crate::common::cy_ns;

/// Measures handler wake latency with `background` spinners under the
/// given policy.
fn measure(policy: SchedPolicy, background: usize, events: usize) -> Histogram {
    let mut cfg = MachineConfig::small();
    cfg.sched = policy;
    cfg.ptids_per_core = background + 8;
    // Keep everyone RF-resident so this measures *scheduling*, not state
    // movement (F8 covers that axis).
    cfg.store.rf_threads = background + 8;
    let mut m = Machine::new(cfg);

    let ev = m.alloc(64);
    let handler = assemble(&format!(
        r#"
        .base 0x40000
        entry:
            movi r1, 0
        loop:
            monitor {ev}
            ld r2, {ev}
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            work 300
            jmp loop
        "#,
        ev = ev
    ))
    .expect("handler");
    let h = m.load_program(0, &handler).expect("load");
    m.set_thread_prio(h, 7); // only matters under Priority policy
    m.start_thread(h);

    let spin = assemble(".base 0x60000\nentry: work 400\njmp entry\n").expect("spin");
    m.load_image(&spin).expect("image");
    for _ in 0..background {
        let t = m.spawn_at(0, 0x60000, false).expect("spawn");
        m.start_thread(t);
    }
    m.run_for(Cycles(100_000));
    m.reset_wake_latency();
    for i in 1..=events as u64 {
        m.poke_u64(ev, i);
        m.run_for(Cycles(20_000));
    }
    m.wake_latency().clone()
}

/// Runs F9.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let events = if quick { 40 } else { 200 };
    let mut t = Table::new(
        "F9: time-critical handler wake latency vs background threads",
        &["background", "RR p50", "RR p99", "prio p50", "prio p99"],
    );
    for &k in &[0usize, 4, 16, 48] {
        let rr = measure(SchedPolicy::RoundRobin, k, events);
        let pr = measure(SchedPolicy::Priority, k, events);
        t.row_owned(vec![
            k.to_string(),
            cy_ns(rr.p50()),
            cy_ns(rr.p99()),
            cy_ns(pr.p50()),
            cy_ns(pr.p99()),
        ]);
    }
    t.caption(
        "expected shape: RR latency grows ~linearly with runnable \
         background threads (the handler waits its turn); hardware \
         priorities keep it flat — §4's answer for time-critical \
         interrupts",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_degrades_with_background_threads() {
        let rr0 = measure(SchedPolicy::RoundRobin, 0, 40);
        let rr32 = measure(SchedPolicy::RoundRobin, 32, 40);
        assert!(
            rr32.p50() > rr0.p50() * 3,
            "RR with 32 spinners p50 {} vs idle {}",
            rr32.p50(),
            rr0.p50()
        );
    }

    #[test]
    fn priority_stays_flat() {
        let p0 = measure(SchedPolicy::Priority, 0, 40);
        let p32 = measure(SchedPolicy::Priority, 32, 40);
        // The handler may wait one in-flight instruction (work 400), but
        // not a whole RR round.
        assert!(
            p32.p50() < p0.p50() + 500,
            "priority p50 degraded: {} vs {}",
            p32.p50(),
            p0.p50()
        );
    }
}

//! F2/F3 — "Fast I/O without Inefficient Polling" (§2): the three I/O
//! designs under an open-loop load sweep.
//!
//! * **interrupt**: interrupt-driven blocked-thread wakeups through the
//!   OS scheduler (queueing model, legacy costs).
//! * **polling**: a run-to-completion dataplane with *dedicated* cores —
//!   great latency, cores burned even at 5% load.
//! * **hwt**: the paper's design, *measured on the machine*: the NIC
//!   bumps the RX tail, a dispatcher hardware thread wakes, worker
//!   hardware threads run one request each.
//!
//! Capacity normalisation: the machine core has 2 SMT slots, so the
//! queueing baselines use `servers = 2`.

use switchless_core::machine::MachineConfig;
use switchless_core::Machine;
use switchless_dev::nic::{Nic, NicConfig};
use switchless_kern::ioengine::IoEngine;
use switchless_legacy::costs::LegacyCosts;
use switchless_legacy::polling::PollingPlane;
use switchless_legacy::swsched::SwScheduler;
use switchless_sim::report::{fnum, Table};
use switchless_sim::rng::Rng;
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;
use switchless_wl::arrivals::poisson_arrivals;
use switchless_wl::queue::QueueSim;

use crate::common::FREQ;

const SERVICE: u64 = 3_000; // 1 µs of request work
const SERVERS: usize = 2;

struct Point {
    throughput_mrps: f64,
    p50_ns: f64,
    p99_ns: f64,
    cores_used: f64,
}

fn point_from(h: &Histogram, completed: u64, elapsed: Cycles, busy: u64) -> Point {
    let secs = elapsed.0 as f64 / FREQ.hz();
    Point {
        throughput_mrps: completed as f64 / secs / 1e6,
        p50_ns: FREQ.cycles_to_ns(Cycles(h.p50())),
        p99_ns: FREQ.cycles_to_ns(Cycles(h.p99())),
        cores_used: busy as f64 / elapsed.0 as f64,
    }
}

/// Base seed for the F2/F3 load sweep; each point derives its own stream
/// with `mix_seed(SEED, point_index)`.
const SEED: u64 = 7;

/// Measured hwt engine at utilization `rho`.
fn measure_hwt(seed: u64, rho: f64, n: usize) -> Point {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 128;
    let mut m = Machine::new(cfg);
    let nic = Nic::attach(&mut m, NicConfig::default());
    let eng = IoEngine::install(&mut m, 0, &nic, 64, 0x40000).expect("engine");
    m.run_for(Cycles(30_000));

    let gap = SERVICE as f64 / (SERVERS as f64 * rho);
    let mut rng = Rng::seed_from(seed);
    let start = m.now() + Cycles(1000);
    let arrivals = poisson_arrivals(&mut rng, start, gap, n);
    let dma = Cycles(300);
    for (seq, &at) in arrivals.iter().enumerate() {
        eng.note_packet(seq as u64, at + dma, Cycles(SERVICE));
        nic.schedule_rx(&mut m, at, seq as u64, &[0u8; 64]);
    }

    // Warmup: first ~10%, then measure. The chunked run may overshoot
    // the warmup target, so size the measurement target by what is
    // actually left after the reset.
    let warm = (n / 10).max(1) as u64;
    let mut guard = 0;
    while eng.completed() < warm && guard < 100_000 {
        m.run_for(Cycles(100_000));
        guard += 1;
    }
    let done_before_reset = eng.completed();
    eng.reset_measurements();
    let t0 = m.now();
    let busy0: u64 = eng
        .workers
        .iter()
        .chain(std::iter::once(&eng.dispatcher))
        .map(|&t| m.billed_cycles(t).0)
        .sum();
    let target = (n as u64) - done_before_reset;
    let mut guard = 0;
    while eng.completed() < target && guard < 100_000 {
        m.run_for(Cycles(100_000));
        guard += 1;
    }
    assert!(
        eng.completed() >= target,
        "engine did not drain: {}",
        eng.completed()
    );
    let elapsed = m.now() - t0;
    let busy1: u64 = eng
        .workers
        .iter()
        .chain(std::iter::once(&eng.dispatcher))
        .map(|&t| m.billed_cycles(t).0)
        .sum();
    let h = eng.latency();
    point_from(&h, eng.completed(), elapsed, busy1 - busy0)
}

/// Legacy designs through the queueing simulator.
fn measure_queue(
    seed: u64,
    cfg: &switchless_wl::queue::QueueConfig,
    rho: f64,
    n: usize,
    burn_cores: Option<f64>,
) -> Point {
    let mut rng = Rng::seed_from(seed);
    let gap = SERVICE as f64 / (SERVERS as f64 * rho);
    let jobs: Vec<(Cycles, Cycles)> = poisson_arrivals(&mut rng, Cycles(0), gap, n)
        .into_iter()
        .map(|a| (a, Cycles(SERVICE)))
        .collect();
    let warmup = jobs[n / 10].0;
    let r = QueueSim::run(cfg, &jobs, warmup);
    let mut p = point_from(&r.sojourn, r.completed, r.makespan, r.busy_cycles);
    if let Some(burn) = burn_cores {
        p.cores_used = burn; // polling burns its cores regardless of load
    }
    p
}

/// Runs F2 (throughput/cores) and F3 (latency).
///
/// Load points run on up to `ctx.jobs` workers. Each point's seed is
/// `mix_seed(SEED, index)`, shared by the three designs at that point
/// (common random numbers for fair comparison) and decorrelated from the
/// other points; the tables are bit-identical for any worker count.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let n = if ctx.quick { 2_000 } else { 20_000 };
    let rhos = [0.1, 0.3, 0.5, 0.7, 0.9];

    let sw = SwScheduler::default();
    let interrupt_cfg = sw.to_queue_config(SERVERS, 16 * 1024);
    let polling = PollingPlane::new(LegacyCosts::default(), SERVERS);
    let polling_cfg = polling.to_queue_config();

    let mut f2 = Table::new(
        "F2: I/O throughput and cores consumed vs offered load",
        &[
            "rho",
            "thr int (Mrps)",
            "thr poll (Mrps)",
            "thr hwt (Mrps)",
            "cores int",
            "cores poll",
            "cores hwt",
        ],
    );
    let mut f3 = Table::new(
        "F3: request latency vs offered load (ns)",
        &[
            "rho", "int p50", "int p99", "poll p50", "poll p99", "hwt p50", "hwt p99",
        ],
    );

    let points = switchless_sim::par::par_map(ctx.jobs, &rhos, |i, &rho| {
        let seed = switchless_sim::rng::mix_seed(SEED, i as u64);
        let pi = measure_queue(seed, &interrupt_cfg, rho, n, None);
        let pp = measure_queue(seed, &polling_cfg, rho, n, Some(SERVERS as f64));
        let ph = measure_hwt(seed, rho, n);
        (rho, pi, pp, ph)
    });
    for (rho, pi, pp, ph) in points {
        f2.row_owned(vec![
            format!("{rho:.1}"),
            fnum(pi.throughput_mrps),
            fnum(pp.throughput_mrps),
            fnum(ph.throughput_mrps),
            fnum(pi.cores_used),
            fnum(pp.cores_used),
            fnum(ph.cores_used),
        ]);
        f3.row_owned(vec![
            format!("{rho:.1}"),
            fnum(pi.p50_ns),
            fnum(pi.p99_ns),
            fnum(pp.p50_ns),
            fnum(pp.p99_ns),
            fnum(ph.p50_ns),
            fnum(ph.p99_ns),
        ]);
    }
    f2.caption(
        "expected shape: polling and hwt deliver the offered load, but \
         polling burns 2 cores at every rho while hwt cores scale with \
         load; the interrupt design saturates near rho~0.3 because its \
         ~5us per-request wakeup+switch overhead multiplies the 1us of \
         work — the paper's motivating observation",
    );
    f3.caption(
        "expected shape: interrupt pays the ~us wakeup at every load; \
         polling and hwt stay near pure service time until saturation",
    );
    vec![f2, f3]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwt_latency_near_service_time_at_low_load() {
        let p = measure_hwt(SEED, 0.2, 1_000);
        // 1 µs service: p50 should be within ~35% of it.
        assert!(p.p50_ns < 1_350.0, "p50 {}ns", p.p50_ns);
    }

    #[test]
    fn hwt_cores_scale_with_load_unlike_polling() {
        let lo = measure_hwt(SEED, 0.1, 800);
        let hi = measure_hwt(SEED, 0.7, 800);
        assert!(
            lo.cores_used < 0.4,
            "low load burned {} cores",
            lo.cores_used
        );
        assert!(hi.cores_used > lo.cores_used * 3.0);
    }

    #[test]
    fn interrupt_design_pays_wakeup_at_low_load() {
        let sw = SwScheduler::default();
        let cfg = sw.to_queue_config(SERVERS, 16 * 1024);
        let p = measure_queue(SEED, &cfg, 0.2, 2_000, None);
        // ~1 µs service + ~5-6 µs of wakeup+switch overheads.
        assert!(p.p50_ns > 3_000.0, "p50 {}ns", p.p50_ns);
    }

    #[test]
    fn f2_tables_identical_for_any_job_count() {
        let serial = run(&crate::RunCtx::serial(true));
        let par = run(&crate::RunCtx {
            quick: true,
            jobs: 4,
            machine_jobs: 1,
        });
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!(s.to_csv(), p.to_csv());
        }
    }
}

//! F11 — "Simpler Distributed Programming" (§2): blocking
//! thread-per-request hides remote latency when hardware threads are
//! plentiful.
//!
//! A fixed batch of RPCs (12 µs RTT + 1 µs remote service) is pushed
//! through K in-flight request threads, measured on the machine. The
//! comparison column shows the software-thread cost of the same
//! concurrency: every block/unblock pays the scheduler path, so the
//! per-RPC CPU cost is ~an order of magnitude higher.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_dev::fabric::Fabric;
use switchless_kern::distrt::{DistRt, DistRtConfig};
use switchless_legacy::costs::LegacyCosts;
use switchless_sim::report::{fnum, Table};
use switchless_sim::time::Cycles;

use crate::common::FREQ;

const TOTAL_RPCS: u32 = 128;
const LOCAL_WORK: u32 = 2_000;
const REMOTE: u64 = 3_000;

struct Outcome {
    elapsed: Cycles,
    krps: f64,
    cpu_per_rpc: f64,
}

fn measure(threads: usize) -> Outcome {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = threads + 8;
    let mut m = Machine::new(cfg);
    let rt = DistRt::install(
        &mut m,
        0,
        DistRtConfig {
            threads,
            iters: TOTAL_RPCS / threads as u32,
            local_work: LOCAL_WORK,
            remote_service: Cycles(REMOTE),
            fabric: Fabric::default(), // 12 µs RTT
        },
        0x40000,
    )
    .expect("install");
    let elapsed = rt
        .run_to_completion(&mut m, Cycles(1_000_000_000))
        .expect("completes");
    let cpu: u64 = rt.threads.iter().map(|&t| m.billed_cycles(t).0).sum();
    Outcome {
        elapsed,
        krps: TOTAL_RPCS as f64 / (elapsed.0 as f64 / FREQ.hz()) / 1e3,
        cpu_per_rpc: cpu as f64 / f64::from(TOTAL_RPCS),
    }
}

/// Runs F11.
pub fn run(_ctx: &crate::RunCtx) -> Vec<Table> {
    let costs = LegacyCosts::default();
    // Software thread-per-request CPU cost per RPC: issue + local work +
    // blocked wakeup on response + a context switch per block.
    let sw_cpu_per_rpc = 100.0
        + f64::from(LOCAL_WORK)
        + costs.blocked_wakeup_path(false).0 as f64
        + costs.ctx_switch_direct.0 as f64;

    let mut t = Table::new(
        "F11: remote-latency hiding vs in-flight hardware threads",
        &[
            "threads",
            "elapsed (kcy)",
            "throughput (kRPC/s)",
            "speedup",
            "hwt CPU/RPC",
            "sw-threads CPU/RPC",
        ],
    );
    let base = measure(1);
    for &k in &[1usize, 2, 4, 8, 16, 32] {
        let o = measure(k);
        t.row_owned(vec![
            k.to_string(),
            fnum(o.elapsed.0 as f64 / 1e3),
            fnum(o.krps),
            fnum(base.elapsed.0 as f64 / o.elapsed.0 as f64),
            fnum(o.cpu_per_rpc),
            fnum(sw_cpu_per_rpc),
        ]);
    }
    t.caption(
        "128 RPCs, 12us RTT + 1us remote + 0.7us local; expected shape: \
         throughput scales ~linearly with in-flight threads until the \
         local work saturates the 2 pipeline slots; hwt CPU/RPC stays \
         ~2.2k cycles while software threads would burn ~10k in \
         scheduling alone — the §2 claim that blocking becomes affordable",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_scales_throughput() {
        let one = measure(1);
        let sixteen = measure(16);
        assert!(
            sixteen.elapsed.0 * 4 < one.elapsed.0,
            "16 threads {} vs 1 thread {}",
            sixteen.elapsed.0,
            one.elapsed.0
        );
    }

    #[test]
    fn hwt_cpu_per_rpc_far_below_software_threads() {
        let o = measure(8);
        let costs = LegacyCosts::default();
        let sw = 100.0
            + f64::from(LOCAL_WORK)
            + costs.blocked_wakeup_path(false).0 as f64
            + costs.ctx_switch_direct.0 as f64;
        assert!(
            o.cpu_per_rpc * 2.0 < sw,
            "hwt {} vs sw {}",
            o.cpu_per_rpc,
            sw
        );
    }
}

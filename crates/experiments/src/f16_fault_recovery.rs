//! F16 — fault recovery without context switches: the switchless
//! watchdog + supervisor path vs legacy interrupt-based recovery.
//!
//! Eight client threads issue blocking RPCs into a lossy fabric. On the
//! switchless machine a lost response wedges the client in `mwait`; its
//! per-thread watchdog raises an exception *descriptor* at the deadline
//! and the supervisor hardware thread restarts it after a fixed backoff
//! — no IRQ, no scheduler, no context switch. The legacy comparator
//! (modeled from [`LegacyCosts`], same seed, same loss rate) can only
//! notice the overrun at its next software timer tick, then pays the
//! full interrupt + scheduler wakeup path.
//!
//! Reported per loss rate: p50/p99 of deadline-overrun → thread-running
//! latency, and goodput (completed RPCs/s) under the same fault storm.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use switchless_core::machine::{Machine, MachineConfig};
use switchless_dev::fabric::Fabric;
use switchless_kern::ioengine::RetryPolicy;
use switchless_kern::nointr::Supervisor;
use switchless_legacy::costs::LegacyCosts;
use switchless_sim::fault::{FaultKind, FaultPlan};
use switchless_sim::report::{counters_table, fnum, Table};
use switchless_sim::rng::Rng;
use switchless_sim::stats::{Counters, Histogram};
use switchless_sim::time::Cycles;

use crate::common::FREQ;

/// Concurrent client threads.
const CLIENTS: usize = 8;
/// Remote service time per RPC (1 us).
const REMOTE: u64 = 3_000;
/// Per-thread response deadline (10 us): the watchdog timeout, and the
/// legacy request timeout armed for the same RPC.
const DEADLINE: u64 = 30_000;
/// Supervisor restart backoff (fixed).
const BACKOFF: u64 = 3_000;
/// Legacy software-timer tick (100 us): timeout detection granularity.
const TICK: u64 = 300_000;
/// Base seed for fault plans and the legacy comparator.
const SEED: u64 = 16;

const HCALL_ISSUE: u16 = 130;
const HCALL_DONE: u16 = 131;

struct SwOutcome {
    issued: u64,
    goodput: u64,
    faults: u64,
    /// Deadline overrun (watchdog fire) -> client running again.
    recovery: Histogram,
    counters: Counters,
}

/// Runs the switchless side on the machine: clients issue RPCs and park
/// on their response words; the supervisor restarts watchdog casualties.
fn run_switchless(plan: Option<FaultPlan>, duration: Cycles) -> SwOutcome {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = CLIENTS + 8;
    let mut m = Machine::new(cfg);
    if let Some(p) = plan {
        m.install_fault_plan(p);
    }
    let sup = Supervisor::install(
        &mut m,
        0,
        RetryPolicy {
            initial_backoff: Cycles(BACKOFF),
            max_backoff: Cycles(BACKOFF),
            max_retries: u32::MAX, // storms never exhaust the supervisor
        },
        0x40000,
    )
    .expect("supervisor installs");
    let fabric = Fabric::default();

    struct Clients {
        resp: Vec<u64>,
        by_ptid: HashMap<u32, usize>,
        issued: u64,
        goodput: u64,
    }
    let st = Rc::new(RefCell::new(Clients {
        resp: Vec::new(),
        by_ptid: HashMap::new(),
        issued: 0,
        goodput: 0,
    }));

    for c in 0..CLIENTS {
        let resp = m.alloc(64);
        let prog = switchless_isa::asm::assemble(&format!(
            r#"
            .base {base:#x}
            ; Issue an RPC, park on the response word, report completion.
            ; A lost response leaves the client in mwait: the watchdog
            ; descriptor + supervisor restart re-enter at `entry`, which
            ; simply issues the next RPC.
            entry:
                movi r1, 0
            loop:
                hcall {issue}
            wait:
                monitor {resp}
                ld r2, {resp}
                bne r2, r1, got
                mwait
                jmp wait
            got:
                hcall {done}
                jmp loop
            "#,
            base = 0x50000 + (c as u64) * 0x1000,
            issue = HCALL_ISSUE,
            resp = resp,
            done = HCALL_DONE,
        ))
        .expect("client template is valid");
        let tid = m.load_program(0, &prog).expect("client loads");
        sup.supervise(&mut m, tid);
        m.set_thread_watchdog(tid, Some(Cycles(DEADLINE)));
        let mut s = st.borrow_mut();
        s.resp.push(resp);
        s.by_ptid.insert(tid.ptid.0, c);
        drop(s);
        m.start_thread(tid);
    }

    let st2 = Rc::clone(&st);
    m.register_hcall(HCALL_ISSUE, move |mach, tid| {
        let mut s = st2.borrow_mut();
        let c = s.by_ptid[&tid.ptid.0];
        let resp = s.resp[c];
        s.issued += 1;
        mach.poke_u64(resp, 0);
        let now = mach.now();
        fabric.rpc(mach, now, Cycles(REMOTE), resp, 1);
    });
    let st2 = Rc::clone(&st);
    m.register_hcall(HCALL_DONE, move |_mach, _tid| {
        st2.borrow_mut().goodput += 1;
    });

    m.run_for(duration);
    let s = st.borrow();
    SwOutcome {
        issued: s.issued,
        goodput: s.goodput,
        faults: m.counters().get("fault.fabric.loss"),
        recovery: sup.recovery_latency(),
        counters: m.counters().clone(),
    }
}

struct LegacyOutcome {
    goodput: u64,
    faults: u64,
    recovery: Histogram,
}

/// The legacy comparator, modeled from [`LegacyCosts`] with a forked
/// stream of the same seed: completions arrive by interrupt; a lost one
/// is only noticed at the next software timer tick, then pays the full
/// IRQ + scheduler wakeup path before the client reissues.
fn run_legacy(rate: f64, seed: u64, duration: Cycles) -> LegacyOutcome {
    let costs = LegacyCosts::default();
    let wake = costs.blocked_wakeup_path(false).0;
    let rtt = Fabric::default().rtt().0;
    let mut rng = Rng::seed_from(seed).fork(99);
    let mut recovery = Histogram::new();
    let mut goodput = 0u64;
    let mut faults = 0u64;
    for _ in 0..CLIENTS {
        let mut t = 0u64;
        while t < duration.0 {
            if rate > 0.0 && rng.chance(rate) {
                faults += 1;
                // Deadline passes unseen; the next tick lands uniformly
                // within the tick period, then the wakeup path runs.
                let gap = rng.next_range(0, TICK - 1);
                recovery.record(gap + wake);
                t += DEADLINE + gap + wake;
            } else {
                goodput += 1;
                t += rtt + REMOTE + wake + 2 * costs.syscall_mode_switch.0;
            }
        }
    }
    LegacyOutcome {
        goodput,
        faults,
        recovery,
    }
}

fn krps(completed: u64, duration: Cycles) -> f64 {
    completed as f64 / (duration.0 as f64 / FREQ.hz()) / 1e3
}

fn pcts(h: &Histogram) -> (String, String) {
    if h.count() == 0 {
        ("-".to_owned(), "-".to_owned())
    } else {
        (h.p50().to_string(), h.p99().to_string())
    }
}

/// Runs F16.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let duration = Cycles(if quick { 10_000_000 } else { 60_000_000 });
    let rates: &[f64] = if quick {
        &[1e-4, 1e-3, 1e-2]
    } else {
        &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2]
    };

    let mut t_rec = Table::new(
        "F16: recovery latency after a lost RPC response",
        &[
            "loss rate",
            "sw faults",
            "sw p50 (cy)",
            "sw p99 (cy)",
            "legacy p50 (cy)",
            "legacy p99 (cy)",
        ],
    );
    let mut t_good = Table::new(
        "F16b: goodput under fabric-loss storms",
        &[
            "loss rate",
            "sw issued",
            "sw goodput (kRPC/s)",
            "legacy goodput (kRPC/s)",
            "sw/legacy",
        ],
    );
    let mut storm_counters = None;
    for &rate in rates {
        let plan = FaultPlan::new(SEED).with_rate(FaultKind::FabricLoss, rate);
        let sw = run_switchless(Some(plan), duration);
        let lg = run_legacy(rate, SEED, duration);
        let (sp50, sp99) = pcts(&sw.recovery);
        let (lp50, lp99) = pcts(&lg.recovery);
        t_rec.row_owned(vec![
            format!("{rate:.0e}"),
            sw.faults.to_string(),
            sp50,
            sp99,
            lp50,
            lp99,
        ]);
        let swg = krps(sw.goodput, duration);
        let lgg = krps(lg.goodput, duration);
        t_good.row_owned(vec![
            format!("{rate:.0e}"),
            sw.issued.to_string(),
            fnum(swg),
            fnum(lgg),
            fnum(swg / lgg),
        ]);
        let _ = lg.faults;
        storm_counters = Some(sw.counters);
    }
    t_rec.caption(
        "Deadline-overrun -> client-running-again, 10us response deadline \
         on both sides. Switchless: the per-thread watchdog raises a \
         descriptor AT the deadline; the supervisor thread restarts the \
         client after a 3k-cycle backoff — ~1us, flat across rates. \
         Legacy: the overrun is invisible until the next 100us software \
         timer tick, then pays irq + scheduler wakeup + context switch: \
         ~50x worse at p50, and the p99 rides the full tick period.",
    );
    t_good.caption(
        "Same machines, completed RPCs per second. The rate-independent \
         gap (~1.4x) is the legacy completion path itself: every response \
         pays irq + scheduler wakeup where switchless pays an mwait wake. \
         Storms widen it — legacy parks ~a full tick per fault while \
         switchless parks ~a watchdog period.",
    );
    let audit = counters_table(
        "F16c: fault-injection audit (highest swept rate)",
        &storm_counters.expect("at least one rate swept"),
        "fault.",
    );
    vec![t_rec, t_good, audit]
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_DURATION: Cycles = Cycles(5_000_000);

    #[test]
    fn zero_rate_matches_no_fault_path() {
        // An all-zero plan must be invisible: identical goodput and
        // issue count to a machine with no plan installed at all.
        let bare = run_switchless(None, TEST_DURATION);
        let zeroed = run_switchless(Some(FaultPlan::new(SEED)), TEST_DURATION);
        assert_eq!(bare.goodput, zeroed.goodput);
        assert_eq!(bare.issued, zeroed.issued);
        assert_eq!(bare.faults, 0);
        assert_eq!(zeroed.faults, 0);
        assert!(bare.goodput > 100, "clients actually ran: {}", bare.goodput);
    }

    #[test]
    fn same_seed_runs_are_bit_identical() {
        let plan = || FaultPlan::new(SEED).with_rate(FaultKind::FabricLoss, 1e-2);
        let a = run_switchless(Some(plan()), TEST_DURATION);
        let b = run_switchless(Some(plan()), TEST_DURATION);
        assert_eq!(a.issued, b.issued);
        assert_eq!(a.goodput, b.goodput);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.recovery.p50(), b.recovery.p50());
        assert_eq!(a.recovery.p99(), b.recovery.p99());
        let ca: Vec<(String, u64)> = a.counters.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        let cb: Vec<(String, u64)> = b.counters.iter().map(|(k, v)| (k.to_owned(), v)).collect();
        assert_eq!(ca, cb, "every counter identical");
        assert!(a.faults > 0, "the storm actually stormed");
    }

    #[test]
    fn switchless_recovery_beats_legacy_under_storm() {
        let plan = FaultPlan::new(SEED).with_rate(FaultKind::FabricLoss, 1e-2);
        let sw = run_switchless(Some(plan), TEST_DURATION);
        let lg = run_legacy(1e-2, SEED, TEST_DURATION);
        assert!(sw.faults > 0 && lg.faults > 0);
        assert_eq!(
            sw.recovery.count(),
            sw.faults,
            "every lost response recovered exactly once"
        );
        assert!(
            sw.recovery.p99() < lg.recovery.p50(),
            "sw p99 {} should beat legacy p50 {}",
            sw.recovery.p99(),
            lg.recovery.p50()
        );
    }
}

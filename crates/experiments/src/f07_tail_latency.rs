//! F7 — the §4 scheduling claim: "The combination of PS scheduling with
//! thread-per-request will actually provide superior performance for
//! server workloads with high execution-time variability `[46, 80]`".
//!
//! Load sweep over three designs under bimodal and heavy-tailed service:
//!
//! * **fcfs-rtc**: run-to-completion FCFS (a polling dataplane / event
//!   loop): short requests get stuck behind long ones.
//! * **os-threads**: thread-per-request on the OS scheduler:
//!   millisecond quantum, context-switch per dispatch, µs wakeups.
//! * **hwt-ps**: thread-per-request on hardware fine-grain RR
//!   (processor sharing), wake cost calibrated from the machine.

use switchless_legacy::swsched::SwScheduler;
use switchless_sim::par::par_map;
use switchless_sim::report::{fnum, Table};
use switchless_sim::rng::mix_seed;
use switchless_sim::time::Cycles;
use switchless_wl::dist::ServiceDist;
use switchless_wl::queue::{Discipline, QueueConfig};
use switchless_wl::sweep::{make_jobs, run_point};

use crate::common::calibrate_hwt_wake;

const SERVERS: usize = 2;
const SEED: u64 = 99;
const RHOS: [f64; 4] = [0.3, 0.5, 0.7, 0.8];

/// Runs F7.
///
/// Sweep points are sharded across `ctx.jobs` workers; each (dist, rho)
/// point gets a `mix_seed(SEED, grid_index)` stream, so the three designs
/// at one point share an identical job trace (common random numbers)
/// while distinct points are decorrelated — and the tables are
/// bit-identical for any worker count.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let n = if ctx.quick { 10_000 } else { 60_000 };
    let hwt_wake = calibrate_hwt_wake();

    let fcfs = QueueConfig {
        servers: SERVERS,
        discipline: Discipline::Fcfs,
        wakeup_overhead: Cycles(150),
        dispatch_overhead: Cycles::ZERO,
    };
    let os_threads = SwScheduler::default().to_queue_config(SERVERS, 16 * 1024);
    let hwt_ps = QueueConfig {
        servers: SERVERS,
        discipline: Discipline::Rr {
            quantum: Cycles(200),
        },
        wakeup_overhead: hwt_wake,
        dispatch_overhead: Cycles::ZERO,
    };

    let dists = [
        (
            "bimodal 99.5:0.5 (1us/100us)",
            ServiceDist::Bimodal {
                p_short: 0.995,
                short: 3_000,
                long: 300_000,
            },
        ),
        (
            "pareto a=1.3 (1us..300us)",
            ServiceDist::BoundedPareto {
                min: 3_000,
                max: 900_000,
                alpha: 1.3,
            },
        ),
    ];

    let mut tables = Vec::new();
    for (di, (dname, dist)) in dists.into_iter().enumerate() {
        let mut t = Table::new(
            &format!("F7: p99 slowdown vs load, {dname}"),
            &[
                "rho",
                "fcfs-rtc p99",
                "os-threads p99",
                "hwt-ps p99",
                "fcfs p50",
                "os p50",
                "hwt p50",
            ],
        );
        let points = par_map(ctx.jobs, &RHOS, |i, &rho| {
            let grid_index = (di * RHOS.len() + i) as u64;
            let mut rng = switchless_sim::rng::Rng::seed_from(mix_seed(SEED, grid_index));
            let jobs = make_jobs(&mut rng, &dist, SERVERS, rho, n);
            let pf = run_point(&fcfs, &jobs, 0.1, rho);
            let po = run_point(&os_threads, &jobs, 0.1, rho);
            let ph = run_point(&hwt_ps, &jobs, 0.1, rho);
            (rho, pf, po, ph)
        });
        for (rho, pf, po, ph) in points {
            t.row_owned(vec![
                format!("{rho:.1}"),
                fnum(pf.p99 as f64 / 1000.0),
                fnum(po.p99 as f64 / 1000.0),
                fnum(ph.p99 as f64 / 1000.0),
                fnum(pf.p50 as f64 / 1000.0),
                fnum(po.p50 as f64 / 1000.0),
                fnum(ph.p50 as f64 / 1000.0),
            ]);
        }
        t.caption(
            "kcycles; expected shape: hwt-ps p50 stays near the short-class \
             service time at every load; fcfs p50/p99 blow up behind long \
             requests; os-threads pays quantum-scale delays (ms) for the \
             same PS idea done in software",
        );
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_sim::rng::Rng;

    #[test]
    fn hwt_ps_beats_fcfs_p99_under_variability() {
        let dist = ServiceDist::Bimodal {
            p_short: 0.995,
            short: 3_000,
            long: 300_000,
        };
        let mut rng = Rng::seed_from(5);
        let jobs = make_jobs(&mut rng, &dist, SERVERS, 0.7, 20_000);
        let fcfs = QueueConfig {
            servers: SERVERS,
            discipline: Discipline::Fcfs,
            wakeup_overhead: Cycles(150),
            dispatch_overhead: Cycles::ZERO,
        };
        let hwt = QueueConfig {
            servers: SERVERS,
            discipline: Discipline::Rr {
                quantum: Cycles(200),
            },
            wakeup_overhead: Cycles(40),
            dispatch_overhead: Cycles::ZERO,
        };
        let pf = run_point(&fcfs, &jobs, 0.1, 0.7);
        let ph = run_point(&hwt, &jobs, 0.1, 0.7);
        // The PS win is in the tail: short requests never wait behind a
        // full 100-µs-class request (the Shinjuku/RackSched result).
        assert!(
            ph.p99 * 5 < pf.p99,
            "hwt p99 {} should be far under fcfs p99 {}",
            ph.p99,
            pf.p99
        );
    }

    #[test]
    fn os_threads_pay_overheads_even_at_low_load() {
        let dist = ServiceDist::Bimodal {
            p_short: 0.995,
            short: 3_000,
            long: 300_000,
        };
        let mut rng = Rng::seed_from(6);
        let jobs = make_jobs(&mut rng, &dist, SERVERS, 0.3, 10_000);
        let os = SwScheduler::default().to_queue_config(SERVERS, 16 * 1024);
        let po = run_point(&os, &jobs, 0.1, 0.3);
        // Short requests (3k cycles) cost >> 3k under the OS path.
        assert!(po.p50 > 9_000, "os-threads p50 {}", po.p50);
    }
}

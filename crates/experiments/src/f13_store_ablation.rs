//! F13 — ablation of the §4 state-store optimizations: dirty-register
//! tracking, criticality placement, and wake-prefetch.
//!
//! A deliberately tiny RF tier (8 threads) is oversubscribed by 32
//! park/wake workers so most wakes move state between tiers; each policy
//! combination is measured on the machine.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_isa::asm::assemble;
use switchless_sim::report::{fnum, Table};
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

use crate::common::{cy_ns, FREQ};

const WORKERS: usize = 32;

fn measure(
    dirty: bool,
    criticality: bool,
    prefetch: bool,
    rounds: usize,
) -> (Histogram, Histogram) {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = WORKERS + 8;
    cfg.store.rf_threads = 8;
    cfg.store.l2_threads = 16;
    cfg.store.l3_threads = 64;
    cfg.store.dirty_tracking = dirty;
    cfg.store.criticality_placement = criticality;
    cfg.store.prefetch_on_wake = prefetch;
    cfg.sched = switchless_core::sched::SchedPolicy::Priority;
    let mut m = Machine::new(cfg);

    let mut mboxes = Vec::new();
    let mut tids = Vec::new();
    for i in 0..WORKERS {
        let mb = m.alloc(64);
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r1, 0
            loop:
                monitor {mb}
                ld r2, {mb}
                bne r2, r1, serve
                mwait
                jmp loop
            serve:
                mov r1, r2
                work 300
                jmp loop
            "#,
            base = 0x40000 + (i as u64) * 0x100,
            mb = mb,
        ))
        .expect("worker");
        let tid = m.load_program(0, &prog).expect("load");
        // Thread 0 is the "critical" one under criticality placement.
        m.set_thread_prio(tid, if i == 0 { 7 } else { 0 });
        m.start_thread(tid);
        mboxes.push(mb);
        tids.push(tid);
    }
    m.run_for(Cycles(300_000));
    m.reset_wake_latency();

    // Wake pattern: *bursts* of four wakes (the critical thread plus
    // three rotating background workers), so woken threads queue for the
    // two pipeline slots — the regime where prefetch overlap matters —
    // while the round-robin rotation cycles everyone through the lower
    // tiers.
    m.reset_thread_wake_stats(tids[0]);
    let mut seq = vec![0u64; WORKERS];
    let mut next = 1usize;
    for _ in 0..rounds {
        for _burst in 0..WORKERS / 4 {
            seq[0] += 1;
            m.poke_u64(mboxes[0], seq[0]);
            for _ in 0..3 {
                let i = next;
                next = 1 + (next % (WORKERS - 1));
                seq[i] += 1;
                m.poke_u64(mboxes[i], seq[i]);
            }
            m.run_for(Cycles(10_000));
        }
    }
    let (crit_n, crit_total, crit_max) = m.thread_wake_stats(tids[0]);
    let mut crit_hist = Histogram::new();
    if let Some(mean) = crit_total.checked_div(crit_n) {
        // Summarise the exact per-thread accounting as a two-point
        // histogram (mean-ish and max) for the report columns.
        crit_hist.record(mean);
        crit_hist.record(crit_max);
    }
    (m.wake_latency().clone(), crit_hist)
}

/// Runs F13.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let rounds = if quick { 2 } else { 6 };
    let mut t = Table::new(
        "F13: state-store policy ablation (RF=8, 32 workers)",
        &[
            "dirty-tracking",
            "criticality",
            "wake-prefetch",
            "all-wakes mean (ns)",
            "all-wakes p99",
            "critical-thread max",
        ],
    );
    for &(d, c, p) in &[
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (false, false, true),
        (true, true, false),
        (true, true, true),
    ] {
        let (all, crit) = measure(d, c, p, rounds);
        t.row_owned(vec![
            if d { "on" } else { "off" }.into(),
            if c { "on" } else { "off" }.into(),
            if p { "on" } else { "off" }.into(),
            fnum(FREQ.cycles_to_ns(Cycles(all.mean() as u64))),
            cy_ns(all.p99()),
            cy_ns(crit.p99()),
        ]);
    }
    t.caption(
        "expected shape: dirty tracking shrinks transfer volume (lower \
         mean); criticality placement pins the hot thread in RF (its p99 \
         drops to ~pipeline refill); prefetch overlaps the transfer with \
         queueing — combined, wakes approach the RF floor despite 4x \
         oversubscription",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_tracking_reduces_mean_wake() {
        let (off, _) = measure(false, false, false, 3);
        let (on, _) = measure(true, false, false, 3);
        assert!(
            on.mean() < off.mean(),
            "dirty tracking on {} vs off {}",
            on.mean(),
            off.mean()
        );
    }

    #[test]
    fn criticality_placement_helps_critical_thread() {
        let (_, crit_off) = measure(true, false, false, 3);
        let (_, crit_on) = measure(true, true, false, 3);
        assert!(
            crit_on.p99() <= crit_off.p99(),
            "criticality on {} vs off {}",
            crit_on.p99(),
            crit_off.p99()
        );
    }

    #[test]
    fn all_policies_beat_none() {
        let (none, _) = measure(false, false, false, 3);
        let (all, _) = measure(true, true, true, 3);
        assert!(
            all.mean() < none.mean(),
            "all-on {} vs all-off {}",
            all.mean(),
            none.mean()
        );
    }
}

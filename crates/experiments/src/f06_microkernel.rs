//! F6 — "Faster Microkernels and Container Proxies" (§2): the cost of
//! calling an isolated service.
//!
//! * **monolithic syscall**: the service lives in the kernel; a call is
//!   a same-thread mode switch (measured).
//! * **microkernel + scheduler**: the service is a process; every call
//!   is two scheduler-mediated hops (cost model — the "excessive
//!   scheduling delays" the paper says microkernels suffer).
//! * **hwt direct switch**: the service is a user-mode hardware thread;
//!   a call is two stores and two wakes (measured) — the XPC-equivalent.

use switchless_core::machine::{Machine, MachineConfig, TrapMode};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_kern::microkernel::Microkernel;
use switchless_legacy::costs::LegacyCosts;
use switchless_sim::report::Table;
use switchless_sim::time::Cycles;

use crate::common::cy_ns;

/// Measured monolithic (same-thread syscall) service call.
fn measure_monolithic(svc_work: u32, iters: u32) -> u64 {
    let mut cfg = MachineConfig::small();
    cfg.trap = TrapMode::SameThread {
        syscall_cost: LegacyCosts::default().syscall_mode_switch,
        vmexit_cost: Cycles(1500),
    };
    let mut m = Machine::new(cfg);
    let image = assemble(&format!(
        r#"
        .base 0x10000
        entry:
            movi r7, 0
            movi r6, {iters}
        loop:
            syscall 2
            addi r7, r7, 1
            bne r7, r6, loop
            halt
        kernel:
            work {work}
            movi r13, 0
            csrw mode, r13
            jr r14
        "#,
        iters = iters,
        work = svc_work.max(1),
    ))
    .expect("image is valid");
    let tid = m.load_program(0, &image).expect("load");
    m.set_syscall_vector(image.symbol("kernel").expect("label"));
    m.start_thread(tid);
    let t0 = m.now();
    assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Measured hwt direct-switch IPC.
fn measure_hwt(svc_work: u32, iters: u32) -> u64 {
    let mut m = Machine::new(MachineConfig::small());
    let mk = Microkernel::install(&mut m, 0, &[("svc", svc_work.max(1), false)], 0x40000)
        .expect("install");
    let client = assemble(&mk.client_program(0, iters, 0x60000)).expect("client");
    let app = m.load_program_user(0, &client).expect("load");
    m.run_for(Cycles(30_000));
    let t0 = m.now();
    m.start_thread(app);
    assert!(m.run_until_state(app, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Runs F6.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let iters = if quick { 200 } else { 2_000 };
    let costs = LegacyCosts::default();
    let services: [(&str, u32); 3] = [
        ("proxy hop (tiny)", 200),
        ("fs op (cached)", 1_500),
        ("netstack op", 4_000),
    ];

    let mut t = Table::new(
        "F6: isolated-service call cost (cycles incl. service work)",
        &[
            "service",
            "monolithic syscall",
            "microkernel+scheduler",
            "hwt direct switch",
        ],
    );
    for (name, work) in services {
        let mono = measure_monolithic(work, iters);
        // Scheduler-mediated IPC: request hop + reply hop, each a
        // scheduler wakeup + context switch, plus the syscall to send.
        let sched_ipc = costs.syscall_mode_switch.0
            + 2 * (costs.sched_wakeup.0 + costs.ctx_switch_direct.0)
            + u64::from(work);
        let hwt = measure_hwt(work, iters);
        t.row_owned(vec![
            name.to_owned(),
            cy_ns(mono),
            cy_ns(sched_ipc),
            cy_ns(hwt),
        ]);
    }
    t.caption(
        "expected shape: hwt IPC ~= monolithic cost while keeping the \
         service isolated; scheduler-mediated IPC is ~10x worse — the \
         microkernel tax the paper eliminates",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwt_ipc_close_to_monolithic() {
        let mono = measure_monolithic(1500, 300);
        let hwt = measure_hwt(1500, 300);
        let ratio = hwt as f64 / mono as f64;
        assert!(ratio < 1.3, "hwt {hwt} vs mono {mono} (ratio {ratio:.2})");
    }

    #[test]
    fn scheduler_ipc_is_an_order_worse() {
        let costs = LegacyCosts::default();
        let hwt = measure_hwt(200, 300);
        let sched = costs.syscall_mode_switch.0
            + 2 * (costs.sched_wakeup.0 + costs.ctx_switch_direct.0)
            + 200;
        assert!(sched > hwt * 5, "sched {sched} vs hwt {hwt}");
    }
}

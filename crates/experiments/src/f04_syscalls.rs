//! F4 — "Exception-less System Calls and No VM-Exits" (§2), syscall half.
//!
//! Three designs, three syscall classes (kernel work 0 / 1500 / 4000
//! cycles ≈ null / getpid-ish / small read):
//!
//! * **sync-trap**: same-thread mode switch, *measured on the machine*
//!   in `TrapMode::SameThread` with the legacy 300-cycle switch cost.
//! * **flexsc**: batched asynchronous syscalls (cost model, batch 32).
//! * **hwt-service**: dedicated kernel hardware thread, *measured on the
//!   machine* via the mailbox channel protocol.

use switchless_core::machine::{Machine, MachineConfig, TrapMode};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_kern::syscall_svc::SyscallService;
use switchless_legacy::costs::LegacyCosts;
use switchless_legacy::syscalls::{FlexScSyscalls, SyncSyscalls};
use switchless_sim::report::Table;
use switchless_sim::time::Cycles;

use crate::common::cy_ns;

/// Measures per-call cycles of the same-thread trap design.
fn measure_sync_trap(kernel_work: u32, iters: u32) -> u64 {
    let mut cfg = MachineConfig::small();
    cfg.trap = TrapMode::SameThread {
        syscall_cost: LegacyCosts::default().syscall_mode_switch,
        vmexit_cost: Cycles(1500),
    };
    let mut m = Machine::new(cfg);
    let image = assemble(&format!(
        r#"
        .base 0x10000
        entry:
            movi r7, 0
            movi r6, {iters}
        loop:
            syscall 1
            addi r7, r7, 1
            bne r7, r6, loop
            halt
        kernel:
            work {kwork}
            movi r13, 0
            csrw mode, r13
            jr r14
        "#,
        iters = iters,
        kwork = kernel_work.max(1),
    ))
    .expect("trap image is valid");
    let tid = m.load_program(0, &image).expect("load");
    m.set_syscall_vector(image.symbol("kernel").expect("kernel label"));
    m.start_thread(tid);
    // Warm up with the first iteration folded in; measure wall time.
    let t0 = m.now();
    assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Measures per-call cycles of the dedicated-hardware-thread design.
fn measure_hwt_service(kernel_work: u32, iters: u32) -> u64 {
    let mut m = Machine::new(MachineConfig::small());
    let svc = SyscallService::install(&mut m, 0, 1, kernel_work.max(1), 0x40000).expect("service");
    let client = assemble(&svc.client_program(0, iters, 0x60000)).expect("client");
    let app = m.load_program_user(0, &client).expect("load");
    m.run_for(Cycles(30_000));
    let t0 = m.now();
    m.start_thread(app);
    assert!(m.run_until_state(app, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Runs F4.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let iters = if quick { 200 } else { 2_000 };
    let classes: [(&str, u32); 3] = [("null", 1), ("getpid-class", 1500), ("read-class", 4000)];
    let costs = LegacyCosts::default();
    let sync = SyncSyscalls { costs };
    // FlexSC batching matched to a busy caller (~1 call/µs).
    let flexsc = FlexScSyscalls::new(costs, 32, Cycles(3_000));

    let mut t = Table::new(
        "F4: per-system-call cost by design (cycles incl. kernel work)",
        &[
            "syscall class",
            "sync-trap",
            "flexsc (batch 32)",
            "hwt-service",
        ],
    );
    for (name, work) in classes {
        let trap = measure_sync_trap(work, iters);
        let flex = flexsc.call().round_trip_overhead.0 + u64::from(work);
        let hwt = measure_hwt_service(work, iters);
        t.row_owned(vec![name.to_owned(), cy_ns(trap), cy_ns(flex), cy_ns(hwt)]);
    }
    t.caption(
        "expected shape: hwt-service removes the 300-cycle mode switch and \
         FlexSC's batching latency; the win is largest for null calls and \
         shrinks as kernel work dominates",
    );

    // A second table isolating overhead (kernel work subtracted).
    let mut o = Table::new(
        "F4b: pure syscall overhead (kernel work subtracted, cycles)",
        &["design", "overhead"],
    );
    let trap_null = measure_sync_trap(1, iters).saturating_sub(1);
    let hwt_null = measure_hwt_service(1, iters).saturating_sub(1);
    o.row_owned(vec!["sync-trap".into(), cy_ns(trap_null)]);
    o.row_owned(vec![
        "flexsc (batch 32)".into(),
        cy_ns(flexsc.call().round_trip_overhead.0),
    ]);
    o.row_owned(vec!["hwt-service".into(), cy_ns(hwt_null)]);
    o.row_owned(vec![
        "bare mode switch (the cost hwt deletes)".into(),
        cy_ns(sync.call().round_trip_overhead.0),
    ]);
    vec![t, o]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwt_service_beats_sync_trap_for_null_calls() {
        let trap = measure_sync_trap(1, 300);
        let hwt = measure_hwt_service(1, 300);
        assert!(hwt < trap, "hwt {hwt} vs trap {trap}");
    }

    #[test]
    fn kernel_work_dominates_eventually() {
        let trap = measure_sync_trap(4000, 200);
        let hwt = measure_hwt_service(4000, 200);
        // With 4000 cycles of work, designs converge within ~25%.
        let ratio = trap as f64 / hwt as f64;
        assert!((0.75..1.6).contains(&ratio), "ratio {ratio}");
    }
}

//! F14 — the §3.2 security machinery, measured:
//!
//! * TDT translation cost: cached vs `invtid`-every-iteration vs the
//!   secret-key alternative design.
//! * Consecutive-exception chains: depth-N handler chains resolve; a
//!   chain whose last handler has no EDP halts the machine (the
//!   triple-fault analog).

use switchless_core::exception::DESCRIPTOR_BYTES;
use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::perm::{Perms, SecretKeyAuth, TdtEntry};
use switchless_core::tid::{Ptid, ThreadState, Vtid};
use switchless_isa::asm::assemble;
use switchless_sim::report::Table;
use switchless_sim::time::Cycles;

use crate::common::cy_ns;

/// Measures per-`start` cycles in a tight loop; `invalidate_each` adds
/// an `invtid` per iteration so every lookup misses the TDT cache.
fn measure_start_loop(invalidate_each: bool, iters: u32) -> u64 {
    let mut m = Machine::new(MachineConfig::small());
    let target = assemble(".base 0x20000\nentry: jmp entry\n").expect("spin");
    m.load_image(&target).expect("image");
    let tgt = m.spawn_at(0, 0x20000, false).expect("spawn");
    let inv = if invalidate_each { "invtid r1" } else { "nop" };
    let driver = assemble(&format!(
        r#"
        .base 0x10000
        entry:
            movi r1, 0          ; vtid
            movi r7, 0
            movi r6, {iters}
        loop:
            {inv}
            start r1
            addi r7, r7, 1
            bne r7, r6, loop
            halt
        "#,
        inv = inv,
        iters = iters,
    ))
    .expect("driver");
    let d = m.load_program(0, &driver).expect("load");
    let tdt = m.alloc(8 * 8);
    m.write_tdt_entry(tdt, Vtid(0), TdtEntry::new(tgt.ptid, Perms::ALL));
    m.set_thread_tdtr(d, tdt);
    // Park the spinning target again so `start` has real work... actually
    // a runnable target makes `start` a no-op, which is exactly the pure
    // translation+permission cost we want to isolate.
    m.start_thread(tgt);
    m.run_for(Cycles(10_000));
    m.start_thread(d);
    let t0 = m.now();
    assert!(m.run_until_state(d, ThreadState::Halted, Cycles(100_000_000)));
    (m.now() - t0).0 / u64::from(iters)
}

/// Builds a depth-`n` exception chain; returns `(machine halted?,
/// resolution cycles)`. Handler i monitors handler (i-1)'s descriptor
/// and then faults itself; the last handler either has an EDP chain end
/// (survives) or none (machine halt).
fn run_chain(depth: usize, last_has_handler: bool) -> (bool, u64) {
    let mut m = Machine::new(MachineConfig::small());
    let mut edps = Vec::new();
    for _ in 0..depth + 1 {
        edps.push(m.alloc(DESCRIPTOR_BYTES));
    }
    // Thread 0 faults immediately.
    let first =
        assemble(".base 0x20000\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n").expect("first");
    let t0id = m.load_program(0, &first).expect("load");
    m.set_thread_edp(t0id, edps[0]);

    // Handlers 1..depth: wake on previous descriptor, then fault too.
    // The final handler (index depth) handles without faulting.
    let mut last_tid = None;
    for i in 1..=depth {
        let is_last = i == depth;
        let faults = !is_last || !last_has_handler;
        let body = if faults {
            "movi r2, 0\n div r1, r1, r2".to_owned()
        } else {
            "movi r9, 1".to_owned()
        };
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                monitor {prev}
                ld r2, {prev}
                bne r2, r0, go
                mwait
            go:
                {body}
                halt
            "#,
            base = 0x30000 + (i as u64) * 0x1000,
            prev = edps[i - 1],
            body = body,
        ))
        .expect("handler");
        let tid = m.load_program(0, &prog).expect("load");
        // Intermediate faulting handlers chain their own descriptors;
        // the final faulting handler (truncated chain) gets none, so its
        // fault is the triple-fault analog.
        if faults && !is_last {
            m.set_thread_edp(tid, edps[i]);
        }
        m.start_thread(tid);
        last_tid = Some(tid);
    }
    m.run_for(Cycles(20_000));
    let t_start = m.now();
    m.start_thread(t0id);
    // Resolution = the final handler halting (or the machine halting).
    if let Some(last) = last_tid {
        m.run_until_state(last, ThreadState::Halted, Cycles(2_000_000));
    } else {
        m.run_for(Cycles(2_000_000));
    }
    (m.halted_reason().is_some(), (m.now() - t_start).0)
}

/// Runs F14.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let iters = if quick { 200 } else { 2_000 };

    let cached = measure_start_loop(false, iters);
    let uncached = measure_start_loop(true, iters);
    let mut auth = SecretKeyAuth::new();
    auth.set_key(Ptid(1), 42);
    let (_, key_cost) = auth.check(Ptid(1), 42);

    let mut t = Table::new(
        "F14a: thread-control authorization cost per operation",
        &["design", "cycles/op", "granularity"],
    );
    t.row_owned(vec![
        "TDT, cached entry (steady state)".into(),
        cy_ns(cached),
        "4 bits/op-class".into(),
    ]);
    t.row_owned(vec![
        "TDT, invtid each op (cold cache)".into(),
        cy_ns(uncached),
        "4 bits/op-class".into(),
    ]);
    t.row_owned(vec![
        "secret-key check (model, per check)".into(),
        cy_ns(key_cost),
        "all-or-nothing".into(),
    ]);
    t.caption(
        "the secret-key alternative is cheap per check but grants every \
         right at once; the TDT costs ~1 extra cycle when cached and a \
         memory fetch after invtid — §3.2's trade-off, quantified",
    );

    let mut t2 = Table::new(
        "F14b: consecutive-exception chains (§3.2)",
        &[
            "chain depth",
            "last handler has EDP",
            "outcome",
            "resolution (cy)",
        ],
    );
    for &depth in &[1usize, 2, 4, 8] {
        let (halted, cycles) = run_chain(depth, true);
        t2.row_owned(vec![
            depth.to_string(),
            "yes".into(),
            if halted { "MACHINE HALT" } else { "resolved" }.into(),
            cycles.to_string(),
        ]);
    }
    let (halted, cycles) = run_chain(1, false);
    t2.row_owned(vec![
        "1".into(),
        "no".into(),
        if halted {
            "machine halt (triple-fault analog)"
        } else {
            "BROKEN"
        }
        .into(),
        cycles.to_string(),
    ]);
    t2.caption(
        "arbitrarily nested exceptions resolve as long as the chain ends \
         at a handler; a fault with no descriptor pointer halts the CPU, \
         exactly as §3.2 prescribes",
    );
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_tdt_lookup_is_cheap() {
        let cached = measure_start_loop(false, 300);
        let uncached = measure_start_loop(true, 300);
        assert!(cached < uncached, "cached {cached} vs uncached {uncached}");
    }

    #[test]
    fn chains_resolve_and_truncated_chain_halts() {
        let (halted, _) = run_chain(4, true);
        assert!(!halted, "depth-4 chain must resolve");
        let (halted, _) = run_chain(1, false);
        assert!(halted, "chain without final handler must halt the machine");
    }
}

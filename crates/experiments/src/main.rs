//! Experiment harness binary; see the crate library for the modules.

fn main() {
    switchless_experiments::run_cli();
}

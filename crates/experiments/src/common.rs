//! Shared helpers for the experiment harness: machine builders,
//! calibration microbenches, and unit formatting.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_isa::asm::assemble;
use switchless_sim::time::{Cycles, Freq};

/// Reference clock used for all ns conversions (the paper's 3 GHz).
pub const FREQ: Freq = Freq::GHZ3;

/// Formats a cycle count as "cycles (ns)".
pub fn cy_ns(c: u64) -> String {
    format!("{c} ({:.0}ns)", FREQ.cycles_to_ns(Cycles(c)))
}

/// A small single-core machine for latency microbenches.
pub fn small_machine() -> Machine {
    Machine::new(MachineConfig::small())
}

/// Measures the steady-state mwait wake-to-dispatch cost on the machine:
/// a thread parks on a mailbox; the host pokes it repeatedly; the median
/// of the machine's wake-latency histogram is returned.
///
/// This number *calibrates* the hardware-thread design point used in the
/// queueing sweeps (F2/F3/F7), so those sweeps inherit the machine's
/// behaviour rather than a hand-picked constant.
pub fn calibrate_hwt_wake() -> Cycles {
    let mut m = small_machine();
    let prog = assemble(
        r#"
        mbox: .word 0
        entry:
            movi r1, 0
        loop:
            monitor mbox
            ld r2, mbox
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            jmp loop
        "#,
    )
    .expect("calibration program is valid");
    let mbox = prog.symbol("mbox").expect("mbox symbol");
    let tid = m.load_program(0, &prog).expect("load");
    m.start_thread(tid);
    m.run_for(Cycles(20_000));
    m.reset_wake_latency();
    for i in 1..=200u64 {
        m.poke_u64(mbox, i);
        m.run_for(Cycles(2_000));
    }
    let h = m.wake_latency();
    assert!(h.count() >= 100, "calibration produced too few wakes");
    Cycles(h.p50())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_is_nanosecond_scale() {
        let wake = calibrate_hwt_wake();
        // RF-resident wake ≈ pipeline refill ≈ 20 cycles; allow head room.
        assert!(wake.0 >= 10 && wake.0 <= 100, "calibrated {wake}");
    }

    #[test]
    fn cy_ns_formats() {
        assert_eq!(cy_ns(3000), "3000 (1000ns)");
    }
}

//! T2 — the §4 "Storage for Thread State" arithmetic, regenerated from
//! the models.
//!
//! The paper's numbers: 272 B of x86-64 register state (784 B with
//! SSE3); a 64 KB V100 sub-core register file stores "83 to 224" such
//! threads; 100 cores of that cost 6.4 MB; fractions of a 512 KB L2
//! store tens of threads and a few MB of L3 store hundreds.

use switchless_core::store::{StateStore, StoreConfig, Tier};
use switchless_isa::arch::{self, ArchState};
use switchless_sim::report::Table;
use switchless_sim::time::Cycles;

use crate::common::{cy_ns, FREQ};

/// Runs T2.
pub fn run(_ctx: &crate::RunCtx) -> Vec<Table> {
    let mut t = Table::new(
        "T2a: architectural-state bytes and storage capacity",
        &["quantity", "paper", "model"],
    );
    t.row_owned(vec![
        "x86-64 base state (B)".into(),
        "272".into(),
        arch::x86_64::STATE_BYTES.to_string(),
    ]);
    t.row_owned(vec![
        "x86-64 +SSE3 state (B)".into(),
        "784".into(),
        arch::x86_64::STATE_BYTES_SSE3.to_string(),
    ]);
    t.row_owned(vec![
        "switchless ISA base state (B)".into(),
        "-".into(),
        ArchState::base_state_bytes().to_string(),
    ]);
    t.row_owned(vec![
        "switchless ISA +vector state (B)".into(),
        "-".into(),
        ArchState::vector_state_bytes().to_string(),
    ]);
    let v100 = arch::x86_64::V100_SUBCORE_RF_BYTES;
    t.row_owned(vec![
        "threads in 64KB V100-style RF (vector state)".into(),
        "83".into(),
        (v100 / arch::x86_64::STATE_BYTES_SSE3).to_string(),
    ]);
    t.row_owned(vec![
        "threads in 64KB V100-style RF (base state)".into(),
        "224".into(),
        format!("{} (240 unaligned; 224 at 288B-aligned slots)", v100 / 288),
    ]);
    t.row_owned(vec![
        "RF bytes for 100 cores (MB)".into(),
        "6.4".into(),
        format!("{:.1}", (v100 * 100) as f64 / 1e6),
    ]);
    t.row_owned(vec![
        "threads in 1/4 of a 512KB L2 (base x86 state)".into(),
        "tens".into(),
        ((512 * 1024 / 4) / arch::x86_64::STATE_BYTES).to_string(),
    ]);
    t.row_owned(vec![
        "threads in 4MB of L3 (SSE3 state)".into(),
        "hundreds".into(),
        ((4 * 1024 * 1024) / arch::x86_64::STATE_BYTES_SSE3).to_string(),
    ]);
    t.caption("paper §4; the 224 figure matches 288-byte aligned slots");

    // T2b: activation cost per tier, from the state-store model, against
    // the paper's quoted ranges.
    let store = StateStore::new(StoreConfig::default());
    let mut t2 = Table::new(
        "T2b: thread-start cost by state residency tier",
        &["tier", "paper claim", "base state", "SSE3-class state"],
    );
    let base = ArchState::base_state_bytes();
    let vec_b = ArchState::vector_state_bytes();
    let rows: [(Tier, &str); 4] = [
        (Tier::Rf, "~pipeline depth (~20cy)"),
        (Tier::L2, "10-50cy bulk transfer"),
        (Tier::L3, "10-50cy (3-16ns @3GHz)"),
        (Tier::Dram, "severe (off-chip)"),
    ];
    for (tier, claim) in rows {
        t2.row_owned(vec![
            tier.name().to_owned(),
            claim.to_owned(),
            cy_ns(store.activation_cost(tier, base).0),
            cy_ns(store.activation_cost(tier, vec_b).0),
        ]);
    }
    let l3_ns = FREQ.cycles_to_ns(Cycles(
        store.activation_cost(Tier::L3, base).0 - store.config().rf_start.0,
    ));
    t2.caption(&format!(
        "L3 transfer alone (excl. pipeline refill) = {l3_ns:.0}ns, inside the paper's 3-16ns window"
    ));
    vec![t, t2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduced() {
        let tables = run(&crate::RunCtx::serial(true));
        let a = tables[0].render();
        assert!(a.contains("272"));
        assert!(a.contains("784"));
        assert!(a.contains("6.4"));
        let b = tables[1].render();
        assert!(b.contains("rf"));
        assert!(b.contains("dram"));
    }

    #[test]
    fn l3_transfer_in_paper_window() {
        // 10-50 cycles => 3.3-16.7ns at 3GHz.
        let store = StateStore::new(StoreConfig::default());
        let xfer = store
            .activation_cost(Tier::L3, ArchState::base_state_bytes())
            .0
            - store.config().rf_start.0;
        assert!((10..=50).contains(&xfer), "L3 transfer {xfer} cycles");
    }
}

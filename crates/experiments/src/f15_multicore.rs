//! F15 — multi-core extension: event-handling scales across cores, and
//! the OS scheduler's remaining job — "manage the mapping of threads to
//! cores in order to improve locality" (§4) — has a measurable cost
//! model.
//!
//! * **F15a**: aggregate event throughput with per-core handler threads
//!   as cores grow 1 → 4 (each core gets its own event stream; wakes
//!   never cross cores).
//! * **F15b**: migration and locality: a compute thread with a warm
//!   working set is migrated to another core mid-run; the first passes
//!   after migration pay cold private caches (re-warmed through the
//!   shared L3), then performance returns to warm speed — quantifying
//!   both the §4 migration cost and why the scheduler should care about
//!   locality.
//! * **F15c**: the core-sharded parallel engine
//!   ([`switchless_core::shard`]) on a 4-core compute workload with
//!   per-core memory domains. Every simulated metric in the table is
//!   bit-identical for any `--machine-jobs` value — the engine commits
//!   an epoch only when it can prove it matches the serial engine —
//!   so the flag shows up exclusively as wall-clock time in the run
//!   timing table. F15a keeps the serial engine on purpose: its host
//!   event callbacks land every few hundred cycles and would truncate
//!   every epoch window, which is exactly the traffic shape the
//!   conservative engine refuses to parallelize.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_isa::asm::assemble;
use switchless_kern::nointr::EventHandlerSet;
use switchless_sim::report::{fnum, Table};
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;
use switchless_wl::arrivals::poisson_arrivals;

/// F15a: events/second with one handler thread per core.
fn measure_scaling(cores: usize, events_per_core: usize) -> (f64, u64) {
    let mut cfg = MachineConfig::small();
    cfg.cores = cores;
    let mut m = Machine::new(cfg);
    let mut sets = Vec::new();
    for c in 0..cores {
        let set = EventHandlerSet::install(
            &mut m,
            c,
            &[("ev", 2_000, 7)],
            0x40000 + (c as u64) * 0x10000,
        )
        .expect("install");
        sets.push(set);
    }
    m.run_for(Cycles(30_000));
    let t0 = m.now();
    let mut rng = Rng::seed_from(21);
    for set in &sets {
        let word = set.handlers[0].event_word;
        let times = poisson_arrivals(&mut rng, t0 + Cycles(1000), 4_000.0, events_per_core);
        for (i, &at) in times.iter().enumerate() {
            let v = (i + 1) as u64;
            m.at(at, move |mach| {
                mach.dma_write(word, &v.to_le_bytes());
            });
        }
    }
    let total = (cores * events_per_core) as u64;
    let mut guard = 0;
    while sets.iter().map(|s| s.handled(&m, 0)).sum::<u64>() < total && guard < 10_000 {
        m.run_for(Cycles(100_000));
        guard += 1;
    }
    let handled: u64 = sets.iter().map(|s| s.handled(&m, 0)).sum();
    let elapsed = (m.now() - t0).0.max(1);
    (handled as f64 / elapsed as f64 * 1e6, handled)
}

/// F15b: per-pass cycles around a migration.
fn measure_migration() -> (u64, u64, u64, u64) {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    cfg.mem_bytes = 16 << 20;
    let mut m = Machine::new(cfg);
    let ws: u64 = 64 * 1024; // fits private L2: locality matters
    let buf = m.alloc(ws);
    let pass_word = m.alloc(64);
    let prog = assemble(&format!(
        r#"
        entry:
            movi r3, {buf}
            movi r4, {end}
        pass:
            ld r2, r3, 0
            addi r3, r3, 64
            blt r3, r4, pass
            movi r3, {buf}
            ld r5, {pw}
            addi r5, r5, 1
            st r5, {pw}
            jmp pass
        "#,
        buf = buf,
        end = buf + ws,
        pw = pass_word,
    ))
    .expect("scan program");
    let tid = m.load_program(0, &prog).expect("load");
    m.start_thread(tid);

    let per_pass = |m: &mut Machine, tid, passes: u64| -> u64 {
        let p0 = m.peek_u64(pass_word);
        let b0 = m.billed_cycles(tid).0;
        let mut guard = 0;
        while m.peek_u64(pass_word) < p0 + passes && guard < 10_000 {
            m.run_for(Cycles(50_000));
            guard += 1;
        }
        let dp = m.peek_u64(pass_word) - p0;
        (m.billed_cycles(tid).0 - b0).checked_div(dp).unwrap_or(0)
    };

    // Warm up on core 0, then measure warm speed.
    m.run_for(Cycles(2_000_000));
    let warm0 = per_pass(&mut m, tid, 8);
    // Migrate to core 1: the next pass runs on cold private caches.
    let tid1 = m.migrate_thread(tid, 1).expect("migrate");
    let cold1 = per_pass(&mut m, tid1, 1);
    let rewarmed = per_pass(&mut m, tid1, 8);
    // Migrate back: core 0's caches have been invalidated/aged too.
    let tid0 = m.migrate_thread(tid1, 0).expect("migrate back");
    let cold0 = per_pass(&mut m, tid0, 1);
    (warm0, cold1, rewarmed, cold0)
}

/// F15c: a 4-core compute workload on the core-sharded engine.
///
/// Each core loops over its own registered memory domain with a
/// staggered stride/work mix so the cores' event streams are not
/// phase-locked. Returns per-core `(iterations, passes, billed cycles)`
/// plus total executed instructions — all *simulated* quantities, so
/// they are bit-identical for any `machine_jobs`; only wall-clock time
/// (reported in the run timing table, never in `results/`) changes.
fn measure_sharded(machine_jobs: usize, t: u64) -> (Vec<(u64, u64, u64)>, u64) {
    const CORES: usize = 4;
    let mut cfg = MachineConfig::small();
    cfg.cores = CORES;
    let mut m = Machine::new(cfg);
    m.set_machine_jobs(machine_jobs);
    let mut tids = Vec::new();
    for c in 0..CORES {
        let buf = m.alloc(4096);
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r3, {buf}
                movi r4, {end}
                movi r6, 0
                movi r7, 0
            loop:
                ld r2, r3, 0
                addi r2, r2, {inc}
                st r2, r3, 0
                work {wk}
                addi r3, r3, {stride}
                addi r6, r6, 1
                blt r3, r4, loop
                addi r7, r7, 1
                movi r3, {buf}
                jmp loop
            "#,
            base = 0x40000 + (c as u64) * 0x4000,
            buf = buf,
            end = buf + 4096,
            inc = c + 1,
            wk = 7 + 6 * c,
            stride = 8 * (c as u64 + 1),
        ))
        .expect("compute program");
        let tid = m.load_program(c, &prog).expect("load");
        m.set_core_domain(c, buf, 4096);
        m.start_thread(tid);
        tids.push(tid);
    }
    m.run_until(Cycles(t));
    let rows = tids
        .iter()
        .map(|&tid| {
            (
                m.thread_reg(tid, 6),
                m.thread_reg(tid, 7),
                m.billed_cycles(tid).0,
            )
        })
        .collect();
    (rows, m.counters().get("inst.executed"))
}

/// Runs F15.
///
/// The three core-count measurements of F15a are independent (each
/// builds its own machine with a fixed seed), so they shard across
/// `ctx.jobs` workers; results are collected in input order and the
/// 1-core row doubles as the scaling baseline, making the table
/// bit-identical for any worker count. F15c honors `ctx.machine_jobs`.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let events = if ctx.quick { 200 } else { 1_000 };
    let mut a = Table::new(
        "F15a: event handling scales across cores",
        &["cores", "events handled", "events/Mcycle", "scaling"],
    );
    let cores = [1usize, 2, 4];
    let rows = switchless_sim::par::par_map(ctx.jobs, &cores, |_, &c| measure_scaling(c, events));
    let base_rate = rows[0].0;
    for (&c, &(rate, handled)) in cores.iter().zip(&rows) {
        a.row_owned(vec![
            c.to_string(),
            handled.to_string(),
            fnum(rate),
            fnum(rate / base_rate),
        ]);
    }
    a.caption(
        "one handler thread per core, independent Poisson event streams; \
         expected shape: near-linear scaling — wakes are core-local memory \
         writes, there is no shared interrupt controller to serialize on",
    );

    let (warm0, cold1, rewarmed, cold0) = measure_migration();
    let mut b = Table::new(
        "F15b: migration cost and cache locality (cycles per 64KiB pass)",
        &["phase", "cy/pass", "vs warm"],
    );
    for (name, v) in [
        ("warm on core 0", warm0),
        ("first pass after migrating to core 1", cold1),
        ("re-warmed on core 1", rewarmed),
        ("first pass after migrating back to core 0", cold0),
    ] {
        b.row_owned(vec![
            name.to_owned(),
            v.to_string(),
            fnum(v as f64 / warm0.max(1) as f64),
        ]);
    }
    b.caption(
        "the state transfer itself is ~100 cycles (two L3-class hops), but \
         the migrated thread's first pass pays cold private caches — the \
         locality cost §4 says the scheduler must manage; steady state \
         returns once the L3-resident set re-warms L1/L2",
    );

    let horizon = if ctx.quick { 4_000_000 } else { 60_000_000 };
    let (sharded, insts) = measure_sharded(ctx.machine_jobs, horizon);
    let mut c = Table::new(
        "F15c: core-sharded engine - simulated results independent of --machine-jobs",
        &["core", "iterations", "passes", "billed cycles", "cy/iter"],
    );
    for (core, &(iters, passes, billed)) in sharded.iter().enumerate() {
        c.row_owned(vec![
            core.to_string(),
            iters.to_string(),
            passes.to_string(),
            billed.to_string(),
            fnum(billed as f64 / iters.max(1) as f64),
        ]);
    }
    c.row_owned(vec![
        "total insts".to_owned(),
        insts.to_string(),
        String::new(),
        String::new(),
        String::new(),
    ]);
    c.caption(&format!(
        "4 compute cores over disjoint memory domains, run to {horizon} \
         cycles on the conservative core-sharded epoch engine \
         (--machine-jobs {}); every value here is simulated and \
         bit-identical for any job count — the engine only commits an \
         epoch it can prove matches the serial engine — so the speedup \
         shows up solely in this experiment's wall-clock line in the run \
         timing table",
        ctx.machine_jobs
    ));
    vec![a, b, c]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multicore_scales_event_handling() {
        let (r1, h1) = measure_scaling(1, 200);
        let (r4, h4) = measure_scaling(4, 200);
        assert_eq!(h1, 200);
        assert_eq!(h4, 800);
        assert!(r4 > r1 * 2.5, "4 cores {r4} vs 1 core {r1}");
    }

    #[test]
    fn sharded_rows_match_serial_rows() {
        let (serial, insts_serial) = measure_sharded(1, 400_000);
        let (sharded, insts_sharded) = measure_sharded(4, 400_000);
        assert_eq!(
            serial, sharded,
            "F15c rows must not depend on --machine-jobs"
        );
        assert_eq!(insts_serial, insts_sharded);
        assert!(serial
            .iter()
            .all(|&(iters, _, billed)| iters > 0 && billed > 0));
    }

    #[test]
    fn migration_first_pass_is_cold_then_recovers() {
        let (warm0, cold1, rewarmed, _cold0) = measure_migration();
        assert!(
            cold1 > warm0 * 3 / 2,
            "first pass after migration ({cold1}) should be well above warm ({warm0})"
        );
        assert!(
            rewarmed < cold1,
            "steady state ({rewarmed}) should recover from the cold pass ({cold1})"
        );
    }
}

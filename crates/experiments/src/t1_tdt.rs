//! T1 — the paper's only literal table: the example Thread Descriptor
//! Table (§3.2, Table 1), reproduced *and enforced*.
//!
//! We build the exact table from the paper, then attempt every operation
//! through every vtid from a user-mode driver thread on the machine and
//! record what the hardware allowed. The rendered permission column must
//! match the paper's.

use switchless_core::machine::Machine;
use switchless_core::perm::{Perms, TdtEntry};
use switchless_core::tid::{ThreadState, Vtid};
use switchless_isa::asm::assemble;
use switchless_sim::report::Table;
use switchless_sim::time::Cycles;

use crate::common::small_machine;

/// Operations probed per vtid.
const OPS: [(&str, &str); 4] = [
    ("start", "start r1"),
    ("stop", "stop r1"),
    ("mod-some", "rpush r1, r3, r2"), // GPR write
    ("mod-most", "rpush r1, pc, r2"), // pc write
];

/// Probes one (vtid, op): returns true if the op was permitted.
fn probe(vtid: u16, op_asm: &str, perms_for: &dyn Fn(u16) -> Option<Perms>) -> bool {
    let mut m: Machine = small_machine();
    // Targets for each vtid row: disabled threads (so rpush is legal)
    // parked on a harmless spin image in case a probe starts them.
    let spin = assemble(".base 0x40000\nentry: jmp entry\n").expect("spin image");
    m.load_image(&spin).expect("image");
    let mut targets = Vec::new();
    for _ in 0..4 {
        targets.push(m.spawn_at(0, 0x40000, false).expect("thread"));
    }
    let driver = assemble(&format!(
        r#"
        .base 0x30000
        entry:
            movi r1, {vtid}
            movi r2, 0x40000
            {op}
            movi r9, 1        ; reached only if the op was permitted
            halt
        "#,
        vtid = vtid,
        op = op_asm,
    ))
    .expect("probe program is valid");
    let d = m.load_program_user(0, &driver).expect("load");
    let tdt = m.alloc(8 * 8);
    for v in 0..4u16 {
        if let Some(p) = perms_for(v) {
            m.write_tdt_entry(tdt, Vtid(v), TdtEntry::new(targets[v as usize].ptid, p));
        }
        // Invalid rows simply stay zero (valid bit clear), like Table 1.
    }
    m.set_thread_tdtr(d, tdt);
    let edp = m.alloc(32);
    m.set_thread_edp(d, edp);
    m.start_thread(d);
    m.run_for(Cycles(200_000));
    m.thread_state(d) == ThreadState::Halted && m.thread_reg(d, 9) == 1
}

/// Runs T1.
pub fn run(_ctx: &crate::RunCtx) -> Vec<Table> {
    // The paper's Table 1 rows: vtid -> (ptid label, perms).
    let perms_for = |v: u16| -> Option<Perms> {
        match v {
            0 => Some(Perms(0b1000)),
            1 => None, // invalid
            2 => Some(Perms(0b1111)),
            3 => Some(Perms(0b1110)),
            _ => None,
        }
    };

    let mut t = Table::new(
        "T1: Thread Descriptor Table of paper Table 1, enforced by the machine",
        &["vtid", "perms", "start", "stop", "mod-some", "mod-most"],
    );
    for vtid in 0..4u16 {
        let mut row = vec![
            format!("0x{vtid:x}"),
            match perms_for(vtid) {
                Some(p) => format!("{p}"),
                None => "(invalid)".to_owned(),
            },
        ];
        for (_, op_asm) in OPS {
            let ok = probe(vtid, op_asm, &perms_for);
            row.push(if ok { "allow".into() } else { "deny".into() });
        }
        t.row_owned(row);
    }
    t.caption(
        "expected from the paper: 0x0 start-only; 0x1 nothing (invalid); \
         0x2 everything; 0x3 all but modify-most",
    );

    // The non-hierarchical property as its own mini-table.
    let mut nh = Table::new(
        "T1b: non-hierarchical privilege (B over A, C over B, C not over A)",
        &["relation", "outcome"],
    );
    let b_stops_a = probe(0, "stop r1", &|v| (v == 0).then_some(Perms::STOP));
    let c_on_a_denied = !probe(0, "stop r1", &|v| (v == 0).then_some(Perms::NONE));
    nh.row(&[
        "B stops A (STOP granted)",
        if b_stops_a { "allowed" } else { "BROKEN" },
    ]);
    nh.row(&[
        "C stops A (no permission)",
        if c_on_a_denied { "denied" } else { "BROKEN" },
    ]);
    nh.caption("a configuration impossible in ring-based protection (paper §3.2)");
    vec![t, nh]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_paper_semantics() {
        let tables = run(&crate::RunCtx::serial(true));
        let rendered = tables[0].render();
        // vtid 0: start only.
        let line0: &str = rendered.lines().nth(3).unwrap();
        assert!(line0.contains("allow"), "{line0}");
        assert!(line0.matches("deny").count() == 3, "{line0}");
        // vtid 1 invalid: all deny.
        let line1: &str = rendered.lines().nth(4).unwrap();
        assert_eq!(line1.matches("deny").count(), 4, "{line1}");
        // vtid 2: all allow.
        let line2: &str = rendered.lines().nth(5).unwrap();
        assert_eq!(line2.matches("allow").count(), 4, "{line2}");
        // vtid 3: modify-most denied only.
        let line3: &str = rendered.lines().nth(6).unwrap();
        assert_eq!(line3.matches("deny").count(), 1, "{line3}");
        // Non-hierarchical table has no BROKEN rows.
        assert!(!tables[1].render().contains("BROKEN"));
    }
}

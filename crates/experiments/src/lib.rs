//! Experiment harness library: regenerates every table and figure in
//! EXPERIMENTS.md. The `experiments` binary is a thin wrapper around
//! [`run_cli`].
//!
//! ```text
//! experiments all [--quick] [--jobs N] [--out DIR]   # run everything
//! experiments f1 f7 [--quick]                        # run selected experiments
//! experiments f15 --machine-jobs 4                   # core-sharded machine engine
//! experiments list                                   # list experiment ids
//! experiments --soak 100 [--soak-seed S] [--quick]   # chaos soak, invariants on
//! experiments --replay storm.txt                     # re-execute a chaos artifact
//! ```
//!
//! Each experiment prints its table(s) and writes CSV files under
//! `results/` (or `--out DIR`).
//!
//! **Parallelism and determinism.** `--jobs N` (or `SWITCHLESS_JOBS`;
//! default: host parallelism) runs independent experiments — and the load
//! sweeps inside them — on a scoped worker pool. Output is captured per
//! experiment and flushed in registry order, and per-point RNG seeds are
//! derived from point *indices* (`switchless_sim::rng::mix_seed`), never
//! from which worker ran a point, so stdout tables and the `results/`
//! CSV tree are bit-identical for every `--jobs` value. A wall-clock
//! timing table is appended to the run log so speedups are measured, not
//! asserted; it is deliberately never written to `results/`.
//!
//! `--machine-jobs N` additionally runs each *single simulated machine*
//! on the core-sharded epoch engine (`switchless_core::shard`) with up
//! to `N` workers, one per simulated core. The engine is conservative:
//! every epoch either commits bit-identically to the serial engine or is
//! discarded and replayed serially, so simulated results — and therefore
//! the CSV tree — are bit-identical for every `--machine-jobs` value;
//! only wall-clock time changes. Experiments that run with the invariant
//! checker enabled (F17) fall back to the serial engine automatically.

use std::path::PathBuf;

use switchless_sim::par;
use switchless_sim::report::{fnum, CsvSink, Table};

pub mod common;
pub mod f01_wakeup;
pub mod f02_io_throughput;
pub mod f04_syscalls;
pub mod f05_vmexits;
pub mod f06_microkernel;
pub mod f07_tail_latency;
pub mod f08_thread_state;
pub mod f09_priorities;
pub mod f10_cache;
pub mod f11_distributed;
pub mod f12_monitor_filter;
pub mod f13_store_ablation;
pub mod f14_security;
pub mod f15_multicore;
pub mod f16_fault_recovery;
pub mod f17_chaos_soak;
pub mod t1_tdt;
pub mod t2_capacity;

/// Per-run settings threaded through every experiment.
#[derive(Clone, Copy, Debug)]
pub struct RunCtx {
    /// Shrink sample counts for a fast smoke run.
    pub quick: bool,
    /// Worker-thread budget for in-experiment parallelism (load sweeps).
    /// Results are bit-identical for any value; 1 means fully serial.
    pub jobs: usize,
    /// Worker-thread budget for the core-sharded machine engine (one
    /// worker per simulated core, see [`switchless_core::shard`]).
    /// Results are bit-identical for any value; 1 means the serial
    /// engine.
    pub machine_jobs: usize,
}

impl RunCtx {
    /// A serial context, the default for unit tests.
    #[must_use]
    pub fn serial(quick: bool) -> RunCtx {
        RunCtx {
            quick,
            jobs: 1,
            machine_jobs: 1,
        }
    }
}

/// One runnable experiment.
pub struct Experiment {
    pub id: &'static str,
    pub title: &'static str,
    pub run: fn(ctx: &RunCtx) -> Vec<Table>,
}

pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "t1",
            title: "Table 1: TDT permission matrix, enforced",
            run: t1_tdt::run,
        },
        Experiment {
            id: "t2",
            title: "Table 2: thread-state storage arithmetic (paper s4)",
            run: t2_capacity::run,
        },
        Experiment {
            id: "f1",
            title: "F1: event wakeup latency - legacy IRQ path vs mwait",
            run: f01_wakeup::run,
        },
        Experiment {
            id: "f2",
            title: "F2/F3: I/O designs under load - throughput, latency, cores",
            run: f02_io_throughput::run,
        },
        Experiment {
            id: "f4",
            title: "F4: system-call cost by design",
            run: f04_syscalls::run,
        },
        Experiment {
            id: "f5",
            title: "F5: VM-exit handling by design",
            run: f05_vmexits::run,
        },
        Experiment {
            id: "f6",
            title: "F6: microkernel IPC round trips",
            run: f06_microkernel::run,
        },
        Experiment {
            id: "f7",
            title: "F7: tail latency vs load under service variability",
            run: f07_tail_latency::run,
        },
        Experiment {
            id: "f8",
            title: "F8: thread-start latency vs state residency",
            run: f08_thread_state::run,
        },
        Experiment {
            id: "f9",
            title: "F9: time-critical wakeups vs background threads",
            run: f09_priorities::run,
        },
        Experiment {
            id: "f10",
            title: "F10: cache interference vs thread count (partition/prefetch)",
            run: f10_cache::run,
        },
        Experiment {
            id: "f11",
            title: "F11: remote-latency hiding with blocking hardware threads",
            run: f11_distributed::run,
        },
        Experiment {
            id: "f12",
            title: "F12: monitor-filter designs (CAM vs hashed)",
            run: f12_monitor_filter::run,
        },
        Experiment {
            id: "f13",
            title: "F13: state-store policy ablation",
            run: f13_store_ablation::run,
        },
        Experiment {
            id: "f14",
            title: "F14: security-model costs and exception chains",
            run: f14_security::run,
        },
        Experiment {
            id: "f15",
            title: "F15: multi-core scaling and thread migration",
            run: f15_multicore::run,
        },
        Experiment {
            id: "f16",
            title: "F16: fault recovery - switchless supervisor vs legacy interrupts",
            run: f16_fault_recovery::run,
        },
        Experiment {
            id: "f17",
            title: "F17: chaos soak - composed fault storms with invariants checked",
            run: f17_chaos_soak::run,
        },
    ]
}

pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Parsed command line for [`run_cli`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cli {
    /// Shrink sample counts for a fast smoke run.
    pub quick: bool,
    /// Explicit `--jobs N`; `None` defers to `SWITCHLESS_JOBS`/host.
    pub jobs: Option<usize>,
    /// Explicit `--machine-jobs N` for the core-sharded machine engine;
    /// `None` means 1 (serial engine).
    pub machine_jobs: Option<usize>,
    /// Explicit `--out DIR` for the CSV tree; `None` means `results/`.
    pub out: Option<PathBuf>,
    /// `--replay FILE`: re-execute a `chaos-plan/v1` artifact
    /// bit-identically instead of running experiments.
    pub replay: Option<PathBuf>,
    /// `--soak N`: run an N-plan chaos soak (invariants on, every plan
    /// replayed from its artifact) instead of running experiments.
    pub soak: Option<u64>,
    /// Base seed for `--soak` plans (`--soak-seed S`, default 1).
    pub soak_seed: u64,
    /// Experiment ids (or `all` / `list`) in the order given.
    pub selected: Vec<String>,
}

/// Parses harness arguments (everything after the binary name).
///
/// # Errors
///
/// Returns a human-readable message for an unknown flag or a malformed
/// flag value.
pub fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        soak_seed: 1,
        ..Cli::default()
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            if let Some(v) = a.strip_prefix(&format!("{name}=")) {
                Ok(v.to_owned())
            } else {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            }
        };
        if a == "--quick" {
            cli.quick = true;
        } else if a == "--jobs" || a.starts_with("--jobs=") {
            let v = flag_value("--jobs")?;
            let n: usize = v
                .parse()
                .map_err(|_| format!("--jobs expects a positive integer, got {v:?}"))?;
            if n == 0 {
                return Err("--jobs must be at least 1".to_owned());
            }
            cli.jobs = Some(n);
        } else if a == "--machine-jobs" || a.starts_with("--machine-jobs=") {
            let v = flag_value("--machine-jobs")?;
            let n: usize = v
                .parse()
                .map_err(|_| format!("--machine-jobs expects a positive integer, got {v:?}"))?;
            if n == 0 {
                return Err("--machine-jobs must be at least 1".to_owned());
            }
            cli.machine_jobs = Some(n);
        } else if a == "--out" || a.starts_with("--out=") {
            cli.out = Some(PathBuf::from(flag_value("--out")?));
        } else if a == "--replay" || a.starts_with("--replay=") {
            cli.replay = Some(PathBuf::from(flag_value("--replay")?));
        } else if a == "--soak" || a.starts_with("--soak=") {
            let v = flag_value("--soak")?;
            let n: u64 = v
                .parse()
                .map_err(|_| format!("--soak expects a plan count, got {v:?}"))?;
            if n == 0 {
                return Err("--soak must run at least one plan".to_owned());
            }
            cli.soak = Some(n);
        } else if a == "--soak-seed" || a.starts_with("--soak-seed=") {
            let v = flag_value("--soak-seed")?;
            cli.soak_seed = v
                .parse()
                .map_err(|_| format!("--soak-seed expects an integer, got {v:?}"))?;
        } else if a.starts_with("--") {
            return Err(format!("unknown flag {a:?}"));
        } else {
            cli.selected.push(a.clone());
        }
    }
    Ok(cli)
}

/// Entry point of the `experiments` binary.
///
/// Runs the selected experiments on up to `--jobs` worker threads while
/// keeping stdout and the CSV tree in registry order: each experiment's
/// tables are computed in a worker, then printed/written from the main
/// thread as soon as every earlier experiment has been flushed. CSV
/// writes go through one [`CsvSink`], so slug collisions are uniquified
/// deterministically. Ends with a per-experiment wall-clock timing table
/// (stdout only, never a CSV — timings are volatile by nature).
pub fn run_cli() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}; try `experiments list`");
            std::process::exit(2);
        }
    };

    // Chaos modes short-circuit the experiment registry entirely.
    if let Some(path) = &cli.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(err) => {
                eprintln!("cannot read {}: {err}", path.display());
                std::process::exit(2);
            }
        };
        match f17_chaos_soak::replay_text(&text) {
            Ok(msg) => println!("{msg}"),
            Err(msg) => {
                eprintln!("replay failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }
    if let Some(n) = cli.soak {
        let duration = switchless_sim::time::Cycles(if cli.quick { 1_500_000 } else { 6_000_000 });
        match f17_chaos_soak::soak(n, cli.soak_seed, duration, |line| println!("{line}")) {
            Ok(sum) => println!(
                "soak clean: {} plans, {} invariant checks, {} faults injected, \
                 {} pardons, every plan replayed bit-identically",
                sum.plans, sum.checks, sum.faults, sum.pardons
            ),
            Err(msg) => {
                eprintln!("soak failed: {msg}");
                std::process::exit(1);
            }
        }
        return;
    }

    let registry = registry();
    if cli.selected.iter().any(|s| s == "list") {
        for e in &registry {
            println!("{:4}  {}", e.id, e.title);
        }
        return;
    }

    let run_all = cli.selected.is_empty() || cli.selected.iter().any(|s| s == "all");
    if !run_all {
        for s in &cli.selected {
            if !registry.iter().any(|e| e.id == *s) {
                eprintln!("unknown experiment id {s:?}; try `experiments list`");
                std::process::exit(2);
            }
        }
    }
    let to_run: Vec<&Experiment> = registry
        .iter()
        .filter(|e| run_all || cli.selected.iter().any(|s| s == e.id))
        .collect();

    let jobs = par::resolve_jobs(cli.jobs);
    let ctx = RunCtx {
        quick: cli.quick,
        jobs,
        machine_jobs: cli.machine_jobs.unwrap_or(1),
    };
    let dir = cli.out.clone().unwrap_or_else(results_dir);
    let mut sink = CsvSink::new(&dir);
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let wall0 = std::time::Instant::now();

    par::for_each_ordered(
        jobs,
        &to_run,
        |_, e| {
            let t0 = std::time::Instant::now();
            let tables = (e.run)(&ctx);
            (tables, t0.elapsed().as_secs_f64())
        },
        |i, (tables, secs)| {
            let e = to_run[i];
            println!("\n##### {} #####", e.title);
            for table in &tables {
                print!("{}", table.render());
                match sink.write(table) {
                    Ok(path) => println!("  csv: {}", path.display()),
                    Err(err) => eprintln!("  csv write failed: {err}"),
                }
            }
            println!("  ({secs:.1}s)");
            timings.push((e.id, secs));
        },
    );

    let wall = wall0.elapsed().as_secs_f64();
    let mut t = Table::new(
        "Run timing: wall-clock per experiment",
        &["experiment", "wall (s)"],
    );
    for (id, secs) in &timings {
        t.row_owned(vec![(*id).to_owned(), fnum(*secs)]);
    }
    let serial_sum: f64 = timings.iter().map(|(_, s)| s).sum();
    t.row_owned(vec!["sum of experiments".to_owned(), fnum(serial_sum)]);
    t.row_owned(vec!["whole run (wall)".to_owned(), fnum(wall)]);
    t.caption(&format!(
        "--jobs {jobs}; the gap between the sum and the wall line is the \
         measured parallel speedup (not written to results/: timings are \
         volatile, the CSV tree stays bit-identical across runs)"
    ));
    println!();
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cli, String> {
        let owned: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        parse_cli(&owned)
    }

    #[test]
    fn parse_cli_flags_and_ids() {
        let cli = parse(&["f1", "--quick", "f7", "--jobs", "4", "--out=/tmp/x"]).unwrap();
        assert!(cli.quick);
        assert_eq!(cli.jobs, Some(4));
        assert_eq!(cli.out, Some(PathBuf::from("/tmp/x")));
        assert_eq!(cli.selected, vec!["f1", "f7"]);
    }

    #[test]
    fn parse_cli_jobs_equals_form() {
        assert_eq!(parse(&["--jobs=9"]).unwrap().jobs, Some(9));
    }

    #[test]
    fn parse_cli_machine_jobs_both_forms() {
        assert_eq!(
            parse(&["--machine-jobs", "4"]).unwrap().machine_jobs,
            Some(4)
        );
        assert_eq!(parse(&["--machine-jobs=2"]).unwrap().machine_jobs, Some(2));
        assert_eq!(parse(&["f15"]).unwrap().machine_jobs, None);
    }

    #[test]
    fn parse_cli_rejects_bad_input() {
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "zero"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--machine-jobs"]).is_err());
        assert!(parse(&["--machine-jobs", "0"]).is_err());
        assert!(parse(&["--machine-jobs", "four"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn registry_ids_are_unique() {
        let reg = registry();
        let mut ids: Vec<&str> = reg.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), reg.len());
    }
}

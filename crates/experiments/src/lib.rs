//! Experiment harness library: regenerates every table and figure in
//! EXPERIMENTS.md. The `experiments` binary is a thin wrapper around
//! [`run_cli`].
//!
//! ```text
//! experiments all [--quick]      # run everything
//! experiments f1 f7 [--quick]    # run selected experiments
//! experiments list               # list experiment ids
//! ```
//!
//! Each experiment prints its table(s) and writes CSV files under
//! `results/`.

use std::path::PathBuf;

use switchless_sim::report::Table;

pub mod common;
pub mod f01_wakeup;
pub mod f02_io_throughput;
pub mod f04_syscalls;
pub mod f05_vmexits;
pub mod f06_microkernel;
pub mod f07_tail_latency;
pub mod f08_thread_state;
pub mod f09_priorities;
pub mod f10_cache;
pub mod f11_distributed;
pub mod f12_monitor_filter;
pub mod f13_store_ablation;
pub mod f14_security;
pub mod f15_multicore;
pub mod f16_fault_recovery;
pub mod t1_tdt;
pub mod t2_capacity;

/// One runnable experiment.
pub struct Experiment {
    pub id: &'static str,
    pub title: &'static str,
    pub run: fn(quick: bool) -> Vec<Table>,
}

pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "t1",
            title: "Table 1: TDT permission matrix, enforced",
            run: t1_tdt::run,
        },
        Experiment {
            id: "t2",
            title: "Table 2: thread-state storage arithmetic (paper s4)",
            run: t2_capacity::run,
        },
        Experiment {
            id: "f1",
            title: "F1: event wakeup latency - legacy IRQ path vs mwait",
            run: f01_wakeup::run,
        },
        Experiment {
            id: "f2",
            title: "F2/F3: I/O designs under load - throughput, latency, cores",
            run: f02_io_throughput::run,
        },
        Experiment {
            id: "f4",
            title: "F4: system-call cost by design",
            run: f04_syscalls::run,
        },
        Experiment {
            id: "f5",
            title: "F5: VM-exit handling by design",
            run: f05_vmexits::run,
        },
        Experiment {
            id: "f6",
            title: "F6: microkernel IPC round trips",
            run: f06_microkernel::run,
        },
        Experiment {
            id: "f7",
            title: "F7: tail latency vs load under service variability",
            run: f07_tail_latency::run,
        },
        Experiment {
            id: "f8",
            title: "F8: thread-start latency vs state residency",
            run: f08_thread_state::run,
        },
        Experiment {
            id: "f9",
            title: "F9: time-critical wakeups vs background threads",
            run: f09_priorities::run,
        },
        Experiment {
            id: "f10",
            title: "F10: cache interference vs thread count (partition/prefetch)",
            run: f10_cache::run,
        },
        Experiment {
            id: "f11",
            title: "F11: remote-latency hiding with blocking hardware threads",
            run: f11_distributed::run,
        },
        Experiment {
            id: "f12",
            title: "F12: monitor-filter designs (CAM vs hashed)",
            run: f12_monitor_filter::run,
        },
        Experiment {
            id: "f13",
            title: "F13: state-store policy ablation",
            run: f13_store_ablation::run,
        },
        Experiment {
            id: "f14",
            title: "F14: security-model costs and exception chains",
            run: f14_security::run,
        },
        Experiment {
            id: "f15",
            title: "F15: multi-core scaling and thread migration",
            run: f15_multicore::run,
        },
        Experiment {
            id: "f16",
            title: "F16: fault recovery - switchless supervisor vs legacy interrupts",
            run: f16_fault_recovery::run,
        },
    ]
}

pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

pub fn run_cli() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();

    let registry = registry();
    if selected.iter().any(|s| s == "list") {
        for e in &registry {
            println!("{:4}  {}", e.id, e.title);
        }
        return;
    }

    let run_all = selected.is_empty() || selected.iter().any(|s| s == "all");
    let dir = results_dir();
    let mut ran = 0;
    for e in &registry {
        if !run_all && !selected.iter().any(|s| s == e.id) {
            continue;
        }
        ran += 1;
        println!("\n##### {} #####", e.title);
        let t0 = std::time::Instant::now();
        for table in (e.run)(quick) {
            print!("{}", table.render());
            match table.write_csv(&dir) {
                Ok(path) => println!("  csv: {}", path.display()),
                Err(err) => eprintln!("  csv write failed: {err}"),
            }
        }
        println!("  ({:.1}s)", t0.elapsed().as_secs_f64());
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s): {selected:?}; try `experiments list`");
        std::process::exit(2);
    }
}

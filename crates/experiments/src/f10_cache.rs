//! F10 — "Managing Non-register State" (§4): protecting a critical
//! thread's working set with fine-grain cache partitioning.
//!
//! The eviction pressure in an I/O-heavy server comes from devices as
//! much as from threads: DDIO-style DMA deposits packet data straight
//! into L3. Here a critical thread scans a 1 MiB working set (larger
//! than the private L2, so L3 residency is what matters) while a DMA
//! stream floods the L3 at a configurable rate. A Vantage-style L3
//! partition (1/8 of the cache, §4's "hundreds of small partitions")
//! pins the critical set.
//!
//! Metric: the critical thread's *own* execution cycles per pass (wall
//! time also reported). Without the partition, flooding evicts the set
//! to DRAM; with it, the set stays at L3 latency.

use std::cell::Cell;
use std::rc::Rc;

use switchless_core::machine::{Machine, MachineConfig};
use switchless_isa::asm::assemble;
use switchless_mem::cache::PartitionId;
use switchless_sim::report::{fnum, Table};
use switchless_sim::time::Cycles;

const CRIT_WS: u64 = 1024 * 1024;
const WARMUP: u64 = 2_000_000;

fn scan_program(base: u64, buf: u64, ws: u64, pass_word: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            movi r3, {buf}
            movi r4, {end}
        pass:
            ld r2, r3, 0
            addi r3, r3, 64
            blt r3, r4, pass
            movi r3, {buf}
            ld r5, {pw}
            addi r5, r5, 1
            st r5, {pw}
            jmp pass
        "#,
        base = base,
        buf = buf,
        end = buf + ws,
        pw = pass_word,
    )
}

/// Recurring DMA stream: every `period`, deposit `lines` cache lines at
/// an advancing cursor (wrapping over `span` bytes).
#[allow(clippy::too_many_arguments)]
fn stream(
    m: &mut Machine,
    at: Cycles,
    cursor: Rc<Cell<u64>>,
    base: u64,
    span: u64,
    lines: u64,
    period: Cycles,
    remaining: u64,
) {
    if remaining == 0 {
        return;
    }
    m.at(at, move |mach| {
        let c = cursor.get();
        let buf = vec![0xaau8; (lines * 64) as usize];
        mach.dma_write(base + (c % span), &buf);
        cursor.set(c + lines * 64);
        stream(
            mach,
            at + period,
            cursor.clone(),
            base,
            span,
            lines,
            period,
            remaining - 1,
        );
    });
}

struct Outcome {
    passes: u64,
    cy_per_pass: u64,
    l3_miss_rate: f64,
}

fn measure(rate_lines_per_kcy: u64, partition: bool, window: u64) -> Outcome {
    let mut cfg = MachineConfig::small();
    cfg.mem_bytes = 64 << 20;
    // Hugepage-class TLB reach: page walks would hit both configurations
    // identically and mask the cache effect under test.
    cfg.tlb.entries = 16_384;
    let mut m = Machine::new(cfg);
    let crit_buf = m.alloc(CRIT_WS);
    let crit_pass = m.alloc(64);
    let prog = assemble(&scan_program(0x40000, crit_buf, CRIT_WS, crit_pass)).expect("crit");
    let crit = m.load_program(0, &prog).expect("load");
    if partition {
        m.set_l3_partition(PartitionId(1), 1.0 / 8.0);
        m.set_thread_partition(crit, PartitionId(1));
    }
    if rate_lines_per_kcy > 0 {
        let span: u64 = 16 << 20;
        let base = m.alloc(span);
        let events = (WARMUP + window) / 1000 + 1;
        stream(
            &mut m,
            Cycles(0),
            Rc::new(Cell::new(0)),
            base,
            span - rate_lines_per_kcy * 64,
            rate_lines_per_kcy,
            Cycles(1000),
            events,
        );
    }
    m.start_thread(crit);
    m.run_for(Cycles(WARMUP));
    let p0 = m.peek_u64(crit_pass);
    let b0 = m.billed_cycles(crit).0;
    let (_, _, (h0, m0)) = m.cache_stats();
    m.run_for(Cycles(window));
    let passes = m.peek_u64(crit_pass) - p0;
    let billed = m.billed_cycles(crit).0 - b0;
    let (_, _, (h1, m1)) = m.cache_stats();
    let (dh, dm) = (h1 - h0, m1 - m0);
    Outcome {
        passes,
        cy_per_pass: billed.checked_div(passes).unwrap_or(billed),
        l3_miss_rate: if dh + dm == 0 {
            0.0
        } else {
            dm as f64 / (dh + dm) as f64
        },
    }
}

/// Runs F10.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let window = if quick { 6_000_000 } else { 12_000_000 };
    let rates: &[u64] = if quick { &[0, 64] } else { &[0, 16, 64, 256] };
    let mut t = Table::new(
        "F10: critical working set vs DMA cache flooding",
        &[
            "dma lines/kcy",
            "passes shared",
            "passes part.",
            "cy/pass shared",
            "cy/pass part.",
            "speedup",
            "L3 miss shared",
            "L3 miss part.",
        ],
    );
    for &r in rates {
        let shared = measure(r, false, window);
        let part = measure(r, true, window);
        t.row_owned(vec![
            r.to_string(),
            shared.passes.to_string(),
            part.passes.to_string(),
            shared.cy_per_pass.to_string(),
            part.cy_per_pass.to_string(),
            fnum(shared.cy_per_pass as f64 / part.cy_per_pass.max(1) as f64),
            fnum(shared.l3_miss_rate),
            fnum(part.l3_miss_rate),
        ]);
    }
    t.caption(
        "1MiB critical set (> private L2), 1/8-L3 Vantage-style partition; \
         expected shape: once the DMA flood exceeds ~64 lines/kcy the \
         unpartitioned critical thread drops to DRAM speed (~4-5x more \
         cycles per pass) while the partitioned one is unaffected — the \
         §4 pinning argument",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flooding_hurts_unpartitioned_progress() {
        let calm = measure(0, false, 6_000_000);
        let flooded = measure(128, false, 6_000_000);
        assert!(
            flooded.cy_per_pass > calm.cy_per_pass * 2,
            "flooded {} vs calm {}",
            flooded.cy_per_pass,
            calm.cy_per_pass
        );
    }

    #[test]
    fn partitioning_recovers_progress_under_flood() {
        let shared = measure(128, false, 6_000_000);
        let part = measure(128, true, 6_000_000);
        assert!(
            shared.cy_per_pass > part.cy_per_pass * 2,
            "partitioned {} should be >=2x faster than shared {}",
            part.cy_per_pass,
            shared.cy_per_pass
        );
        assert!(part.passes > shared.passes);
    }
}

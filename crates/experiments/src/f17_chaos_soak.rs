//! F17 — chaos soak: composed fault storms against the full switchless
//! stack, with the machine-wide invariant checker on.
//!
//! Each soaked plan is a seeded [`ChaosPlan`]: overlapping bursts across
//! all nine fault kinds (NIC drop/corrupt/stall, SSD spikes/errors/torn
//! completions, fabric loss/reorder, lost legacy interrupts) hitting a
//! machine that runs every device class at once — RPC clients parked in
//! `mwait` under watchdogs, a supervisor with a *finite* retry budget and
//! the quarantine→pardon fallback, NIC RX and SSD command pumps, and an
//! MSI-X bridge waking a parker. Invariant checks (descriptor-ring
//! conservation, thread-state legality, no-lost-wakeup, queue
//! monotonicity) run at every time advance and must stay silent.
//!
//! Every outcome is folded into a [`Digest`]; serializing the plan to its
//! `chaos-plan/v1` artifact, parsing it back, and re-running must
//! reproduce the digest bit-for-bit — that is the `--replay` contract.
//! A violating plan (none in a healthy tree) is auto-shrunk with
//! [`shrink`] to a minimal reproducer before being reported.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use switchless_core::machine::{Machine, MachineConfig};
use switchless_dev::fabric::Fabric;
use switchless_dev::msix::MsixBridge;
use switchless_dev::nic::{Nic, NicConfig};
use switchless_dev::ssd::{Ssd, SsdConfig, SsdOp};
use switchless_kern::ioengine::RetryPolicy;
use switchless_kern::nointr::Supervisor;
use switchless_legacy::costs::LegacyCosts;
use switchless_sim::chaos::{shrink, ChaosConfig, ChaosPlan, Digest};
use switchless_sim::error::SimError;
use switchless_sim::fault::FaultKind;
use switchless_sim::report::{counters_table, fnum, Table};
use switchless_sim::rng::Rng;
use switchless_sim::stats::{Counters, Histogram};
use switchless_sim::time::Cycles;

use crate::common::FREQ;

/// Concurrent RPC client threads.
const CLIENTS: usize = 6;
/// Remote service time per RPC (1 us).
const REMOTE: u64 = 3_000;
/// Per-thread response deadline: the watchdog timeout.
const DEADLINE: u64 = 30_000;
/// Supervisor restart backoff (fixed).
const BACKOFF: u64 = 3_000;
/// Retry budget before quarantine — deliberately small so storms
/// exercise the quarantine→pardon fallback path.
const RETRIES: u32 = 3;
/// Cool-down before a quarantined ward is pardoned.
const PARDON: u64 = 90_000;
/// Legacy software-timer tick: timeout detection granularity.
const TICK: u64 = 300_000;
/// Background traffic periods (mutually coprime so the pumps drift
/// through every phase relationship with the storm windows).
const NIC_PERIOD: u64 = 4_001;
const SSD_PERIOD: u64 = 9_001;
const MSIX_PERIOD: u64 = 13_001;

const HCALL_ISSUE: u16 = 130;
const HCALL_DONE: u16 = 131;

/// Everything one storm run produces.
#[derive(Debug)]
pub struct StormOutcome {
    /// RPCs issued by the clients.
    pub issued: u64,
    /// RPCs completed end-to-end.
    pub goodput: u64,
    /// Total injected faults (sum of every `fault.*` counter).
    pub faults: u64,
    /// Watchdog-fire → client-running-again latencies.
    pub recovery: Histogram,
    /// Quarantined wards pardoned back to life.
    pub pardons: u64,
    /// Invariant checks run.
    pub checks: u64,
    /// Invariant violations recorded (0 in a healthy tree).
    pub violations: u64,
    /// First violation, for diagnostics.
    pub first_violation: Option<String>,
    /// Digest over counters, ledgers, clocks and histograms: two runs of
    /// the same plan are bit-identical iff their digests match.
    pub digest: u64,
    /// Full counter set, for the audit table.
    pub counters: Counters,
}

/// Schedules NIC RX arrivals every [`NIC_PERIOD`] cycles until `until`.
fn pump_nic(m: &mut Machine, nic: Nic, seq: u64, at: Cycles, until: Cycles) {
    if at.0 >= until.0 {
        return;
    }
    m.at(at, move |mach| {
        let payload = [(seq & 0xff) as u8; 32];
        nic.schedule_rx(mach, at, seq, &payload);
        pump_nic(mach, nic, seq + 1, at + Cycles(NIC_PERIOD), until);
    });
}

/// Submits alternating SSD reads and writes every [`SSD_PERIOD`] cycles.
fn pump_ssd(m: &mut Machine, ssd: Ssd, buf: u64, seq: u64, at: Cycles, until: Cycles) {
    if at.0 >= until.0 {
        return;
    }
    m.at(at, move |mach| {
        let op = if seq.is_multiple_of(2) {
            SsdOp::Read {
                buf_addr: buf,
                len: 64,
            }
        } else {
            SsdOp::Write
        };
        ssd.submit(mach, at, seq, op, seq);
        pump_ssd(mach, ssd, buf, seq + 1, at + Cycles(SSD_PERIOD), until);
    });
}

/// Raises a routed legacy interrupt every [`MSIX_PERIOD`] cycles.
fn pump_msix(m: &mut Machine, bridge: MsixBridge, at: Cycles, until: Cycles) {
    if at.0 >= until.0 {
        return;
    }
    m.at(at, move |mach| {
        bridge.raise(mach, 7);
        pump_msix(mach, bridge, at + Cycles(MSIX_PERIOD), until);
    });
}

/// A parker: sleeps on `watch`, counts fresh values in r3, re-parks.
fn parker_src(base: u64, watch: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            movi r1, 0
        wait:
            monitor {watch}
            ld r2, {watch}
            bne r2, r1, fresh
            mwait
            jmp wait
        fresh:
            addi r1, r2, 0
            addi r3, r3, 1
            jmp wait
        "#
    )
}

/// Runs one chaos plan on the full stack. `sabotage` registers a
/// deliberately broken invariant (test fixture for the shrinker): it
/// trips as soon as the fabric loses a single response.
///
/// # Errors
///
/// An invalid plan (degenerate window, out-of-range rate/device — e.g.
/// from a corrupted replay artifact or a hand-built plan) is a
/// structured [`SimError`], never a panic.
fn run_storm(
    plan: &ChaosPlan,
    sabotage: bool,
    machine_jobs: usize,
) -> Result<StormOutcome, SimError> {
    let fault_plan = plan.to_fault_plan()?;
    let duration = plan.duration;
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = CLIENTS + 8;
    let mut m = Machine::new(cfg);
    m.enable_invariants(true);
    // The invariant checker wants eyes on every event boundary, so the
    // machine falls back to the serial engine whichever `machine_jobs`
    // is requested — chaos digests are identical across job counts by
    // construction, and `digests_do_not_depend_on_machine_jobs` pins it.
    m.set_machine_jobs(machine_jobs);
    if sabotage {
        m.register_invariant("fixture.fabric_never_loses", |m| {
            let n = m.counters().get("fault.fabric.loss");
            (n > 0).then(|| format!("{n} fabric losses observed"))
        });
    }
    m.install_fault_plan(fault_plan);

    let sup = Supervisor::install(
        &mut m,
        0,
        RetryPolicy {
            initial_backoff: Cycles(BACKOFF),
            max_backoff: Cycles(BACKOFF),
            max_retries: RETRIES,
        },
        0x40000,
    )
    .expect("supervisor installs");
    sup.pardon_after(Some(Cycles(PARDON)));
    let fabric = Fabric::default();

    // Background device traffic: NIC RX, SSD commands, MSI-X raises.
    let nic = Nic::try_attach(&mut m, NicConfig::default()).expect("nic attaches");
    let ssd = Ssd::try_attach(&mut m, SsdConfig::default()).expect("ssd attaches");
    let ssd_buf = m.alloc(64);
    let msix_word = m.alloc(8);
    let mut bridge = MsixBridge::new();
    bridge.route(7, msix_word);
    for (i, watch) in [nic.rx_tail, ssd.cq_tail, msix_word]
        .into_iter()
        .enumerate()
    {
        let prog = switchless_isa::asm::assemble(&parker_src(0x58000 + i as u64 * 0x1000, watch))
            .expect("parker template is valid");
        let tid = m.load_program(0, &prog).expect("parker loads");
        m.start_thread(tid);
    }
    pump_nic(&mut m, nic, 0, Cycles(NIC_PERIOD), duration);
    pump_ssd(&mut m, ssd, ssd_buf, 0, Cycles(SSD_PERIOD), duration);
    pump_msix(&mut m, bridge, Cycles(MSIX_PERIOD), duration);

    // RPC clients under watchdogs, exactly the f16 topology.
    struct Clients {
        resp: Vec<u64>,
        by_ptid: HashMap<u32, usize>,
        issued: u64,
        goodput: u64,
    }
    let st = Rc::new(RefCell::new(Clients {
        resp: Vec::new(),
        by_ptid: HashMap::new(),
        issued: 0,
        goodput: 0,
    }));
    for c in 0..CLIENTS {
        let resp = m.alloc(64);
        let prog = switchless_isa::asm::assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r1, 0
            loop:
                hcall {issue}
            wait:
                monitor {resp}
                ld r2, {resp}
                bne r2, r1, got
                mwait
                jmp wait
            got:
                hcall {done}
                jmp loop
            "#,
            base = 0x50000 + (c as u64) * 0x1000,
            issue = HCALL_ISSUE,
            resp = resp,
            done = HCALL_DONE,
        ))
        .expect("client template is valid");
        let tid = m.load_program(0, &prog).expect("client loads");
        sup.supervise(&mut m, tid);
        m.set_thread_watchdog(tid, Some(Cycles(DEADLINE)));
        let mut s = st.borrow_mut();
        s.resp.push(resp);
        s.by_ptid.insert(tid.ptid.0, c);
        drop(s);
        m.start_thread(tid);
    }
    let st2 = Rc::clone(&st);
    m.register_hcall(HCALL_ISSUE, move |mach, tid| {
        let mut s = st2.borrow_mut();
        let c = s.by_ptid[&tid.ptid.0];
        let resp = s.resp[c];
        s.issued += 1;
        mach.poke_u64(resp, 0);
        let now = mach.now();
        fabric.rpc(mach, now, Cycles(REMOTE), resp, 1);
    });
    let st2 = Rc::clone(&st);
    m.register_hcall(HCALL_DONE, move |_mach, _tid| {
        st2.borrow_mut().goodput += 1;
    });

    m.run_for(duration);
    m.check_invariants(); // force a final check of the end state

    let s = st.borrow();
    let recovery = sup.recovery_latency();
    let report = m.invariant_report().clone();
    let faults: u64 = m
        .counters()
        .iter()
        .filter(|(k, _)| k.starts_with("fault."))
        .map(|(_, v)| v)
        .sum();

    // The run digest: every counter, every conservation ledger, the
    // final clock and the recovery histogram. Replaying a serialized
    // plan must land on exactly this value.
    let mut d = Digest::new();
    let mut all: Vec<(String, u64)> = m
        .counters()
        .iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect();
    all.sort();
    for (k, v) in &all {
        d.push_str(k);
        d.push_u64(*v);
    }
    d.push_u64(m.now().0);
    d.push_u64(s.issued);
    d.push_u64(s.goodput);
    for name in ["nic.rx", "ssd.cq", "fabric.rpc", "msix"] {
        let l = *m.ledger(name);
        d.push_u64(l.posted);
        d.push_u64(l.completed);
        d.push_u64(l.in_flight);
        d.push_u64(l.dropped);
    }
    d.push_u64(recovery.count());
    d.push_u64(recovery.min());
    d.push_u64(recovery.p50());
    d.push_u64(recovery.p99());
    d.push_u64(recovery.max());

    Ok(StormOutcome {
        issued: s.issued,
        goodput: s.goodput,
        faults,
        recovery,
        pardons: m.counters().get("supervisor.pardoned"),
        checks: report.checks(),
        violations: report.total(),
        first_violation: report.violations().first().map(|v| v.to_string()),
        digest: d.finish(),
        counters: m.counters().clone(),
    })
}

/// Runs one chaos plan with invariants on (the soak/replay entry point).
///
/// # Errors
///
/// Returns a structured [`SimError`] for a plan that fails
/// [`ChaosPlan::to_fault_plan`] validation.
pub fn run_plan(plan: &ChaosPlan) -> Result<StormOutcome, SimError> {
    run_storm(plan, false, 1)
}

/// [`run_plan`] with an explicit core-sharded engine budget
/// (`--machine-jobs`). Digests are identical for every value: storms run
/// with the invariant checker enabled, which pins the serial engine.
///
/// # Errors
///
/// Same contract as [`run_plan`].
pub fn run_plan_with_machine_jobs(
    plan: &ChaosPlan,
    machine_jobs: usize,
) -> Result<StormOutcome, SimError> {
    run_storm(plan, false, machine_jobs)
}

/// The strongest active fabric-loss rate at time `t` under `plan`.
fn loss_rate_at(plan: &ChaosPlan, t: u64) -> f64 {
    plan.bursts
        .iter()
        .filter(|b| b.kind == FaultKind::FabricLoss && b.from.0 <= t && t < b.to.0)
        .map(|b| b.rate)
        .fold(0.0, f64::max)
}

struct LegacyOutcome {
    goodput: u64,
    recovery: Histogram,
}

/// Legacy comparator under the same storm schedule: completions arrive
/// by interrupt; a response lost inside a storm window is only noticed
/// at the next software timer tick, then pays the IRQ + scheduler wakeup
/// path (modeled from [`LegacyCosts`], seeded from the plan).
fn run_legacy(plan: &ChaosPlan) -> LegacyOutcome {
    let costs = LegacyCosts::default();
    let wake = costs.blocked_wakeup_path(false).0;
    let rtt = Fabric::default().rtt().0;
    let mut rng = Rng::seed_from(plan.seed).fork(99);
    let mut recovery = Histogram::new();
    let mut goodput = 0u64;
    for _ in 0..CLIENTS {
        let mut t = 0u64;
        while t < plan.duration.0 {
            let rate = loss_rate_at(plan, t);
            if rate > 0.0 && rng.chance(rate) {
                let gap = rng.next_range(0, TICK - 1);
                recovery.record(gap + wake);
                t += DEADLINE + gap + wake;
            } else {
                goodput += 1;
                t += rtt + REMOTE + wake + 2 * costs.syscall_mode_switch.0;
            }
        }
    }
    LegacyOutcome { goodput, recovery }
}

/// Verifies the `--replay` contract for one plan: serialize with the
/// recorded digest, parse the artifact back, re-run, compare digests.
fn replay_round_trip(plan: &ChaosPlan, digest: u64) -> Result<(), String> {
    let mut stamped = plan.clone();
    stamped.digest = Some(digest);
    let parsed = ChaosPlan::parse(&stamped.to_text())
        .map_err(|e| format!("serialized plan failed to parse: {e}"))?;
    let rerun = run_plan(&parsed).map_err(|e| format!("replayed plan failed to run: {e}"))?;
    if rerun.digest != digest {
        return Err(format!(
            "replay digest {:016x} != recorded {:016x}",
            rerun.digest, digest
        ));
    }
    Ok(())
}

/// What a clean soak reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct SoakSummary {
    /// Plans executed (each also replayed from its artifact).
    pub plans: u64,
    /// Invariant checks run across all plans.
    pub checks: u64,
    /// Faults injected across all plans.
    pub faults: u64,
    /// Quarantined wards pardoned across all plans.
    pub pardons: u64,
}

/// Soaks `n` seeded chaos plans of `duration` cycles, invariants on,
/// replaying each from its serialized artifact.
///
/// # Errors
///
/// A violating plan is auto-shrunk to a minimal reproducer; the error
/// carries the shrunk `chaos-plan/v1` artifact so it can be saved and
/// handed to `--replay`. Replay digest mismatches also error.
pub fn soak(
    n: u64,
    base_seed: u64,
    duration: Cycles,
    mut progress: impl FnMut(&str),
) -> Result<SoakSummary, String> {
    let cfg = ChaosConfig::new(duration);
    let mut sum = SoakSummary::default();
    for i in 0..n {
        let seed = base_seed.wrapping_add(i);
        let plan = ChaosPlan::generate(seed, &cfg);
        let out = run_plan(&plan).map_err(|e| format!("plan seed={seed}: {e}"))?;
        if out.violations > 0 {
            let (min, stats) = shrink(&plan, |p| run_plan(p).is_ok_and(|o| o.violations > 0));
            let mut artifact = min.clone();
            artifact.digest = None;
            return Err(format!(
                "plan seed={seed} violated invariants ({}); shrunk to {} bursts \
                 in {} oracle calls — minimal reproducer:\n{}",
                out.first_violation.unwrap_or_default(),
                min.bursts.len(),
                stats.oracle_calls,
                artifact.to_text(),
            ));
        }
        replay_round_trip(&plan, out.digest).map_err(|e| format!("plan seed={seed}: {e}"))?;
        sum.plans += 1;
        sum.checks += out.checks;
        sum.faults += out.faults;
        sum.pardons += out.pardons;
        progress(&format!(
            "plan seed={seed} bursts={} faults={} goodput={} checks={} digest={:016x} replay=ok",
            plan.bursts.len(),
            out.faults,
            out.goodput,
            out.checks,
            out.digest
        ));
    }
    Ok(sum)
}

/// Replays a `chaos-plan/v1` artifact (the `--replay` CLI path).
///
/// # Errors
///
/// Returns a structured [`SimError`] — never panics — for a malformed or
/// corrupted artifact ([`SimError::Parse`] names the offending line and
/// field, [`SimError::FaultPlan`] the invalid burst), an invariant
/// violation, or — when the artifact records a digest — a digest
/// mismatch.
pub fn replay_text(text: &str) -> Result<String, SimError> {
    let plan = ChaosPlan::parse(text)?;
    let out = run_plan(&plan)?;
    let fail = |detail: String| SimError::Machine {
        context: "chaos replay",
        detail,
    };
    if out.violations > 0 {
        return Err(fail(format!(
            "{} invariant violations; first: {}",
            out.violations,
            out.first_violation.unwrap_or_default()
        )));
    }
    let verdict = match plan.digest {
        Some(d) if d == out.digest => " digest=match",
        Some(d) => {
            return Err(fail(format!(
                "digest mismatch: run {:016x}, artifact {d:016x}",
                out.digest
            )))
        }
        None => "",
    };
    Ok(format!(
        "replayed seed={} bursts={} faults={} goodput={} checks={} violations=0 \
         digest={:016x}{verdict}",
        plan.seed,
        plan.bursts.len(),
        out.faults,
        out.goodput,
        out.checks,
        out.digest
    ))
}

fn krps(completed: u64, duration: Cycles) -> f64 {
    completed as f64 / (duration.0 as f64 / FREQ.hz()) / 1e3
}

fn pcts(h: &Histogram) -> (String, String) {
    if h.count() == 0 {
        ("-".to_owned(), "-".to_owned())
    } else {
        (h.p50().to_string(), h.p99().to_string())
    }
}

/// Runs F17.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let duration = Cycles(if quick { 4_000_000 } else { 12_000_000 });
    let seeds: u64 = if quick { 4 } else { 10 };
    let cfg = ChaosConfig::new(duration);

    let mut t_soak = Table::new(
        "F17: chaos soak - goodput and recovery under composed fault storms",
        &[
            "plan",
            "bursts",
            "faults",
            "sw goodput (kRPC/s)",
            "legacy goodput (kRPC/s)",
            "sw/legacy",
            "sw rec p50 (cy)",
            "sw rec p99 (cy)",
            "legacy rec p50 (cy)",
            "pardons",
            "violations",
        ],
    );
    let mut t_replay = Table::new(
        "F17b: replay fidelity - serialized plans re-execute bit-identically",
        &["plan", "checks", "digest", "replay"],
    );
    let mut stormiest: Option<(u64, Counters)> = None;
    for i in 0..seeds {
        let seed = 1700 + i;
        let plan = ChaosPlan::generate(seed, &cfg);
        let sw = run_plan_with_machine_jobs(&plan, ctx.machine_jobs)
            .expect("generated chaos plans always validate");
        let lg = run_legacy(&plan);
        let (p50, p99) = pcts(&sw.recovery);
        let (lp50, _) = pcts(&lg.recovery);
        let swg = krps(sw.goodput, duration);
        let lgg = krps(lg.goodput, duration);
        t_soak.row_owned(vec![
            seed.to_string(),
            plan.bursts.len().to_string(),
            sw.faults.to_string(),
            fnum(swg),
            fnum(lgg),
            fnum(swg / lgg),
            p50,
            p99,
            lp50,
            sw.pardons.to_string(),
            sw.violations.to_string(),
        ]);
        let replay = match replay_round_trip(&plan, sw.digest) {
            Ok(()) => "bit-identical".to_owned(),
            Err(e) => e,
        };
        t_replay.row_owned(vec![
            seed.to_string(),
            sw.checks.to_string(),
            format!("{:016x}", sw.digest),
            replay,
        ]);
        if stormiest.as_ref().is_none_or(|(f, _)| sw.faults > *f) {
            stormiest = Some((sw.faults, sw.counters));
        }
    }
    t_soak.caption(
        "Seeded composed storms (all nine fault kinds, overlapping burst \
         windows) against the full stack: RPC clients under watchdogs, a \
         finite-retry supervisor with the quarantine->pardon fallback, \
         NIC/SSD/MSI-X background traffic. Machine-wide invariants \
         (descriptor-ring conservation, thread-state legality, \
         no-lost-wakeup, queue monotonicity) are checked at every time \
         advance: the violations column must read 0. Goodput holds near \
         the legacy-free ratio of F16 because recovery stays on the \
         watchdog path - storms cost legacy a ~100us timer tick per loss.",
    );
    t_replay.caption(
        "Each plan is serialized to its chaos-plan/v1 artifact (f64 rate \
         bits preserved exactly), parsed back, and re-run: the outcome \
         digest (all counters, ring ledgers, final clock, recovery \
         histogram) must match bit-for-bit. `experiments --replay FILE` \
         runs the same check on a saved artifact.",
    );
    let (_, counters) = stormiest.expect("at least one plan soaked");
    let audit = counters_table(
        "F17c: fault-injection audit (stormiest plan)",
        &counters,
        "fault.",
    );
    vec![t_soak, t_replay, audit]
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_sim::chaos::ChaosBurst;

    const TEST_DURATION: Cycles = Cycles(600_000);

    fn test_cfg() -> ChaosConfig {
        ChaosConfig::new(TEST_DURATION)
    }

    #[test]
    fn calm_plan_is_fault_free_and_deterministic() {
        let plan = ChaosPlan {
            seed: 3,
            duration: TEST_DURATION,
            devices: 1,
            bursts: Vec::new(),
            digest: None,
        };
        let a = run_plan(&plan).expect("calm plan runs");
        let b = run_plan(&plan).expect("calm plan runs");
        assert_eq!(a.faults, 0, "no bursts, no faults");
        assert_eq!(a.violations, 0);
        assert!(a.checks > 0, "invariants actually ran");
        assert!(a.goodput > 50, "clients actually ran: {}", a.goodput);
        assert_eq!(a.digest, b.digest, "same plan, same digest");
    }

    #[test]
    fn digests_do_not_depend_on_machine_jobs() {
        let plan = ChaosPlan::generate(23, &test_cfg());
        let serial = run_plan(&plan).expect("plan runs serially");
        let sharded = run_plan_with_machine_jobs(&plan, 4).expect("plan runs with machine-jobs 4");
        assert_eq!(
            serial.digest, sharded.digest,
            "chaos digests must be identical across --machine-jobs values"
        );
        assert_eq!(serial.violations, sharded.violations);
        assert_eq!(serial.goodput, sharded.goodput);
    }

    #[test]
    fn soak_of_100_plans_is_violation_free_and_replays() {
        let mut lines = 0u64;
        let sum = soak(100, 42, TEST_DURATION, |_| lines += 1)
            .expect("soak must be violation-free and replay bit-identically");
        assert_eq!(sum.plans, 100);
        assert_eq!(lines, 100);
        assert!(sum.checks > 100, "invariants ran in every plan");
        assert!(sum.faults > 0, "the storms actually stormed");
    }

    #[test]
    fn replay_text_round_trips_with_digest() {
        let plan = ChaosPlan::generate(7, &test_cfg());
        let out = run_plan(&plan).expect("generated plan runs");
        let mut stamped = plan.clone();
        stamped.digest = Some(out.digest);
        let msg = replay_text(&stamped.to_text()).expect("replay succeeds");
        assert!(msg.contains("digest=match"), "{msg}");
        // A corrupted digest must be rejected.
        stamped.digest = Some(out.digest ^ 1);
        let err = replay_text(&stamped.to_text()).unwrap_err();
        assert!(err.to_string().contains("digest mismatch"), "{err}");
    }

    #[test]
    fn replay_rejects_truncated_artifact_with_line_info() {
        let mut plan = ChaosPlan::generate(11, &test_cfg());
        plan.digest = Some(0xabcd);
        let text = plan.to_text();
        // Cut the artifact mid-way through its last burst line: keep
        // "burst <kind> <device> <from>" and drop the window end and rate.
        let burst_at = text.rfind("burst ").expect("plan has bursts");
        let kept: Vec<&str> = text[burst_at..].split_ascii_whitespace().take(4).collect();
        let truncated = format!("{}{}", &text[..burst_at], kept.join(" "));
        let err = replay_text(&truncated).unwrap_err();
        let line = 1 + text[..burst_at].matches('\n').count();
        match err {
            SimError::Parse {
                line: l,
                ref detail,
            } => {
                assert_eq!(l, line, "error names the truncated line: {detail}");
            }
            other => panic!("expected a parse error, got {other}"),
        }
    }

    #[test]
    fn replay_rejects_bit_flipped_rate_without_panicking() {
        let plan = ChaosPlan::generate(13, &test_cfg());
        let text = plan.to_text();
        // Flip the f64 sign bit of the first burst's rate: the artifact
        // still parses field-wise but now encodes a negative probability.
        let line_start = text.find("burst ").expect("plan has bursts");
        let line_end = text[line_start..].find('\n').unwrap() + line_start;
        let line = &text[line_start..line_end];
        let mut fields: Vec<&str> = line
            .split('#')
            .next()
            .unwrap()
            .split_ascii_whitespace()
            .collect();
        let bits = u64::from_str_radix(fields[5], 16).unwrap();
        let corrupt = format!("{:016x}", bits ^ (1 << 63));
        fields[5] = &corrupt;
        let mut flipped = text.clone();
        flipped.replace_range(line_start..line_end, &fields.join(" "));
        let err = replay_text(&flipped).unwrap_err();
        assert!(
            matches!(err, SimError::FaultPlan(_)),
            "negative rate must surface as a fault-plan error: {err}"
        );
    }

    #[test]
    fn replay_rejects_wrong_version_header() {
        let plan = ChaosPlan::generate(17, &test_cfg());
        let text = plan.to_text().replace("chaos-plan/v1", "chaos-plan/v2");
        let err = replay_text(&text).unwrap_err();
        match err {
            SimError::Parse {
                line: 1,
                ref detail,
            } => {
                assert!(detail.contains("chaos-plan/v1"), "{detail}");
            }
            other => panic!("expected a line-1 parse error, got {other}"),
        }
    }

    #[test]
    fn invalid_hand_built_plan_is_an_error_not_a_panic() {
        // Pre-fix, run_plan unwrapped to_fault_plan and panicked here.
        let plan = ChaosPlan {
            seed: 1,
            duration: TEST_DURATION,
            devices: 1,
            bursts: vec![ChaosBurst {
                kind: FaultKind::NicDrop,
                device: 0,
                rate: 0.5,
                from: Cycles(100),
                to: Cycles(100), // degenerate window
            }],
            digest: None,
        };
        let err = run_plan(&plan).unwrap_err();
        assert!(matches!(err, SimError::FaultPlan(_)), "{err}");
    }

    #[test]
    fn intentional_violation_shrinks_to_minimal_reproducer() {
        // A broad six-burst storm; the sabotage fixture trips on the
        // first fabric loss, so only the FabricLoss burst matters.
        let burst = |kind, rate, from: u64, to: u64| ChaosBurst {
            kind,
            device: 0,
            rate,
            from: Cycles(from),
            to: Cycles(to),
        };
        let plan = ChaosPlan {
            seed: 99,
            duration: TEST_DURATION,
            devices: 1,
            bursts: vec![
                burst(FaultKind::NicDrop, 0.5, 0, 600_000),
                burst(FaultKind::NicStall, 0.2, 300_000, 600_000),
                burst(FaultKind::SsdLatencySpike, 0.5, 100_000, 400_000),
                burst(FaultKind::FabricReorder, 0.3, 0, 300_000),
                burst(FaultKind::FabricLoss, 0.8, 200_000, 500_000),
                burst(FaultKind::MsixLostInterrupt, 0.5, 0, 600_000),
            ],
            digest: None,
        };
        let fails = |p: &ChaosPlan| run_storm(p, true, 1).is_ok_and(|o| o.violations > 0);
        assert!(fails(&plan), "fixture trips on the full storm");
        let healthy = run_plan(&plan).expect("plan validates");
        assert_eq!(healthy.violations, 0, "healthy invariants stay silent");
        let (min, stats) = shrink(&plan, fails);
        assert!(fails(&min), "shrunk plan still reproduces");
        assert_eq!(min.bursts.len(), 1, "only the loss burst survives: {min:?}");
        assert_eq!(min.bursts[0].kind, FaultKind::FabricLoss);
        assert!(
            min.bursts[0].to.0 - min.bursts[0].from.0 <= 300_000,
            "window never grows"
        );
        assert!(stats.oracle_calls > 0 && stats.removed == 5);
    }

    #[test]
    fn storms_exercise_quarantine_and_pardon() {
        // A sustained heavy loss storm exhausts the 3-retry budget and
        // the supervisor falls back to quarantine -> pardon.
        let plan = ChaosPlan {
            seed: 5,
            duration: Cycles(3_000_000),
            devices: 1,
            bursts: vec![ChaosBurst {
                kind: FaultKind::FabricLoss,
                device: 0,
                rate: 0.9,
                from: Cycles(0),
                to: Cycles(2_500_000),
            }],
            digest: None,
        };
        let out = run_plan(&plan).expect("plan validates");
        assert!(out.faults > 0);
        assert_eq!(out.violations, 0, "{:?}", out.first_violation);
        assert!(out.pardons > 0, "pardon fallback exercised");
        assert!(out.goodput > 0, "clients recover and make progress");
    }

    #[test]
    fn switchless_recovery_beats_legacy_under_storms() {
        let plan = ChaosPlan::generate(1701, &ChaosConfig::new(Cycles(4_000_000)));
        let sw = run_plan(&plan).expect("generated plan validates");
        let lg = run_legacy(&plan);
        if sw.recovery.count() == 0 || lg.recovery.count() == 0 {
            return; // this seed's storm never hit the fabric
        }
        assert!(
            sw.recovery.p99() < lg.recovery.p50(),
            "sw p99 {} should beat legacy p50 {}",
            sw.recovery.p99(),
            lg.recovery.p50()
        );
    }
}

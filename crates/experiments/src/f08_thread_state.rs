//! F8 — "Storage for Thread State" (§4), measured: thread-start latency
//! as a function of where the state lives, and how latency degrades as
//! the number of parked threads per core grows past the RF tier.
//!
//! The machine's default store holds 16 threads in the RF tier, 64 in
//! the L2 fraction and 512 in L3; waking threads round-robin with N >
//! tier capacity forces every wake to come from the next tier down.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_isa::asm::assemble;
use switchless_sim::report::{fnum, Table};
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

use crate::common::{cy_ns, FREQ};

/// Builds N park/wake worker threads, wakes them round-robin `rounds`
/// times, and returns the wake-latency histogram plus per-tier
/// activation counts.
fn measure_round_robin_wakes(n_threads: usize, rounds: usize) -> (Histogram, (u64, u64, u64, u64)) {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = n_threads + 8;
    let mut m = Machine::new(cfg);
    let mut mboxes = Vec::with_capacity(n_threads);
    for i in 0..n_threads {
        let mb = m.alloc(64);
        mboxes.push(mb);
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r1, 0
            loop:
                monitor {mb}
                ld r2, {mb}
                bne r2, r1, serve
                mwait
                jmp loop
            serve:
                mov r1, r2
                work 200
                jmp loop
            "#,
            base = 0x40000 + (i as u64) * 0x100,
            mb = mb,
        ))
        .expect("worker template");
        let tid = m.load_program(0, &prog).expect("load");
        m.start_thread(tid);
    }
    m.run_for(Cycles(200_000));
    m.reset_wake_latency();
    let base_stats = m.store_stats(0);

    let mut seq = vec![0u64; n_threads];
    for _round in 0..rounds {
        for (i, &mb) in mboxes.iter().enumerate() {
            seq[i] += 1;
            m.poke_u64(mb, seq[i]);
            m.run_for(Cycles(3_000));
        }
    }
    m.run_for(Cycles(100_000));
    let h = m.wake_latency().clone();
    let s = m.store_stats(0);
    (
        h,
        (
            s.0 - base_stats.0,
            s.1 - base_stats.1,
            s.2 - base_stats.2,
            s.3 - base_stats.3,
        ),
    )
}

/// Runs F8.
pub fn run(ctx: &crate::RunCtx) -> Vec<Table> {
    let quick = ctx.quick;
    let rounds = if quick { 2 } else { 6 };
    let mut t = Table::new(
        "F8: measured wake-to-dispatch latency vs parked threads per core",
        &[
            "threads",
            "p50",
            "p99",
            "mean (ns)",
            "acts rf",
            "acts l2",
            "acts l3",
            "acts dram",
        ],
    );
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let (h, (rf, l2, l3, dram)) = measure_round_robin_wakes(n, rounds);
        t.row_owned(vec![
            n.to_string(),
            cy_ns(h.p50()),
            cy_ns(h.p99()),
            fnum(FREQ.cycles_to_ns(Cycles(h.mean() as u64))),
            rf.to_string(),
            l2.to_string(),
            l3.to_string(),
            dram.to_string(),
        ]);
    }
    t.caption(
        "store tiers: 16 RF / 64 L2 / 512 L3 threads. expected shape: \
         wakes stay ~20cy while threads fit the RF tier, step to ~35cy \
         (L2) then ~55cy (L3) as the LRU set cycles through lower tiers — \
         still tens of ns, versus microseconds for a software switch",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_parked_threads() {
        let (small, _) = measure_round_robin_wakes(8, 2);
        let (large, acts) = measure_round_robin_wakes(64, 2);
        assert!(
            large.mean() > small.mean(),
            "64 threads {} <= 8 threads {}",
            large.mean(),
            small.mean()
        );
        // With 64 threads round-robin, every wake transfers from L2+
        // (the rf count is the post-prefetch pipeline refill).
        assert!(acts.1 + acts.2 + acts.3 >= acts.0, "tier mix {acts:?}");
        assert!(acts.1 + acts.2 + acts.3 > 0, "no tier transfers: {acts:?}");
    }

    #[test]
    fn rf_resident_wakes_stay_nanosecond_scale() {
        let (h, _) = measure_round_robin_wakes(8, 3);
        assert!(h.p50() <= 60, "p50 {} cycles", h.p50());
    }
}

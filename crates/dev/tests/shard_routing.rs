//! Cross-core completion routing under the core-sharded engine.
//!
//! Device completions (NIC DMA + tail bumps, MSI-X translated
//! interrupts) are host callbacks: the sharded engine must truncate its
//! epoch windows at each one, deliver it serially, route the resulting
//! wake to whichever core the monitoring thread lives on, and still
//! produce bit-identical machine state — while compute cores with
//! registered memory domains keep committing parallel epochs in the
//! gaps between completions.

use std::fmt::Write as _;

use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::ThreadId;
use switchless_dev::msix::MsixBridge;
use switchless_dev::nic::{Nic, NicConfig};
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

/// A consumer that parks on `watch` and counts wakeups in r3.
fn parker_src(base: u64, watch: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            movi r1, 0
        wait:
            monitor r0
            ld r2, {watch}
            bne r2, r1, fresh
            mwait
            jmp wait
        fresh:
            addi r1, r2, 0
            addi r3, r3, 1
            jmp wait
        "#
    )
}

/// Observable machine surface: counters, per-thread state, memory words.
fn fingerprint(m: &Machine, tids: &[ThreadId], words: &[u64]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "now={:?}", m.now());
    for (name, v) in m.counters().iter() {
        let _ = writeln!(s, "ctr {name}={v}");
    }
    for (i, &tid) in tids.iter().enumerate() {
        let regs: Vec<u64> = (0..8).map(|r| m.thread_reg(tid, r)).collect();
        let _ = writeln!(
            s,
            "t{i} state={:?} pc={:#x} billed={} regs={regs:?}",
            m.thread_state(tid),
            m.thread_pc(tid),
            m.billed_cycles(tid).0,
        );
    }
    for &w in words {
        let _ = writeln!(s, "word {w:#x}={}", m.peek_u64(w));
    }
    let _ = writeln!(s, "hist={:?}", m.wake_latency());
    s
}

/// Builds a 4-core machine: NIC consumer on core 0, MSI-X parker on
/// core 1, domain compute loops on cores 2 and 3; NIC RX and MSI-X
/// completion traffic throughout the run.
fn build(jobs: usize) -> (Machine, Vec<ThreadId>, Vec<u64>) {
    let mut cfg = MachineConfig::small();
    cfg.cores = 4;
    let mut m = Machine::new(cfg);
    m.set_machine_jobs(jobs);
    let mut tids = Vec::new();
    let mut words = Vec::new();

    let nic = Nic::try_attach(&mut m, NicConfig::default()).expect("nic attaches");
    let prog = assemble(&parker_src(0x20000, nic.rx_tail)).expect("nic parker");
    let tid = m.load_program(0, &prog).expect("load nic parker");
    m.start_thread(tid);
    tids.push(tid);
    words.push(nic.rx_tail);

    let msix_word = m.alloc(64);
    let mut bridge = MsixBridge::new();
    bridge.route(7, msix_word);
    let prog = assemble(&parker_src(0x24000, msix_word)).expect("msix parker");
    let tid = m.load_program(1, &prog).expect("load msix parker");
    m.start_thread(tid);
    tids.push(tid);
    words.push(msix_word);

    for c in 2..4usize {
        let buf = m.alloc(2048);
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r3, {buf}
                movi r4, {end}
            loop:
                ld r2, r3, 0
                addi r2, r2, {inc}
                st r2, r3, 0
                work {wk}
                addi r3, r3, 16
                addi r6, r6, 1
                blt r3, r4, loop
                movi r3, {buf}
                jmp loop
            "#,
            base = 0x28000 + (c as u64) * 0x4000,
            buf = buf,
            end = buf + 2048,
            inc = c,
            wk = 5 + 4 * c,
        ))
        .expect("compute program");
        let tid = m.load_program(c, &prog).expect("load compute");
        m.set_core_domain(c, buf, 2048);
        m.start_thread(tid);
        tids.push(tid);
        words.push(buf);
    }

    // Completion traffic: 30 NIC packets and 30 MSI-X raises, staggered
    // so they interleave with (and truncate) the compute epochs.
    for i in 0..30u64 {
        let payload = [i as u8 + 1; 24];
        nic.schedule_rx(&mut m, Cycles(3_000 + i * 2_100), i, &payload);
        let b = bridge.clone();
        m.at(Cycles(4_000 + i * 2_300), move |mach| b.raise(mach, 7));
    }
    (m, tids, words)
}

#[test]
fn completion_routing_matches_serial_engine() {
    let t = 120_000;
    let (mut serial, tids_s, words) = build(1);
    serial.run_until(Cycles(t));
    let want = fingerprint(&serial, &tids_s, &words);
    assert!(
        serial.counters().get("nic.rx.packets") == 30
            && serial.counters().get("msix.translated") == 30,
        "fixture must actually deliver completions"
    );

    for jobs in [2, 4] {
        let (mut par, tids_p, words_p) = build(jobs);
        par.run_until(Cycles(t));
        let got = fingerprint(&par, &tids_p, &words_p);
        assert_eq!(
            want, got,
            "machine-jobs {jobs} diverged under device completions"
        );
    }
    // And the engine did real parallel work between completions.
    let (mut par, _, _) = build(4);
    par.run_until(Cycles(t));
    let st = par.shard_stats();
    assert!(
        st.committed > 0,
        "compute cores should commit epochs between completions: {st:?}"
    );
}

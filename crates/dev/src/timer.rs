//! The local APIC timer, reimagined per §2: instead of raising a timer
//! interrupt, "the timer in the local APIC writes to the memory address
//! that its target hardware thread is waiting on" — each tick increments
//! a counter word.

use std::cell::Cell;
use std::rc::Rc;

use switchless_core::machine::Machine;
use switchless_sim::time::Cycles;

/// Handle to a running periodic timer. Dropping the handle does **not**
/// stop the timer; call [`ApicTimer::stop`].
#[derive(Clone, Debug)]
pub struct ApicTimer {
    /// Counter word the timer increments (the mwait target).
    pub counter_addr: u64,
    running: Rc<Cell<bool>>,
    ticks: Rc<Cell<u64>>,
}

impl ApicTimer {
    /// Starts a periodic timer that increments `counter_addr` every
    /// `period`, beginning at `first_tick`, for at most `max_ticks` ticks
    /// (a bound so simulations always drain).
    pub fn start_periodic(
        m: &mut Machine,
        counter_addr: u64,
        first_tick: Cycles,
        period: Cycles,
        max_ticks: u64,
    ) -> ApicTimer {
        assert!(period > Cycles::ZERO, "period must be positive");
        let timer = ApicTimer {
            counter_addr,
            running: Rc::new(Cell::new(true)),
            ticks: Rc::new(Cell::new(0)),
        };
        let t = timer.clone();
        schedule_tick(m, first_tick, period, max_ticks, t);
        timer
    }

    /// Stops the timer after the current tick.
    pub fn stop(&self) {
        self.running.set(false);
    }

    /// Ticks delivered so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks.get()
    }
}

fn schedule_tick(m: &mut Machine, at: Cycles, period: Cycles, remaining: u64, t: ApicTimer) {
    if remaining == 0 || !t.running.get() {
        return;
    }
    m.at(at, move |mach| {
        if !t.running.get() {
            return;
        }
        let v = mach.peek_u64(t.counter_addr).wrapping_add(1);
        // The APIC's write is an external memory write: it goes through
        // the same DMA path as device writes, waking any monitor.
        mach.dma_write(t.counter_addr, &v.to_le_bytes());
        t.ticks.set(t.ticks.get() + 1);
        mach.counters_mut().inc("timer.ticks");
        let next = at + period;
        schedule_tick(mach, next, period, remaining - 1, t);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;

    #[test]
    fn periodic_ticks_increment_counter() {
        let mut m = Machine::new(MachineConfig::small());
        let ctr = m.alloc(8);
        let t = ApicTimer::start_periodic(&mut m, ctr, Cycles(100), Cycles(1000), 100);
        m.run_for(Cycles(5_150));
        // Ticks at 100, 1100, 2100, 3100, 4100, 5100 = 6.
        assert_eq!(m.peek_u64(ctr), 6);
        assert_eq!(t.ticks(), 6);
    }

    #[test]
    fn stop_halts_future_ticks() {
        let mut m = Machine::new(MachineConfig::small());
        let ctr = m.alloc(8);
        let t = ApicTimer::start_periodic(&mut m, ctr, Cycles(100), Cycles(1000), 100);
        m.run_for(Cycles(1_500));
        t.stop();
        m.run_for(Cycles(100_000));
        assert_eq!(m.peek_u64(ctr), 2);
    }

    #[test]
    fn max_ticks_bounds_the_timer() {
        let mut m = Machine::new(MachineConfig::small());
        let ctr = m.alloc(8);
        ApicTimer::start_periodic(&mut m, ctr, Cycles(0), Cycles(10), 3);
        m.run_for(Cycles(100_000));
        assert_eq!(m.peek_u64(ctr), 3);
    }

    #[test]
    fn scheduler_thread_wakes_every_tick() {
        // The §2 "No More Interrupts" scheme: a kernel scheduler thread
        // mwaits on the APIC counter instead of taking timer IRQs.
        let mut m = Machine::new(MachineConfig::small());
        let ctr = m.alloc(8);
        let prog = assemble(&format!(
            r#"
            entry:
                movi r1, 0          ; wakeups handled
                movi r2, 3          ; quit after 3
            loop:
                monitor {ctr}
                mwait
                addi r1, r1, 1
                bne r1, r2, loop
                halt
            "#,
            ctr = ctr
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        ApicTimer::start_periodic(&mut m, ctr, Cycles(10_000), Cycles(10_000), 10);
        m.run_for(Cycles(200_000));
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
        assert_eq!(m.thread_reg(tid, 1), 3);
    }
}

//! A NIC model with an RX descriptor ring.
//!
//! Memory layout (all allocated from simulated memory by
//! [`Nic::attach`]):
//!
//! ```text
//! tail word:   u64 count of packets ever received (the mwait target —
//!              §3.1: "a network thread can wait on the RX queue tail
//!              until packet arrival")
//! desc ring:   slots of 16 bytes: [payload_addr: u64][len|seq: u64]
//! buffers:     per-slot payload buffers
//! ```
//!
//! On packet arrival the device DMAs the payload into the slot buffer,
//! writes the descriptor, and finally bumps the tail word — the write
//! order real NICs use so that a consumer woken by the tail bump always
//! observes a complete descriptor.

use switchless_core::machine::Machine;
use switchless_sim::error::SimError;
use switchless_sim::fault::FaultKind;
use switchless_sim::time::Cycles;

/// Bytes per RX descriptor slot.
pub const RX_DESC_BYTES: u64 = 16;

/// NIC geometry.
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    /// Number of RX descriptor slots (must be a power of two).
    pub rx_slots: u64,
    /// Bytes per packet buffer.
    pub buf_bytes: u64,
    /// DMA latency from wire arrival to tail bump.
    pub dma_latency: Cycles,
}

impl Default for NicConfig {
    fn default() -> NicConfig {
        NicConfig {
            rx_slots: 256,
            buf_bytes: 256,
            dma_latency: Cycles(300), // ~100ns PCIe/DMA at 3GHz
        }
    }
}

/// An attached NIC instance.
///
/// The struct is plain data: all activity happens through scheduled
/// machine callbacks, so a `Nic` can be freely copied into closures.
#[derive(Clone, Copy, Debug)]
pub struct Nic {
    config: NicConfig,
    /// Address of the RX tail counter word.
    pub rx_tail: u64,
    /// Base of the descriptor ring.
    pub ring_base: u64,
    /// Base of the packet buffers.
    pub buf_base: u64,
}

impl Nic {
    /// Allocates ring memory on the machine and returns the device.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`NicConfig`]; [`Nic::try_attach`] is the
    /// non-panicking variant chaos harnesses use.
    pub fn attach(m: &mut Machine, config: NicConfig) -> Nic {
        Nic::try_attach(m, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating [`Nic::attach`]: rejects a ring size that is not a
    /// nonzero power of two or an empty packet buffer with a structured
    /// error instead of panicking.
    pub fn try_attach(m: &mut Machine, config: NicConfig) -> Result<Nic, SimError> {
        if !config.rx_slots.is_power_of_two() {
            return Err(SimError::Config {
                context: "nic",
                detail: format!(
                    "rx_slots {} must be a nonzero power of two",
                    config.rx_slots
                ),
            });
        }
        if config.buf_bytes == 0 {
            return Err(SimError::Config {
                context: "nic",
                detail: "buf_bytes must be nonzero".into(),
            });
        }
        let rx_tail = m.alloc(64); // own cache line: no false sharing
        let ring_base = m.alloc(config.rx_slots * RX_DESC_BYTES);
        let buf_base = m.alloc(config.rx_slots * config.buf_bytes);
        Ok(Nic {
            config,
            rx_tail,
            ring_base,
            buf_base,
        })
    }

    /// Address of descriptor slot `seq`.
    #[must_use]
    pub fn desc_addr(&self, seq: u64) -> u64 {
        self.ring_base + (seq & (self.config.rx_slots - 1)) * RX_DESC_BYTES
    }

    /// Address of the payload buffer for slot `seq`.
    #[must_use]
    pub fn buf_addr(&self, seq: u64) -> u64 {
        self.buf_base + (seq & (self.config.rx_slots - 1)) * self.config.buf_bytes
    }

    /// Schedules arrival of packet number `seq` (the caller keeps the
    /// monotone sequence) with `payload` at absolute time `at`.
    ///
    /// The DMA completes (and the tail bumps) at `at + dma_latency`.
    ///
    /// Fault injection (when a plan is installed on the machine):
    /// [`FaultKind::NicDrop`] eats the packet on the wire — no DMA, no
    /// descriptor, no tail bump, only a sequence gap the driver can
    /// detect. [`FaultKind::NicCorrupt`] flips the first payload byte, so
    /// a checksumming driver sees the damage. [`FaultKind::NicStall`]
    /// delays delivery; because a stalled packet may land after its
    /// successors, the tail bump is monotone (never rewound), and the
    /// stalled slot briefly holds a stale descriptor — exactly the
    /// mismatch a seq-validating driver retries on.
    pub fn schedule_rx(&self, m: &mut Machine, at: Cycles, seq: u64, payload: &[u8]) {
        let nic = *self;
        let len = payload.len().min(nic.config.buf_bytes as usize);
        let mut payload: Vec<u8> = payload[..len].to_vec();
        // Ring conservation: posted here; the other side of the ledger
        // is booked on the drop path below or at delivery.
        let led = m.ledger("nic.rx");
        led.posted += 1;
        led.in_flight += 1;
        if m.fault_draw(FaultKind::NicDrop) {
            let led = m.ledger("nic.rx");
            led.in_flight -= 1;
            led.dropped += 1;
            return;
        }
        if m.fault_draw(FaultKind::NicCorrupt) {
            if let Some(b) = payload.first_mut() {
                *b ^= 0xff;
            }
        }
        let mut deliver_at = at + nic.config.dma_latency;
        if m.fault_draw(FaultKind::NicStall) {
            deliver_at += m.fault_delay(FaultKind::NicStall);
        }
        m.at(deliver_at, move |mach| {
            // 1. payload
            mach.dma_write(nic.buf_addr(seq), &payload);
            // 2. descriptor: [buf addr][len<<32 | seq low bits]
            let mut desc = [0u8; RX_DESC_BYTES as usize];
            desc[..8].copy_from_slice(&nic.buf_addr(seq).to_le_bytes());
            desc[8..].copy_from_slice(
                &(((payload.len() as u64) << 32) | (seq & 0xffff_ffff)).to_le_bytes(),
            );
            mach.dma_write(nic.desc_addr(seq), &desc);
            // 3. tail bump — the consumer's wakeup. Monotone so a stalled
            // straggler never rewinds the tail past delivered successors.
            let tail = (seq + 1).max(mach.peek_u64(nic.rx_tail));
            mach.dma_write(nic.rx_tail, &tail.to_le_bytes());
            // Stats.
            mach.counters_mut().inc("nic.rx.packets");
            let led = mach.ledger("nic.rx");
            led.in_flight -= 1;
            led.completed += 1;
        });
    }

    /// Reads the current tail value (host-side, for tests).
    #[must_use]
    pub fn tail(&self, m: &Machine) -> u64 {
        m.peek_u64(self.rx_tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;
    use switchless_sim::fault::FaultPlan;

    #[test]
    fn rx_bumps_tail_and_writes_descriptor() {
        let mut m = Machine::new(MachineConfig::small());
        let nic = Nic::attach(&mut m, NicConfig::default());
        nic.schedule_rx(&mut m, Cycles(100), 0, b"hello");
        nic.schedule_rx(&mut m, Cycles(200), 1, b"world");
        m.run_for(Cycles(10_000));
        assert_eq!(nic.tail(&m), 2);
        let d0 = m.peek_u64(nic.desc_addr(0));
        assert_eq!(d0, nic.buf_addr(0));
        let meta = m.peek_u64(nic.desc_addr(0) + 8);
        assert_eq!(meta >> 32, 5); // len("hello")
        assert_eq!(m.counters().get("nic.rx.packets"), 2);
    }

    #[test]
    fn waiting_thread_wakes_on_packet() {
        let mut m = Machine::new(MachineConfig::small());
        let nic = Nic::attach(&mut m, NicConfig::default());
        let prog = assemble(&format!(
            r#"
            entry:
                monitor {tail}
                mwait
                ld r1, {tail}
                halt
            "#,
            tail = nic.rx_tail
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        m.run_for(Cycles(2_000));
        assert_eq!(m.thread_state(tid), ThreadState::Waiting);
        let now = m.now();
        nic.schedule_rx(&mut m, now, 0, &[0xab; 64]);
        m.run_for(Cycles(10_000));
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
        assert_eq!(m.thread_reg(tid, 1), 1, "saw tail = 1");
    }

    #[test]
    fn drop_fault_leaves_no_trace_but_a_gap() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(FaultPlan::new(1).with_rate(FaultKind::NicDrop, 1.0));
        let nic = Nic::attach(&mut m, NicConfig::default());
        for seq in 0..3 {
            nic.schedule_rx(&mut m, Cycles(100 * (seq + 1)), seq, b"gone");
        }
        m.run_for(Cycles(10_000));
        assert_eq!(nic.tail(&m), 0, "dropped packets never bump the tail");
        assert_eq!(m.counters().get("nic.rx.packets"), 0);
        assert_eq!(m.counters().get("fault.nic.drop"), 3);
    }

    #[test]
    fn corrupt_fault_flips_first_payload_byte() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(FaultPlan::new(2).with_rate(FaultKind::NicCorrupt, 1.0));
        let nic = Nic::attach(&mut m, NicConfig::default());
        nic.schedule_rx(&mut m, Cycles(100), 0, &[0x11, 0x22, 0x33]);
        m.run_for(Cycles(10_000));
        assert_eq!(nic.tail(&m), 1, "corrupt packets still deliver");
        let word = m.peek_u64(nic.buf_addr(0));
        assert_eq!(word & 0xff, 0x11 ^ 0xff, "first byte flipped");
        assert_eq!((word >> 8) & 0xff, 0x22, "rest untouched");
        assert_eq!(m.counters().get("fault.nic.corrupt"), 1);
    }

    #[test]
    fn stalled_straggler_cannot_rewind_tail() {
        let mut m = Machine::new(MachineConfig::small());
        // Stall only draws in cycle [0,1): packet 0 stalls, packet 1 is
        // scheduled at cycle 1 and sails through.
        m.install_fault_plan(
            FaultPlan::new(3)
                .with_rate(FaultKind::NicStall, 1.0)
                .with_window(FaultKind::NicStall, Cycles(0), Cycles(1))
                .with_delay(FaultKind::NicStall, Cycles(10_000), Cycles(10_000)),
        );
        let nic = Nic::attach(&mut m, NicConfig::default());
        nic.schedule_rx(&mut m, Cycles(0), 0, b"late");
        m.run_for(Cycles(1));
        let now = m.now();
        nic.schedule_rx(&mut m, now, 1, b"ontime");
        m.run_for(Cycles(2_000));
        assert_eq!(nic.tail(&m), 2, "on-time successor delivered");
        assert_eq!(m.counters().get("nic.rx.packets"), 1);
        m.run_for(Cycles(20_000));
        assert_eq!(nic.tail(&m), 2, "straggler did not rewind the tail");
        assert_eq!(m.counters().get("nic.rx.packets"), 2, "straggler landed");
        assert_eq!(m.counters().get("fault.nic.stall"), 1);
    }

    #[test]
    fn zero_rate_plan_is_invisible() {
        // An installed plan with rate 0 must be byte-identical to no plan.
        let run = |plan: bool| -> (u64, u64, u64) {
            let mut m = Machine::new(MachineConfig::small());
            if plan {
                m.install_fault_plan(FaultPlan::new(9));
            }
            let nic = Nic::attach(&mut m, NicConfig::default());
            for seq in 0..16 {
                nic.schedule_rx(&mut m, Cycles(500 * seq), seq, &[seq as u8; 32]);
            }
            m.run_for(Cycles(100_000));
            (
                nic.tail(&m),
                m.counters().get("nic.rx.packets"),
                m.peek_u64(nic.buf_addr(7)),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn bad_config_is_a_structured_error() {
        let mut m = Machine::new(MachineConfig::small());
        let err = Nic::try_attach(
            &mut m,
            NicConfig {
                rx_slots: 3,
                ..NicConfig::default()
            },
        );
        assert!(err.is_err());
        let msg = err.err().map(|e| e.to_string()).unwrap_or_default();
        assert!(msg.contains("rx_slots 3"), "{msg}");
    }

    #[test]
    fn ring_ledger_balances_under_drops_and_stalls() {
        // Every posted packet must end up completed, in flight, or
        // deliberately dropped — the machine-wide checker verifies the
        // ledger at every boundary while faults eat and delay packets.
        let mut m = Machine::new(MachineConfig::small());
        m.enable_invariants(true);
        m.install_fault_plan(
            FaultPlan::new(11)
                .with_rate(FaultKind::NicDrop, 0.3)
                .with_rate(FaultKind::NicStall, 0.3)
                .with_delay(FaultKind::NicStall, Cycles(5_000), Cycles(50_000)),
        );
        let nic = Nic::attach(&mut m, NicConfig::default());
        for seq in 0..64 {
            nic.schedule_rx(&mut m, Cycles(200 * seq), seq, &[seq as u8; 16]);
        }
        m.run_for(Cycles(500_000));
        m.check_invariants();
        assert!(
            m.invariant_report().is_clean(),
            "violations: {:?}",
            m.invariant_report().violations()
        );
        let led = m.ledger("nic.rx");
        assert_eq!(led.posted, 64);
        assert!(led.dropped > 0, "the drop rate did fire");
        assert_eq!(led.in_flight, 0, "everything settled");
        assert!(led.balanced());
    }

    #[test]
    fn ring_wraps() {
        let mut m = Machine::new(MachineConfig::small());
        let nic = Nic::attach(
            &mut m,
            NicConfig {
                rx_slots: 4,
                ..NicConfig::default()
            },
        );
        assert_eq!(nic.desc_addr(0), nic.desc_addr(4));
        assert_eq!(nic.buf_addr(1), nic.buf_addr(5));
        assert_ne!(nic.desc_addr(1), nic.desc_addr(2));
    }
}

/// Bytes per TX descriptor slot: `[payload_addr: u64][len|seq: u64]`.
pub const TX_DESC_BYTES: u64 = 16;

/// The transmit half of the NIC: the driver writes descriptors into the
/// TX ring and stores the new tail to the **doorbell** (an MMIO write —
/// the device reacts immediately); after the wire latency the device
/// bumps the TX-completion word, which a driver thread can `mwait` on.
#[derive(Clone, Copy, Debug)]
pub struct NicTx {
    /// Number of TX descriptor slots (power of two).
    pub tx_slots: u64,
    /// Base of the TX descriptor ring (driver writes descriptors here).
    pub ring_base: u64,
    /// Doorbell word: the driver stores the new ring tail here.
    pub doorbell: u64,
    /// Completion counter word: packets fully transmitted (mwait here).
    pub tx_done: u64,
    /// Wire + serialization latency per packet.
    pub tx_latency: Cycles,
}

impl NicTx {
    /// Allocates the TX ring and registers the doorbell MMIO hook.
    ///
    /// # Panics
    ///
    /// Panics if `tx_slots` is not a power of two; [`NicTx::try_attach`]
    /// is the non-panicking variant.
    pub fn attach(m: &mut Machine, tx_slots: u64, tx_latency: Cycles) -> NicTx {
        NicTx::try_attach(m, tx_slots, tx_latency).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating [`NicTx::attach`] with a structured error.
    pub fn try_attach(
        m: &mut Machine,
        tx_slots: u64,
        tx_latency: Cycles,
    ) -> Result<NicTx, SimError> {
        if !tx_slots.is_power_of_two() {
            return Err(SimError::Config {
                context: "nic tx",
                detail: format!("tx_slots {tx_slots} must be a nonzero power of two"),
            });
        }
        let ring_base = m.alloc(tx_slots * TX_DESC_BYTES);
        let doorbell = m.alloc(64);
        let tx_done = m.alloc(64);
        let tx = NicTx {
            tx_slots,
            ring_base,
            doorbell,
            tx_done,
            tx_latency,
        };
        // The device state: how far it has consumed the ring.
        let consumed = std::rc::Rc::new(std::cell::Cell::new(0u64));
        m.register_mmio(doorbell, move |mach, tail| {
            let mut seq = consumed.get();
            while seq < tail {
                // Consume one descriptor; completion lands after the
                // wire latency, in ring order.
                let gap = seq - consumed.get();
                let done_at = mach.now() + tx.tx_latency * (gap + 1);
                let done_word = tx.tx_done;
                let this = seq + 1;
                let led = mach.ledger("nic.tx");
                led.posted += 1;
                led.in_flight += 1;
                mach.at(done_at, move |inner| {
                    inner.dma_write(done_word, &this.to_le_bytes());
                    inner.counters_mut().inc("nic.tx.packets");
                    let led = inner.ledger("nic.tx");
                    led.in_flight -= 1;
                    led.completed += 1;
                });
                seq += 1;
            }
            consumed.set(seq);
        });
        Ok(tx)
    }

    /// Address of TX descriptor slot `seq`.
    #[must_use]
    pub fn desc_addr(&self, seq: u64) -> u64 {
        self.ring_base + (seq & (self.tx_slots - 1)) * TX_DESC_BYTES
    }

    /// Completed-transmission count (host-side).
    #[must_use]
    pub fn done(&self, m: &Machine) -> u64 {
        m.peek_u64(self.tx_done)
    }
}

#[cfg(test)]
mod tx_tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;

    #[test]
    fn doorbell_store_transmits_and_completes() {
        let mut m = Machine::new(MachineConfig::small());
        let tx = NicTx::attach(&mut m, 16, Cycles(1_000));
        // Host-side driver: publish 3 descriptors, ring the doorbell.
        for seq in 0..3u64 {
            m.poke_u64(tx.desc_addr(seq), 0xbeef);
        }
        m.poke_u64(tx.doorbell, 3);
        m.run_for(Cycles(500));
        assert_eq!(tx.done(&m), 0, "wire latency not yet elapsed");
        m.run_for(Cycles(5_000));
        assert_eq!(tx.done(&m), 3);
        assert_eq!(m.counters().get("nic.tx.packets"), 3);
    }

    #[test]
    fn driver_thread_sends_and_blocks_for_completion() {
        // The full §2 send path in assembly: write descriptor, ring the
        // doorbell (an ordinary store), mwait on the completion word.
        let mut m = Machine::new(MachineConfig::small());
        let tx = NicTx::attach(&mut m, 16, Cycles(2_000));
        let prog = assemble(&format!(
            r#"
            entry:
                movi r3, {desc}
                movi r1, 0xab
                st r1, r3, 0        ; descriptor: payload addr
                st r1, r3, 8        ; descriptor: len|seq
                movi r2, 1
                st r2, {bell}       ; doorbell: tail = 1 (device reacts)
            wait:
                monitor {done}
                ld r4, {done}
                beq r4, r2, sent
                mwait
                jmp wait
            sent:
                halt
            "#,
            desc = tx.desc_addr(0),
            bell = tx.doorbell,
            done = tx.tx_done,
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        // After issuing the send the driver parks rather than spinning.
        assert!(m.run_until_state(tid, ThreadState::Waiting, Cycles(100_000)));
        assert_eq!(tx.done(&m), 0, "parked before the wire latency elapsed");
        assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(100_000)));
        assert_eq!(tx.done(&m), 1);
        // Billed cycles are setup costs (cold caches), not busy-waiting:
        // well under send setup + wire latency.
        assert!(
            m.billed_cycles(tid).0 < 2_000,
            "driver burned {} cycles",
            m.billed_cycles(tid).0
        );
    }

    #[test]
    fn completions_arrive_in_ring_order() {
        let mut m = Machine::new(MachineConfig::small());
        let tx = NicTx::attach(&mut m, 8, Cycles(500));
        m.poke_u64(tx.doorbell, 2);
        m.run_for(Cycles(600));
        assert_eq!(tx.done(&m), 1, "first completion after one latency");
        m.run_for(Cycles(500));
        assert_eq!(tx.done(&m), 2);
        // A later doorbell continues the sequence.
        m.poke_u64(tx.doorbell, 3);
        m.run_for(Cycles(1_000));
        assert_eq!(tx.done(&m), 3);
    }
}

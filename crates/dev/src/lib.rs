//! Device models for the `switchless` machine.
//!
//! The paper's §2 use cases revolve around I/O devices that notify
//! software by **writing memory** (which the generalized `monitor`
//! observes) instead of raising interrupts:
//!
//! * [`nic`] — a NIC with an RX descriptor ring: packet arrival DMAs the
//!   payload and descriptor, then bumps the ring tail word that an I/O
//!   thread `mwait`s on (§2 "Fast I/O without Inefficient Polling").
//! * [`ssd`] — an NVMe-style SSD: submissions complete after a modeled
//!   device latency by DMA-writing a completion entry and bumping the
//!   completion-queue tail.
//! * [`timer`] — the per-core APIC timer, §2-style: "the timer in the
//!   local APIC writes to the memory address that its target hardware
//!   thread is waiting on".
//! * [`msix`] — the legacy-device bridge: §4 requires hardware to
//!   "translate external interrupts to memory writes (similar to PCIe
//!   MSI-x functionality)".
//! * [`fabric`] — a network fabric model used by the distributed-runtime
//!   experiments: remote RPCs complete by DMA after a round-trip latency.
//!
//! All devices drive the machine exclusively through its public host API
//! ([`switchless_core::Machine::at`] and
//! [`switchless_core::Machine::dma_write`]), exactly as external agents
//! should: the only effect a device has on a CPU is a memory write.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fabric;
pub mod msix;
pub mod nic;
pub mod ssd;
pub mod timer;

pub use fabric::Fabric;
pub use nic::{Nic, NicConfig, RX_DESC_BYTES};
pub use ssd::{Ssd, SsdConfig};
pub use timer::ApicTimer;

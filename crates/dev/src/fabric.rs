//! A network fabric model for distributed-programming experiments
//! (§2 "Simpler Distributed Programming").
//!
//! Remote nodes are modeled by their response behaviour: an RPC issued
//! into the fabric completes after `rtt + remote service time` by writing
//! the response word the calling thread `mwait`s on. This captures
//! exactly what the paper's argument needs — many blocking threads hiding
//! inter-node latency — without simulating a second machine.

use switchless_core::machine::Machine;
use switchless_sim::fault::FaultKind;
use switchless_sim::time::Cycles;

/// Fabric latency parameters.
#[derive(Clone, Copy, Debug)]
pub struct Fabric {
    /// One-way wire+switch latency. 2 µs at 3 GHz = 6000 cycles.
    pub one_way: Cycles,
}

impl Default for Fabric {
    fn default() -> Fabric {
        Fabric {
            one_way: Cycles(6_000),
        }
    }
}

impl Fabric {
    /// Issues an RPC at `at`: after `2 * one_way + remote_service`, the
    /// fabric DMA-writes `response_value` to `response_addr`.
    ///
    /// Fault injection (when a plan is installed on the machine):
    /// [`FaultKind::FabricLoss`] loses the response outright — the caller
    /// never hears back, which is what makes per-thread watchdogs
    /// necessary. [`FaultKind::FabricReorder`] delays the response by a
    /// drawn skew, so it lands after later responses.
    pub fn rpc(
        &self,
        m: &mut Machine,
        at: Cycles,
        remote_service: Cycles,
        response_addr: u64,
        response_value: u64,
    ) {
        // RPC conservation: every issue is answered or deliberately lost.
        let led = m.ledger("fabric.rpc");
        led.posted += 1;
        led.in_flight += 1;
        if m.fault_draw(FaultKind::FabricLoss) {
            let led = m.ledger("fabric.rpc");
            led.in_flight -= 1;
            led.dropped += 1;
            return;
        }
        let mut done = at + self.one_way + remote_service + self.one_way;
        if m.fault_draw(FaultKind::FabricReorder) {
            done += m.fault_delay(FaultKind::FabricReorder);
        }
        m.at(done, move |mach| {
            mach.dma_write(response_addr, &response_value.to_le_bytes());
            mach.counters_mut().inc("fabric.rpc.completed");
            let led = mach.ledger("fabric.rpc");
            led.in_flight -= 1;
            led.completed += 1;
        });
    }

    /// Round-trip time excluding remote service.
    #[must_use]
    pub fn rtt(&self) -> Cycles {
        self.one_way * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;
    use switchless_sim::fault::FaultPlan;

    #[test]
    fn rpc_completes_after_rtt_plus_service() {
        let mut m = Machine::new(MachineConfig::small());
        let f = Fabric {
            one_way: Cycles(1000),
        };
        let resp = m.alloc(8);
        f.rpc(&mut m, Cycles(0), Cycles(500), resp, 42);
        m.run_for(Cycles(2_499));
        assert_eq!(m.peek_u64(resp), 0);
        m.run_for(Cycles(2));
        assert_eq!(m.peek_u64(resp), 42);
        assert_eq!(m.counters().get("fabric.rpc.completed"), 1);
    }

    #[test]
    fn lost_response_never_arrives() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(FaultPlan::new(7).with_rate(FaultKind::FabricLoss, 1.0));
        let f = Fabric::default();
        let resp = m.alloc(8);
        f.rpc(&mut m, Cycles(0), Cycles(500), resp, 42);
        m.run_for(Cycles(1_000_000));
        assert_eq!(m.peek_u64(resp), 0, "response lost on the wire");
        assert_eq!(m.counters().get("fabric.rpc.completed"), 0);
        assert_eq!(m.counters().get("fault.fabric.loss"), 1);
    }

    #[test]
    fn reordered_response_arrives_late() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(
            FaultPlan::new(8)
                .with_rate(FaultKind::FabricReorder, 1.0)
                .with_delay(FaultKind::FabricReorder, Cycles(20_000), Cycles(20_000)),
        );
        let f = Fabric {
            one_way: Cycles(1_000),
        };
        let resp = m.alloc(8);
        f.rpc(&mut m, Cycles(0), Cycles(500), resp, 42);
        m.run_for(Cycles(10_000));
        assert_eq!(m.peek_u64(resp), 0, "still skewed");
        m.run_for(Cycles(15_000));
        assert_eq!(m.peek_u64(resp), 42);
        assert_eq!(m.counters().get("fault.fabric.reorder"), 1);
    }

    #[test]
    fn blocking_thread_hides_latency_with_mwait() {
        let mut m = Machine::new(MachineConfig::small());
        let f = Fabric::default();
        let resp = m.alloc(8);
        let prog = assemble(&format!(
            r#"
            entry:
                monitor {resp}
                mwait
                ld r1, {resp}
                halt
            "#,
            resp = resp
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        m.run_for(Cycles(1_000));
        let now = m.now();
        f.rpc(&mut m, now, Cycles(3_000), resp, 7);
        m.run_for(Cycles(50_000));
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
        assert_eq!(m.thread_reg(tid, 1), 7);
    }
}

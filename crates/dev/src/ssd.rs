//! An NVMe-style SSD model: submission → modeled device latency →
//! completion DMA + completion-queue tail bump.
//!
//! The kernel (or an application I/O thread) submits commands through the
//! host API; the device answers by writing a completion entry and bumping
//! the CQ tail word — the address an I/O thread `mwait`s on. This is the
//! storage-side twin of the NIC RX path and drives the "fast I/O without
//! polling" experiments for storage-like latencies (ReFlex `[49]`, i10
//! `[40]` motivate the paper's argument).

use switchless_core::machine::Machine;
use switchless_sim::error::SimError;
use switchless_sim::fault::FaultKind;
use switchless_sim::time::Cycles;

/// Bytes per completion-queue entry.
pub const CQ_ENTRY_BYTES: u64 = 16;

/// Status bit set in a completion entry's sequence word when the command
/// failed on the device (media error on a read). The low bits still hold
/// the sequence number.
pub const CQ_STATUS_ERROR: u64 = 1 << 63;

/// SSD parameters.
#[derive(Clone, Copy, Debug)]
pub struct SsdConfig {
    /// Completion-queue slots (power of two).
    pub cq_slots: u64,
    /// Device-internal latency for a read command (modern NVMe ~10 µs;
    /// fast NVM ~ 3 µs). 30_000 cycles = 10 µs at 3 GHz.
    pub read_latency: Cycles,
    /// Device-internal latency for a write command.
    pub write_latency: Cycles,
}

impl Default for SsdConfig {
    fn default() -> SsdConfig {
        SsdConfig {
            cq_slots: 256,
            read_latency: Cycles(30_000),
            write_latency: Cycles(60_000),
        }
    }
}

/// Command kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SsdOp {
    /// Read `len` bytes of (synthetic) data into `buf_addr`.
    Read {
        /// Destination buffer in simulated memory.
        buf_addr: u64,
        /// Bytes to read.
        len: u64,
    },
    /// Write (data content is not modeled; only timing).
    Write,
}

/// An attached SSD.
#[derive(Clone, Copy, Debug)]
pub struct Ssd {
    config: SsdConfig,
    /// Address of the completion-queue tail counter word.
    pub cq_tail: u64,
    /// Base of the completion entries.
    pub cq_base: u64,
}

impl Ssd {
    /// Allocates queue memory and returns the device.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`SsdConfig`]; [`Ssd::try_attach`] is the
    /// non-panicking variant.
    pub fn attach(m: &mut Machine, config: SsdConfig) -> Ssd {
        Ssd::try_attach(m, config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating [`Ssd::attach`] with a structured error.
    pub fn try_attach(m: &mut Machine, config: SsdConfig) -> Result<Ssd, SimError> {
        if !config.cq_slots.is_power_of_two() {
            return Err(SimError::Config {
                context: "ssd",
                detail: format!(
                    "cq_slots {} must be a nonzero power of two",
                    config.cq_slots
                ),
            });
        }
        let cq_tail = m.alloc(64);
        let cq_base = m.alloc(config.cq_slots * CQ_ENTRY_BYTES);
        Ok(Ssd {
            config,
            cq_tail,
            cq_base,
        })
    }

    /// Address of completion entry `seq`.
    #[must_use]
    pub fn cq_addr(&self, seq: u64) -> u64 {
        self.cq_base + (seq & (self.config.cq_slots - 1)) * CQ_ENTRY_BYTES
    }

    /// Submits command number `seq` with user cookie `cookie` at time
    /// `at`; the completion lands after the op's device latency.
    ///
    /// Fault injection (when a plan is installed on the machine):
    /// [`FaultKind::SsdLatencySpike`] adds a drawn pause (GC/error
    /// recovery) to the device latency. [`FaultKind::SsdReadError`] fails
    /// a read on the media: no data DMA, and the completion's sequence
    /// word carries [`CQ_STATUS_ERROR`]. [`FaultKind::SsdTornCompletion`]
    /// tears the completion entry: cookie and tail bump land on time but
    /// the sequence word lands late, so a consumer woken by the tail
    /// briefly reads a stale sequence word — which is why drivers
    /// validate it and re-read. The tail bump is monotone so delayed
    /// completions never rewind it.
    pub fn submit(&self, m: &mut Machine, at: Cycles, seq: u64, op: SsdOp, cookie: u64) {
        let dev = *self;
        // Ring conservation: every submission must complete (even a media
        // error posts its completion entry) — the SSD never drops.
        let led = m.ledger("ssd.cq");
        led.posted += 1;
        led.in_flight += 1;
        let mut latency = match op {
            SsdOp::Read { .. } => dev.config.read_latency,
            SsdOp::Write => dev.config.write_latency,
        };
        if m.fault_draw(FaultKind::SsdLatencySpike) {
            latency += m.fault_delay(FaultKind::SsdLatencySpike);
        }
        let read_error = matches!(op, SsdOp::Read { .. }) && m.fault_draw(FaultKind::SsdReadError);
        let torn_delay = if m.fault_draw(FaultKind::SsdTornCompletion) {
            Some(m.fault_delay(FaultKind::SsdTornCompletion))
        } else {
            None
        };
        m.at(at + latency, move |mach| {
            if let SsdOp::Read { buf_addr, len } = op {
                if read_error {
                    mach.counters_mut().inc("ssd.read_errors");
                } else {
                    // Synthetic data: a repeating pattern derived from seq.
                    let data: Vec<u8> = (0..len).map(|i| ((seq + i) & 0xff) as u8).collect();
                    mach.dma_write(buf_addr, &data);
                }
            }
            let status_seq = if read_error {
                seq | CQ_STATUS_ERROR
            } else {
                seq
            };
            match torn_delay {
                None => {
                    let mut entry = [0u8; CQ_ENTRY_BYTES as usize];
                    entry[..8].copy_from_slice(&cookie.to_le_bytes());
                    entry[8..].copy_from_slice(&status_seq.to_le_bytes());
                    mach.dma_write(dev.cq_addr(seq), &entry);
                }
                Some(d) => {
                    // Torn: cookie now, sequence word after the tear gap.
                    mach.dma_write(dev.cq_addr(seq), &cookie.to_le_bytes());
                    let heal_at = mach.now() + d;
                    mach.at(heal_at, move |inner| {
                        inner.dma_write(dev.cq_addr(seq) + 8, &status_seq.to_le_bytes());
                    });
                }
            }
            let tail = (seq + 1).max(mach.peek_u64(dev.cq_tail));
            mach.dma_write(dev.cq_tail, &tail.to_le_bytes());
            mach.counters_mut().inc("ssd.completions");
            let led = mach.ledger("ssd.cq");
            led.in_flight -= 1;
            led.completed += 1;
        });
    }

    /// Current completion tail (host-side).
    #[must_use]
    pub fn tail(&self, m: &Machine) -> u64 {
        m.peek_u64(self.cq_tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;
    use switchless_sim::fault::FaultPlan;

    #[test]
    fn read_completes_with_data_and_cookie() {
        let mut m = Machine::new(MachineConfig::small());
        let ssd = Ssd::attach(&mut m, SsdConfig::default());
        let buf = m.alloc(4096);
        ssd.submit(
            &mut m,
            Cycles(0),
            0,
            SsdOp::Read {
                buf_addr: buf,
                len: 512,
            },
            0xdead,
        );
        m.run_for(Cycles(100_000));
        assert_eq!(ssd.tail(&m), 1);
        assert_eq!(m.peek_u64(ssd.cq_addr(0)), 0xdead);
        assert_eq!(m.counters().get("ssd.completions"), 1);
        // Data pattern arrived.
        let first = m.peek_u64(buf);
        assert_ne!(first, 0);
    }

    #[test]
    fn completion_latency_matches_config() {
        let mut m = Machine::new(MachineConfig::small());
        let ssd = Ssd::attach(
            &mut m,
            SsdConfig {
                read_latency: Cycles(5000),
                ..SsdConfig::default()
            },
        );
        let buf = m.alloc(512);
        ssd.submit(
            &mut m,
            Cycles(1000),
            0,
            SsdOp::Read {
                buf_addr: buf,
                len: 8,
            },
            1,
        );
        m.run_for(Cycles(5999));
        assert_eq!(ssd.tail(&m), 0, "not yet complete");
        m.run_for(Cycles(2));
        assert_eq!(ssd.tail(&m), 1);
    }

    #[test]
    fn read_error_sets_status_bit_and_skips_data() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(FaultPlan::new(4).with_rate(FaultKind::SsdReadError, 1.0));
        let ssd = Ssd::attach(&mut m, SsdConfig::default());
        let buf = m.alloc(512);
        ssd.submit(
            &mut m,
            Cycles(0),
            0,
            SsdOp::Read {
                buf_addr: buf,
                len: 64,
            },
            0xc0de,
        );
        m.run_for(Cycles(100_000));
        assert_eq!(ssd.tail(&m), 1, "errored command still completes");
        assert_eq!(m.peek_u64(buf), 0, "no data DMA on a media error");
        let seq_word = m.peek_u64(ssd.cq_addr(0) + 8);
        assert_ne!(seq_word & CQ_STATUS_ERROR, 0, "error bit set");
        assert_eq!(seq_word & !CQ_STATUS_ERROR, 0, "sequence preserved");
        assert_eq!(m.counters().get("fault.ssd.read_error"), 1);
        assert_eq!(m.counters().get("ssd.read_errors"), 1);
    }

    #[test]
    fn latency_spike_delays_completion() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(
            FaultPlan::new(5)
                .with_rate(FaultKind::SsdLatencySpike, 1.0)
                .with_delay(FaultKind::SsdLatencySpike, Cycles(100_000), Cycles(100_000)),
        );
        let ssd = Ssd::attach(
            &mut m,
            SsdConfig {
                read_latency: Cycles(5_000),
                ..SsdConfig::default()
            },
        );
        let buf = m.alloc(512);
        ssd.submit(
            &mut m,
            Cycles(0),
            0,
            SsdOp::Read {
                buf_addr: buf,
                len: 8,
            },
            1,
        );
        m.run_for(Cycles(104_000));
        assert_eq!(ssd.tail(&m), 0, "still inside the spike");
        m.run_for(Cycles(2_000));
        assert_eq!(ssd.tail(&m), 1, "completed after base + spike");
        assert_eq!(m.counters().get("fault.ssd.latency_spike"), 1);
    }

    #[test]
    fn torn_completion_heals_after_the_gap() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(
            FaultPlan::new(6)
                .with_rate(FaultKind::SsdTornCompletion, 1.0)
                .with_delay(FaultKind::SsdTornCompletion, Cycles(5_000), Cycles(5_000)),
        );
        let ssd = Ssd::attach(&mut m, SsdConfig::default());
        // A nonzero seq so the stale (zero) word is distinguishable.
        ssd.submit(&mut m, Cycles(0), 5, SsdOp::Write, 0xfeed);
        m.run_for(Cycles(61_000));
        assert_eq!(ssd.tail(&m), 6, "tail bumped on time");
        assert_eq!(m.peek_u64(ssd.cq_addr(5)), 0xfeed, "cookie on time");
        assert_eq!(m.peek_u64(ssd.cq_addr(5) + 8), 0, "sequence word torn");
        m.run_for(Cycles(6_000));
        assert_eq!(m.peek_u64(ssd.cq_addr(5) + 8), 5, "re-read sees it healed");
        assert_eq!(m.counters().get("fault.ssd.torn_completion"), 1);
    }

    #[test]
    fn io_thread_blocks_until_completion() {
        let mut m = Machine::new(MachineConfig::small());
        let ssd = Ssd::attach(&mut m, SsdConfig::default());
        let prog = assemble(&format!(
            r#"
            entry:
                monitor {tail}
                mwait
                ld r1, {tail}
                halt
            "#,
            tail = ssd.cq_tail
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        m.run_for(Cycles(2000));
        assert_eq!(m.thread_state(tid), ThreadState::Waiting);
        let now = m.now();
        ssd.submit(&mut m, now, 0, SsdOp::Write, 7);
        m.run_for(Cycles(100_000));
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
        assert_eq!(m.thread_reg(tid, 1), 1);
    }
}

/// Bytes per submission-queue entry: `[op|len: u64][buf_addr: u64]`.
pub const SQ_ENTRY_BYTES: u64 = 16;

/// A driver-facing NVMe-style submission queue: the driver writes
/// entries into the SQ ring and stores the new tail to the doorbell;
/// the device consumes entries immediately (MMIO) and completes each
/// after its latency via the paired [`Ssd`]'s completion queue.
///
/// Entry encoding: word 0 = `(len << 8) | op` with op 1 = read,
/// 2 = write; word 1 = destination buffer for reads.
#[derive(Clone, Copy, Debug)]
pub struct SsdQueue {
    /// The completion side.
    pub ssd: Ssd,
    /// Submission-ring slots (power of two).
    pub sq_slots: u64,
    /// Base of the submission ring.
    pub sq_base: u64,
    /// Submission doorbell word (driver stores the new tail here).
    pub doorbell: u64,
}

impl SsdQueue {
    /// Allocates the submission ring and registers the doorbell hook.
    ///
    /// # Panics
    ///
    /// Panics if the config or `sq_slots` is invalid;
    /// [`SsdQueue::try_attach`] is the non-panicking variant.
    pub fn attach(m: &mut Machine, config: SsdConfig, sq_slots: u64) -> SsdQueue {
        SsdQueue::try_attach(m, config, sq_slots).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validating [`SsdQueue::attach`] with a structured error.
    pub fn try_attach(
        m: &mut Machine,
        config: SsdConfig,
        sq_slots: u64,
    ) -> Result<SsdQueue, SimError> {
        if !sq_slots.is_power_of_two() {
            return Err(SimError::Config {
                context: "ssd queue",
                detail: format!("sq_slots {sq_slots} must be a nonzero power of two"),
            });
        }
        let ssd = Ssd::try_attach(m, config)?;
        let sq_base = m.alloc(sq_slots * SQ_ENTRY_BYTES);
        let doorbell = m.alloc(64);
        let q = SsdQueue {
            ssd,
            sq_slots,
            sq_base,
            doorbell,
        };
        let consumed = std::rc::Rc::new(std::cell::Cell::new(0u64));
        m.register_mmio(doorbell, move |mach, tail| {
            let mut seq = consumed.get();
            while seq < tail {
                let e0 = mach.peek_u64(q.sq_addr(seq));
                let buf = mach.peek_u64(q.sq_addr(seq) + 8);
                let op = match e0 & 0xff {
                    1 => SsdOp::Read {
                        buf_addr: buf,
                        len: (e0 >> 8).min(1 << 20),
                    },
                    _ => SsdOp::Write,
                };
                let now = mach.now();
                q.ssd.submit(mach, now, seq, op, seq);
                seq += 1;
            }
            consumed.set(seq);
        });
        Ok(q)
    }

    /// Address of submission entry `seq`.
    #[must_use]
    pub fn sq_addr(&self, seq: u64) -> u64 {
        self.sq_base + (seq & (self.sq_slots - 1)) * SQ_ENTRY_BYTES
    }
}

#[cfg(test)]
mod queue_tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;

    #[test]
    fn driver_thread_submits_read_and_blocks() {
        // The §2 storage path entirely in assembly: build the SQ entry,
        // ring the doorbell, mwait on the CQ tail, read the DMA'd data.
        let mut m = Machine::new(MachineConfig::small());
        let q = SsdQueue::attach(
            &mut m,
            SsdConfig {
                read_latency: Cycles(9_000), // 3 µs NVM-class read
                ..SsdConfig::default()
            },
            16,
        );
        let buf = m.alloc(4096);
        let prog = assemble(&format!(
            r#"
            entry:
                movi r3, {sq}
                movi r1, {e0}       ; (512 << 8) | read
                st r1, r3, 0
                movi r1, {buf}
                st r1, r3, 8
                movi r2, 1
                st r2, {bell}       ; submission doorbell
            wait:
                monitor {cq}
                ld r4, {cq}
                beq r4, r2, done
                mwait
                jmp wait
            done:
                movi r5, {buf}
                ldb r6, r5, 1       ; second byte of the DMA pattern (= 1)
                halt
            "#,
            sq = q.sq_addr(0),
            e0 = (512u64 << 8) | 1,
            buf = buf,
            bell = q.doorbell,
            cq = q.ssd.cq_tail,
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        assert!(m.run_until_state(tid, ThreadState::Waiting, Cycles(100_000)));
        assert_eq!(q.ssd.tail(&m), 0, "parked during the device latency");
        assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(200_000)));
        assert_eq!(q.ssd.tail(&m), 1);
        assert_eq!(m.thread_reg(tid, 6), 1, "driver saw the DMA'd data");
        assert_eq!(m.counters().get("ssd.completions"), 1);
    }

    #[test]
    fn batched_submissions_all_complete() {
        let mut m = Machine::new(MachineConfig::small());
        let q = SsdQueue::attach(&mut m, SsdConfig::default(), 16);
        for seq in 0..5u64 {
            m.poke_u64(q.sq_addr(seq), 2); // writes
        }
        m.poke_u64(q.doorbell, 5);
        m.run_for(Cycles(200_000));
        assert_eq!(q.ssd.tail(&m), 5);
    }
}

//! The legacy-interrupt bridge (§4): "since future hardware should be
//! compatible with legacy devices, hardware must translate external
//! interrupts to memory writes (similar to PCIe MSI-x functionality)".
//!
//! [`MsixBridge`] owns a table mapping interrupt vectors to memory
//! addresses; raising a vector performs the corresponding write. Legacy
//! device models call [`MsixBridge::raise`] where they would have pulled
//! an interrupt wire.

use std::collections::HashMap;

use switchless_core::machine::Machine;
use switchless_sim::fault::FaultKind;

/// Vector → memory-write translation table.
#[derive(Clone, Debug, Default)]
pub struct MsixBridge {
    table: HashMap<u32, u64>,
}

impl MsixBridge {
    /// Creates an empty bridge.
    #[must_use]
    pub fn new() -> MsixBridge {
        MsixBridge::default()
    }

    /// Routes `vector` to an increment of the word at `addr`.
    pub fn route(&mut self, vector: u32, addr: u64) {
        self.table.insert(vector, addr);
    }

    /// Removes a route; returns whether it existed.
    pub fn unroute(&mut self, vector: u32) -> bool {
        self.table.remove(&vector).is_some()
    }

    /// Raises a legacy interrupt: translated to an increment of the
    /// routed word (waking any monitoring thread). Unrouted vectors are
    /// counted and dropped — exactly what masked interrupts do.
    ///
    /// Fault injection (when a plan is installed on the machine):
    /// [`FaultKind::MsixLostInterrupt`] loses a *routed* interrupt — the
    /// classic legacy failure a driver only survives via a periodic
    /// software timeout, which is exactly the recovery gap the f16
    /// experiment measures against the switchless watchdog.
    pub fn raise(&self, m: &mut Machine, vector: u32) {
        // Translation is synchronous, so the conservation ledger never
        // holds anything in flight: raised = translated + dropped.
        m.ledger("msix").posted += 1;
        match self.table.get(&vector) {
            Some(&addr) => {
                if m.fault_draw(FaultKind::MsixLostInterrupt) {
                    m.ledger("msix").dropped += 1;
                    return;
                }
                let v = m.peek_u64(addr).wrapping_add(1);
                m.dma_write(addr, &v.to_le_bytes());
                m.counters_mut().inc("msix.translated");
                m.ledger("msix").completed += 1;
            }
            None => {
                m.counters_mut().inc("msix.dropped");
                m.ledger("msix").dropped += 1;
            }
        }
    }

    /// Number of routed vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether no vectors are routed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::asm::assemble;
    use switchless_sim::time::Cycles;

    #[test]
    fn raise_translates_to_memory_write() {
        let mut m = Machine::new(MachineConfig::small());
        let addr = m.alloc(8);
        let mut bridge = MsixBridge::new();
        bridge.route(33, addr);
        bridge.raise(&mut m, 33);
        bridge.raise(&mut m, 33);
        assert_eq!(m.peek_u64(addr), 2);
        assert_eq!(m.counters().get("msix.translated"), 2);
    }

    #[test]
    fn unrouted_vector_dropped() {
        let mut m = Machine::new(MachineConfig::small());
        let mut bridge = MsixBridge::new();
        bridge.raise(&mut m, 99);
        assert_eq!(m.counters().get("msix.dropped"), 1);
        assert!(bridge.is_empty());
        bridge.route(1, 0x100);
        assert!(!bridge.is_empty());
        assert!(bridge.unroute(1));
        assert!(!bridge.unroute(1));
    }

    #[test]
    fn lost_interrupt_skips_routed_write() {
        let mut m = Machine::new(MachineConfig::small());
        m.install_fault_plan(
            switchless_sim::fault::FaultPlan::new(10).with_rate(FaultKind::MsixLostInterrupt, 1.0),
        );
        let addr = m.alloc(8);
        let mut bridge = MsixBridge::new();
        bridge.route(33, addr);
        bridge.raise(&mut m, 33);
        assert_eq!(m.peek_u64(addr), 0, "interrupt lost before translation");
        assert_eq!(m.counters().get("msix.translated"), 0);
        assert_eq!(m.counters().get("fault.msix.lost"), 1);
        // Unrouted vectors are a config condition, not an injected fault.
        bridge.raise(&mut m, 99);
        assert_eq!(m.counters().get("fault.msix.lost"), 1);
        assert_eq!(m.counters().get("msix.dropped"), 1);
    }

    #[test]
    fn legacy_device_wakes_hardware_thread() {
        let mut m = Machine::new(MachineConfig::small());
        let addr = m.alloc(8);
        let mut bridge = MsixBridge::new();
        bridge.route(7, addr);
        let prog = assemble(&format!("entry:\n monitor {addr}\n mwait\n halt\n")).unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.start_thread(tid);
        m.run_for(Cycles(2000));
        assert_eq!(m.thread_state(tid), ThreadState::Waiting);
        bridge.raise(&mut m, 7);
        m.run_for(Cycles(5000));
        assert_eq!(m.thread_state(tid), ThreadState::Halted);
    }
}

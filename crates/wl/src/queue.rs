//! A discipline-parameterized multi-server queueing simulator.
//!
//! This is the harness behind the load-sweep experiments. Each *design*
//! from the paper maps to a parameterisation:
//!
//! | design | discipline | `dispatch_overhead` | `wakeup_overhead` |
//! |---|---|---|---|
//! | legacy interrupt + sched | `Rr{quantum≈1ms}` | context switch | IRQ entry + scheduler (+IPI) |
//! | polling dataplane (run-to-completion) | `Fcfs` | ~0 | ~0 (but burns the core) |
//! | hardware threads (§4 fine-grain RR ⇒ PS) | `Rr{quantum≈200cy}` | 0 (hardware multiplexing) | mwait wake (~tens of cycles) |
//!
//! The hardware-thread overheads are *calibrated from the machine model*
//! by the experiment harness, not invented here.

use std::collections::VecDeque;

use switchless_sim::event::EventQueue;
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

/// Queueing discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Discipline {
    /// Run to completion in arrival order.
    Fcfs,
    /// Preemptive round-robin with the given quantum. A small quantum
    /// approximates processor sharing.
    Rr {
        /// Maximum contiguous service per dispatch.
        quantum: Cycles,
    },
}

/// Simulator parameters.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Number of servers (cores / pipeline slots).
    pub servers: usize,
    /// Scheduling discipline.
    pub discipline: Discipline,
    /// One-time cost charged when a job first starts (the notification
    /// path: IRQ + scheduler for legacy, mwait wake for hardware
    /// threads).
    pub wakeup_overhead: Cycles,
    /// Cost charged on every (re)dispatch (software context switch for
    /// legacy threads; 0 for hardware multiplexing).
    pub dispatch_overhead: Cycles,
}

/// Results of one run.
#[derive(Clone, Debug)]
pub struct QueueResult {
    /// Sojourn (arrival → completion) times of post-warmup jobs.
    pub sojourn: Histogram,
    /// Jobs completed (including warmup jobs).
    pub completed: u64,
    /// Time the last job completed.
    pub makespan: Cycles,
    /// Total server-busy cycles (service + overheads).
    pub busy_cycles: u64,
}

impl QueueResult {
    /// Observed throughput in jobs per cycle.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.completed as f64 / self.makespan.0 as f64
        }
    }

    /// Mean server utilization over the makespan.
    #[must_use]
    pub fn utilization(&self, servers: usize) -> f64 {
        if self.makespan == Cycles::ZERO {
            0.0
        } else {
            self.busy_cycles as f64 / (self.makespan.0 as f64 * servers as f64)
        }
    }
}

struct Job {
    arrival: Cycles,
    remaining: Cycles,
    woken: bool,
}

enum Ev {
    Arrival(usize),
    Done { server: usize, job: usize },
}

/// The simulator (stateless; see [`QueueSim::run`]).
pub struct QueueSim;

impl QueueSim {
    /// Runs `jobs` (`(arrival, service)` pairs, any order) to completion;
    /// jobs arriving before `warmup` are simulated but excluded from the
    /// sojourn histogram.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or a quantum of zero is configured.
    #[must_use]
    pub fn run(cfg: &QueueConfig, jobs: &[(Cycles, Cycles)], warmup: Cycles) -> QueueResult {
        assert!(cfg.servers > 0, "need at least one server");
        if let Discipline::Rr { quantum } = cfg.discipline {
            assert!(quantum > Cycles::ZERO, "quantum must be positive");
        }
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut state: Vec<Job> = jobs
            .iter()
            .map(|&(arrival, service)| Job {
                arrival,
                remaining: service.max(Cycles(1)),
                woken: false,
            })
            .collect();
        for (i, j) in state.iter().enumerate() {
            q.schedule(j.arrival, Ev::Arrival(i));
        }

        let mut ready: VecDeque<usize> = VecDeque::new();
        let mut free: Vec<usize> = (0..cfg.servers).rev().collect();
        let mut result = QueueResult {
            sojourn: Histogram::new(),
            completed: 0,
            makespan: Cycles::ZERO,
            busy_cycles: 0,
        };

        let dispatch = |now: Cycles,
                        ready: &mut VecDeque<usize>,
                        free: &mut Vec<usize>,
                        state: &mut Vec<Job>,
                        q: &mut EventQueue<Ev>,
                        busy: &mut u64| {
            while let (Some(&job), true) = (ready.front(), !free.is_empty()) {
                ready.pop_front();
                let server = free.pop().expect("checked non-empty");
                let j = &mut state[job];
                let mut cost = cfg.dispatch_overhead;
                if !j.woken {
                    j.woken = true;
                    cost += cfg.wakeup_overhead;
                }
                let segment = match cfg.discipline {
                    Discipline::Fcfs => j.remaining,
                    Discipline::Rr { quantum } => j.remaining.min(quantum),
                };
                j.remaining -= segment;
                let total = cost + segment;
                *busy += total.0;
                q.schedule(now + total, Ev::Done { server, job });
            }
        };

        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Arrival(job) => {
                    ready.push_back(job);
                }
                Ev::Done { server, job } => {
                    free.push(server);
                    if state[job].remaining == Cycles::ZERO {
                        result.completed += 1;
                        result.makespan = result.makespan.max(now);
                        if state[job].arrival >= warmup {
                            result.sojourn.record((now - state[job].arrival).0);
                        }
                    } else {
                        ready.push_back(job);
                    }
                }
            }
            dispatch(
                now,
                &mut ready,
                &mut free,
                &mut state,
                &mut q,
                &mut result.busy_cycles,
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::poisson_arrivals;
    use crate::dist::ServiceDist;
    use switchless_sim::rng::Rng;

    fn fcfs(servers: usize) -> QueueConfig {
        QueueConfig {
            servers,
            discipline: Discipline::Fcfs,
            wakeup_overhead: Cycles::ZERO,
            dispatch_overhead: Cycles::ZERO,
        }
    }

    #[test]
    fn single_job_sojourn_is_service() {
        let r = QueueSim::run(&fcfs(1), &[(Cycles(10), Cycles(100))], Cycles::ZERO);
        assert_eq!(r.completed, 1);
        assert_eq!(r.sojourn.max(), 100);
        assert_eq!(r.makespan, Cycles(110));
    }

    #[test]
    fn fcfs_queueing_adds_wait() {
        let jobs = [(Cycles(0), Cycles(100)), (Cycles(0), Cycles(100))];
        let r = QueueSim::run(&fcfs(1), &jobs, Cycles::ZERO);
        // Second job waits 100 then serves 100.
        assert_eq!(r.sojourn.max(), 200);
        assert_eq!(r.sojourn.min(), 100);
    }

    #[test]
    fn two_servers_run_in_parallel() {
        let jobs = [(Cycles(0), Cycles(100)), (Cycles(0), Cycles(100))];
        let r = QueueSim::run(&fcfs(2), &jobs, Cycles::ZERO);
        assert_eq!(r.sojourn.max(), 100);
        assert_eq!(r.makespan, Cycles(100));
        assert!((r.utilization(2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wakeup_overhead_charged_once_dispatch_every_time() {
        let cfg = QueueConfig {
            servers: 1,
            discipline: Discipline::Rr {
                quantum: Cycles(50),
            },
            wakeup_overhead: Cycles(10),
            dispatch_overhead: Cycles(5),
        };
        // One 100-cycle job: 2 segments -> 10 + 2*5 + 100 = 120.
        let r = QueueSim::run(&cfg, &[(Cycles(0), Cycles(100))], Cycles::ZERO);
        assert_eq!(r.sojourn.max(), 120);
        assert_eq!(r.busy_cycles, 120);
    }

    #[test]
    fn rr_interleaves_long_jobs() {
        // Two 1000-cycle jobs under tiny-quantum RR finish almost
        // together (processor sharing): both ~2000. Under FCFS the first
        // finishes at 1000.
        let jobs = [(Cycles(0), Cycles(1000)), (Cycles(0), Cycles(1000))];
        let ps = QueueConfig {
            servers: 1,
            discipline: Discipline::Rr {
                quantum: Cycles(10),
            },
            wakeup_overhead: Cycles::ZERO,
            dispatch_overhead: Cycles::ZERO,
        };
        let r_ps = QueueSim::run(&ps, &jobs, Cycles::ZERO);
        assert!(r_ps.sojourn.min() >= 1990, "PS: both finish ~2000");
        let r_fcfs = QueueSim::run(&fcfs(1), &jobs, Cycles::ZERO);
        assert_eq!(r_fcfs.sojourn.min(), 1000);
    }

    #[test]
    fn ps_beats_fcfs_p99_under_bimodal_load() {
        // The paper's §4 claim (via [46],[80]): PS + thread-per-request
        // is superior for high-variability service. Short requests under
        // FCFS get stuck behind long ones; under PS they slip through.
        let mut rng = Rng::seed_from(42);
        let dist = ServiceDist::Bimodal {
            p_short: 0.95,
            short: 1_000,
            long: 100_000,
        };
        let mean = dist.mean();
        let arrivals = poisson_arrivals(&mut rng, Cycles(0), mean / 0.7, 20_000);
        let jobs: Vec<(Cycles, Cycles)> = arrivals
            .into_iter()
            .map(|a| (a, dist.sample(&mut rng)))
            .collect();
        let warmup = jobs[2000].0;

        let r_fcfs = QueueSim::run(&fcfs(1), &jobs, warmup);
        let ps = QueueConfig {
            servers: 1,
            discipline: Discipline::Rr {
                quantum: Cycles(200),
            },
            wakeup_overhead: Cycles(50),
            dispatch_overhead: Cycles::ZERO,
        };
        let r_ps = QueueSim::run(&ps, &jobs, warmup);
        // p50 (a short request) must be far better under PS.
        assert!(
            r_ps.sojourn.p50() * 3 < r_fcfs.sojourn.p50(),
            "PS p50 {} vs FCFS p50 {}",
            r_ps.sojourn.p50(),
            r_fcfs.sojourn.p50()
        );
    }

    #[test]
    fn conservation_of_work() {
        let mut rng = Rng::seed_from(3);
        let jobs: Vec<(Cycles, Cycles)> = poisson_arrivals(&mut rng, Cycles(0), 500.0, 5_000)
            .into_iter()
            .map(|a| (a, Cycles(200)))
            .collect();
        let r = QueueSim::run(&fcfs(2), &jobs, Cycles::ZERO);
        assert_eq!(r.completed, 5_000);
        assert_eq!(r.busy_cycles, 5_000 * 200, "no overhead: busy == work");
    }

    #[test]
    fn all_jobs_complete_even_overloaded() {
        let jobs: Vec<(Cycles, Cycles)> = (0..100).map(|i| (Cycles(i), Cycles(10_000))).collect();
        let r = QueueSim::run(&fcfs(1), &jobs, Cycles::ZERO);
        assert_eq!(r.completed, 100);
        assert!(r.makespan >= Cycles(1_000_000));
    }

    #[test]
    fn warmup_excludes_early_jobs() {
        let jobs = [(Cycles(0), Cycles(10)), (Cycles(1_000), Cycles(10))];
        let r = QueueSim::run(&fcfs(1), &jobs, Cycles(500));
        assert_eq!(r.completed, 2);
        assert_eq!(r.sojourn.count(), 1);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        let cfg = QueueConfig {
            servers: 1,
            discipline: Discipline::Rr {
                quantum: Cycles::ZERO,
            },
            wakeup_overhead: Cycles::ZERO,
            dispatch_overhead: Cycles::ZERO,
        };
        let _ = QueueSim::run(&cfg, &[(Cycles(0), Cycles(1))], Cycles::ZERO);
    }
}

//! Workload generation and queueing harnesses for the `switchless`
//! experiments.
//!
//! * [`dist`] — service-time distributions: fixed, exponential, bimodal
//!   and bounded-Pareto. Bimodal and heavy-tailed services are the
//!   regimes where the paper's processor-sharing claim (§4, citing
//!   Shinjuku `[46]` and RackSched `[80]`) separates the designs.
//! * [`arrivals`] — open-loop Poisson arrival processes (the standard
//!   load model for µs-scale service studies) plus uniform pacing.
//! * [`queue`] — a discipline-parameterized multi-server queueing
//!   simulator: FCFS, preemptive round-robin with arbitrary quantum and
//!   per-dispatch overhead, which degenerates to processor sharing for a
//!   small quantum and zero overhead. The experiment harness instantiates
//!   it with per-design cost parameters (legacy interrupt+scheduler path,
//!   polling dataplane, hardware-thread wakeup) that are calibrated
//!   against the machine model.
//! * [`sweep`] — load-sweep bookkeeping: offered load → arrival rate,
//!   warmup trimming, and result rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod dist;
pub mod queue;
pub mod sweep;

pub use arrivals::poisson_arrivals;
pub use dist::ServiceDist;
pub use queue::{Discipline, QueueConfig, QueueResult, QueueSim};

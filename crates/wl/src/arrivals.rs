//! Arrival processes.

use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// Generates `n` open-loop Poisson arrival times starting at `start`,
/// with mean inter-arrival gap `mean_gap` cycles.
///
/// # Examples
///
/// ```
/// use switchless_sim::rng::Rng;
/// use switchless_sim::time::Cycles;
/// use switchless_wl::arrivals::poisson_arrivals;
///
/// let mut rng = Rng::seed_from(1);
/// let ts = poisson_arrivals(&mut rng, Cycles(0), 5000.0, 100);
/// assert_eq!(ts.len(), 100);
/// assert!(ts.windows(2).all(|w| w[0] <= w[1]), "sorted");
/// ```
pub fn poisson_arrivals(rng: &mut Rng, start: Cycles, mean_gap: f64, n: usize) -> Vec<Cycles> {
    assert!(mean_gap > 0.0, "mean gap must be positive");
    let mut t = start.0 as f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        t += rng.next_exp(mean_gap).max(0.0);
        out.push(Cycles(t.round() as u64));
    }
    out
}

/// Generates `n` uniformly paced arrivals with the given gap.
pub fn uniform_arrivals(start: Cycles, gap: Cycles, n: usize) -> Vec<Cycles> {
    (0..n as u64).map(|i| start + gap * i).collect()
}

/// Converts a target utilization into a mean inter-arrival gap, given
/// mean service time and server count: `gap = service / (servers * rho)`.
#[must_use]
pub fn gap_for_utilization(mean_service: f64, servers: usize, rho: f64) -> f64 {
    assert!(rho > 0.0, "utilization must be positive");
    mean_service / (servers as f64 * rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_approximately_correct() {
        let mut rng = Rng::seed_from(7);
        let n = 50_000;
        let ts = poisson_arrivals(&mut rng, Cycles(0), 1000.0, n);
        let span = ts.last().unwrap().0 as f64;
        let rate = n as f64 / span;
        assert!((rate - 0.001).abs() / 0.001 < 0.03, "rate {rate}");
    }

    #[test]
    fn poisson_is_monotone_and_deterministic() {
        let mut a = Rng::seed_from(9);
        let mut b = Rng::seed_from(9);
        let ta = poisson_arrivals(&mut a, Cycles(5), 100.0, 1000);
        let tb = poisson_arrivals(&mut b, Cycles(5), 100.0, 1000);
        assert_eq!(ta, tb);
        assert!(ta.windows(2).all(|w| w[0] <= w[1]));
        assert!(ta[0] >= Cycles(5));
    }

    #[test]
    fn uniform_spacing_exact() {
        let ts = uniform_arrivals(Cycles(100), Cycles(50), 4);
        assert_eq!(ts, vec![Cycles(100), Cycles(150), Cycles(200), Cycles(250)]);
    }

    #[test]
    fn utilization_gap_math() {
        // service 3000cy, 2 servers, rho 0.5 -> gap 3000.
        assert!((gap_for_utilization(3000.0, 2, 0.5) - 3000.0).abs() < 1e-9);
        // rho 1.0 on 1 server -> gap == service.
        assert!((gap_for_utilization(3000.0, 1, 1.0) - 3000.0).abs() < 1e-9);
    }
}

/// A closed-loop client population model: `clients` clients each issue a
/// request, wait for its completion, think for `think` cycles, and
/// repeat. Returns the resulting arrival times given a fixed per-request
/// sojourn estimate — useful for sizing closed-loop experiments without
/// running the full feedback loop.
///
/// For exact closed-loop behaviour, drive the machine directly (see the
/// distributed-runtime tests); this helper exists for back-of-envelope
/// workload sizing and is exact when sojourn time is constant.
pub fn closed_loop_arrivals(
    clients: usize,
    think: Cycles,
    sojourn: Cycles,
    rounds: usize,
) -> Vec<Cycles> {
    let mut out = Vec::with_capacity(clients * rounds);
    for c in 0..clients as u64 {
        // Stagger client starts across one think time.
        let start = Cycles(think.0 * c / (clients as u64).max(1));
        for r in 0..rounds as u64 {
            out.push(start + (think + sojourn) * r);
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod closed_loop_tests {
    use super::*;

    #[test]
    fn closed_loop_rate_is_bounded_by_population() {
        // Little's law sanity: N clients, cycle time think+sojourn, so
        // throughput = N / (think + sojourn).
        let ts = closed_loop_arrivals(4, Cycles(1_000), Cycles(500), 100);
        assert_eq!(ts.len(), 400);
        let span = (ts.last().unwrap().0 - ts[0].0).max(1);
        let rate = ts.len() as f64 / span as f64;
        let expect = 4.0 / 1500.0;
        assert!(
            (rate - expect).abs() / expect < 0.05,
            "rate {rate} vs {expect}"
        );
    }

    #[test]
    fn closed_loop_is_sorted_and_staggered() {
        let ts = closed_loop_arrivals(3, Cycles(300), Cycles(0), 2);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(ts[0], Cycles(0));
        assert!(ts.contains(&Cycles(100)), "staggered starts");
    }
}

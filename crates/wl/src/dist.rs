//! Service-time distributions.

use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// A distribution of request service times, in cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceDist {
    /// Every request takes exactly `c` cycles.
    Fixed(u64),
    /// Exponentially distributed with the given mean.
    Exponential {
        /// Mean service time in cycles.
        mean: u64,
    },
    /// With probability `p_short` take `short`, else `long` — the
    /// dispatch-heavy/request-heavy mix used by Shinjuku `[46]`.
    Bimodal {
        /// Probability of the short class.
        p_short: f64,
        /// Short service time in cycles.
        short: u64,
        /// Long service time in cycles.
        long: u64,
    },
    /// Bounded Pareto: heavy-tailed with exponent `alpha`, scaled so the
    /// minimum is `min` and truncated at `max`.
    BoundedPareto {
        /// Minimum (scale) in cycles.
        min: u64,
        /// Truncation point in cycles.
        max: u64,
        /// Tail exponent (smaller = heavier tail); typical 1.1–2.0.
        alpha: f64,
    },
}

/// Normalized `(lo, hi)` bounds for a bounded Pareto: the scale is at
/// least 1 and the truncation point strictly above it, even for
/// degenerate configs (`max <= min`). `sample` and `mean` must agree on
/// these or the analytic mean silently diverges from the sampler.
fn pareto_bounds(min: u64, max: u64) -> (u64, u64) {
    let lo = min.max(1);
    (lo, max.max(lo + 1))
}

impl ServiceDist {
    /// Draws one service time.
    pub fn sample(&self, rng: &mut Rng) -> Cycles {
        match *self {
            ServiceDist::Fixed(c) => Cycles(c.max(1)),
            ServiceDist::Exponential { mean } => {
                Cycles((rng.next_exp(mean as f64).round() as u64).max(1))
            }
            ServiceDist::Bimodal {
                p_short,
                short,
                long,
            } => {
                if rng.chance(p_short) {
                    Cycles(short.max(1))
                } else {
                    Cycles(long.max(1))
                }
            }
            ServiceDist::BoundedPareto { min, max, alpha } => {
                // Inverse-CDF sampling of a Pareto truncated at max.
                let (lo, hi) = pareto_bounds(min, max);
                let (l, h) = (lo as f64, hi as f64);
                let u = rng.next_f64();
                let la = l.powf(alpha);
                let ha = h.powf(alpha);
                let x = (-(u * (1.0 - la / ha) - 1.0)).powf(-1.0 / alpha) * l;
                Cycles((x.round() as u64).clamp(lo, hi))
            }
        }
    }

    /// The distribution's analytic mean (cycles, approximate for the
    /// bounded Pareto).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceDist::Fixed(c) => c.max(1) as f64,
            ServiceDist::Exponential { mean } => mean as f64,
            ServiceDist::Bimodal {
                p_short,
                short,
                long,
            } => p_short * short as f64 + (1.0 - p_short) * long as f64,
            ServiceDist::BoundedPareto { min, max, alpha } => {
                let (lo, hi) = pareto_bounds(min, max);
                let (l, h) = (lo as f64, hi as f64);
                if (alpha - 1.0).abs() < 1e-9 {
                    // α = 1: mean = ln(h/l) / (1/l - 1/h)
                    (h / l).ln() / (1.0 / l - 1.0 / h)
                } else {
                    let num = l.powf(alpha) / (1.0 - (l / h).powf(alpha));
                    num * alpha / (alpha - 1.0)
                        * (1.0 / l.powf(alpha - 1.0) - 1.0 / h.powf(alpha - 1.0))
                }
            }
        }
    }

    /// Short label for report rows.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ServiceDist::Fixed(c) => format!("fixed({c})"),
            ServiceDist::Exponential { mean } => format!("exp({mean})"),
            ServiceDist::Bimodal {
                p_short,
                short,
                long,
            } => {
                format!("bimodal({p_short:.2}:{short},{long})")
            }
            ServiceDist::BoundedPareto { min, max, alpha } => {
                format!("pareto({min},{max},a={alpha})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_fixed() {
        let mut r = Rng::seed_from(1);
        let d = ServiceDist::Fixed(500);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), Cycles(500));
        }
        assert_eq!(d.mean(), 500.0);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = Rng::seed_from(2);
        let d = ServiceDist::Exponential { mean: 3000 };
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut r).0).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 3000.0).abs() < 60.0, "mean {mean}");
    }

    #[test]
    fn bimodal_fractions_and_mean() {
        let mut r = Rng::seed_from(3);
        let d = ServiceDist::Bimodal {
            p_short: 0.9,
            short: 1000,
            long: 100_000,
        };
        let n = 100_000;
        let shorts = (0..n).filter(|_| d.sample(&mut r) == Cycles(1000)).count();
        let frac = shorts as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.01, "short fraction {frac}");
        assert!((d.mean() - (0.9 * 1000.0 + 0.1 * 100_000.0)).abs() < 1e-9);
    }

    #[test]
    fn pareto_bounded_and_heavy() {
        let mut r = Rng::seed_from(4);
        let d = ServiceDist::BoundedPareto {
            min: 1000,
            max: 1_000_000,
            alpha: 1.2,
        };
        let mut max_seen = 0;
        let mut over_10x = 0u32;
        let n = 100_000;
        for _ in 0..n {
            let s = d.sample(&mut r).0;
            assert!((1000..=1_000_000).contains(&s));
            max_seen = max_seen.max(s);
            if s > 10_000 {
                over_10x += 1;
            }
        }
        assert!(max_seen > 100_000, "tail never materialised: {max_seen}");
        // Pareto(1.2): P(X > 10x min) = 10^-1.2 ≈ 6.3%.
        let frac = f64::from(over_10x) / n as f64;
        assert!((0.03..0.12).contains(&frac), "tail fraction {frac}");
    }

    #[test]
    fn pareto_empirical_mean_matches_analytic() {
        let mut r = Rng::seed_from(5);
        let d = ServiceDist::BoundedPareto {
            min: 1000,
            max: 100_000,
            alpha: 1.5,
        };
        let n = 400_000;
        let sum: u64 = (0..n).map(|_| d.sample(&mut r).0).sum();
        let emp = sum as f64 / n as f64;
        let ana = d.mean();
        let err = (emp - ana).abs() / ana;
        assert!(err < 0.05, "empirical {emp} vs analytic {ana}");
    }

    #[test]
    fn pareto_degenerate_bounds_agree_between_sample_and_mean() {
        // max <= min used to normalize differently in sample() (which
        // lifted max above min) and mean() (which used raw max, giving a
        // nonsensical or negative analytic mean — and min=0, max=0 even
        // panicked in sample's clamp). Both must use the same bounds.
        for d in [
            ServiceDist::BoundedPareto {
                min: 0,
                max: 0,
                alpha: 1.5,
            },
            ServiceDist::BoundedPareto {
                min: 500,
                max: 500,
                alpha: 1.5,
            },
            ServiceDist::BoundedPareto {
                min: 500,
                max: 100,
                alpha: 1.5,
            },
            ServiceDist::BoundedPareto {
                min: 500,
                max: 100,
                alpha: 1.0,
            },
        ] {
            let mut r = Rng::seed_from(7);
            let n = 50_000;
            let sum: u64 = (0..n).map(|_| d.sample(&mut r).0).sum();
            let emp = sum as f64 / n as f64;
            let ana = d.mean();
            assert!(ana.is_finite() && ana > 0.0, "{d:?}: analytic mean {ana}");
            let err = (emp - ana).abs() / ana;
            // Tolerance covers integer-rounding bias, which dominates
            // when the normalized range collapses to a couple of cycles.
            assert!(err < 0.10, "{d:?}: empirical {emp} vs analytic {ana}");
        }
    }

    #[test]
    fn samples_never_zero() {
        let mut r = Rng::seed_from(6);
        for d in [
            ServiceDist::Fixed(0),
            ServiceDist::Exponential { mean: 1 },
            ServiceDist::Bimodal {
                p_short: 0.5,
                short: 0,
                long: 0,
            },
        ] {
            for _ in 0..100 {
                assert!(d.sample(&mut r).0 >= 1);
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ServiceDist::Fixed(5).label(), "fixed(5)");
        assert_eq!(ServiceDist::Exponential { mean: 9 }.label(), "exp(9)");
    }
}

//! Load-sweep bookkeeping shared by the experiment harness.

use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

use crate::arrivals::{gap_for_utilization, poisson_arrivals};
use crate::dist::ServiceDist;
use crate::queue::{QueueConfig, QueueResult, QueueSim};

/// One measured point of a load sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered utilization (fraction of aggregate capacity).
    pub rho: f64,
    /// Achieved throughput, jobs/cycle.
    pub throughput: f64,
    /// Median sojourn (cycles).
    pub p50: u64,
    /// 99th-percentile sojourn (cycles).
    pub p99: u64,
    /// Mean sojourn (cycles).
    pub mean: f64,
    /// Mean server utilization actually achieved.
    pub achieved_util: f64,
}

/// Generates one job trace: Poisson arrivals at utilization `rho` for a
/// given service distribution.
pub fn make_jobs(
    rng: &mut Rng,
    dist: &ServiceDist,
    servers: usize,
    rho: f64,
    n: usize,
) -> Vec<(Cycles, Cycles)> {
    let gap = gap_for_utilization(dist.mean(), servers, rho);
    poisson_arrivals(rng, Cycles(0), gap, n)
        .into_iter()
        .map(|a| (a, dist.sample(rng)))
        .collect()
}

/// Runs one sweep point through the queueing simulator, trimming the
/// first `warmup_frac` of jobs.
pub fn run_point(
    cfg: &QueueConfig,
    jobs: &[(Cycles, Cycles)],
    warmup_frac: f64,
    rho: f64,
) -> SweepPoint {
    let cut = ((jobs.len() as f64) * warmup_frac) as usize;
    let warmup = jobs.get(cut).map_or(Cycles::ZERO, |j| j.0);
    let r: QueueResult = QueueSim::run(cfg, jobs, warmup);
    SweepPoint {
        rho,
        throughput: r.throughput(),
        p50: r.sojourn.p50(),
        p99: r.sojourn.p99(),
        mean: r.sojourn.mean(),
        achieved_util: r.utilization(cfg.servers),
    }
}

/// Convenience: full sweep over utilizations.
pub fn sweep(
    seed: u64,
    cfg: &QueueConfig,
    dist: &ServiceDist,
    rhos: &[f64],
    jobs_per_point: usize,
) -> Vec<SweepPoint> {
    rhos.iter()
        .map(|&rho| {
            let mut rng = Rng::seed_from(seed ^ (rho * 1e6) as u64);
            let jobs = make_jobs(&mut rng, dist, cfg.servers, rho, jobs_per_point);
            run_point(cfg, &jobs, 0.1, rho)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Discipline;

    fn cfg() -> QueueConfig {
        QueueConfig {
            servers: 2,
            discipline: Discipline::Fcfs,
            wakeup_overhead: Cycles::ZERO,
            dispatch_overhead: Cycles::ZERO,
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let pts = sweep(
            1,
            &cfg(),
            &ServiceDist::Exponential { mean: 1000 },
            &[0.3, 0.9],
            20_000,
        );
        assert!(pts[1].p99 > pts[0].p99 * 2, "{} vs {}", pts[1].p99, pts[0].p99);
        assert!(pts[1].mean > pts[0].mean);
    }

    #[test]
    fn achieved_utilization_tracks_offered() {
        let pts = sweep(
            2,
            &cfg(),
            &ServiceDist::Fixed(1000),
            &[0.5],
            50_000,
        );
        assert!((pts[0].achieved_util - 0.5).abs() < 0.05, "{}", pts[0].achieved_util);
    }

    #[test]
    fn throughput_matches_offered_rate_below_saturation() {
        let dist = ServiceDist::Fixed(1000);
        let pts = sweep(3, &cfg(), &dist, &[0.6], 50_000);
        // Offered rate = servers * rho / mean = 2*0.6/1000.
        let offered = 2.0 * 0.6 / 1000.0;
        let err = (pts[0].throughput - offered).abs() / offered;
        assert!(err < 0.05, "throughput {} vs offered {offered}", pts[0].throughput);
    }
}

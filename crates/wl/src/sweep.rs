//! Load-sweep bookkeeping shared by the experiment harness.
//!
//! Per-point seeding: each sweep point gets its own RNG seeded by
//! [`mix_seed`]`(seed, point_index)`, a SplitMix64 derivation that fully
//! decorrelates points. (An earlier scheme, `seed ^ (rho * 1e6) as u64`,
//! only perturbed a few low bits, correlating — and for some rho grids
//! colliding — the streams of nearby points.) Because the seed depends on
//! the point *index*, not on which worker ran it, [`sweep_par`] returns
//! bit-identical results for any worker count.

use switchless_sim::par::par_map;
use switchless_sim::rng::{mix_seed, Rng};
use switchless_sim::time::Cycles;

use crate::arrivals::{gap_for_utilization, poisson_arrivals};
use crate::dist::ServiceDist;
use crate::queue::{QueueConfig, QueueResult, QueueSim};

/// One measured point of a load sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Offered utilization (fraction of aggregate capacity).
    pub rho: f64,
    /// Achieved throughput, jobs/cycle.
    pub throughput: f64,
    /// Median sojourn (cycles).
    pub p50: u64,
    /// 99th-percentile sojourn (cycles).
    pub p99: u64,
    /// Mean sojourn (cycles).
    pub mean: f64,
    /// Mean server utilization actually achieved.
    pub achieved_util: f64,
}

/// Generates one job trace: Poisson arrivals at utilization `rho` for a
/// given service distribution.
pub fn make_jobs(
    rng: &mut Rng,
    dist: &ServiceDist,
    servers: usize,
    rho: f64,
    n: usize,
) -> Vec<(Cycles, Cycles)> {
    let gap = gap_for_utilization(dist.mean(), servers, rho);
    poisson_arrivals(rng, Cycles(0), gap, n)
        .into_iter()
        .map(|a| (a, dist.sample(rng)))
        .collect()
}

/// Runs one sweep point through the queueing simulator, trimming the
/// first `warmup_frac` of jobs.
pub fn run_point(
    cfg: &QueueConfig,
    jobs: &[(Cycles, Cycles)],
    warmup_frac: f64,
    rho: f64,
) -> SweepPoint {
    let cut = ((jobs.len() as f64) * warmup_frac) as usize;
    let warmup = jobs.get(cut).map_or(Cycles::ZERO, |j| j.0);
    let r: QueueResult = QueueSim::run(cfg, jobs, warmup);
    SweepPoint {
        rho,
        throughput: r.throughput(),
        p50: r.sojourn.p50(),
        p99: r.sojourn.p99(),
        mean: r.sojourn.mean(),
        achieved_util: r.utilization(cfg.servers),
    }
}

/// Convenience: full serial sweep over utilizations.
///
/// Equivalent to [`sweep_par`] with one worker; the two are bit-identical
/// for the same inputs.
pub fn sweep(
    seed: u64,
    cfg: &QueueConfig,
    dist: &ServiceDist,
    rhos: &[f64],
    jobs_per_point: usize,
) -> Vec<SweepPoint> {
    sweep_par(seed, cfg, dist, rhos, jobs_per_point, 1)
}

/// Full sweep over utilizations, sharding points across up to `workers`
/// threads.
///
/// Each point's RNG is seeded by `mix_seed(seed, point_index)`, so the
/// result vector (in `rhos` order) is bit-identical for any `workers`,
/// and duplicate rhos at different indices get decorrelated streams.
pub fn sweep_par(
    seed: u64,
    cfg: &QueueConfig,
    dist: &ServiceDist,
    rhos: &[f64],
    jobs_per_point: usize,
    workers: usize,
) -> Vec<SweepPoint> {
    par_map(workers, rhos, |i, &rho| {
        let mut rng = Rng::seed_from(mix_seed(seed, i as u64));
        let jobs = make_jobs(&mut rng, dist, cfg.servers, rho, jobs_per_point);
        run_point(cfg, &jobs, 0.1, rho)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Discipline;

    fn cfg() -> QueueConfig {
        QueueConfig {
            servers: 2,
            discipline: Discipline::Fcfs,
            wakeup_overhead: Cycles::ZERO,
            dispatch_overhead: Cycles::ZERO,
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let pts = sweep(
            1,
            &cfg(),
            &ServiceDist::Exponential { mean: 1000 },
            &[0.3, 0.9],
            20_000,
        );
        assert!(
            pts[1].p99 > pts[0].p99 * 2,
            "{} vs {}",
            pts[1].p99,
            pts[0].p99
        );
        assert!(pts[1].mean > pts[0].mean);
    }

    #[test]
    fn achieved_utilization_tracks_offered() {
        let pts = sweep(2, &cfg(), &ServiceDist::Fixed(1000), &[0.5], 50_000);
        assert!(
            (pts[0].achieved_util - 0.5).abs() < 0.05,
            "{}",
            pts[0].achieved_util
        );
    }

    #[test]
    fn per_point_seeds_are_decorrelated() {
        // Regression for `seed ^ (rho * 1e6) as u64`: distinct rhos (and
        // duplicate rhos at different indices) must get decorrelated
        // arrival streams. With the old scheme, sweeping a duplicated rho
        // replayed the identical stream at both points.
        let dist = ServiceDist::Exponential { mean: 1000 };
        let seed = 42;
        let streams: Vec<Vec<Cycles>> = [0u64, 1, 2]
            .iter()
            .map(|&i| {
                let mut rng = Rng::seed_from(switchless_sim::rng::mix_seed(seed, i));
                make_jobs(&mut rng, &dist, 2, 0.5, 64)
                    .into_iter()
                    .map(|(a, _)| a)
                    .collect()
            })
            .collect();
        for a in 0..streams.len() {
            for b in (a + 1)..streams.len() {
                assert_ne!(streams[a], streams[b], "points {a} and {b} correlated");
            }
        }
        // End-to-end: a sweep over the same rho twice measures two
        // independent replications, not one replayed one.
        let pts = sweep(seed, &cfg(), &dist, &[0.5, 0.5], 5_000);
        assert_ne!(
            (pts[0].mean, pts[0].p99),
            (pts[1].mean, pts[1].p99),
            "duplicate rhos replayed the same stream"
        );
    }

    #[test]
    fn sweep_par_matches_serial_bit_for_bit() {
        let dist = ServiceDist::Exponential { mean: 1000 };
        let rhos = [0.2, 0.4, 0.6, 0.8, 0.9];
        let serial = sweep(9, &cfg(), &dist, &rhos, 5_000);
        for workers in [2, 4, 16] {
            let par = sweep_par(9, &cfg(), &dist, &rhos, 5_000, workers);
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(&par) {
                assert_eq!(s.rho.to_bits(), p.rho.to_bits());
                assert_eq!(s.throughput.to_bits(), p.throughput.to_bits());
                assert_eq!(s.p50, p.p50);
                assert_eq!(s.p99, p.p99);
                assert_eq!(s.mean.to_bits(), p.mean.to_bits());
                assert_eq!(s.achieved_util.to_bits(), p.achieved_util.to_bits());
            }
        }
    }

    #[test]
    fn throughput_matches_offered_rate_below_saturation() {
        let dist = ServiceDist::Fixed(1000);
        let pts = sweep(3, &cfg(), &dist, &[0.6], 50_000);
        // Offered rate = servers * rho / mean = 2*0.6/1000.
        let offered = 2.0 * 0.6 / 1000.0;
        let err = (pts[0].throughput - offered).abs() / offered;
        assert!(
            err < 0.05,
            "throughput {} vs offered {offered}",
            pts[0].throughput
        );
    }
}

//! Instruction definitions, binary encoding, and base cost model.
//!
//! Instructions are fixed-width 64-bit words:
//!
//! ```text
//! 63      56 55  52 51  48 47  44 43                                   0
//! +--------+------+------+------+--------------------------------------+
//! | opcode |  rd  | rs1  | rs2  |                imm44                 |
//! +--------+------+------+------+--------------------------------------+
//! ```
//!
//! `imm44` is sign-extended where an instruction treats it as signed
//! (register offsets) and zero-extended where it is an absolute address
//! or count. `rpull`/`rpush` carry their [`RegSel`] remote-register
//! selector in the low bits of `imm44` because selectors (0–20) do not
//! fit a 4-bit register field.

use core::fmt;

use crate::arch::{CtrlReg, RegSel};

/// A general-purpose register index, 0–15.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    fn check(self) -> Reg {
        debug_assert!(self.0 < 16, "register index out of range");
        Reg(self.0 & 0xf)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Maximum value of an unsigned 44-bit immediate (absolute addresses).
pub const IMM44_MAX: u64 = (1 << 44) - 1;

/// One instruction.
///
/// The `...A` variants take absolute 44-bit addresses (what the assembler
/// emits for label operands); the register-indirect forms cover computed
/// addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inst {
    // ---- conventional ALU ----
    /// `d = a + b`.
    Add {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d = a - b`.
    Sub {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d = a & b`.
    And {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d = a | b`.
    Or {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d = a ^ b`.
    Xor {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d = a << (b & 63)`.
    Shl {
        /// Destination.
        d: Reg,
        /// Value.
        a: Reg,
        /// Shift amount register.
        b: Reg,
    },
    /// `d = a >> (b & 63)` (logical).
    Shr {
        /// Destination.
        d: Reg,
        /// Value.
        a: Reg,
        /// Shift amount register.
        b: Reg,
    },
    /// `d = a * b` (wrapping).
    Mul {
        /// Destination.
        d: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `d = a / b`; division by zero raises an exception (§3.2's example).
    Div {
        /// Destination.
        d: Reg,
        /// Dividend.
        a: Reg,
        /// Divisor.
        b: Reg,
    },
    /// `d = a + imm` (imm sign-extended).
    Addi {
        /// Destination.
        d: Reg,
        /// Source.
        a: Reg,
        /// Signed immediate.
        imm: i64,
    },
    /// `d = imm` (sign-extended 44-bit immediate).
    Movi {
        /// Destination.
        d: Reg,
        /// Signed immediate.
        imm: i64,
    },
    /// `d = a`.
    Mov {
        /// Destination.
        d: Reg,
        /// Source.
        a: Reg,
    },

    // ---- memory ----
    /// `d = mem64[a + off]`.
    Ld {
        /// Destination.
        d: Reg,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// `mem64[a + off] = s`.
    St {
        /// Source value register.
        s: Reg,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// `d = mem64[addr]` (absolute).
    LdA {
        /// Destination.
        d: Reg,
        /// Absolute address.
        addr: u64,
    },
    /// `mem64[addr] = s` (absolute).
    StA {
        /// Source value register.
        s: Reg,
        /// Absolute address.
        addr: u64,
    },
    /// `d = zero_extend(mem8[a + off])` — byte load, for parsing packet
    /// headers and other byte-granular structures.
    LdB {
        /// Destination.
        d: Reg,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        off: i64,
    },
    /// `mem8[a + off] = s & 0xff` — byte store.
    StB {
        /// Source value register (low byte is stored).
        s: Reg,
        /// Base address register.
        a: Reg,
        /// Signed byte offset.
        off: i64,
    },

    // ---- control flow ----
    /// Unconditional jump to absolute address.
    Jmp {
        /// Target address.
        addr: u64,
    },
    /// Jump to the address in a register.
    Jr {
        /// Register holding the target.
        a: Reg,
    },
    /// Call: `d = return address; pc = addr`.
    Jal {
        /// Link register receiving the return address.
        d: Reg,
        /// Target address.
        addr: u64,
    },
    /// Branch to `addr` if `a == b`.
    Beq {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target address.
        addr: u64,
    },
    /// Branch to `addr` if `a != b`.
    Bne {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target address.
        addr: u64,
    },
    /// Branch to `addr` if `a < b` (signed).
    Blt {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target address.
        addr: u64,
    },
    /// Branch to `addr` if `a >= b` (signed).
    Bge {
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target address.
        addr: u64,
    },
    /// Stop executing this thread permanently (test/bench epilogue).
    Halt,
    /// No operation.
    Nop,
    /// Consume `cycles` cycles of pipeline time (models a compute burst
    /// without interpreting that many instructions).
    Work {
        /// Burst length in cycles.
        cycles: u32,
    },

    // ---- system ----
    /// Trap to the system-call path with call number `num`.
    Syscall {
        /// System-call number.
        num: u16,
    },
    /// Trap to the hypervisor path with call number `num` (the x86
    /// `vmcall` analog from §2).
    VmCall {
        /// Hypercall number.
        num: u16,
    },
    /// Invoke a registered host service (simulation shortcut; see
    /// DESIGN.md "modeling shortcut").
    HCall {
        /// Host-service number.
        num: u16,
    },

    // ---- §3.1 extensions ----
    /// Arm a watch on the address held in `a` (any privilege level).
    Monitor {
        /// Register holding the watched address.
        a: Reg,
    },
    /// Arm a watch on an absolute address (assembler label form).
    MonitorA {
        /// Watched absolute address.
        addr: u64,
    },
    /// Block until any armed watch observes a write; may wake spuriously
    /// on line-granular filters. Clears armed watches on wake.
    MWait,
    /// Enable the ptid that `vtid` (in register `vt`) maps to.
    Start {
        /// Register holding the vtid.
        vt: Reg,
    },
    /// Disable the ptid that `vtid` (in register `vt`) maps to.
    Stop {
        /// Register holding the vtid.
        vt: Reg,
    },
    /// `start` with an immediate vtid.
    StartI {
        /// Virtual thread id.
        vtid: u16,
    },
    /// `stop` with an immediate vtid.
    StopI {
        /// Virtual thread id.
        vtid: u16,
    },
    /// Read remote register `remote` of the (disabled) thread `vtid` in
    /// `vt` into local register `local`.
    RPull {
        /// Register holding the vtid.
        vt: Reg,
        /// Local destination register.
        local: Reg,
        /// Remote register selector.
        remote: RegSel,
    },
    /// Write local register `local` into remote register `remote` of the
    /// (disabled) thread `vtid` in `vt`.
    RPush {
        /// Register holding the vtid.
        vt: Reg,
        /// Remote destination selector.
        remote: RegSel,
        /// Local source register.
        local: Reg,
    },
    /// Invalidate the cached TDT entry for the vtid in `vt` (§3.1: "any
    /// update to a ptid's TDT must be followed by an invtid").
    InvTid {
        /// Register holding the vtid.
        vt: Reg,
    },
    /// Read control register `csr` into `d`.
    CsrR {
        /// Destination.
        d: Reg,
        /// Source control register.
        csr: CtrlReg,
    },
    /// Write register `a` into control register `csr` (privileged for
    /// all control registers; from user mode this raises an exception,
    /// which is exactly how §3.2 lets a supervisor emulate privileged
    /// instructions for guests).
    CsrW {
        /// Destination control register.
        csr: CtrlReg,
        /// Source register.
        a: Reg,
    },
    /// Full memory fence (orders stores before monitor wakeups).
    Fence,
}

/// Error decoding an instruction word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Operand field held an invalid value (e.g. RegSel out of range).
    BadOperand(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::BadOperand(v) => write!(f, "invalid operand field {v:#04x}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// Opcode bytes. Grouped by function; gaps left for extensions.
mod op {
    pub const ADD: u8 = 0x01;
    pub const SUB: u8 = 0x02;
    pub const AND: u8 = 0x03;
    pub const OR: u8 = 0x04;
    pub const XOR: u8 = 0x05;
    pub const SHL: u8 = 0x06;
    pub const SHR: u8 = 0x07;
    pub const MUL: u8 = 0x08;
    pub const DIV: u8 = 0x09;
    pub const ADDI: u8 = 0x0a;
    pub const MOVI: u8 = 0x0b;
    pub const MOV: u8 = 0x0c;

    pub const LD: u8 = 0x10;
    pub const ST: u8 = 0x11;
    pub const LDA: u8 = 0x12;
    pub const STA: u8 = 0x13;
    pub const LDB: u8 = 0x14;
    pub const STB: u8 = 0x15;

    pub const JMP: u8 = 0x20;
    pub const JR: u8 = 0x21;
    pub const JAL: u8 = 0x22;
    pub const BEQ: u8 = 0x23;
    pub const BNE: u8 = 0x24;
    pub const BLT: u8 = 0x25;
    pub const BGE: u8 = 0x26;
    pub const HALT: u8 = 0x27;
    pub const NOP: u8 = 0x28;
    pub const WORK: u8 = 0x29;

    pub const SYSCALL: u8 = 0x30;
    pub const VMCALL: u8 = 0x31;
    pub const HCALL: u8 = 0x32;

    pub const MONITOR: u8 = 0x40;
    pub const MONITORA: u8 = 0x41;
    pub const MWAIT: u8 = 0x42;
    pub const START: u8 = 0x43;
    pub const STOP: u8 = 0x44;
    pub const STARTI: u8 = 0x45;
    pub const STOPI: u8 = 0x46;
    pub const RPULL: u8 = 0x47;
    pub const RPUSH: u8 = 0x48;
    pub const INVTID: u8 = 0x49;
    pub const CSRR: u8 = 0x4a;
    pub const CSRW: u8 = 0x4b;
    pub const FENCE: u8 = 0x4c;
}

fn csr_code(c: CtrlReg) -> u64 {
    match c {
        CtrlReg::Edp => 0,
        CtrlReg::Tdtr => 1,
        CtrlReg::Mode => 2,
        CtrlReg::Prio => 3,
    }
}

fn csr_from(code: u64) -> Option<CtrlReg> {
    match code {
        0 => Some(CtrlReg::Edp),
        1 => Some(CtrlReg::Tdtr),
        2 => Some(CtrlReg::Mode),
        3 => Some(CtrlReg::Prio),
        _ => None,
    }
}

fn pack(opc: u8, rd: u8, rs1: u8, rs2: u8, imm: u64) -> u64 {
    debug_assert!(imm <= IMM44_MAX);
    (u64::from(opc) << 56)
        | (u64::from(rd & 0xf) << 52)
        | (u64::from(rs1 & 0xf) << 48)
        | (u64::from(rs2 & 0xf) << 44)
        | (imm & IMM44_MAX)
}

fn imm_signed(word: u64) -> i64 {
    // Sign-extend 44 bits.
    ((word & IMM44_MAX) as i64) << 20 >> 20
}

fn imm_unsigned(word: u64) -> u64 {
    word & IMM44_MAX
}

fn to_imm44(v: i64) -> u64 {
    (v as u64) & IMM44_MAX
}

impl Inst {
    /// Encodes to a 64-bit instruction word.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if an immediate exceeds 44 bits; the
    /// assembler range-checks before encoding.
    #[must_use]
    pub fn encode(self) -> u64 {
        use Inst::*;
        match self {
            Add { d, a, b } => pack(op::ADD, d.check().0, a.check().0, b.check().0, 0),
            Sub { d, a, b } => pack(op::SUB, d.0, a.0, b.0, 0),
            And { d, a, b } => pack(op::AND, d.0, a.0, b.0, 0),
            Or { d, a, b } => pack(op::OR, d.0, a.0, b.0, 0),
            Xor { d, a, b } => pack(op::XOR, d.0, a.0, b.0, 0),
            Shl { d, a, b } => pack(op::SHL, d.0, a.0, b.0, 0),
            Shr { d, a, b } => pack(op::SHR, d.0, a.0, b.0, 0),
            Mul { d, a, b } => pack(op::MUL, d.0, a.0, b.0, 0),
            Div { d, a, b } => pack(op::DIV, d.0, a.0, b.0, 0),
            Addi { d, a, imm } => pack(op::ADDI, d.0, a.0, 0, to_imm44(imm)),
            Movi { d, imm } => pack(op::MOVI, d.0, 0, 0, to_imm44(imm)),
            Mov { d, a } => pack(op::MOV, d.0, a.0, 0, 0),
            Ld { d, a, off } => pack(op::LD, d.0, a.0, 0, to_imm44(off)),
            St { s, a, off } => pack(op::ST, s.0, a.0, 0, to_imm44(off)),
            LdA { d, addr } => pack(op::LDA, d.0, 0, 0, addr),
            StA { s, addr } => pack(op::STA, s.0, 0, 0, addr),
            LdB { d, a, off } => pack(op::LDB, d.0, a.0, 0, to_imm44(off)),
            StB { s, a, off } => pack(op::STB, s.0, a.0, 0, to_imm44(off)),
            Jmp { addr } => pack(op::JMP, 0, 0, 0, addr),
            Jr { a } => pack(op::JR, 0, a.0, 0, 0),
            Jal { d, addr } => pack(op::JAL, d.0, 0, 0, addr),
            Beq { a, b, addr } => pack(op::BEQ, 0, a.0, b.0, addr),
            Bne { a, b, addr } => pack(op::BNE, 0, a.0, b.0, addr),
            Blt { a, b, addr } => pack(op::BLT, 0, a.0, b.0, addr),
            Bge { a, b, addr } => pack(op::BGE, 0, a.0, b.0, addr),
            Halt => pack(op::HALT, 0, 0, 0, 0),
            Nop => pack(op::NOP, 0, 0, 0, 0),
            Work { cycles } => pack(op::WORK, 0, 0, 0, u64::from(cycles)),
            Syscall { num } => pack(op::SYSCALL, 0, 0, 0, u64::from(num)),
            VmCall { num } => pack(op::VMCALL, 0, 0, 0, u64::from(num)),
            HCall { num } => pack(op::HCALL, 0, 0, 0, u64::from(num)),
            Monitor { a } => pack(op::MONITOR, 0, a.0, 0, 0),
            MonitorA { addr } => pack(op::MONITORA, 0, 0, 0, addr),
            MWait => pack(op::MWAIT, 0, 0, 0, 0),
            Start { vt } => pack(op::START, 0, vt.0, 0, 0),
            Stop { vt } => pack(op::STOP, 0, vt.0, 0, 0),
            StartI { vtid } => pack(op::STARTI, 0, 0, 0, u64::from(vtid)),
            StopI { vtid } => pack(op::STOPI, 0, 0, 0, u64::from(vtid)),
            RPull { vt, local, remote } => {
                pack(op::RPULL, local.0, vt.0, 0, u64::from(remote.encode()))
            }
            RPush { vt, remote, local } => {
                pack(op::RPUSH, local.0, vt.0, 0, u64::from(remote.encode()))
            }
            InvTid { vt } => pack(op::INVTID, 0, vt.0, 0, 0),
            CsrR { d, csr } => pack(op::CSRR, d.0, 0, 0, csr_code(csr)),
            CsrW { csr, a } => pack(op::CSRW, 0, a.0, 0, csr_code(csr)),
            Fence => pack(op::FENCE, 0, 0, 0, 0),
        }
    }

    /// Decodes a 64-bit instruction word.
    pub fn decode(word: u64) -> Result<Inst, DecodeError> {
        let opc = (word >> 56) as u8;
        let rd = Reg(((word >> 52) & 0xf) as u8);
        let rs1 = Reg(((word >> 48) & 0xf) as u8);
        let rs2 = Reg(((word >> 44) & 0xf) as u8);
        let si = imm_signed(word);
        let ui = imm_unsigned(word);
        use Inst::*;
        Ok(match opc {
            op::ADD => Add {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::SUB => Sub {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::AND => And {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::OR => Or {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::XOR => Xor {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::SHL => Shl {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::SHR => Shr {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::MUL => Mul {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::DIV => Div {
                d: rd,
                a: rs1,
                b: rs2,
            },
            op::ADDI => Addi {
                d: rd,
                a: rs1,
                imm: si,
            },
            op::MOVI => Movi { d: rd, imm: si },
            op::MOV => Mov { d: rd, a: rs1 },
            op::LD => Ld {
                d: rd,
                a: rs1,
                off: si,
            },
            op::ST => St {
                s: rd,
                a: rs1,
                off: si,
            },
            op::LDA => LdA { d: rd, addr: ui },
            op::STA => StA { s: rd, addr: ui },
            op::LDB => LdB {
                d: rd,
                a: rs1,
                off: si,
            },
            op::STB => StB {
                s: rd,
                a: rs1,
                off: si,
            },
            op::JMP => Jmp { addr: ui },
            op::JR => Jr { a: rs1 },
            op::JAL => Jal { d: rd, addr: ui },
            op::BEQ => Beq {
                a: rs1,
                b: rs2,
                addr: ui,
            },
            op::BNE => Bne {
                a: rs1,
                b: rs2,
                addr: ui,
            },
            op::BLT => Blt {
                a: rs1,
                b: rs2,
                addr: ui,
            },
            op::BGE => Bge {
                a: rs1,
                b: rs2,
                addr: ui,
            },
            op::HALT => Halt,
            op::NOP => Nop,
            op::WORK => Work {
                cycles: (ui & 0xffff_ffff) as u32,
            },
            op::SYSCALL => Syscall {
                num: (ui & 0xffff) as u16,
            },
            op::VMCALL => VmCall {
                num: (ui & 0xffff) as u16,
            },
            op::HCALL => HCall {
                num: (ui & 0xffff) as u16,
            },
            op::MONITOR => Monitor { a: rs1 },
            op::MONITORA => MonitorA { addr: ui },
            op::MWAIT => MWait,
            op::START => Start { vt: rs1 },
            op::STOP => Stop { vt: rs1 },
            op::STARTI => StartI {
                vtid: (ui & 0xffff) as u16,
            },
            op::STOPI => StopI {
                vtid: (ui & 0xffff) as u16,
            },
            op::RPULL => RPull {
                vt: rs1,
                local: rd,
                remote: RegSel::decode((ui & 0xff) as u8)
                    .ok_or(DecodeError::BadOperand((ui & 0xff) as u8))?,
            },
            op::RPUSH => RPush {
                vt: rs1,
                remote: RegSel::decode((ui & 0xff) as u8)
                    .ok_or(DecodeError::BadOperand((ui & 0xff) as u8))?,
                local: rd,
            },
            op::INVTID => InvTid { vt: rs1 },
            op::CSRR => CsrR {
                d: rd,
                csr: csr_from(ui).ok_or(DecodeError::BadOperand(ui as u8))?,
            },
            op::CSRW => CsrW {
                csr: csr_from(ui).ok_or(DecodeError::BadOperand(ui as u8))?,
                a: rs1,
            },
            op::FENCE => Fence,
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }

    /// Base pipeline cost in cycles, before memory latency is added.
    ///
    /// Memory instructions add the hierarchy latency; `mwait` adds the
    /// blocked time; `start`/`stop` add TDT-lookup and state-tier costs —
    /// all charged by the machine, not here.
    #[must_use]
    pub fn base_cost(&self) -> u64 {
        use Inst::*;
        match self {
            Mul { .. } => 3,
            Div { .. } => 20,
            Work { cycles } => u64::from(*cycles).max(1),
            Fence => 3,
            Monitor { .. } | MonitorA { .. } => 2,
            RPull { .. } | RPush { .. } => 3,
            _ => 1,
        }
    }

    /// Whether this instruction requires supervisor mode.
    ///
    /// Executing a privileged instruction from a user-mode ptid does not
    /// trap into the same thread (there is no trap in this model): it
    /// disables the ptid and writes an exception descriptor (§3.2).
    #[must_use]
    pub fn is_privileged(&self) -> bool {
        matches!(self, Inst::CsrW { .. })
    }

    /// Whether this instruction can write memory (consults the monitor
    /// filter).
    #[must_use]
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::St { .. } | Inst::StA { .. } | Inst::StB { .. })
    }

    /// Whether this instruction is *inert*: it reads and writes only its
    /// own thread's registers. No memory access, no exception possible
    /// (which excludes `Div` — divide-by-zero — and every trap), no
    /// monitor-visible effect, nothing that can schedule an event or
    /// change a thread state, not privileged. Straight-line runs of
    /// inert instructions are the raw material of superblocks: executing
    /// one cannot change any burst-continuation decision.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Add { .. }
                | Sub { .. }
                | And { .. }
                | Or { .. }
                | Xor { .. }
                | Shl { .. }
                | Shr { .. }
                | Mul { .. }
                | Addi { .. }
                | Movi { .. }
                | Mov { .. }
                | Nop
                | Work { .. }
                | Fence
        )
    }

    /// Whether this instruction is a *local-effect* memory access: a
    /// plain load or store whose only effects are its own thread's
    /// registers, the accessed bytes, and the per-core memory metadata
    /// (cache/TLB/prefetcher state) — no trap, no thread-state change,
    /// no event. These are admissible inside memory-inclusive
    /// superblocks: every effect that could escape the thread (a store
    /// hitting an armed monitor line, an MMIO doorbell, the code image,
    /// or an address fault) is detected by the executing engine, which
    /// conservatively falls back to single-stepping.
    #[must_use]
    pub fn is_local_mem(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Ld { .. } | LdA { .. } | LdB { .. } | St { .. } | StA { .. } | StB { .. }
        )
    }

    /// Access width in bytes for local-effect memory instructions
    /// ([`Inst::is_local_mem`]); `None` for everything else. Together
    /// with the (data-dependent) effective address this is the
    /// instruction's exact memory footprint, which superblock execution
    /// resolves to cache-line and page footprints at run time.
    #[must_use]
    pub fn mem_footprint(&self) -> Option<u64> {
        use Inst::*;
        match self {
            Ld { .. } | LdA { .. } | St { .. } | StA { .. } => Some(8),
            LdB { .. } | StB { .. } => Some(1),
            _ => None,
        }
    }

    /// Whether this instruction may close a superblock: pure control
    /// flow whose only effects are the next pc and (for `Jal`) the link
    /// register. Branch direction is data-dependent, so a terminal ends
    /// the region rather than extending it — except an unconditional
    /// jump back to the region's entry, which formation unrolls.
    #[must_use]
    pub fn is_region_terminal(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Jmp { .. } | Jr { .. } | Jal { .. } | Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. }
        )
    }

    /// The general-purpose register this instruction writes, if any —
    /// used to pre-compute a superblock's registers-written summary.
    #[must_use]
    pub fn dest_reg(&self) -> Option<Reg> {
        use Inst::*;
        match self {
            Add { d, .. }
            | Sub { d, .. }
            | And { d, .. }
            | Or { d, .. }
            | Xor { d, .. }
            | Shl { d, .. }
            | Shr { d, .. }
            | Mul { d, .. }
            | Div { d, .. }
            | Addi { d, .. }
            | Movi { d, .. }
            | Mov { d, .. }
            | Ld { d, .. }
            | LdA { d, .. }
            | LdB { d, .. }
            | Jal { d, .. }
            | CsrR { d, .. } => Some(*d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_representative() -> Vec<Inst> {
        use Inst::*;
        vec![
            Add {
                d: Reg(1),
                a: Reg(2),
                b: Reg(3),
            },
            Sub {
                d: Reg(15),
                a: Reg(0),
                b: Reg(7),
            },
            And {
                d: Reg(4),
                a: Reg(5),
                b: Reg(6),
            },
            Or {
                d: Reg(4),
                a: Reg(5),
                b: Reg(6),
            },
            Xor {
                d: Reg(4),
                a: Reg(5),
                b: Reg(6),
            },
            Shl {
                d: Reg(1),
                a: Reg(1),
                b: Reg(2),
            },
            Shr {
                d: Reg(1),
                a: Reg(1),
                b: Reg(2),
            },
            Mul {
                d: Reg(9),
                a: Reg(10),
                b: Reg(11),
            },
            Div {
                d: Reg(9),
                a: Reg(10),
                b: Reg(11),
            },
            Addi {
                d: Reg(1),
                a: Reg(2),
                imm: -12345,
            },
            Movi {
                d: Reg(3),
                imm: 1 << 40,
            },
            Movi {
                d: Reg(3),
                imm: -(1 << 40),
            },
            Mov {
                d: Reg(3),
                a: Reg(4),
            },
            Ld {
                d: Reg(1),
                a: Reg(2),
                off: -8,
            },
            St {
                s: Reg(1),
                a: Reg(2),
                off: 16,
            },
            LdA {
                d: Reg(1),
                addr: 0xdead_beef,
            },
            StA {
                s: Reg(1),
                addr: 0xbeef,
            },
            LdB {
                d: Reg(2),
                a: Reg(3),
                off: 13,
            },
            StB {
                s: Reg(2),
                a: Reg(3),
                off: -13,
            },
            Jmp { addr: 0x10000 },
            Jr { a: Reg(5) },
            Jal {
                d: Reg(14),
                addr: 0x2000,
            },
            Beq {
                a: Reg(1),
                b: Reg(2),
                addr: 0x3000,
            },
            Bne {
                a: Reg(1),
                b: Reg(2),
                addr: 0x3000,
            },
            Blt {
                a: Reg(1),
                b: Reg(2),
                addr: 0x3000,
            },
            Bge {
                a: Reg(1),
                b: Reg(2),
                addr: 0x3000,
            },
            Halt,
            Nop,
            Work { cycles: 1000 },
            Syscall { num: 7 },
            VmCall { num: 3 },
            HCall { num: 42 },
            Monitor { a: Reg(2) },
            MonitorA { addr: 0xfe0 },
            MWait,
            Start { vt: Reg(1) },
            Stop { vt: Reg(1) },
            StartI { vtid: 9 },
            StopI { vtid: 9 },
            RPull {
                vt: Reg(1),
                local: Reg(2),
                remote: RegSel::Pc,
            },
            RPush {
                vt: Reg(1),
                remote: RegSel::Ctrl(CtrlReg::Tdtr),
                local: Reg(2),
            },
            InvTid { vt: Reg(3) },
            CsrR {
                d: Reg(1),
                csr: CtrlReg::Edp,
            },
            CsrW {
                csr: CtrlReg::Mode,
                a: Reg(1),
            },
            Fence,
        ]
    }

    #[test]
    fn encode_decode_roundtrip() {
        for inst in all_representative() {
            let word = inst.encode();
            let back = Inst::decode(word).unwrap_or_else(|e| panic!("{inst:?}: {e}"));
            assert_eq!(back, inst, "word {word:#018x}");
        }
    }

    #[test]
    fn bad_opcode_rejected() {
        assert_eq!(Inst::decode(0xff << 56), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(Inst::decode(0), Err(DecodeError::BadOpcode(0)));
    }

    #[test]
    fn bad_regsel_rejected() {
        // RPULL with selector 99.
        let word = (u64::from(0x47u8) << 56) | 99;
        assert_eq!(Inst::decode(word), Err(DecodeError::BadOperand(99)));
    }

    #[test]
    fn bad_csr_rejected() {
        let word = (u64::from(0x4au8) << 56) | 9;
        assert!(Inst::decode(word).is_err());
    }

    #[test]
    fn negative_imm_sign_extends() {
        let w = Inst::Addi {
            d: Reg(1),
            a: Reg(1),
            imm: -1,
        }
        .encode();
        match Inst::decode(w).unwrap() {
            Inst::Addi { imm, .. } => assert_eq!(imm, -1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn privileged_classification() {
        assert!(Inst::CsrW {
            csr: CtrlReg::Tdtr,
            a: Reg(0)
        }
        .is_privileged());
        assert!(!Inst::CsrR {
            d: Reg(0),
            csr: CtrlReg::Tdtr
        }
        .is_privileged());
        assert!(!Inst::StartI { vtid: 0 }.is_privileged());
        assert!(!Inst::MWait.is_privileged());
    }

    #[test]
    fn base_costs() {
        assert_eq!(Inst::Nop.base_cost(), 1);
        assert_eq!(
            Inst::Div {
                d: Reg(0),
                a: Reg(0),
                b: Reg(0)
            }
            .base_cost(),
            20
        );
        assert_eq!(Inst::Work { cycles: 500 }.base_cost(), 500);
        assert_eq!(Inst::Work { cycles: 0 }.base_cost(), 1);
    }

    #[test]
    fn store_classification() {
        assert!(Inst::St {
            s: Reg(0),
            a: Reg(0),
            off: 0
        }
        .is_store());
        assert!(Inst::StA { s: Reg(0), addr: 0 }.is_store());
        assert!(!Inst::Ld {
            d: Reg(0),
            a: Reg(0),
            off: 0
        }
        .is_store());
    }
}

//! A two-pass assembler for the `switchless` ISA.
//!
//! The assembler exists so that kernels and test programs in this
//! repository are *real programs* executed instruction-by-instruction by
//! the machine model, not hand-woven event scripts. Syntax is
//! deliberately small:
//!
//! ```text
//! ; comment        (also # and //)
//! .base 0x10000    ; load address (default 0x10000)
//! .equ TEN, 10     ; named constant
//! tail: .word 0    ; 8-byte initialised data
//! buf:  .zero 64   ; zero-filled bytes (rounded up to 8)
//! entry:
//!     movi r1, TEN
//!     addi r1, r1, -1
//!     ld   r2, tail        ; absolute (label) load
//!     st   r2, r3, 8       ; register+offset store
//!     monitor tail
//!     mwait
//!     beq  r1, r2, entry
//!     halt
//! ```
//!
//! Execution starts at the `entry` label if defined, else at `.base`.
//! Every instruction and `.word` occupies 8 bytes.

use std::collections::HashMap;

use crate::arch::{CtrlReg, RegSel};
use crate::inst::{Inst, Reg, IMM44_MAX};

/// A fully assembled, loadable program image.
#[derive(Clone, Debug)]
pub struct Program {
    /// Load address of the first word.
    pub base: u64,
    /// Image contents (code and data), one 64-bit word per 8 bytes.
    pub words: Vec<u64>,
    /// Address execution starts at.
    pub entry: u64,
    symbols: HashMap<String, u64>,
}

impl Program {
    /// Builds a raw image from pre-encoded words (fuzzers, generated
    /// code). Execution starts at `base`; the symbol table is empty.
    #[must_use]
    pub fn from_words(base: u64, words: Vec<u64>) -> Program {
        Program {
            base,
            entry: base,
            words,
            symbols: HashMap::new(),
        }
    }

    /// Address of a label or `.equ` constant.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols, for debuggers.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// First address past the image.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + (self.words.len() as u64) * 8
    }

    /// Image size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        (self.words.len() as u64) * 8
    }

    /// Decodes the instruction at an (8-byte aligned) address, if the
    /// address is inside the image and holds a valid instruction.
    #[must_use]
    pub fn inst_at(&self, addr: u64) -> Option<Inst> {
        if addr < self.base || addr >= self.end() || !addr.is_multiple_of(8) {
            return None;
        }
        let idx = ((addr - self.base) / 8) as usize;
        Inst::decode(self.words[idx]).ok()
    }
}

/// An assembly error, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Default load address when no `.base` directive is present.
pub const DEFAULT_BASE: u64 = 0x10000;

fn err(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError {
        line,
        msg: msg.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, _) in line.match_indices([';', '#']) {
        end = end.min(i);
    }
    if let Some(i) = line.find("//") {
        end = end.min(i);
    }
    &line[..end]
}

#[derive(Clone, Debug)]
enum Item {
    Inst {
        line: usize,
        mnemonic: String,
        operands: Vec<String>,
    },
    Word {
        line: usize,
        value: String,
    },
    Zero {
        words: u64,
    },
    Ascii {
        bytes: Vec<u8>,
    },
}

struct Parsed {
    base: u64,
    items: Vec<Item>,
    symbols: HashMap<String, u64>,
}

fn parse_number(tok: &str) -> Option<i64> {
    let tok = tok.replace('_', "");
    let (neg, rest) = match tok.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, tok.as_str()),
    };
    let v = if let Some(hex) = rest.strip_prefix("0x").or_else(|| rest.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        rest.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn is_ident(tok: &str) -> bool {
    let mut chars = tok.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_source(src: &str) -> Result<Parsed, AsmError> {
    let mut base: Option<u64> = None;
    let mut items: Vec<Item> = Vec::new();
    let mut labels: Vec<(String, u64, usize)> = Vec::new(); // (name, word-offset, line)
    let mut equs: Vec<(String, i64, usize)> = Vec::new();
    let mut offset_words: u64 = 0;

    for (lineno, raw) in src.lines().enumerate() {
        let line_number = lineno + 1;
        let mut text = strip_comment(raw).trim().to_owned();
        if text.is_empty() {
            continue;
        }
        // Peel off any leading labels ("name: rest").
        while let Some(colon) = text.find(':') {
            let (head, rest) = text.split_at(colon);
            let head = head.trim();
            if !is_ident(head) {
                return Err(err(line_number, format!("invalid label name '{head}'")));
            }
            labels.push((head.to_owned(), offset_words, line_number));
            text = rest[1..].trim().to_owned();
        }
        if text.is_empty() {
            continue;
        }
        let (word, rest) = match text.find(char::is_whitespace) {
            Some(i) => (text[..i].to_owned(), text[i..].trim().to_owned()),
            None => (text.clone(), String::new()),
        };
        match word.as_str() {
            ".base" => {
                let v = parse_number(&rest)
                    .ok_or_else(|| err(line_number, format!("bad .base value '{rest}'")))?;
                if offset_words != 0 {
                    return Err(err(line_number, ".base must precede code/data"));
                }
                if v < 0 || v as u64 > IMM44_MAX {
                    return Err(err(line_number, ".base out of 44-bit range"));
                }
                if v % 8 != 0 {
                    return Err(err(line_number, ".base must be 8-byte aligned"));
                }
                base = Some(v as u64);
            }
            ".equ" => {
                let parts: Vec<&str> = rest.splitn(2, ',').map(str::trim).collect();
                if parts.len() != 2 || !is_ident(parts[0]) {
                    return Err(err(line_number, "usage: .equ NAME, VALUE"));
                }
                let v = parse_number(parts[1])
                    .ok_or_else(|| err(line_number, format!("bad .equ value '{}'", parts[1])))?;
                equs.push((parts[0].to_owned(), v, line_number));
            }
            ".word" => {
                if rest.is_empty() {
                    return Err(err(line_number, ".word needs a value"));
                }
                items.push(Item::Word {
                    line: line_number,
                    value: rest,
                });
                offset_words += 1;
            }
            ".ascii" => {
                let text = rest.trim();
                if text.len() < 2 || !text.starts_with('"') || !text.ends_with('"') {
                    return Err(err(line_number, r#"usage: .ascii "text""#));
                }
                let bytes = text.as_bytes()[1..text.len() - 1].to_vec();
                let words = (bytes.len() as u64).div_ceil(8).max(1);
                items.push(Item::Ascii { bytes });
                offset_words += words;
            }
            ".zero" => {
                let v = parse_number(&rest)
                    .filter(|&v| v >= 0)
                    .ok_or_else(|| err(line_number, format!("bad .zero size '{rest}'")))?;
                let words = (v as u64).div_ceil(8).max(1);
                items.push(Item::Zero { words });
                offset_words += words;
            }
            m if m.starts_with('.') => {
                return Err(err(line_number, format!("unknown directive '{m}'")));
            }
            mnemonic => {
                let operands: Vec<String> = if rest.is_empty() {
                    Vec::new()
                } else {
                    rest.split(',').map(|s| s.trim().to_owned()).collect()
                };
                if operands.iter().any(String::is_empty) {
                    return Err(err(line_number, "empty operand"));
                }
                items.push(Item::Inst {
                    line: line_number,
                    mnemonic: mnemonic.to_ascii_lowercase(),
                    operands,
                });
                offset_words += 1;
            }
        }
    }

    let base = base.unwrap_or(DEFAULT_BASE);
    let mut symbols: HashMap<String, u64> = HashMap::new();
    for (name, off, line) in labels {
        if symbols.insert(name.clone(), base + off * 8).is_some() {
            return Err(err(line, format!("duplicate label '{name}'")));
        }
    }
    for (name, v, line) in equs {
        if v < 0 {
            return Err(err(line, format!(".equ '{name}' must be non-negative")));
        }
        if symbols.insert(name.clone(), v as u64).is_some() {
            return Err(err(line, format!("duplicate symbol '{name}'")));
        }
    }
    Ok(Parsed {
        base,
        items,
        symbols,
    })
}

struct Ctx<'a> {
    symbols: &'a HashMap<String, u64>,
    line: usize,
}

impl Ctx<'_> {
    fn reg(&self, tok: &str) -> Result<Reg, AsmError> {
        let t = tok.to_ascii_lowercase();
        if let Some(n) = t.strip_prefix('r') {
            if let Ok(i) = n.parse::<u8>() {
                if i < 16 {
                    return Ok(Reg(i));
                }
            }
        }
        Err(err(self.line, format!("expected register, got '{tok}'")))
    }

    fn regsel(&self, tok: &str) -> Result<RegSel, AsmError> {
        match tok.to_ascii_lowercase().as_str() {
            "pc" => Ok(RegSel::Pc),
            "edp" => Ok(RegSel::Ctrl(CtrlReg::Edp)),
            "tdtr" => Ok(RegSel::Ctrl(CtrlReg::Tdtr)),
            "mode" => Ok(RegSel::Ctrl(CtrlReg::Mode)),
            "prio" => Ok(RegSel::Ctrl(CtrlReg::Prio)),
            _ => self.reg(tok).map(|r| RegSel::Gpr(r.0)),
        }
    }

    fn csr(&self, tok: &str) -> Result<CtrlReg, AsmError> {
        match tok.to_ascii_lowercase().as_str() {
            "edp" => Ok(CtrlReg::Edp),
            "tdtr" => Ok(CtrlReg::Tdtr),
            "mode" => Ok(CtrlReg::Mode),
            "prio" => Ok(CtrlReg::Prio),
            _ => Err(err(
                self.line,
                format!("expected control register, got '{tok}'"),
            )),
        }
    }

    /// A signed immediate or symbol value.
    fn imm(&self, tok: &str) -> Result<i64, AsmError> {
        if let Some(v) = parse_number(tok) {
            return Ok(v);
        }
        if let Some(&v) = self.symbols.get(tok) {
            return Ok(v as i64);
        }
        Err(err(
            self.line,
            format!("undefined symbol or bad number '{tok}'"),
        ))
    }

    /// An absolute 44-bit address (number or symbol).
    fn addr(&self, tok: &str) -> Result<u64, AsmError> {
        let v = self.imm(tok)?;
        if v < 0 || v as u64 > IMM44_MAX {
            return Err(err(
                self.line,
                format!("address '{tok}' out of 44-bit range"),
            ));
        }
        Ok(v as u64)
    }

    fn simm44(&self, tok: &str) -> Result<i64, AsmError> {
        let v = self.imm(tok)?;
        let lim = 1i64 << 43;
        if v < -lim || v >= lim {
            return Err(err(
                self.line,
                format!("immediate '{tok}' out of signed 44-bit range"),
            ));
        }
        Ok(v)
    }

    fn u16imm(&self, tok: &str) -> Result<u16, AsmError> {
        let v = self.imm(tok)?;
        u16::try_from(v).map_err(|_| err(self.line, format!("immediate '{tok}' out of u16 range")))
    }

    fn is_reg(&self, tok: &str) -> bool {
        self.reg(tok).is_ok()
    }
}

fn expect_n(line: usize, ops: &[String], n: usize, usage: &str) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(err(line, format!("expected {n} operand(s): {usage}")))
    }
}

fn encode_item(mnemonic: &str, ops: &[String], ctx: &Ctx<'_>) -> Result<Inst, AsmError> {
    let line = ctx.line;
    let three_reg = |f: fn(Reg, Reg, Reg) -> Inst| -> Result<Inst, AsmError> {
        expect_n(line, ops, 3, "d, a, b")?;
        Ok(f(ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?))
    };
    let branch = |f: fn(Reg, Reg, u64) -> Inst| -> Result<Inst, AsmError> {
        expect_n(line, ops, 3, "a, b, target")?;
        Ok(f(ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.addr(&ops[2])?))
    };
    match mnemonic {
        "add" => three_reg(|d, a, b| Inst::Add { d, a, b }),
        "sub" => three_reg(|d, a, b| Inst::Sub { d, a, b }),
        "and" => three_reg(|d, a, b| Inst::And { d, a, b }),
        "or" => three_reg(|d, a, b| Inst::Or { d, a, b }),
        "xor" => three_reg(|d, a, b| Inst::Xor { d, a, b }),
        "shl" => three_reg(|d, a, b| Inst::Shl { d, a, b }),
        "shr" => three_reg(|d, a, b| Inst::Shr { d, a, b }),
        "mul" => three_reg(|d, a, b| Inst::Mul { d, a, b }),
        "div" => three_reg(|d, a, b| Inst::Div { d, a, b }),
        "addi" => {
            expect_n(line, ops, 3, "d, a, imm")?;
            Ok(Inst::Addi {
                d: ctx.reg(&ops[0])?,
                a: ctx.reg(&ops[1])?,
                imm: ctx.simm44(&ops[2])?,
            })
        }
        "movi" => {
            expect_n(line, ops, 2, "d, imm")?;
            Ok(Inst::Movi {
                d: ctx.reg(&ops[0])?,
                imm: ctx.simm44(&ops[1])?,
            })
        }
        "mov" => {
            expect_n(line, ops, 2, "d, a")?;
            Ok(Inst::Mov {
                d: ctx.reg(&ops[0])?,
                a: ctx.reg(&ops[1])?,
            })
        }
        "ld" => match ops.len() {
            2 => Ok(Inst::LdA {
                d: ctx.reg(&ops[0])?,
                addr: ctx.addr(&ops[1])?,
            }),
            3 => Ok(Inst::Ld {
                d: ctx.reg(&ops[0])?,
                a: ctx.reg(&ops[1])?,
                off: ctx.simm44(&ops[2])?,
            }),
            _ => Err(err(line, "usage: ld d, symbol  or  ld d, base, off")),
        },
        "ldb" => {
            expect_n(line, ops, 3, "d, base, off")?;
            Ok(Inst::LdB {
                d: ctx.reg(&ops[0])?,
                a: ctx.reg(&ops[1])?,
                off: ctx.simm44(&ops[2])?,
            })
        }
        "stb" => {
            expect_n(line, ops, 3, "s, base, off")?;
            Ok(Inst::StB {
                s: ctx.reg(&ops[0])?,
                a: ctx.reg(&ops[1])?,
                off: ctx.simm44(&ops[2])?,
            })
        }
        "st" => match ops.len() {
            2 => Ok(Inst::StA {
                s: ctx.reg(&ops[0])?,
                addr: ctx.addr(&ops[1])?,
            }),
            3 => Ok(Inst::St {
                s: ctx.reg(&ops[0])?,
                a: ctx.reg(&ops[1])?,
                off: ctx.simm44(&ops[2])?,
            }),
            _ => Err(err(line, "usage: st s, symbol  or  st s, base, off")),
        },
        "jmp" => {
            expect_n(line, ops, 1, "target")?;
            Ok(Inst::Jmp {
                addr: ctx.addr(&ops[0])?,
            })
        }
        "jr" => {
            expect_n(line, ops, 1, "a")?;
            Ok(Inst::Jr {
                a: ctx.reg(&ops[0])?,
            })
        }
        // Pseudo-instructions.
        "call" => {
            expect_n(line, ops, 1, "target")?;
            Ok(Inst::Jal {
                d: Reg(14),
                addr: ctx.addr(&ops[0])?,
            })
        }
        "ret" => {
            expect_n(line, ops, 0, "")?;
            Ok(Inst::Jr { a: Reg(14) })
        }
        "li" => {
            expect_n(line, ops, 2, "d, imm")?;
            Ok(Inst::Movi {
                d: ctx.reg(&ops[0])?,
                imm: ctx.simm44(&ops[1])?,
            })
        }
        "jal" => {
            expect_n(line, ops, 2, "link, target")?;
            Ok(Inst::Jal {
                d: ctx.reg(&ops[0])?,
                addr: ctx.addr(&ops[1])?,
            })
        }
        "beq" => branch(|a, b, addr| Inst::Beq { a, b, addr }),
        "bne" => branch(|a, b, addr| Inst::Bne { a, b, addr }),
        "blt" => branch(|a, b, addr| Inst::Blt { a, b, addr }),
        "bge" => branch(|a, b, addr| Inst::Bge { a, b, addr }),
        "halt" => {
            expect_n(line, ops, 0, "")?;
            Ok(Inst::Halt)
        }
        "nop" => {
            expect_n(line, ops, 0, "")?;
            Ok(Inst::Nop)
        }
        "work" => {
            expect_n(line, ops, 1, "cycles")?;
            let v = ctx.imm(&ops[0])?;
            let cycles = u32::try_from(v).map_err(|_| err(line, "work cycles out of u32 range"))?;
            Ok(Inst::Work { cycles })
        }
        "syscall" => {
            expect_n(line, ops, 1, "num")?;
            Ok(Inst::Syscall {
                num: ctx.u16imm(&ops[0])?,
            })
        }
        "vmcall" => {
            expect_n(line, ops, 1, "num")?;
            Ok(Inst::VmCall {
                num: ctx.u16imm(&ops[0])?,
            })
        }
        "hcall" => {
            expect_n(line, ops, 1, "num")?;
            Ok(Inst::HCall {
                num: ctx.u16imm(&ops[0])?,
            })
        }
        "monitor" => {
            expect_n(line, ops, 1, "reg-or-symbol")?;
            if ctx.is_reg(&ops[0]) {
                Ok(Inst::Monitor {
                    a: ctx.reg(&ops[0])?,
                })
            } else {
                Ok(Inst::MonitorA {
                    addr: ctx.addr(&ops[0])?,
                })
            }
        }
        "mwait" => {
            expect_n(line, ops, 0, "")?;
            Ok(Inst::MWait)
        }
        "start" => {
            expect_n(line, ops, 1, "reg-or-vtid")?;
            if ctx.is_reg(&ops[0]) {
                Ok(Inst::Start {
                    vt: ctx.reg(&ops[0])?,
                })
            } else {
                Ok(Inst::StartI {
                    vtid: ctx.u16imm(&ops[0])?,
                })
            }
        }
        "stop" => {
            expect_n(line, ops, 1, "reg-or-vtid")?;
            if ctx.is_reg(&ops[0]) {
                Ok(Inst::Stop {
                    vt: ctx.reg(&ops[0])?,
                })
            } else {
                Ok(Inst::StopI {
                    vtid: ctx.u16imm(&ops[0])?,
                })
            }
        }
        "rpull" => {
            expect_n(line, ops, 3, "vt, local, remote")?;
            Ok(Inst::RPull {
                vt: ctx.reg(&ops[0])?,
                local: ctx.reg(&ops[1])?,
                remote: ctx.regsel(&ops[2])?,
            })
        }
        "rpush" => {
            expect_n(line, ops, 3, "vt, remote, local")?;
            Ok(Inst::RPush {
                vt: ctx.reg(&ops[0])?,
                remote: ctx.regsel(&ops[1])?,
                local: ctx.reg(&ops[2])?,
            })
        }
        "invtid" => {
            expect_n(line, ops, 1, "vt")?;
            Ok(Inst::InvTid {
                vt: ctx.reg(&ops[0])?,
            })
        }
        "csrr" => {
            expect_n(line, ops, 2, "d, csr")?;
            Ok(Inst::CsrR {
                d: ctx.reg(&ops[0])?,
                csr: ctx.csr(&ops[1])?,
            })
        }
        "csrw" => {
            expect_n(line, ops, 2, "csr, a")?;
            Ok(Inst::CsrW {
                csr: ctx.csr(&ops[0])?,
                a: ctx.reg(&ops[1])?,
            })
        }
        "fence" => {
            expect_n(line, ops, 0, "")?;
            Ok(Inst::Fence)
        }
        other => Err(err(line, format!("unknown mnemonic '{other}'"))),
    }
}

/// Assembles source text into a [`Program`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered, with its source line.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let parsed = parse_source(src)?;
    let mut words: Vec<u64> = Vec::new();
    for item in &parsed.items {
        match item {
            Item::Zero { words: n } => words.extend(std::iter::repeat_n(0u64, *n as usize)),
            Item::Ascii { bytes } => {
                for chunk in bytes.chunks(8) {
                    let mut w = [0u8; 8];
                    w[..chunk.len()].copy_from_slice(chunk);
                    words.push(u64::from_le_bytes(w));
                }
                if bytes.is_empty() {
                    words.push(0);
                }
            }
            Item::Word { line, value } => {
                let ctx = Ctx {
                    symbols: &parsed.symbols,
                    line: *line,
                };
                let v = ctx.imm(value)?;
                words.push(v as u64);
            }
            Item::Inst {
                line,
                mnemonic,
                operands,
            } => {
                let ctx = Ctx {
                    symbols: &parsed.symbols,
                    line: *line,
                };
                let inst = encode_item(mnemonic, operands, &ctx)?;
                words.push(inst.encode());
            }
        }
    }
    let entry = parsed.symbols.get("entry").copied().unwrap_or(parsed.base);
    Ok(Program {
        base: parsed.base,
        words,
        entry,
        symbols: parsed.symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_minimal_program() {
        let p = assemble(
            r#"
            ; a counter loop
            count: .word 0
            entry:
                movi r1, 5
            loop:
                addi r1, r1, -1
                bne r1, r0, loop
                st r1, count
                halt
            "#,
        )
        .unwrap();
        assert_eq!(p.base, DEFAULT_BASE);
        assert_eq!(p.symbol("count"), Some(DEFAULT_BASE));
        assert_eq!(p.entry, DEFAULT_BASE + 8);
        assert_eq!(p.words.len(), 6);
        assert_eq!(p.inst_at(p.entry), Some(Inst::Movi { d: Reg(1), imm: 5 }));
        // The branch targets `loop` = base + 16.
        assert_eq!(
            p.inst_at(DEFAULT_BASE + 24),
            Some(Inst::Bne {
                a: Reg(1),
                b: Reg(0),
                addr: DEFAULT_BASE + 16
            })
        );
    }

    #[test]
    fn base_directive_relocates() {
        let p = assemble(".base 0x40000\nentry: halt\n").unwrap();
        assert_eq!(p.base, 0x40000);
        assert_eq!(p.entry, 0x40000);
        assert_eq!(p.inst_at(0x40000), Some(Inst::Halt));
    }

    #[test]
    fn equ_constants_work() {
        let p = assemble(
            r#"
            .equ ANSWER, 42
            entry: movi r2, ANSWER
                   halt
            "#,
        )
        .unwrap();
        assert_eq!(p.inst_at(p.entry), Some(Inst::Movi { d: Reg(2), imm: 42 }));
    }

    #[test]
    fn zero_directive_reserves_space() {
        let p = assemble("buf: .zero 100\nentry: halt\n").unwrap();
        // 100 bytes -> 13 words + 1 halt.
        assert_eq!(p.words.len(), 14);
        assert_eq!(p.entry, p.base + 13 * 8);
    }

    #[test]
    fn word_can_reference_label() {
        let p = assemble(
            r#"
            ptr: .word target
            target: .word 7
            "#,
        )
        .unwrap();
        assert_eq!(p.words[0], p.symbol("target").unwrap());
        assert_eq!(p.words[1], 7);
    }

    #[test]
    fn monitor_label_form() {
        let p = assemble("m: .word 0\nentry: monitor m\nmwait\nhalt\n").unwrap();
        assert_eq!(
            p.inst_at(p.entry),
            Some(Inst::MonitorA {
                addr: p.symbol("m").unwrap()
            })
        );
    }

    #[test]
    fn start_stop_immediate_and_register() {
        let p = assemble("entry: start 3\nstop r2\nhalt\n").unwrap();
        assert_eq!(p.inst_at(p.entry), Some(Inst::StartI { vtid: 3 }));
        assert_eq!(p.inst_at(p.entry + 8), Some(Inst::Stop { vt: Reg(2) }));
    }

    #[test]
    fn rpull_rpush_selectors() {
        use crate::arch::{CtrlReg, RegSel};
        let p = assemble("entry: rpull r1, r2, pc\nrpush r1, tdtr, r3\nhalt\n").unwrap();
        assert_eq!(
            p.inst_at(p.entry),
            Some(Inst::RPull {
                vt: Reg(1),
                local: Reg(2),
                remote: RegSel::Pc
            })
        );
        assert_eq!(
            p.inst_at(p.entry + 8),
            Some(Inst::RPush {
                vt: Reg(1),
                remote: RegSel::Ctrl(CtrlReg::Tdtr),
                local: Reg(3)
            })
        );
    }

    #[test]
    fn error_reports_line() {
        let e = assemble("entry:\n  nop\n  frobnicate r1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn undefined_symbol_errors() {
        let e = assemble("entry: jmp nowhere\n").unwrap_err();
        assert!(e.msg.contains("nowhere"));
    }

    #[test]
    fn duplicate_label_errors() {
        let e = assemble("a: nop\na: nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate"));
    }

    #[test]
    fn wrong_operand_count_errors() {
        let e = assemble("entry: add r1, r2\n").unwrap_err();
        assert!(e.msg.contains("3 operand"));
    }

    #[test]
    fn base_after_code_errors() {
        let e = assemble("entry: nop\n.base 0x2000\n").unwrap_err();
        assert!(e.msg.contains("precede"));
    }

    #[test]
    fn misaligned_base_errors() {
        let e = assemble(".base 0x1004\nentry: halt\n").unwrap_err();
        assert!(e.msg.contains("aligned"));
    }

    #[test]
    fn comments_all_styles() {
        let p = assemble("entry: nop ; semicolon\nnop # hash\nnop // slashes\nhalt\n").unwrap();
        assert_eq!(p.words.len(), 4);
    }

    #[test]
    fn negative_and_hex_numbers() {
        let p = assemble("entry: movi r1, -0x10\naddi r1, r1, 1_000\nhalt\n").unwrap();
        assert_eq!(
            p.inst_at(p.entry),
            Some(Inst::Movi {
                d: Reg(1),
                imm: -16
            })
        );
        assert_eq!(
            p.inst_at(p.entry + 8),
            Some(Inst::Addi {
                d: Reg(1),
                a: Reg(1),
                imm: 1000
            })
        );
    }

    #[test]
    fn entry_defaults_to_base() {
        let p = assemble("nop\nhalt\n").unwrap();
        assert_eq!(p.entry, p.base);
    }

    #[test]
    fn label_on_own_line() {
        let p = assemble("entry:\n    halt\n").unwrap();
        assert_eq!(p.inst_at(p.entry), Some(Inst::Halt));
    }

    #[test]
    fn inst_at_out_of_range() {
        let p = assemble("entry: halt\n").unwrap();
        assert_eq!(p.inst_at(p.base - 8), None);
        assert_eq!(p.inst_at(p.end()), None);
        assert_eq!(p.inst_at(p.base + 3), None);
    }
}

#[cfg(test)]
mod pseudo_tests {
    use super::*;

    #[test]
    fn call_ret_li_pseudo_ops() {
        let p = assemble(
            r#"
            entry:
                li r1, 5
                call helper
                halt
            helper:
                addi r1, r1, 1
                ret
            "#,
        )
        .unwrap();
        assert_eq!(p.inst_at(p.entry), Some(Inst::Movi { d: Reg(1), imm: 5 }));
        let helper = p.symbol("helper").unwrap();
        assert_eq!(
            p.inst_at(p.entry + 8),
            Some(Inst::Jal {
                d: Reg(14),
                addr: helper
            })
        );
        assert_eq!(p.inst_at(helper + 8), Some(Inst::Jr { a: Reg(14) }));
    }

    #[test]
    fn ascii_directive_packs_bytes() {
        let p = assemble(
            r#"
            msg: .ascii "hello, hw threads"
            entry: halt
            "#,
        )
        .unwrap();
        // 17 bytes -> 3 words.
        assert_eq!(p.entry, p.base + 3 * 8);
        let first = p.words[0].to_le_bytes();
        assert_eq!(&first, b"hello, h");
        let last = p.words[2].to_le_bytes();
        assert_eq!(&last[..1], b"s");
    }

    #[test]
    fn bad_ascii_errors() {
        assert!(assemble("x: .ascii hello\n").is_err());
    }
}

//! Architectural state of one hardware thread, with byte accounting.
//!
//! §4 of the paper sizes the hardware by the bytes of state per thread:
//! "For x86-64, a thread has 272 bytes of register state that goes up to
//! 784 bytes if SSE3 vector extensions are used." The same arithmetic for
//! *our* ISA is produced by [`ArchState::state_bytes`], and the paper's
//! x86-64 reference constants are exported for the T2 capacity table.

use core::fmt;

/// Number of general-purpose registers.
pub const NUM_GPRS: usize = 16;

/// Number of vector registers in the optional vector extension.
pub const NUM_VREGS: usize = 16;

/// Bytes per vector register (256-bit vectors).
pub const VREG_BYTES: usize = 32;

/// The paper's x86-64 reference numbers (§4).
pub mod x86_64 {
    /// Base register state of an x86-64 thread, per the paper.
    pub const STATE_BYTES: u64 = 272;
    /// Register state with SSE3 vector extensions, per the paper.
    pub const STATE_BYTES_SSE3: u64 = 784;
    /// Register file bytes in one NVIDIA V100 sub-core, per the paper.
    pub const V100_SUBCORE_RF_BYTES: u64 = 64 * 1024;
}

/// Privilege mode of a hardware thread (§3.2).
///
/// Note the paper's usage: "supervisor" is the mode the most-privileged
/// software (kernel or hypervisor) runs in; guest kernels and applications
/// both run in "user" ptids and rely on TDT permissions for the rest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Unprivileged.
    #[default]
    User,
    /// Privileged: may write the TDT pointer and other control state.
    Supervisor,
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::User => write!(f, "user"),
            Mode::Supervisor => write!(f, "supervisor"),
        }
    }
}

/// Control registers, including the two novel ones from §3.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtrlReg {
    /// Exception-descriptor pointer: where the hardware writes an
    /// exception descriptor when this ptid becomes disabled by a fault.
    Edp,
    /// Thread-descriptor-table base register (vtid → ptid + permissions).
    Tdtr,
    /// Privilege mode (reads as 0 user / 1 supervisor).
    Mode,
    /// Scheduling priority class (0 = lowest).
    Prio,
}

impl CtrlReg {
    /// All control registers, in `RegSel` numbering order.
    pub const ALL: [CtrlReg; 4] = [CtrlReg::Edp, CtrlReg::Tdtr, CtrlReg::Mode, CtrlReg::Prio];
}

/// Selector for `rpull`/`rpush` remote-register operands: a GPR, the
/// program counter, or a control register (§3.1 "in addition to normal
/// registers, remote-reg can be the program counter or various control
/// registers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RegSel {
    /// General-purpose register 0–15.
    Gpr(u8),
    /// The program counter.
    Pc,
    /// A control register.
    Ctrl(CtrlReg),
}

impl RegSel {
    /// Encodes the selector as a small integer for the instruction format.
    #[must_use]
    pub fn encode(self) -> u8 {
        match self {
            RegSel::Gpr(n) => n,
            RegSel::Pc => 16,
            RegSel::Ctrl(CtrlReg::Edp) => 17,
            RegSel::Ctrl(CtrlReg::Tdtr) => 18,
            RegSel::Ctrl(CtrlReg::Mode) => 19,
            RegSel::Ctrl(CtrlReg::Prio) => 20,
        }
    }

    /// Decodes a selector; `None` for out-of-range values.
    #[must_use]
    pub fn decode(v: u8) -> Option<RegSel> {
        match v {
            0..=15 => Some(RegSel::Gpr(v)),
            16 => Some(RegSel::Pc),
            17 => Some(RegSel::Ctrl(CtrlReg::Edp)),
            18 => Some(RegSel::Ctrl(CtrlReg::Tdtr)),
            19 => Some(RegSel::Ctrl(CtrlReg::Mode)),
            20 => Some(RegSel::Ctrl(CtrlReg::Prio)),
            _ => None,
        }
    }

    /// Whether writing this register from another thread requires the
    /// "modify most registers" permission bit rather than "modify some".
    ///
    /// The TDT's 4 permission bits (§3.2, Table 1) distinguish modifying
    /// *some* registers (GPRs — enough to pass arguments) from *most*
    /// (pc and control state — enough to repurpose the thread).
    #[must_use]
    pub fn is_sensitive(self) -> bool {
        !matches!(self, RegSel::Gpr(_))
    }
}

impl fmt::Display for RegSel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegSel::Gpr(n) => write!(f, "r{n}"),
            RegSel::Pc => write!(f, "pc"),
            RegSel::Ctrl(CtrlReg::Edp) => write!(f, "edp"),
            RegSel::Ctrl(CtrlReg::Tdtr) => write!(f, "tdtr"),
            RegSel::Ctrl(CtrlReg::Mode) => write!(f, "mode"),
            RegSel::Ctrl(CtrlReg::Prio) => write!(f, "prio"),
        }
    }
}

/// Complete architectural state of one hardware thread.
///
/// This is exactly the state the §4 storage hierarchy must hold per
/// thread, so its size drives the capacity experiments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchState {
    /// General-purpose registers.
    pub gprs: [u64; NUM_GPRS],
    /// Program counter.
    pub pc: u64,
    /// Exception-descriptor pointer (0 = none installed).
    pub edp: u64,
    /// Thread-descriptor-table base (0 = no TDT).
    pub tdtr: u64,
    /// Privilege mode.
    pub mode: Mode,
    /// Scheduling priority class.
    pub prio: u8,
    /// Vector registers, present only when the thread uses the vector
    /// extension (the §2 "Access to All Registers in the Kernel" case).
    pub vregs: Option<Box<[[u8; VREG_BYTES]; NUM_VREGS]>>,
}

impl Default for ArchState {
    fn default() -> ArchState {
        ArchState {
            gprs: [0; NUM_GPRS],
            pc: 0,
            edp: 0,
            tdtr: 0,
            mode: Mode::User,
            prio: 0,
            vregs: None,
        }
    }
}

impl ArchState {
    /// Bytes of state the hardware must store for this thread.
    ///
    /// GPRs + pc + edp + tdtr + (mode,prio packed into one word), plus the
    /// vector file if in use. Mirrors the paper's 272 B / 784 B split for
    /// x86-64.
    #[must_use]
    pub fn state_bytes(&self) -> u64 {
        let base = (NUM_GPRS as u64) * 8 + 8 + 8 + 8 + 8;
        match self.vregs {
            Some(_) => base + (NUM_VREGS * VREG_BYTES) as u64,
            None => base,
        }
    }

    /// Base state bytes for any thread of this ISA (no vector file).
    #[must_use]
    pub fn base_state_bytes() -> u64 {
        ArchState::default().state_bytes()
    }

    /// State bytes with the vector extension in use.
    #[must_use]
    pub fn vector_state_bytes() -> u64 {
        let mut s = ArchState::default();
        s.enable_vectors();
        s.state_bytes()
    }

    /// Reads a register through a [`RegSel`].
    #[must_use]
    pub fn read(&self, sel: RegSel) -> u64 {
        match sel {
            RegSel::Gpr(n) => self.gprs[n as usize & 0xf],
            RegSel::Pc => self.pc,
            RegSel::Ctrl(CtrlReg::Edp) => self.edp,
            RegSel::Ctrl(CtrlReg::Tdtr) => self.tdtr,
            RegSel::Ctrl(CtrlReg::Mode) => match self.mode {
                Mode::User => 0,
                Mode::Supervisor => 1,
            },
            RegSel::Ctrl(CtrlReg::Prio) => u64::from(self.prio),
        }
    }

    /// Writes a register through a [`RegSel`].
    pub fn write(&mut self, sel: RegSel, value: u64) {
        match sel {
            RegSel::Gpr(n) => self.gprs[n as usize & 0xf] = value,
            RegSel::Pc => self.pc = value,
            RegSel::Ctrl(CtrlReg::Edp) => self.edp = value,
            RegSel::Ctrl(CtrlReg::Tdtr) => self.tdtr = value,
            RegSel::Ctrl(CtrlReg::Mode) => {
                self.mode = if value & 1 == 1 {
                    Mode::Supervisor
                } else {
                    Mode::User
                };
            }
            RegSel::Ctrl(CtrlReg::Prio) => self.prio = (value & 0xff) as u8,
        }
    }

    /// Allocates the vector file (first vector instruction executed).
    pub fn enable_vectors(&mut self) {
        if self.vregs.is_none() {
            self.vregs = Some(Box::new([[0; VREG_BYTES]; NUM_VREGS]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_state_is_compact() {
        // 16*8 + 8 (pc) + 8 (edp) + 8 (tdtr) + 8 (mode|prio) = 160 bytes.
        assert_eq!(ArchState::base_state_bytes(), 160);
    }

    #[test]
    fn vector_state_grows_like_the_paper_says() {
        // +16*32 = +512 bytes, the same shape as x86's 272 -> 784 jump.
        assert_eq!(
            ArchState::vector_state_bytes(),
            ArchState::base_state_bytes() + 512
        );
        assert_eq!(
            x86_64::STATE_BYTES_SSE3 - x86_64::STATE_BYTES,
            512,
            "the paper's own delta is also a 512-byte vector file"
        );
    }

    #[test]
    fn regsel_roundtrip() {
        for v in 0..=20u8 {
            let sel = RegSel::decode(v).unwrap();
            assert_eq!(sel.encode(), v);
        }
        assert!(RegSel::decode(21).is_none());
    }

    #[test]
    fn sensitive_classification() {
        assert!(!RegSel::Gpr(3).is_sensitive());
        assert!(RegSel::Pc.is_sensitive());
        assert!(RegSel::Ctrl(CtrlReg::Tdtr).is_sensitive());
    }

    #[test]
    fn read_write_all_selectors() {
        let mut s = ArchState::default();
        for v in 0..=20u8 {
            let sel = RegSel::decode(v).unwrap();
            s.write(sel, 0x55);
            let got = s.read(sel);
            match sel {
                RegSel::Ctrl(CtrlReg::Mode) => assert_eq!(got, 1),
                _ => assert_eq!(got, 0x55),
            }
        }
    }

    #[test]
    fn mode_write_is_bit0() {
        let mut s = ArchState::default();
        s.write(RegSel::Ctrl(CtrlReg::Mode), 2);
        assert_eq!(s.mode, Mode::User);
        s.write(RegSel::Ctrl(CtrlReg::Mode), 3);
        assert_eq!(s.mode, Mode::Supervisor);
    }

    #[test]
    fn v100_reference_arithmetic() {
        // §4: a 64 KB sub-core register file stores 83-224 x86-64 threads.
        let lo = x86_64::V100_SUBCORE_RF_BYTES / x86_64::STATE_BYTES_SSE3;
        let hi = x86_64::V100_SUBCORE_RF_BYTES / x86_64::STATE_BYTES;
        assert_eq!(lo, 83);
        assert_eq!(hi, 240); // 240 floor; the paper quotes 224 (alignment).
    }
}

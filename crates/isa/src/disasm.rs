//! Disassembler: the inverse of the assembler, for debugging and tests.

use crate::inst::Inst;

/// Renders one instruction in assembler syntax.
#[must_use]
pub fn disassemble(inst: Inst) -> String {
    use Inst::*;
    match inst {
        Add { d, a, b } => format!("add {d}, {a}, {b}"),
        Sub { d, a, b } => format!("sub {d}, {a}, {b}"),
        And { d, a, b } => format!("and {d}, {a}, {b}"),
        Or { d, a, b } => format!("or {d}, {a}, {b}"),
        Xor { d, a, b } => format!("xor {d}, {a}, {b}"),
        Shl { d, a, b } => format!("shl {d}, {a}, {b}"),
        Shr { d, a, b } => format!("shr {d}, {a}, {b}"),
        Mul { d, a, b } => format!("mul {d}, {a}, {b}"),
        Div { d, a, b } => format!("div {d}, {a}, {b}"),
        Addi { d, a, imm } => format!("addi {d}, {a}, {imm}"),
        Movi { d, imm } => format!("movi {d}, {imm}"),
        Mov { d, a } => format!("mov {d}, {a}"),
        Ld { d, a, off } => format!("ld {d}, {a}, {off}"),
        St { s, a, off } => format!("st {s}, {a}, {off}"),
        LdB { d, a, off } => format!("ldb {d}, {a}, {off}"),
        StB { s, a, off } => format!("stb {s}, {a}, {off}"),
        LdA { d, addr } => format!("ld {d}, {addr:#x}"),
        StA { s, addr } => format!("st {s}, {addr:#x}"),
        Jmp { addr } => format!("jmp {addr:#x}"),
        Jr { a } => format!("jr {a}"),
        Jal { d, addr } => format!("jal {d}, {addr:#x}"),
        Beq { a, b, addr } => format!("beq {a}, {b}, {addr:#x}"),
        Bne { a, b, addr } => format!("bne {a}, {b}, {addr:#x}"),
        Blt { a, b, addr } => format!("blt {a}, {b}, {addr:#x}"),
        Bge { a, b, addr } => format!("bge {a}, {b}, {addr:#x}"),
        Halt => "halt".to_owned(),
        Nop => "nop".to_owned(),
        Work { cycles } => format!("work {cycles}"),
        Syscall { num } => format!("syscall {num}"),
        VmCall { num } => format!("vmcall {num}"),
        HCall { num } => format!("hcall {num}"),
        Monitor { a } => format!("monitor {a}"),
        MonitorA { addr } => format!("monitor {addr:#x}"),
        MWait => "mwait".to_owned(),
        Start { vt } => format!("start {vt}"),
        Stop { vt } => format!("stop {vt}"),
        StartI { vtid } => format!("start {vtid}"),
        StopI { vtid } => format!("stop {vtid}"),
        RPull { vt, local, remote } => format!("rpull {vt}, {local}, {remote}"),
        RPush { vt, remote, local } => format!("rpush {vt}, {remote}, {local}"),
        InvTid { vt } => format!("invtid {vt}"),
        CsrR { d, csr } => format!("csrr {d}, {}", csr_name(csr)),
        CsrW { csr, a } => format!("csrw {}, {a}", csr_name(csr)),
        Fence => "fence".to_owned(),
    }
}

fn csr_name(c: crate::arch::CtrlReg) -> &'static str {
    match c {
        crate::arch::CtrlReg::Edp => "edp",
        crate::arch::CtrlReg::Tdtr => "tdtr",
        crate::arch::CtrlReg::Mode => "mode",
        crate::arch::CtrlReg::Prio => "prio",
    }
}

/// Disassembles a whole image, one line per word; undecodable words render
/// as `.word` data.
#[must_use]
pub fn disassemble_image(base: u64, words: &[u64]) -> String {
    words
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            let addr = base + (i as u64) * 8;
            match Inst::decode(w) {
                Ok(inst) => format!("{addr:#8x}: {}", disassemble(inst)),
                Err(_) => format!("{addr:#8x}: .word {w:#x}"),
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn disassembly_reassembles_to_same_words() {
        let src = r#"
            data: .word 9
            entry:
                movi r1, 42
                addi r1, r1, -1
                ld r2, data
                st r2, r3, 8
                monitor data
                mwait
                start 5
                rpull r1, r2, pc
                csrw mode, r4
                work 100
                beq r1, r2, entry
                halt
        "#;
        let p1 = assemble(src).unwrap();
        // Round-trip every instruction word through the disassembler and
        // a fresh assembly.
        for (i, &w) in p1.words.iter().enumerate().skip(1) {
            let inst = Inst::decode(w).unwrap();
            let text = disassemble(inst);
            let re = assemble(&format!(".base {:#x}\nentry: {text}\n", p1.base))
                .unwrap_or_else(|e| panic!("reassembling '{text}': {e}"));
            assert_eq!(re.words[0], w, "word {i}: '{text}'");
        }
    }

    #[test]
    fn image_disassembly_marks_data() {
        let p = assemble("x: .word 0\nentry: halt\n").unwrap();
        let text = disassemble_image(p.base, &p.words);
        assert!(text.contains(".word 0x0"));
        assert!(text.contains("halt"));
    }
}

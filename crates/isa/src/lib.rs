//! The `switchless` instruction set: a compact RISC-style ISA carrying the
//! paper's §3.1 extensions as first-class opcodes.
//!
//! The paper proposes extending an ISA with:
//!
//! * `monitor <addr>` / `mwait` — arm a watch on any address (any
//!   privilege level, cacheable or not) and block until a write;
//! * `start <vtid>` / `stop <vtid>` — enable/disable the hardware thread a
//!   virtual thread id maps to;
//! * `rpull <vtid>, <local>, <remote>` / `rpush <vtid>, <remote>, <local>`
//!   — read/write another (disabled) hardware thread's registers,
//!   including its program counter and novel control registers;
//! * `invtid <vtid>` — invalidate a cached Thread Descriptor Table entry.
//!
//! Rather than model x86-64 (whose encoding would drown the semantics),
//! this crate defines a small fixed-width ISA with those extensions plus
//! enough conventional instructions to write real kernels: ALU ops, loads
//! and stores, branches, calls, `syscall`/`vmcall`, and control-register
//! access. `switchless-core` gives the instructions their operational
//! semantics; this crate owns the *representation*:
//!
//! * [`arch`] — architectural state ([`arch::ArchState`]) with
//!   byte-accurate size accounting (the §4 storage arithmetic), plus the
//!   paper's x86-64 reference constants (272 B / 784 B).
//! * [`inst`] — the [`inst::Inst`] enum, binary encode/decode, per-opcode
//!   base costs, and privilege classification.
//! * [`asm`] — a two-pass assembler with labels, `.word`/`.zero`/`.equ`
//!   directives and symbol tables, producing a loadable [`asm::Program`].
//! * [`disasm`] — the inverse of the assembler, for debugging and tests.
//!
//! # Examples
//!
//! ```
//! use switchless_isa::asm::assemble;
//! use switchless_isa::inst::Inst;
//!
//! let p = assemble(
//!     r#"
//!     counter: .word 0
//!     entry:
//!         monitor counter
//!         mwait
//!         halt
//!     "#,
//! )
//! .unwrap();
//! assert!(p.symbol("counter").is_some());
//! assert!(matches!(p.inst_at(p.entry).unwrap(), Inst::MonitorA { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod asm;
pub mod disasm;
pub mod inst;

pub use arch::{ArchState, CtrlReg, Mode, RegSel};
pub use asm::{assemble, AsmError, Program};
pub use inst::{DecodeError, Inst, Reg};

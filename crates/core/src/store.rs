//! The thread-state storage hierarchy (§4 "Storage for Thread State").
//!
//! The paper's central hardware-feasibility argument: keep a small number
//! of threads' register state in a fast **register-file tier** (starts
//! cost ~a pipeline refill, ≈20 cycles), back more threads in fractions of
//! the private **L2** and shared **L3** (bulk transfers over 32-byte links
//! cost 10–50 cycles), and spill the long tail to **DRAM** (off-chip,
//! "severe performance losses"). This module models that placement with
//! the three §4 optimizations as switchable policies:
//!
//! * *criticality placement* — keep high-priority threads in the RF tier;
//! * *dirty-register tracking* — transfer only touched state;
//! * *wake-prefetch* — start the transfer when a thread becomes runnable
//!   rather than when it is first scheduled (driven by the machine).

use switchless_sim::time::Cycles;

use crate::tid::Ptid;

/// Where a parked thread's architectural state currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Register-file tier: immediately startable.
    Rf,
    /// Private L2 fraction.
    L2,
    /// Shared L3 fraction.
    L3,
    /// Spilled off-chip.
    Dram,
}

impl Tier {
    /// Short label for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Rf => "rf",
            Tier::L2 => "l2",
            Tier::L3 => "l3",
            Tier::Dram => "dram",
        }
    }
}

/// Capacities, costs and policy switches for a per-core [`StateStore`].
#[derive(Clone, Copy, Debug)]
pub struct StoreConfig {
    /// Threads whose state fits the RF tier (per core).
    pub rf_threads: usize,
    /// Threads backed by the L2 fraction (per core).
    pub l2_threads: usize,
    /// Threads backed by this core's share of L3.
    pub l3_threads: usize,
    /// Pipeline-refill cost to start an RF-resident thread (§4: ~20).
    pub rf_start: Cycles,
    /// Interconnect link width for bulk state transfer (§4: 32-byte).
    pub link_bytes_per_cycle: u64,
    /// Base latency of an L2 state transfer (§4: 10–50 cycle range).
    pub l2_base: Cycles,
    /// Base latency of an L3 state transfer.
    pub l3_base: Cycles,
    /// Base latency of a DRAM state transfer (off-chip).
    pub dram_base: Cycles,
    /// Track touched registers and transfer only those (§4 optimization).
    pub dirty_tracking: bool,
    /// Evict low-priority threads from the RF tier first (§4: "selecting
    /// which threads are stored closer to the core based on criticality").
    pub criticality_placement: bool,
    /// Begin the state transfer at wakeup rather than first dispatch.
    pub prefetch_on_wake: bool,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            rf_threads: 16,
            l2_threads: 64,
            l3_threads: 512,
            rf_start: Cycles(20),
            link_bytes_per_cycle: 32,
            l2_base: Cycles(10),
            l3_base: Cycles(30),
            dram_base: Cycles(200),
            dirty_tracking: true,
            criticality_placement: true,
            prefetch_on_wake: true,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tier: Tier,
    stamp: u64,
    prio: u8,
}

/// Per-core thread-state placement and activation-cost model.
///
/// Placement state is ptid-indexed vectors and per-tier arrays rather
/// than hash maps: [`StateStore::tier_of`]/[`StateStore::touch`] run on
/// every dispatch, so lookups must be bare indexing. Victim selection
/// scans `entries` in ptid order, but stamps are unique and compared
/// strictly, so the chosen minimum never depends on scan order.
#[derive(Clone, Debug)]
pub struct StateStore {
    config: StoreConfig,
    /// Placement per ptid; `None` for threads never activated here.
    entries: Vec<Option<Entry>>,
    /// Resident-thread counts, indexed by `Tier as usize`.
    counts: [usize; 4],
    tick: u64,
    /// Lifetime activations served, indexed by `Tier as usize`.
    activations: [u64; 4],
}

impl StateStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new(config: StoreConfig) -> StateStore {
        StateStore {
            config,
            entries: Vec::new(),
            counts: [0; 4],
            tick: 0,
            activations: [0; 4],
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Tier a thread's state currently occupies (unknown threads are
    /// considered DRAM-resident — never yet loaded).
    #[must_use]
    pub fn tier_of(&self, ptid: Ptid) -> Tier {
        match self.entries.get(ptid.0 as usize) {
            Some(&Some(e)) => e.tier,
            _ => Tier::Dram,
        }
    }

    fn slot(&mut self, ptid: Ptid) -> &mut Option<Entry> {
        let i = ptid.0 as usize;
        if i >= self.entries.len() {
            self.entries.resize(i + 1, None);
        }
        &mut self.entries[i]
    }

    /// Cost to begin executing a thread whose state is in `tier`, given
    /// the bytes that must move.
    #[must_use]
    pub fn activation_cost(&self, tier: Tier, bytes: u64) -> Cycles {
        let link = self.config.link_bytes_per_cycle.max(1);
        let xfer = Cycles(bytes.div_ceil(link));
        match tier {
            Tier::Rf => self.config.rf_start,
            Tier::L2 => self.config.rf_start + self.config.l2_base + xfer,
            Tier::L3 => self.config.rf_start + self.config.l3_base + xfer,
            Tier::Dram => self.config.rf_start + self.config.dram_base + xfer,
        }
    }

    /// Activates a thread: charges the tier cost and promotes the thread
    /// into the RF tier, demoting victims down the hierarchy.
    ///
    /// `bytes` is the state volume to transfer (the machine passes the
    /// dirty subset when dirty tracking is on). Returns the activation
    /// latency and the tier the state was found in.
    pub fn activate(&mut self, ptid: Ptid, prio: u8, bytes: u64) -> (Cycles, Tier) {
        let from = self.tier_of(ptid);
        let cost = self.activation_cost(from, bytes);
        self.activations[from as usize] += 1;
        self.tick += 1;
        // Remove from current tier.
        if let Some(e) = self.slot(ptid).take() {
            self.counts[e.tier as usize] = self.counts[e.tier as usize].saturating_sub(1);
        }
        self.place(ptid, Tier::Rf, prio);
        (cost, from)
    }

    /// Refreshes recency (called when a resident thread is dispatched).
    ///
    /// A burst dispatch (machine.rs) touches once per *burst*, not once
    /// per instruction. That is exact, not approximate: ticks are
    /// strictly increasing and only their relative order is ever read
    /// (LRU victim choice compares stamps), and a burst is only entered
    /// while its thread is the sole enrolled thread on the core — no
    /// other thread's stamp can land between the elided touches, so
    /// every victim comparison orders identically.
    pub fn touch(&mut self, ptid: Ptid) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(Some(e)) = self.entries.get_mut(ptid.0 as usize) {
            e.stamp = tick;
        }
    }

    /// Removes a thread entirely (destroyed / reset).
    pub fn remove(&mut self, ptid: Ptid) {
        let i = ptid.0 as usize;
        if i < self.entries.len() {
            if let Some(e) = self.entries[i].take() {
                self.counts[e.tier as usize] = self.counts[e.tier as usize].saturating_sub(1);
            }
        }
    }

    /// Number of threads resident in `tier`.
    #[must_use]
    pub fn occupancy(&self, tier: Tier) -> usize {
        self.counts[tier as usize]
    }

    /// Lifetime activations served from each tier `(rf, l2, l3, dram)`.
    #[must_use]
    pub fn activation_stats(&self) -> (u64, u64, u64, u64) {
        let a = &self.activations;
        (a[0], a[1], a[2], a[3])
    }

    fn capacity(&self, tier: Tier) -> usize {
        match tier {
            Tier::Rf => self.config.rf_threads,
            Tier::L2 => self.config.l2_threads,
            Tier::L3 => self.config.l3_threads,
            Tier::Dram => usize::MAX,
        }
    }

    fn next_down(tier: Tier) -> Tier {
        match tier {
            Tier::Rf => Tier::L2,
            Tier::L2 => Tier::L3,
            Tier::L3 | Tier::Dram => Tier::Dram,
        }
    }

    /// Places a thread in `tier`, demoting a victim if over capacity.
    /// Demotions are modeled as free (write-back happens off the critical
    /// path; the cost is paid by whoever re-activates the victim later).
    fn place(&mut self, ptid: Ptid, tier: Tier, prio: u8) {
        self.tick += 1;
        *self.slot(ptid) = Some(Entry {
            tier,
            stamp: self.tick,
            prio,
        });
        self.counts[tier as usize] += 1;
        // Cascade demotions while any tier is over capacity.
        let mut t = tier;
        while t != Tier::Dram && self.occupancy(t) > self.capacity(t) {
            let victim = self.pick_victim(t, ptid);
            let Some(victim) = victim else { break };
            let down = StateStore::next_down(t);
            if let Some(Some(e)) = self.entries.get_mut(victim.0 as usize) {
                e.tier = down;
            }
            self.counts[t as usize] -= 1;
            self.counts[down as usize] += 1;
            t = down;
        }
    }

    /// LRU victim in `tier`, or lowest-priority-then-LRU when criticality
    /// placement is enabled. Never evicts `protect` (the just-placed
    /// thread).
    fn pick_victim(&self, tier: Tier, protect: Ptid) -> Option<Ptid> {
        let mut best: Option<(u8, u64, Ptid)> = None;
        for (i, slot) in self.entries.iter().enumerate() {
            let Some(e) = slot else { continue };
            let p = Ptid(i as u32);
            if e.tier != tier || p == protect {
                continue;
            }
            let key = if self.config.criticality_placement {
                (e.prio, e.stamp, p)
            } else {
                (0, e.stamp, p)
            };
            if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                best = Some(key);
            }
        }
        best.map(|(_, _, p)| p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StateStore {
        StateStore::new(StoreConfig {
            rf_threads: 2,
            l2_threads: 2,
            l3_threads: 2,
            ..StoreConfig::default()
        })
    }

    #[test]
    fn costs_match_paper_ranges() {
        let s = StateStore::new(StoreConfig::default());
        // RF start: one pipeline refill, ~20 cycles.
        assert_eq!(s.activation_cost(Tier::Rf, 160), Cycles(20));
        // L2: 20 + 10 + ceil(160/32)=5 -> 35 cycles.
        assert_eq!(s.activation_cost(Tier::L2, 160), Cycles(35));
        // L3: 20 + 30 + 5 = 55.
        assert_eq!(s.activation_cost(Tier::L3, 160), Cycles(55));
        // DRAM: 20 + 200 + 5 = 225 -> clearly "severe".
        assert_eq!(s.activation_cost(Tier::Dram, 160), Cycles(225));
    }

    #[test]
    fn unknown_thread_is_dram_resident() {
        let s = tiny();
        assert_eq!(s.tier_of(Ptid(9)), Tier::Dram);
    }

    #[test]
    fn first_activation_comes_from_dram() {
        let mut s = tiny();
        let (cost, from) = s.activate(Ptid(1), 0, 160);
        assert_eq!(from, Tier::Dram);
        assert!(cost > Cycles(200));
        assert_eq!(s.tier_of(Ptid(1)), Tier::Rf);
    }

    #[test]
    fn reactivation_is_rf_cheap() {
        let mut s = tiny();
        s.activate(Ptid(1), 0, 160);
        let (cost, from) = s.activate(Ptid(1), 0, 160);
        assert_eq!(from, Tier::Rf);
        assert_eq!(cost, Cycles(20));
    }

    #[test]
    fn overflow_demotes_lru_down_the_hierarchy() {
        let mut s = tiny();
        // Capacity 2 per tier: activating 3 threads pushes the LRU to L2.
        s.activate(Ptid(1), 0, 160);
        s.activate(Ptid(2), 0, 160);
        s.activate(Ptid(3), 0, 160);
        assert_eq!(s.tier_of(Ptid(1)), Tier::L2);
        assert_eq!(s.tier_of(Ptid(2)), Tier::Rf);
        assert_eq!(s.tier_of(Ptid(3)), Tier::Rf);
        // Five more: the oldest cascade all the way down.
        for i in 4..=7 {
            s.activate(Ptid(i), 0, 160);
        }
        assert_eq!(s.occupancy(Tier::Rf), 2);
        assert_eq!(s.occupancy(Tier::L2), 2);
        assert_eq!(s.occupancy(Tier::L3), 2);
        assert_eq!(s.occupancy(Tier::Dram), 1);
    }

    #[test]
    fn criticality_placement_protects_high_priority() {
        let mut s = tiny();
        s.activate(Ptid(1), 7, 160); // high priority
        s.activate(Ptid(2), 0, 160);
        s.activate(Ptid(3), 0, 160); // RF full: victim should be ptid2
        assert_eq!(s.tier_of(Ptid(1)), Tier::Rf, "high-prio stays in RF");
        assert_eq!(s.tier_of(Ptid(2)), Tier::L2);
    }

    #[test]
    fn without_criticality_lru_wins() {
        let mut s = StateStore::new(StoreConfig {
            rf_threads: 2,
            l2_threads: 2,
            l3_threads: 2,
            criticality_placement: false,
            ..StoreConfig::default()
        });
        s.activate(Ptid(1), 7, 160);
        s.activate(Ptid(2), 0, 160);
        s.activate(Ptid(3), 0, 160);
        // LRU is ptid1 despite its priority.
        assert_eq!(s.tier_of(Ptid(1)), Tier::L2);
    }

    #[test]
    fn touch_refreshes_lru() {
        let mut s = tiny();
        s.activate(Ptid(1), 0, 160);
        s.activate(Ptid(2), 0, 160);
        s.touch(Ptid(1)); // now ptid2 is LRU
        s.activate(Ptid(3), 0, 160);
        assert_eq!(s.tier_of(Ptid(1)), Tier::Rf);
        assert_eq!(s.tier_of(Ptid(2)), Tier::L2);
    }

    #[test]
    fn dirty_bytes_shrink_transfer() {
        let s = StateStore::new(StoreConfig::default());
        let full = s.activation_cost(Tier::L3, 160);
        let dirty = s.activation_cost(Tier::L3, 32);
        assert!(dirty < full);
        assert_eq!(full - dirty, Cycles(4)); // (160-32)/32 link cycles
    }

    #[test]
    fn activation_stats_by_tier() {
        let mut s = tiny();
        s.activate(Ptid(1), 0, 160); // dram
        s.activate(Ptid(1), 0, 160); // rf
        let (rf, l2, l3, dram) = s.activation_stats();
        assert_eq!((rf, l2, l3, dram), (1, 0, 0, 1));
    }

    #[test]
    fn remove_frees_slot() {
        let mut s = tiny();
        s.activate(Ptid(1), 0, 160);
        s.remove(Ptid(1));
        assert_eq!(s.occupancy(Tier::Rf), 0);
        assert_eq!(s.tier_of(Ptid(1)), Tier::Dram);
    }
}

//! The machine: cores × SMT slots × many hardware threads, executing ISA
//! programs event-driven.
//!
//! # Execution model
//!
//! Each core has a small number of pipeline (SMT) **slots**. When a slot
//! is free, the core's hardware scheduler picks the next eligible runnable
//! ptid and the machine executes **one instruction** for it; the slot is
//! then busy for that instruction's cost (base cost + memory latency +
//! any thread-activation cost). This per-instruction interleaving is the
//! paper's fine-grain round-robin / processor-sharing model. When no
//! thread is runnable the slot idles and is re-kicked by the next wakeup
//! — there is no polling anywhere in the machine.
//!
//! As a host-side fast path, a dispatch may execute a **burst** of
//! instructions inline when the picked thread is provably the only
//! possible pick and no pending event could observe state in between
//! (DESIGN.md §8). Bursts never change the simulated timeline — they
//! elide event-queue round-trips whose outcome is forced.
//!
//! # The only hardware state changes
//!
//! Exactly as §3 prescribes, system calls, exceptions and external events
//! cause precisely one kind of hardware action: **blocking and unblocking
//! hardware threads** (plus a descriptor store). Stores — from CPU threads
//! and from DMA — pass through the generalized monitor filter; matching
//! waiters wake. Faults write a 32-byte descriptor through the same store
//! path (so handlers wake the same way) and disable the faulting thread.
//!
//! # Timing shortcuts (documented, deliberate)
//!
//! * Instruction semantics take effect at dispatch; the slot is then busy
//!   for the instruction's cost. ("execute-at-issue")
//! * Demotion write-backs of thread state are off the critical path and
//!   free; re-activation pays the tier cost.
//! * `hcall` invokes a registered host service — the simulation shortcut
//!   for bulk kernel logic (see DESIGN.md); handlers charge explicit
//!   cycle costs via [`Machine::charge`].

use switchless_isa::arch::{ArchState, Mode, RegSel};
use switchless_isa::asm::Program;
use switchless_isa::inst::Inst;
use switchless_mem::addr::PAddr;
use switchless_mem::hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HitLevel};
use switchless_mem::monitor::{CamFilter, HashFilter, MonitorFilter, WakeEvent, WatchId};
use switchless_mem::prefetch::WakePrefetcher;
use switchless_mem::tlb::{Tlb, TlbConfig};
use switchless_sim::error::SimError;
use switchless_sim::event::{EventQueue, EventToken};
use switchless_sim::fault::{FaultKind, FaultPlan};
use switchless_sim::hash::FxHashMap;
use switchless_sim::invariant::{InvariantReport, Ledger};
use switchless_sim::stats::{CounterId, Counters, Histogram};
use switchless_sim::time::{Cycles, Freq};
use switchless_sim::trace::TraceRing;

use crate::exception::{Descriptor, ExceptionKind};
use crate::perm::{Perms, TdtEntry};
use crate::sblock::{self, Superblock, SB_DEAD, SB_FORMED, SB_HOT};
use crate::sched::{HwScheduler, SchedPolicy};
use crate::store::{StateStore, StoreConfig, Tier};
use crate::tdt::TdtCache;
use crate::tid::{Ptid, ThreadState, Vtid};

/// Handle to one hardware thread: its home core and global ptid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThreadId {
    /// Home core index.
    pub core: usize,
    /// Global physical thread id.
    pub ptid: Ptid,
}

/// How `syscall`/`vmcall` behave — the knob experiments F4/F5 sweep.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapMode {
    /// Today's world: the trap vectors into the *same* hardware thread
    /// after a mode-switch penalty (hundreds of cycles, `[46, 69]`).
    SameThread {
        /// Penalty charged on `syscall` entry (the handler returns with
        /// an ordinary `jr`, so the exit penalty should be folded in).
        syscall_cost: Cycles,
        /// Penalty charged on `vmcall` (VM-exit + VM-entry, `[20]`).
        vmexit_cost: Cycles,
    },
    /// The paper's world: the trap writes a descriptor at the calling
    /// thread's EDP and disables it; a service thread monitoring that
    /// address wakes and handles it.
    Descriptor,
}

/// Which monitor-filter hardware design to instantiate (experiment F12).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MonitorKind {
    /// Fully-associative exact filter with bounded capacity.
    Cam {
        /// Maximum armed ranges.
        capacity: usize,
    },
    /// Line-granular hashed filter (unbounded, false wakeups possible).
    Hash,
}

/// Full machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of physical cores.
    pub cores: usize,
    /// SMT pipeline slots per core (the small number of hyperthreads that
    /// the many hardware threads multiplex onto, §4).
    pub smt_slots: usize,
    /// Hardware threads per core (the paper: 10s to 1000s).
    pub ptids_per_core: usize,
    /// Bytes of flat physical memory.
    pub mem_bytes: u64,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// TLB parameters.
    pub tlb: TlbConfig,
    /// Thread-state storage hierarchy parameters.
    pub store: StoreConfig,
    /// Hardware scheduling policy.
    pub sched: SchedPolicy,
    /// Monitor-filter implementation.
    pub monitor: MonitorKind,
    /// System-call / VM-exit delivery mode.
    pub trap: TrapMode,
    /// Clock frequency (for ns conversion in reports).
    pub freq: Freq,
    /// DMA writes install lines in L3 (DDIO-style) rather than
    /// invalidating them.
    pub dma_warms_l3: bool,
}

impl MachineConfig {
    /// One core, 64 hardware threads: fast unit-test machine.
    #[must_use]
    pub fn small() -> MachineConfig {
        MachineConfig {
            cores: 1,
            smt_slots: 2,
            ptids_per_core: 64,
            mem_bytes: 4 << 20,
            hierarchy: HierarchyConfig::server(),
            tlb: TlbConfig::default(),
            store: StoreConfig::default(),
            sched: SchedPolicy::RoundRobin,
            monitor: MonitorKind::Cam { capacity: 1024 },
            trap: TrapMode::Descriptor,
            freq: Freq::GHZ3,
            dma_warms_l3: true,
        }
    }

    /// Multi-core server-style machine (4 cores × 256 threads).
    #[must_use]
    pub fn server() -> MachineConfig {
        MachineConfig {
            cores: 4,
            smt_slots: 2,
            ptids_per_core: 256,
            mem_bytes: 64 << 20,
            ..MachineConfig::small()
        }
    }
}

/// Errors from host-level machine operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// No unused ptid left on the requested core.
    OutOfThreads,
    /// Program image overlaps previously loaded memory.
    ImageOverlap,
    /// Address outside physical memory.
    BadAddress(u64),
    /// Core index out of range.
    BadCore(usize),
}

impl core::fmt::Display for MachineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineError::OutOfThreads => write!(f, "no free hardware thread on core"),
            MachineError::ImageOverlap => write!(f, "program image overlaps loaded memory"),
            MachineError::BadAddress(a) => write!(f, "address {a:#x} outside memory"),
            MachineError::BadCore(c) => write!(f, "core {c} out of range"),
        }
    }
}

impl std::error::Error for MachineError {}

impl From<MachineError> for SimError {
    fn from(e: MachineError) -> SimError {
        SimError::Machine {
            context: "machine",
            detail: e.to_string(),
        }
    }
}

/// One hardware thread's simulator-side context.
///
/// `Clone` + `pub(crate)` fields: the epoch engine (`shard`) snapshots
/// per-core thread state, runs workers on the clones, and commits them
/// back wholesale on success.
#[derive(Clone)]
pub(crate) struct Thread {
    pub(crate) arch: ArchState,
    pub(crate) state: ThreadState,
    /// Core this thread currently belongs to (changes on migration).
    pub(crate) home: usize,
    /// Busy executing an in-flight instruction (or a state transfer)
    /// until this time; the scheduler skips it.
    pub(crate) busy_until: Cycles,
    /// Set when a monitored write arrives between `monitor` and `mwait`
    /// (or while running), so the next `mwait` falls through.
    pub(crate) monitor_triggered: bool,
    /// Whether any watch is armed in the filter for this thread.
    pub(crate) monitor_armed: bool,
    /// Pipeline-refill (and state-transfer) cost already paid since the
    /// thread last became runnable.
    pub(crate) activated: bool,
    /// Dirty-register mask (bit i = GPR i; bit 16 = pc/control).
    pub(crate) touched: u32,
    /// Time of the last wake/start, for wake-to-dispatch latency.
    pub(crate) wake_at: Option<Cycles>,
    /// Uses the vector extension (larger state to move, §2 FP/vector).
    pub(crate) vector_state: bool,
    /// Per-thread wake-latency accounting: (samples, total, max).
    pub(crate) wake_stats: (u64, u64, u64),
    /// Cache partition this thread's data traffic is tagged with (§4
    /// fine-grain partitioning; default = unmanaged pool).
    pub(crate) partition: switchless_mem::cache::PartitionId,
    /// Per-thread watchdog: max cycles the thread may stay parked in one
    /// `mwait` before the hardware disables it with `WatchdogExpired`.
    pub(crate) watchdog: Option<Cycles>,
    /// Bumped on every `mwait` park so a stale watchdog callback from an
    /// earlier park never fires on a later one.
    pub(crate) park_epoch: u64,
    /// Quarantined threads refuse every wake until restarted.
    pub(crate) quarantined: bool,
    /// First `start` pc; `restart_thread` resets the thread here.
    pub(crate) restart_pc: Option<u64>,
    /// When the thread was last disabled by an exception (recovery-latency
    /// measurement); cleared on wake.
    pub(crate) disabled_at: Option<Cycles>,
}

impl Thread {
    fn new(home: usize) -> Thread {
        Thread {
            arch: ArchState::default(),
            state: ThreadState::Disabled,
            home,
            busy_until: Cycles::ZERO,
            monitor_triggered: false,
            monitor_armed: false,
            activated: false,
            touched: 0,
            wake_at: None,
            vector_state: false,
            wake_stats: (0, 0, 0),
            partition: switchless_mem::cache::PartitionId::DEFAULT,
            watchdog: None,
            park_epoch: 0,
            quarantined: false,
            restart_pc: None,
            disabled_at: None,
        }
    }

    pub(crate) fn state_bytes(&self) -> u64 {
        if self.vector_state {
            ArchState::vector_state_bytes()
        } else {
            ArchState::base_state_bytes()
        }
    }

    pub(crate) fn dirty_bytes(&self) -> u64 {
        // pc + mode word always move; plus 8 bytes per touched GPR.
        let gprs = u64::from((self.touched & 0xffff).count_ones());
        (16 + gprs * 8).min(self.state_bytes())
    }
}

#[derive(Clone)]
pub(crate) struct CoreState {
    pub(crate) sched: HwScheduler,
    pub(crate) store: StateStore,
    pub(crate) tdt: TdtCache,
    pub(crate) idle_slot: Vec<bool>,
    pub(crate) next_unused: usize,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Ev {
    // u32 fields keep the event (and thus every queue entry) small:
    // events are copied through the scheduler's wheel on every simulated
    // instruction.
    SlotFree { core: u32, slot: u32 },
    Call(u64),
}

/// Upper bound on instructions executed inline per dispatch (the burst
/// engine, DESIGN.md §8). Purely a host-side amortisation knob: every
/// continuation is already gated on the event-queue deadline and the
/// scheduler, so the cap never changes simulated behavior — it only
/// bounds how much work one `SlotFree` event can do before re-entering
/// the queue.
pub(crate) const MAX_BURST: u64 = 1024;

/// Process-wide default for the superblock engine (DESIGN.md §10), read
/// once from the `SWITCHLESS_SUPERBLOCKS` environment variable:
/// `0`/`off`/`false` disable, anything else (or unset) enables. Like
/// `MAX_BURST` this is purely a host-side wall-clock knob.
fn superblocks_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("SWITCHLESS_SUPERBLOCKS").as_deref(),
            Ok("0" | "off" | "false")
        )
    })
}

/// Process-wide default for memory-inclusive superblock formation
/// (DESIGN.md §10, "memory-inclusive regions"), read once from
/// `SWITCHLESS_MEM_SUPERBLOCKS`: `0`/`off`/`false` restrict regions to
/// the pure-register PR 9 behaviour, anything else (or unset) admits
/// local-effect loads/stores. Host-side wall-clock knob only; simulated
/// state is bit-identical either way.
fn mem_superblocks_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        !matches!(
            std::env::var("SWITCHLESS_MEM_SUPERBLOCKS").as_deref(),
            Ok("0" | "off" | "false")
        )
    })
}

type HostCall = Box<dyn FnMut(&mut Machine, ThreadId)>;
type MmioHook = Box<dyn FnMut(&mut Machine, u64)>;
type HostEvent = Box<dyn FnOnce(&mut Machine)>;
/// A registered machine-wide invariant: returns `Some(detail)` when the
/// invariant is violated. Runs at event-queue boundaries when checking is
/// enabled; must not mutate anything (it sees `&Machine`).
type InvariantFn = Box<dyn Fn(&Machine) -> Option<String>>;

/// Pre-decoded instructions for one loaded image.
///
/// `insts[i]` caches `Inst::decode` of the word at `base + 8*i`; `None`
/// marks words that do not decode (the slow path re-raises the precise
/// `BadInstruction` with the actual word). Stores that land inside
/// `[base, end)` re-decode the covered words, so self-modifying code
/// observes its writes exactly as it would with a per-fetch decode.
pub(crate) struct CodeRange {
    pub(crate) base: u64,
    pub(crate) end: u64,
    pub(crate) insts: Vec<Option<Inst>>,
    /// Per-slot superblock state: a heat count below
    /// [`sblock::SB_HOT`], [`sblock::SB_FORMED`]`| index` for a formed
    /// region entered at that slot, or [`sblock::SB_DEAD`].
    pub(crate) sb: Vec<u32>,
    /// Formed superblocks; killed entries are tombstoned in place and
    /// their indices recycled through `sb_free`.
    pub(crate) blocks: Vec<Superblock>,
    pub(crate) sb_free: Vec<u32>,
}

impl CodeRange {
    fn new(base: u64, end: u64, insts: Vec<Option<Inst>>) -> CodeRange {
        let slots = insts.len();
        CodeRange {
            base,
            end,
            insts,
            sb: vec![0; slots],
            blocks: Vec::new(),
            sb_free: Vec::new(),
        }
    }

    /// Stores a formed block, reusing a tombstoned slot when available.
    fn alloc_block(&mut self, b: Superblock) -> u32 {
        match self.sb_free.pop() {
            Some(i) => {
                self.blocks[i as usize] = b;
                i
            }
            None => {
                self.blocks.push(b);
                u32::try_from(self.blocks.len() - 1).expect("block count fits u32")
            }
        }
    }
}

/// Pre-resolved [`CounterId`]s for counters bumped on (nearly) every
/// dispatched instruction or store — skips the per-call string hash.
pub(crate) struct HotCounters {
    pub(crate) inst_executed: CounterId,
    pub(crate) sched_dispatches: CounterId,
    pub(crate) store_external: CounterId,
    pub(crate) monitor_wakes: CounterId,
    pub(crate) monitor_false_wakes: CounterId,
    pub(crate) thread_wakes: CounterId,
    pub(crate) activate: [CounterId; 4],
}

impl HotCounters {
    fn new(counters: &mut Counters) -> HotCounters {
        HotCounters {
            inst_executed: counters.id("inst.executed"),
            sched_dispatches: counters.id("sched.dispatches"),
            store_external: counters.id("store.external"),
            monitor_wakes: counters.id("monitor.wakes"),
            monitor_false_wakes: counters.id("monitor.false_wakes"),
            thread_wakes: counters.id("thread.wakes"),
            activate: [
                counters.id("store.activate.rf"),
                counters.id("store.activate.l2"),
                counters.id("store.activate.l3"),
                counters.id("store.activate.dram"),
            ],
        }
    }
}

/// The simulated machine.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) now: Cycles,
    pub(crate) mem: Vec<u8>,
    pub(crate) threads: Vec<Thread>,
    pub(crate) cores: Vec<CoreState>,
    pub(crate) hier: Hierarchy,
    pub(crate) tlbs: Vec<Tlb>,
    pub(crate) filter: Box<dyn MonitorFilter>,
    pub(crate) prefetcher: WakePrefetcher,
    pub(crate) events: EventQueue<Ev>,
    callbacks: FxHashMap<u64, HostEvent>,
    next_cb: u64,
    hcalls: FxHashMap<u16, HostCall>,
    /// Device doorbells: store hooks keyed by exact 8-byte-aligned
    /// address; fired after the monitor filter on any covering store.
    pub(crate) mmio_hooks: FxHashMap<u64, MmioHook>,
    pub(crate) counters: Counters,
    pub(crate) hot: HotCounters,
    trace: TraceRing,
    pub(crate) halted: Option<String>,
    /// Host allocator: grows down from the top of memory.
    alloc_top: u64,
    loaded: Vec<(u64, u64)>,
    /// Decoded-instruction cache, one entry per loaded image.
    pub(crate) code: Vec<CodeRange>,
    /// Cheap store-time reject bounds: min base / max end over `code`.
    pub(crate) code_lo: u64,
    pub(crate) code_hi: u64,
    /// Index into `code` of the range that served the last fetch.
    last_code: usize,
    /// Reusable buffers for `after_store` (taken/restored around the
    /// loop bodies so reentrant stores fall back to a fresh `Vec`).
    scratch_wakes: Vec<WakeEvent>,
    scratch_mmio: Vec<u64>,
    syscall_vector: u64,
    vm_vector: u64,
    /// Extra cost injected by hcall handlers for the current instruction.
    pending_charge: Cycles,
    /// Sibling-slot events lifted out of the queue by an in-progress
    /// burst (see `dispatch`); always drained back before it returns.
    burst_stash: Vec<(Cycles, EventToken, Ev)>,
    /// Wake-to-first-dispatch latency histogram (cycles).
    pub(crate) wake_latency: Histogram,
    /// Most recent wake-latency sample, with the woken thread.
    pub(crate) last_wake: Option<(Ptid, u64)>,
    /// Installed fault-injection plan; `None` costs one branch per query.
    fault_plan: Option<FaultPlan>,
    /// Whether the invariant checker runs at event-queue boundaries.
    /// Off by default: measured runs pay exactly one branch per event.
    pub(crate) invariants_on: bool,
    /// Registered machine-wide invariants (device ring conservation, …).
    invariant_checks: Vec<(&'static str, InvariantFn)>,
    /// Violations observed since checking was enabled (bounded).
    invariant_report: InvariantReport,
    /// Exception-descriptor conservation: every raise must end up
    /// delivered or deliberately dropped (overflow / no-EDP halt).
    exc_ledger: Ledger,
    /// Named per-device conservation ledgers ([`Machine::ledger`]).
    /// A `Vec` keeps iteration in attach order (determinism).
    device_ledgers: Vec<(&'static str, Ledger)>,
    /// Worker threads for the core-sharded epoch engine; 1 = serial.
    pub(crate) machine_jobs: usize,
    /// Host-declared per-core private data windows `(base, len)` for the
    /// epoch engine ([`Machine::set_core_domain`]). A worker may execute
    /// loads/stores that land fully inside its own core's window; loads
    /// fully outside *every* window read the frozen epoch-start image.
    pub(crate) core_domains: Vec<Option<(u64, u64)>>,
    /// Adaptive epoch length for the sharded engine (host-side knob;
    /// never observable in simulated state).
    pub(crate) epoch_len: Cycles,
    /// Host-side statistics for the sharded engine.
    pub(crate) shard_stats: ShardStats,
    /// Whether the superblock engine may form and execute pre-costed
    /// regions (DESIGN.md §10). Host-side only: simulated state is
    /// bit-identical either way.
    pub(crate) sb_on: bool,
    /// Whether region formation may admit local-effect loads/stores
    /// (memory-inclusive superblocks, DESIGN.md §10). Host-side only:
    /// simulated state is bit-identical either way.
    pub(crate) sb_mem_on: bool,
    /// Sorted MMIO hook addresses, maintained by [`Machine::register_mmio`].
    /// The superblock store probe binary-searches this instead of
    /// scanning the hook map, and the shard engine borrows it per epoch.
    pub(crate) mmio_addrs: Vec<u64>,
    /// Reusable scratch for the memory-inclusive superblock probe: the
    /// merged fetch+data line footprint (line, last-access position,
    /// written), the data-page footprint (page, last data-access index),
    /// the dedup-keep-last data-line order for the prefetcher, the
    /// store undo log (addr, old value, width), and the distinct store
    /// ranges already intersection-tested against the monitor filter.
    sbm_lines: Vec<(PAddr, u64, bool)>,
    sbm_pages: Vec<(u64, u64)>,
    sbm_plines: Vec<PAddr>,
    sbm_undo: Vec<(u64, u64, u8)>,
    sbm_stores: Vec<(u64, u64)>,
}

/// Host-side statistics for the core-sharded epoch engine. These live
/// outside [`Counters`] deliberately: they describe how the simulation
/// was *executed* (epochs attempted, bailed, committed), not what the
/// simulated machine did, so they must not leak into results files or
/// chaos digests that are compared across `--machine-jobs` settings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Epochs whose speculative execution was committed.
    pub committed: u64,
    /// Epochs discarded because a worker hit a non-core-local effect.
    pub bailed: u64,
    /// Epochs discarded at commit time over a cross-core time tie
    /// (equal-time survivors or wake samples); retried, not replayed.
    pub ties: u64,
    /// Epochs skipped because fewer than two cores had work staged.
    pub too_few: u64,
    /// Instructions executed inside committed epochs (parallel work).
    pub insts_parallel: u64,
    /// Events replayed serially (outside committed epochs).
    pub serial_events: u64,
}

impl Machine {
    /// Builds a machine; all hardware threads start `Disabled`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (zero cores/slots/threads/memory).
    #[must_use]
    pub fn new(cfg: MachineConfig) -> Machine {
        assert!(cfg.cores > 0, "need at least one core");
        assert!(cfg.smt_slots > 0, "need at least one SMT slot");
        assert!(cfg.ptids_per_core > 0, "need at least one hardware thread");
        assert!(cfg.mem_bytes >= 4096, "need some memory");
        let nthreads = cfg.cores * cfg.ptids_per_core;
        let filter: Box<dyn MonitorFilter> = match cfg.monitor {
            MonitorKind::Cam { capacity } => Box::new(CamFilter::new(capacity)),
            MonitorKind::Hash => Box::new(HashFilter::new()),
        };
        let mut counters = Counters::new();
        let hot = HotCounters::new(&mut counters);
        Machine {
            cfg,
            now: Cycles::ZERO,
            mem: vec![0; cfg.mem_bytes as usize],
            threads: (0..nthreads)
                .map(|i| Thread::new(i / cfg.ptids_per_core))
                .collect(),
            cores: (0..cfg.cores)
                .map(|_| CoreState {
                    sched: HwScheduler::new(cfg.sched),
                    store: StateStore::new(cfg.store),
                    tdt: TdtCache::new(64),
                    idle_slot: vec![true; cfg.smt_slots],
                    next_unused: 0,
                })
                .collect(),
            hier: Hierarchy::new(cfg.cores, cfg.hierarchy),
            tlbs: (0..cfg.cores).map(|_| Tlb::new(cfg.tlb)).collect(),
            filter,
            prefetcher: WakePrefetcher::new(64),
            events: EventQueue::new(),
            callbacks: FxHashMap::default(),
            next_cb: 0,
            hcalls: FxHashMap::default(),
            mmio_hooks: FxHashMap::default(),
            counters,
            hot,
            trace: TraceRing::new(4096),
            halted: None,
            alloc_top: cfg.mem_bytes,
            loaded: Vec::new(),
            code: Vec::new(),
            code_lo: u64::MAX,
            code_hi: 0,
            last_code: 0,
            scratch_wakes: Vec::new(),
            scratch_mmio: Vec::new(),
            syscall_vector: 0,
            vm_vector: 0,
            pending_charge: Cycles::ZERO,
            burst_stash: Vec::new(),
            wake_latency: Histogram::new(),
            last_wake: None,
            fault_plan: None,
            invariants_on: false,
            invariant_checks: Vec::new(),
            invariant_report: InvariantReport::new(),
            exc_ledger: Ledger::default(),
            device_ledgers: Vec::new(),
            machine_jobs: 1,
            core_domains: vec![None; cfg.cores],
            epoch_len: Cycles(64),
            shard_stats: ShardStats::default(),
            sb_on: superblocks_default(),
            sb_mem_on: mem_superblocks_default(),
            mmio_addrs: Vec::new(),
            sbm_lines: Vec::new(),
            sbm_pages: Vec::new(),
            sbm_plines: Vec::new(),
            sbm_undo: Vec::new(),
            sbm_stores: Vec::new(),
        }
    }

    // -----------------------------------------------------------------
    // Host-level API
    // -----------------------------------------------------------------

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Configuration this machine was built with.
    #[must_use]
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Why the machine halted, if it did (triple-fault analog).
    #[must_use]
    pub fn halted_reason(&self) -> Option<&str> {
        self.halted.as_deref()
    }

    /// Statistics counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Mutable counter access — device models and kernels add their own
    /// statistics alongside the machine's.
    pub fn counters_mut(&mut self) -> &mut Counters {
        &mut self.counters
    }

    /// Sets the number of host worker threads the core-sharded epoch
    /// engine may use (see `shard.rs`). `0` or `1` selects the serial
    /// engine. The simulated outcome is bit-identical for every value —
    /// the epoch engine only commits speculation it can prove the serial
    /// engine would reproduce — so this is purely a wall-clock knob.
    pub fn set_machine_jobs(&mut self, jobs: usize) {
        self.machine_jobs = jobs.max(1);
    }

    /// Worker threads the epoch engine may use (1 = serial).
    #[must_use]
    pub fn machine_jobs(&self) -> usize {
        self.machine_jobs
    }

    /// Enables or disables the superblock engine (DESIGN.md §10).
    /// Defaults to the `SWITCHLESS_SUPERBLOCKS` environment variable
    /// (`0`/`off`/`false` disable; anything else, or unset, enables).
    /// The simulated outcome is bit-identical either way — superblocks
    /// only batch work the single-step path would perform anyway — so
    /// this is purely a wall-clock knob.
    pub fn set_superblocks(&mut self, on: bool) {
        self.sb_on = on;
    }

    /// Whether the superblock engine is enabled.
    #[must_use]
    pub fn superblocks(&self) -> bool {
        self.sb_on
    }

    /// Enables or disables memory-inclusive superblock formation
    /// (DESIGN.md §10, "memory-inclusive regions"). Defaults to the
    /// `SWITCHLESS_MEM_SUPERBLOCKS` environment variable (`0`/`off`/
    /// `false` restrict regions to pure register code; anything else, or
    /// unset, admits local-effect loads/stores). Purely a wall-clock
    /// knob: a memory block executes only when its whole batched effect
    /// is provably what single-stepping would produce, and bails to the
    /// single-step path otherwise, so the simulated outcome is
    /// bit-identical either way.
    pub fn set_mem_superblocks(&mut self, on: bool) {
        self.sb_mem_on = on;
    }

    /// Whether memory-inclusive superblock formation is enabled.
    #[must_use]
    pub fn mem_superblocks(&self) -> bool {
        self.sb_mem_on
    }

    /// Declares `[base, base + len)` as `core`'s private data window for
    /// the epoch engine. Epoch workers may retire stores that land fully
    /// inside their own core's window; anything else bails the epoch and
    /// is replayed serially. Windows must be pairwise disjoint and inside
    /// physical memory.
    ///
    /// # Panics
    ///
    /// Panics on a bad core, an out-of-range window, or overlap with
    /// another core's window.
    pub fn set_core_domain(&mut self, core: usize, base: u64, len: u64) {
        assert!(core < self.cfg.cores, "core {core} out of range");
        let end = base.checked_add(len).expect("domain wraps");
        assert!(end <= self.cfg.mem_bytes, "domain outside memory");
        for (c, d) in self.core_domains.iter().enumerate() {
            if let Some((b, l)) = *d {
                if c != core {
                    assert!(base >= b + l || b >= end, "domain overlaps core {c}");
                }
            }
        }
        self.core_domains[core] = Some((base, len));
    }

    /// Host-side statistics for the core-sharded epoch engine.
    #[must_use]
    pub fn shard_stats(&self) -> ShardStats {
        self.shard_stats
    }

    /// Wake-to-first-dispatch latency histogram (cycles).
    #[must_use]
    pub fn wake_latency(&self) -> &Histogram {
        &self.wake_latency
    }

    /// Clears the wake-latency histogram (end of warmup).
    pub fn reset_wake_latency(&mut self) {
        self.wake_latency.reset();
        self.last_wake = None;
    }

    /// Per-thread wake-latency accounting: `(samples, total cycles, max)`.
    #[must_use]
    pub fn thread_wake_stats(&self, tid: ThreadId) -> (u64, u64, u64) {
        self.threads[tid.ptid.0 as usize].wake_stats
    }

    /// Clears one thread's wake-latency accounting.
    pub fn reset_thread_wake_stats(&mut self, tid: ThreadId) {
        self.thread_mut(tid.ptid).wake_stats = (0, 0, 0);
    }

    /// The most recent wake-latency sample: `(thread, cycles)`.
    #[must_use]
    pub fn last_wake_latency(&self) -> Option<(ThreadId, u64)> {
        self.last_wake.map(|(p, c)| {
            (
                ThreadId {
                    core: self.core_of(p),
                    ptid: p,
                },
                c,
            )
        })
    }

    /// The trace ring (enable for debugging/determinism tests).
    pub fn trace_mut(&mut self) -> &mut TraceRing {
        &mut self.trace
    }

    /// Read-only trace access.
    #[must_use]
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Per-core activation statistics `(rf, l2, l3, dram)`.
    #[must_use]
    pub fn store_stats(&self, core: usize) -> (u64, u64, u64, u64) {
        self.cores[core].store.activation_stats()
    }

    /// Cycles billed to a thread by the hardware accounting (§4).
    #[must_use]
    pub fn billed_cycles(&self, tid: ThreadId) -> Cycles {
        self.cores[tid.core].sched.usage_of(tid.ptid)
    }

    /// Allocates `len` bytes of free simulated memory (host convenience
    /// for mailboxes, rings, descriptor areas). 64-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if memory is exhausted.
    pub fn alloc(&mut self, len: u64) -> u64 {
        let top = self
            .alloc_top
            .checked_sub(len)
            .expect("simulated memory exhausted");
        self.alloc_top = top & !63;
        assert!(
            self.loaded
                .iter()
                .all(|&(b, e)| self.alloc_top >= e || b >= self.alloc_top),
            "allocator collided with a loaded image"
        );
        self.alloc_top
    }

    /// Creates (reserves) a fresh disabled hardware thread on `core`.
    pub fn create_thread(&mut self, core: usize) -> Result<ThreadId, MachineError> {
        if core >= self.cfg.cores {
            return Err(MachineError::BadCore(core));
        }
        let slot = self.cores[core].next_unused;
        if slot >= self.cfg.ptids_per_core {
            return Err(MachineError::OutOfThreads);
        }
        self.cores[core].next_unused += 1;
        let ptid = Ptid((core * self.cfg.ptids_per_core + slot) as u32);
        Ok(ThreadId { core, ptid })
    }

    /// Loads a program image and creates a supervisor thread entering it.
    pub fn load_program(&mut self, core: usize, prog: &Program) -> Result<ThreadId, MachineError> {
        self.load_image(prog)?;
        let tid = self.create_thread(core)?;
        {
            let t = self.thread_mut(tid.ptid);
            t.arch.pc = prog.entry;
            t.arch.mode = Mode::Supervisor;
        }
        Ok(tid)
    }

    /// Loads a program image and creates a **user-mode** thread.
    pub fn load_program_user(
        &mut self,
        core: usize,
        prog: &Program,
    ) -> Result<ThreadId, MachineError> {
        let tid = self.load_program(core, prog)?;
        self.thread_mut(tid.ptid).arch.mode = Mode::User;
        Ok(tid)
    }

    /// Creates a thread entering an already-loaded image at `pc`.
    pub fn spawn_at(
        &mut self,
        core: usize,
        pc: u64,
        supervisor: bool,
    ) -> Result<ThreadId, MachineError> {
        let tid = self.create_thread(core)?;
        let t = self.thread_mut(tid.ptid);
        t.arch.pc = pc;
        t.arch.mode = if supervisor {
            Mode::Supervisor
        } else {
            Mode::User
        };
        Ok(tid)
    }

    /// Writes a program image into memory without creating a thread.
    pub fn load_image(&mut self, prog: &Program) -> Result<(), MachineError> {
        let (base, end) = (prog.base, prog.end());
        if end > self.cfg.mem_bytes || end > self.alloc_top {
            return Err(MachineError::BadAddress(end));
        }
        if self.loaded.iter().any(|&(b, e)| base < e && b < end) {
            return Err(MachineError::ImageOverlap);
        }
        for (i, &w) in prog.words.iter().enumerate() {
            let at = (base + (i as u64) * 8) as usize;
            self.mem[at..at + 8].copy_from_slice(&w.to_le_bytes());
        }
        self.loaded.push((base, end));
        self.code.push(CodeRange::new(
            base,
            end,
            prog.words.iter().map(|&w| Inst::decode(w).ok()).collect(),
        ));
        self.code_lo = self.code_lo.min(base);
        self.code_hi = self.code_hi.max(end);
        Ok(())
    }

    /// Cached decode of the word at `pc`, if `pc` is an aligned slot of a
    /// loaded image. `None` means "use the slow fetch-and-decode path"
    /// (unaligned pc, pc outside every image, or a non-decoding word).
    #[inline]
    fn cached_inst(&mut self, pc: u64) -> Option<Inst> {
        let hint = self.last_code;
        let idx = match self.code.get(hint) {
            Some(r) if r.base <= pc && pc < r.end => hint,
            _ => {
                let idx = self.code.iter().position(|r| r.base <= pc && pc < r.end)?;
                self.last_code = idx;
                idx
            }
        };
        let off = pc - self.code[idx].base;
        if off & 7 != 0 {
            return None;
        }
        self.code[idx].insts[(off >> 3) as usize]
    }

    /// Re-decodes cached instruction slots covered by a store of `len`
    /// bytes at `addr`. Callers pre-filter with the `code_lo`/`code_hi`
    /// bounds so steady-state data stores pay one compare, not a scan.
    fn invalidate_code(&mut self, addr: u64, len: u64) {
        let end = addr.saturating_add(len.max(1));
        for r in &mut self.code {
            if addr >= r.end || end <= r.base {
                continue;
            }
            // Word slots live at base + 8*i; work in offsets from base.
            let lo = (addr.max(r.base) - r.base) & !7;
            let hi = end.min(r.end) - r.base;
            let mut off = lo;
            while off < hi {
                let a = (r.base + off) as usize;
                let word = u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("8 bytes"));
                r.insts[(off >> 3) as usize] = Inst::decode(word).ok();
                off += 8;
            }
            // Superblock coherence: re-decoded slots lose any heat or
            // dead-mark they accumulated, and every formed block whose
            // static footprint overlaps the modified slots is killed
            // (tombstoned; its index is recycled). A block formed later
            // re-reads the fresh decode, so stale bodies cannot run.
            let lo_slot = (lo >> 3) as usize;
            let hi_slot = ((hi + 7) >> 3) as usize;
            for s in &mut r.sb[lo_slot..hi_slot] {
                if *s < SB_FORMED || *s == SB_DEAD {
                    *s = 0;
                }
            }
            for bi in 0..r.blocks.len() {
                let b = &r.blocks[bi];
                if !b.live || b.start_slot >= hi_slot || b.start_slot + b.len_slots <= lo_slot {
                    continue;
                }
                r.blocks[bi].live = false;
                r.sb[r.blocks[bi].start_slot] = 0;
                r.sb_free
                    .push(u32::try_from(bi).expect("block count fits u32"));
            }
        }
    }

    /// Host store of a u64 — passes through the monitor filter, so it can
    /// wake waiting threads (models an external agent writing memory).
    pub fn poke_u64(&mut self, addr: u64, value: u64) {
        self.raw_write_u64(addr, value);
        self.after_store(addr, 8, true);
    }

    /// Host read of a u64.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside memory.
    #[must_use]
    pub fn peek_u64(&self, addr: u64) -> u64 {
        let a = addr as usize;
        u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("8 bytes"))
    }

    /// DMA write from a device: copies bytes, triggers the monitor
    /// filter, and (per config) warms or invalidates the cached lines.
    pub fn dma_write(&mut self, addr: u64, bytes: &[u8]) {
        let a = addr as usize;
        assert!(a + bytes.len() <= self.mem.len(), "DMA outside memory");
        self.mem[a..a + bytes.len()].copy_from_slice(bytes);
        for line in switchless_mem::addr::lines_covering(PAddr(addr), bytes.len() as u64) {
            if self.cfg.dma_warms_l3 {
                // DDIO-style: the device deposits lines in L3; private
                // caches lose stale copies.
                self.hier.invalidate_line(line);
                self.hier.warm_l3_only(line);
            } else {
                self.hier.invalidate_line(line);
            }
        }
        self.counters.add("dma.bytes", bytes.len() as u64);
        self.after_store(addr, bytes.len() as u64, true);
    }

    /// Schedules a host callback at absolute time `at` (device models).
    pub fn at(&mut self, at: Cycles, f: impl FnOnce(&mut Machine) + 'static) {
        let key = self.next_cb;
        self.next_cb += 1;
        self.callbacks.insert(key, Box::new(f));
        self.events.schedule(at, Ev::Call(key));
    }

    /// Registers a device doorbell: `hook` runs after any store that
    /// covers `addr` (CPU, host, or DMA), receiving the stored word.
    /// This is how MMIO-triggered devices (NIC TX doorbells, SSD
    /// submission doorbells) react immediately to driver writes.
    pub fn register_mmio(&mut self, addr: u64, hook: impl FnMut(&mut Machine, u64) + 'static) {
        if self.mmio_hooks.insert(addr, Box::new(hook)).is_none() {
            let i = self.mmio_addrs.partition_point(|&a| a < addr);
            self.mmio_addrs.insert(i, addr);
        }
    }

    /// Registers a host-service handler for `hcall num`.
    pub fn register_hcall(&mut self, num: u16, f: impl FnMut(&mut Machine, ThreadId) + 'static) {
        self.hcalls.insert(num, Box::new(f));
    }

    /// Adds cycles to the cost of the instruction currently executing
    /// (for hcall handlers to model their work).
    pub fn charge(&mut self, cycles: Cycles) {
        self.pending_charge += cycles;
    }

    /// Sets the legacy same-thread syscall vector.
    pub fn set_syscall_vector(&mut self, addr: u64) {
        self.syscall_vector = addr;
    }

    /// Sets the legacy same-thread VM-exit vector.
    pub fn set_vm_vector(&mut self, addr: u64) {
        self.vm_vector = addr;
    }

    // ---- thread inspection / manipulation ----

    /// A thread's GPR value.
    #[must_use]
    pub fn thread_reg(&self, tid: ThreadId, reg: usize) -> u64 {
        self.threads[tid.ptid.0 as usize].arch.gprs[reg & 0xf]
    }

    /// Sets a thread's GPR (host-level `rpush` without permission check).
    pub fn set_thread_reg(&mut self, tid: ThreadId, reg: usize, value: u64) {
        self.thread_mut(tid.ptid).arch.gprs[reg & 0xf] = value;
    }

    /// A thread's current state.
    #[must_use]
    pub fn thread_state(&self, tid: ThreadId) -> ThreadState {
        self.threads[tid.ptid.0 as usize].state
    }

    /// A thread's program counter.
    #[must_use]
    pub fn thread_pc(&self, tid: ThreadId) -> u64 {
        self.threads[tid.ptid.0 as usize].arch.pc
    }

    /// A thread's privilege mode.
    #[must_use]
    pub fn thread_mode(&self, tid: ThreadId) -> Mode {
        self.threads[tid.ptid.0 as usize].arch.mode
    }

    /// Sets a thread's priority class.
    pub fn set_thread_prio(&mut self, tid: ThreadId, prio: u8) {
        self.thread_mut(tid.ptid).arch.prio = prio;
    }

    /// Sets a thread's exception-descriptor pointer.
    pub fn set_thread_edp(&mut self, tid: ThreadId, edp: u64) {
        self.thread_mut(tid.ptid).arch.edp = edp;
    }

    /// Sets a thread's TDT base register.
    pub fn set_thread_tdtr(&mut self, tid: ThreadId, tdtr: u64) {
        self.thread_mut(tid.ptid).arch.tdtr = tdtr;
    }

    /// Marks the thread as using the vector extension (784-byte-class
    /// state instead of base state).
    pub fn set_thread_vector_state(&mut self, tid: ThreadId, on: bool) {
        self.thread_mut(tid.ptid).vector_state = on;
    }

    /// Tags a thread's data traffic with a cache partition (§4
    /// fine-grain cache partitioning; see
    /// [`Machine::set_l3_partition`]).
    pub fn set_thread_partition(
        &mut self,
        tid: ThreadId,
        part: switchless_mem::cache::PartitionId,
    ) {
        self.thread_mut(tid.ptid).partition = part;
    }

    /// Declares an L3 partition quota (fraction of the cache pinned for
    /// traffic tagged with `part`).
    pub fn set_l3_partition(&mut self, part: switchless_mem::cache::PartitionId, fraction: f64) {
        self.hier.set_l3_partition(part, fraction);
    }

    /// Per-level `(hits, misses)` of the cache hierarchy: `(l1, l2, l3)`.
    #[must_use]
    pub fn cache_stats(&self) -> ((u64, u64), (u64, u64), (u64, u64)) {
        self.hier.level_stats()
    }

    /// Dirty write-backs per cache level `(l1, l2, l3)`.
    #[must_use]
    pub fn cache_writebacks(&self) -> (u64, u64, u64) {
        self.hier.writebacks()
    }

    /// L3 lines currently owned by a partition.
    #[must_use]
    pub fn l3_occupancy(&self, part: switchless_mem::cache::PartitionId) -> u64 {
        self.hier.l3_occupancy(part)
    }

    /// Host-level `start`: makes the thread runnable.
    ///
    /// The first start records the thread's entry pc as its restart point
    /// for [`Machine::restart_thread`].
    pub fn start_thread(&mut self, tid: ThreadId) {
        let t = self.thread_mut(tid.ptid);
        if t.restart_pc.is_none() {
            t.restart_pc = Some(t.arch.pc);
        }
        self.enable_thread(tid.ptid);
    }

    /// Host-level `stop`: disables the thread.
    pub fn stop_thread(&mut self, tid: ThreadId) {
        self.disable_thread(tid.ptid, ThreadState::Disabled);
    }

    // ---- fault injection & recovery ----

    /// Installs a fault-injection plan. Devices query it through
    /// [`Machine::fault_draw`]; with no plan installed every query is a
    /// single branch, so the injection layer is free when unused.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Asks whether fault `kind` fires for one device operation *now*.
    ///
    /// A firing bumps the kind's `fault.*` counter and leaves a trace
    /// record; the device expresses the failure through its normal
    /// completion protocol.
    pub fn fault_draw(&mut self, kind: FaultKind) -> bool {
        let now = self.now;
        let Some(plan) = self.fault_plan.as_mut() else {
            return false;
        };
        if !plan.draw(now, kind) {
            return false;
        }
        self.counters.inc(kind.counter_name());
        self.trace.record_with(now, "inject", || format!("{kind}"));
        true
    }

    /// Draws the extra delay for a delay-shaped fault that just fired.
    pub fn fault_delay(&mut self, kind: FaultKind) -> Cycles {
        match self.fault_plan.as_mut() {
            Some(plan) => plan.draw_delay(kind),
            None => Cycles::ZERO,
        }
    }

    // ---- machine-wide invariant checking ----

    /// Turns the invariant checker on or off (off by default).
    ///
    /// When on, every event-queue boundary in the run loops — i.e. every
    /// time the clock is about to advance, plus once when a run loop
    /// drains — re-verifies the machine-wide invariants: event-queue time
    /// monotonicity, thread-state-machine legality (enrolment matches
    /// `Runnable` exactly, no armed monitors on disabled threads),
    /// no-lost-wakeup (a parked thread always holds a live filter watch),
    /// quarantine/restart liveness, exception-descriptor conservation,
    /// and every check registered via [`Machine::register_invariant`].
    /// Violations accumulate in [`Machine::invariant_report`]; they never
    /// alter simulated behavior.
    pub fn enable_invariants(&mut self, on: bool) {
        self.invariants_on = on;
    }

    /// Registers an additional machine-wide invariant (e.g. a device's
    /// descriptor-ring conservation ledger). `check` returns a diagnostic
    /// string when the invariant is violated. Devices register their
    /// ledgers at attach time; registration costs nothing until checking
    /// is enabled.
    pub fn register_invariant(
        &mut self,
        name: &'static str,
        check: impl Fn(&Machine) -> Option<String> + 'static,
    ) {
        self.invariant_checks.push((name, Box::new(check)));
    }

    /// Violations (and check counts) accumulated since checking began.
    #[must_use]
    pub fn invariant_report(&self) -> &InvariantReport {
        &self.invariant_report
    }

    /// The named conservation [`Ledger`] for a device descriptor ring,
    /// created empty on first use. Devices account posted / in-flight /
    /// completed / dropped work into it from their separate code paths;
    /// [`Machine::check_invariants`] verifies every ledger stays
    /// balanced. Ledgers live outside [`Machine::counters`] so they can
    /// never leak into experiment reports.
    pub fn ledger(&mut self, name: &'static str) -> &mut Ledger {
        let i = match self.device_ledgers.iter().position(|(n, _)| *n == name) {
            Some(i) => i,
            None => {
                self.device_ledgers.push((name, Ledger::default()));
                self.device_ledgers.len() - 1
            }
        };
        &mut self.device_ledgers[i].1
    }

    /// Runs every machine-wide invariant once, recording violations.
    ///
    /// Called automatically from the run loops when enabled; public so
    /// harnesses can force a final check after a run completes.
    pub fn check_invariants(&mut self) {
        self.invariant_report.note_check();
        let now = self.now;
        // Event-queue time monotonicity: nothing pending may be behind
        // the clock — a past-due event still in the queue would execute
        // at the wrong simulated time (or never).
        if let Some(t) = self.events.peek_time() {
            if t < now {
                self.invariant_report.record(
                    "queue.monotone",
                    now,
                    format!("pending event at {} behind now {}", t.0, now.0),
                );
            }
        }
        // Exception-descriptor conservation: raised = delivered + dropped.
        if !self.exc_ledger.balanced() {
            self.invariant_report
                .record("exception.ring", now, self.exc_ledger.describe());
        }
        // Device descriptor-ring conservation: every posted unit of work
        // must be completed, still in flight, or deliberately dropped.
        for (name, l) in &self.device_ledgers {
            if !l.balanced() {
                self.invariant_report.record(
                    "device.ring",
                    now,
                    format!("{name}: {}", l.describe()),
                );
            }
        }
        for (i, t) in self.threads.iter().enumerate() {
            let ptid = Ptid(i as u32);
            let enrolled = self.cores[t.home].sched.is_enrolled(ptid);
            // Thread-state-machine legality: scheduler enrolment must
            // mirror `Runnable` exactly, in both directions.
            if (t.state == ThreadState::Runnable) != enrolled {
                self.invariant_report.record(
                    "thread.state",
                    now,
                    format!("{ptid} {:?} but enrolled={enrolled}", t.state),
                );
            }
            // A monitor armed on a disabled/halted thread is a watch that
            // can fire on a thread that must not wake.
            if t.monitor_armed && !matches!(t.state, ThreadState::Runnable | ThreadState::Waiting) {
                self.invariant_report.record(
                    "thread.state",
                    now,
                    format!("{ptid} {:?} with armed monitor", t.state),
                );
            }
            // No-lost-wakeup: a parked, non-quarantined thread must hold a
            // live watch in the filter, or no store can ever wake it.
            if t.state == ThreadState::Waiting && !t.quarantined {
                if !t.monitor_armed {
                    self.invariant_report.record(
                        "thread.lost_wakeup",
                        now,
                        format!("{ptid} parked without an armed monitor"),
                    );
                } else if !self.filter.is_armed(WatchId(u64::from(ptid.0))) {
                    self.invariant_report.record(
                        "thread.lost_wakeup",
                        now,
                        format!("{ptid} armed flag set but filter holds no watch"),
                    );
                }
            }
            // Quarantine/restart liveness: quarantine implies Disabled
            // (only restart_thread may lift it), and a casualty timestamp
            // must be cleared the moment the thread runs again.
            if t.quarantined && t.state != ThreadState::Disabled {
                self.invariant_report.record(
                    "thread.quarantine",
                    now,
                    format!("{ptid} quarantined but {:?}", t.state),
                );
            }
            if t.disabled_at.is_some() && t.state != ThreadState::Disabled {
                self.invariant_report.record(
                    "thread.quarantine",
                    now,
                    format!("{ptid} {:?} with stale disabled_at", t.state),
                );
            }
        }
        // Registered checks (device descriptor-ring conservation, …).
        let checks = core::mem::take(&mut self.invariant_checks);
        for (name, check) in &checks {
            if let Some(detail) = check(self) {
                self.invariant_report.record(name, now, detail);
            }
        }
        self.invariant_checks = checks;
    }

    /// Arms (or disarms, with `None`) a per-thread watchdog deadline: if
    /// the thread stays parked in a single `mwait` longer than `timeout`,
    /// the hardware raises [`ExceptionKind::WatchdogExpired`] on it —
    /// turning a silently wedged thread into an ordinary descriptor a
    /// supervisor can act on.
    pub fn set_thread_watchdog(&mut self, tid: ThreadId, timeout: Option<Cycles>) {
        self.thread_mut(tid.ptid).watchdog = timeout;
    }

    /// Quarantines a thread: disables it immediately and refuses every
    /// wake until [`Machine::restart_thread`] lifts the quarantine. Used
    /// by supervisors for threads that fault repeatedly.
    pub fn quarantine_thread(&mut self, tid: ThreadId) {
        if self.threads[tid.ptid.0 as usize].state != ThreadState::Disabled {
            self.disable_thread(tid.ptid, ThreadState::Disabled);
        }
        self.thread_mut(tid.ptid).quarantined = true;
        self.counters.inc("thread.quarantines");
        self.trace
            .record_with(self.now, "quarantine", || format!("{}", tid.ptid));
    }

    /// Whether a thread is quarantined.
    #[must_use]
    pub fn is_quarantined(&self, tid: ThreadId) -> bool {
        self.threads[tid.ptid.0 as usize].quarantined
    }

    /// Restarts a disabled (possibly quarantined) thread from its first
    /// `start` pc, clearing stale monitor state. Returns `false` if the
    /// thread is not currently `Disabled` (running, waiting or halted
    /// threads cannot be restarted).
    pub fn restart_thread(&mut self, tid: ThreadId) -> bool {
        let t = self.thread_mut(tid.ptid);
        if t.state != ThreadState::Disabled {
            return false;
        }
        t.quarantined = false;
        t.monitor_triggered = false;
        if let Some(pc) = t.restart_pc {
            t.arch.pc = pc;
        }
        self.counters.inc("thread.restarts");
        self.trace
            .record_with(self.now, "restart", || format!("{}", tid.ptid));
        self.enable_thread(tid.ptid);
        true
    }

    /// When `tid` was last disabled by an exception, if it still is.
    /// Supervisors subtract this from "now" for recovery latency.
    #[must_use]
    pub fn thread_fault_time(&self, tid: ThreadId) -> Option<Cycles> {
        self.threads[tid.ptid.0 as usize].disabled_at
    }

    /// Migrates a thread to another core (§4: the OS scheduler "will
    /// also manage the mapping of threads to cores in order to improve
    /// locality").
    ///
    /// The thread's architectural state moves through the shared L3
    /// (charged as a cross-core bulk transfer); the thread cannot be
    /// dispatched until the transfer completes. Its cached working set
    /// is *not* moved — the first accesses on the new core re-warm
    /// through the hierarchy, which is the real cost of careless
    /// migration. Returns the updated handle.
    pub fn migrate_thread(
        &mut self,
        tid: ThreadId,
        new_core: usize,
    ) -> Result<ThreadId, MachineError> {
        if new_core >= self.cfg.cores {
            return Err(MachineError::BadCore(new_core));
        }
        let ptid = tid.ptid;
        let old = self.core_of(ptid);
        if old == new_core {
            return Ok(ThreadId { core: old, ptid });
        }
        self.cores[old].sched.dequeue(ptid);
        self.cores[old].store.remove(ptid);
        let now = self.now;
        let link = self.cfg.store.link_bytes_per_cycle.max(1);
        let l3_base = self.cfg.store.l3_base.0;
        let (runnable, prio, cost) = {
            let t = self.thread_mut(ptid);
            t.home = new_core;
            t.activated = false;
            // Cross-core path: write back to L3 on the old side, read on
            // the new side — two L3-class bulk transfers.
            let bytes = t.state_bytes();
            let xfer = Cycles(2 * (l3_base + bytes.div_ceil(link)));
            t.busy_until = t.busy_until.max(now + xfer);
            (t.state == ThreadState::Runnable, t.arch.prio, xfer)
        };
        self.counters.inc("thread.migrations");
        self.trace.record_with(self.now, "migrate", || {
            format!("{ptid} core{old} -> core{new_core} ({cost})")
        });
        if runnable {
            self.cores[new_core].sched.enqueue(ptid, prio);
            self.kick_core(new_core);
        }
        Ok(ThreadId {
            core: new_core,
            ptid,
        })
    }

    /// Writes a TDT entry into simulated memory (host convenience; the
    /// hardware TDT cache is *not* invalidated — run `invtid` or use
    /// [`Machine::invalidate_tdt`]).
    pub fn write_tdt_entry(&mut self, tdt_base: u64, vtid: Vtid, entry: TdtEntry) {
        self.poke_u64(tdt_base + u64::from(vtid.0) * 8, entry.encode());
    }

    /// Host-level `invtid` for a core's TDT cache.
    pub fn invalidate_tdt(&mut self, core: usize, tdt_base: u64, vtid: Vtid) {
        self.cores[core].tdt.invalidate(tdt_base, vtid);
    }

    // -----------------------------------------------------------------
    // Run loop
    // -----------------------------------------------------------------

    /// Runs until simulated time `t` (or the machine halts).
    ///
    /// With [`Machine::set_machine_jobs`] above 1 (and the invariant
    /// checker off — it wants to observe every event boundary), the
    /// core-sharded epoch engine in `shard.rs` runs instead; it is
    /// bit-identical to this serial loop by construction.
    pub fn run_until(&mut self, t: Cycles) {
        if self.machine_jobs > 1 && !self.invariants_on {
            self.run_until_sharded(t);
        } else {
            self.run_until_serial(t);
        }
    }

    /// The serial event loop (the reference engine).
    pub(crate) fn run_until_serial(&mut self, t: Cycles) {
        while self.halted.is_none() {
            // pop_due folds peek+pop into one heap traversal (hot loop).
            let Some((ts, ev)) = self.events.pop_due(t) else {
                break;
            };
            if ts > self.now {
                // Event-queue boundary: all work at `now` has settled.
                if self.invariants_on {
                    self.check_invariants();
                }
                self.now = ts;
            }
            match ev {
                Ev::SlotFree { core, slot } => self.dispatch(core as usize, slot as usize, t, None),
                Ev::Call(key) => {
                    if let Some(cb) = self.callbacks.remove(&key) {
                        cb(self);
                    }
                }
            }
        }
        if self.invariants_on {
            self.check_invariants();
        }
        if self.halted.is_none() && self.now < t {
            self.now = t;
        }
    }

    /// Pops and handles one event due at or before `pop_bound`, with
    /// dispatch horizon `horizon` (the run deadline). Returns whether an
    /// event was processed. Serial-replay primitive for the epoch engine;
    /// body identical to one `run_until_serial` iteration.
    pub(crate) fn step_one(&mut self, pop_bound: Cycles, horizon: Cycles) -> bool {
        if self.halted.is_some() {
            return false;
        }
        let Some((ts, ev)) = self.events.pop_due(pop_bound) else {
            return false;
        };
        if ts > self.now {
            if self.invariants_on {
                self.check_invariants();
            }
            self.now = ts;
        }
        match ev {
            Ev::SlotFree { core, slot } => {
                self.dispatch(core as usize, slot as usize, horizon, None);
            }
            Ev::Call(key) => {
                if let Some(cb) = self.callbacks.remove(&key) {
                    cb(self);
                }
            }
        }
        true
    }

    /// Runs for `d` more cycles.
    pub fn run_for(&mut self, d: Cycles) {
        self.run_until(self.now + d);
    }

    /// Runs until `tid` reaches `state` or `limit` elapses; returns
    /// whether the state was reached.
    pub fn run_until_state(&mut self, tid: ThreadId, state: ThreadState, limit: Cycles) -> bool {
        let deadline = self.now + limit;
        // Event-driven stepping: process one event at a time and check.
        while self.now <= deadline && self.halted.is_none() {
            if self.thread_state(tid) == state {
                return true;
            }
            let Some((ts, ev)) = self.events.pop_due(deadline) else {
                break;
            };
            if ts > self.now {
                if self.invariants_on {
                    self.check_invariants();
                }
                self.now = ts;
            }
            match ev {
                // The watch pair makes bursts bail the moment `tid`
                // reaches `state`, so `now` on return is exactly the
                // single-step value.
                Ev::SlotFree { core, slot } => self.dispatch(
                    core as usize,
                    slot as usize,
                    deadline,
                    Some((tid.ptid, state)),
                ),
                Ev::Call(key) => {
                    if let Some(cb) = self.callbacks.remove(&key) {
                        cb(self);
                    }
                }
            }
        }
        self.thread_state(tid) == state
    }

    // -----------------------------------------------------------------
    // Internal: threads, wakeups, exceptions
    // -----------------------------------------------------------------

    fn thread_mut(&mut self, ptid: Ptid) -> &mut Thread {
        &mut self.threads[ptid.0 as usize]
    }

    fn core_of(&self, ptid: Ptid) -> usize {
        self.threads[ptid.0 as usize].home
    }

    /// Makes a thread runnable (start or monitor wake).
    fn enable_thread(&mut self, ptid: Ptid) {
        let core = self.core_of(ptid);
        let t = &mut self.threads[ptid.0 as usize];
        match t.state {
            ThreadState::Runnable | ThreadState::Halted => return,
            ThreadState::Waiting | ThreadState::Disabled => {}
        }
        if t.quarantined {
            // Only restart_thread (which clears the flag first) may wake
            // a quarantined thread; stray monitor hits are swallowed.
            self.counters.inc("thread.quarantine_wake_refused");
            return;
        }
        t.state = ThreadState::Runnable;
        t.activated = false;
        t.wake_at = Some(self.now);
        t.disabled_at = None;
        let prio = t.arch.prio;
        if t.monitor_armed {
            t.monitor_armed = false;
            self.filter.disarm_all(WatchId(u64::from(ptid.0)));
        }
        self.counters.bump(self.hot.thread_wakes, 1);
        // Wake-prefetch (§4): begin the state transfer and cache warming
        // now, so the first dispatch pays only the pipeline refill.
        if self.cfg.store.prefetch_on_wake {
            let (bytes, prio2) = {
                let t = &self.threads[ptid.0 as usize];
                let bytes = if self.cfg.store.dirty_tracking {
                    t.dirty_bytes()
                } else {
                    t.state_bytes()
                };
                (bytes, t.arch.prio)
            };
            let tier = self.cores[core].store.tier_of(ptid);
            if tier != Tier::Rf {
                let (cost, from) = self.cores[core].store.activate(ptid, prio2, bytes);
                self.counters.inc(match from {
                    Tier::Rf => "store.activate.rf",
                    Tier::L2 => "store.activate.l2",
                    Tier::L3 => "store.activate.l3",
                    Tier::Dram => "store.activate.dram",
                });
                // Transfer overlaps with queueing: the thread cannot be
                // dispatched before the transfer completes, but other
                // threads keep the pipeline busy meanwhile.
                let done = self.now + cost - self.cfg.store.rf_start.min(cost);
                let t = self.thread_mut(ptid);
                t.busy_until = t.busy_until.max(done);
                let part = self.threads[ptid.0 as usize].partition;
                for &line in self.prefetcher.wake_set(WatchId(u64::from(ptid.0))) {
                    self.hier.warm(core, line, part);
                }
            }
        }
        self.trace
            .record_with(self.now, "wake", || format!("{ptid} runnable"));
        self.cores[core].sched.enqueue(ptid, prio);
        self.kick_core(core);
    }

    /// Disables a thread (stop, mwait uses `Waiting`, halt uses `Halted`).
    fn disable_thread(&mut self, ptid: Ptid, into: ThreadState) {
        debug_assert!(into != ThreadState::Runnable);
        let core = self.core_of(ptid);
        let t = &mut self.threads[ptid.0 as usize];
        if t.state == ThreadState::Halted {
            return;
        }
        t.state = into;
        if into != ThreadState::Waiting && t.monitor_armed {
            t.monitor_armed = false;
            self.filter.disarm_all(WatchId(u64::from(ptid.0)));
        }
        self.cores[core].sched.dequeue(ptid);
        self.trace
            .record_with(self.now, "block", || format!("{ptid} -> {into}"));
    }

    /// Re-kicks idle slots on a core after a wakeup.
    fn kick_core(&mut self, core: usize) {
        for slot in 0..self.cfg.smt_slots {
            if self.cores[core].idle_slot[slot] {
                self.cores[core].idle_slot[slot] = false;
                self.events.schedule(
                    self.now,
                    Ev::SlotFree {
                        core: core as u32,
                        slot: slot as u32,
                    },
                );
            }
        }
    }

    /// Raises an exception: writes the descriptor (waking monitors) and
    /// disables the thread. EDP == 0 halts the machine (§3.2).
    ///
    /// Descriptor slots carry **backpressure**: a handler acknowledges a
    /// descriptor by zeroing its kind word (the hypervisor already does).
    /// If a second fault arrives while the kind word is still nonzero,
    /// the new descriptor is *dropped* — never silently overwritten — and
    /// `exception.descriptor_overflow` counts the loss. The faulting
    /// thread is disabled either way, so supervisors sweep for disabled
    /// threads whose descriptor was lost.
    fn raise_exception(&mut self, ptid: Ptid, kind: ExceptionKind, info: u64) {
        self.counters.inc(kind.counter_name());
        self.exc_ledger.posted += 1;
        let (edp, pc) = {
            let t = &self.threads[ptid.0 as usize];
            (t.arch.edp, t.arch.pc)
        };
        self.disable_thread(ptid, ThreadState::Disabled);
        self.thread_mut(ptid).disabled_at = Some(self.now);
        self.trace.record_with(self.now, "fault", || {
            format!("{ptid} {kind} info={info:#x}")
        });
        if edp == 0 || edp + crate::exception::DESCRIPTOR_BYTES > self.cfg.mem_bytes {
            self.exc_ledger.dropped += 1;
            self.halted = Some(format!(
                "unhandled {kind} in {ptid} at pc={pc:#x} (no exception descriptor \
                 pointer installed — triple-fault analog, §3.2)"
            ));
            self.counters.inc("machine.halt");
            return;
        }
        if self.peek_u64(edp) != 0 {
            // Previous descriptor not yet acknowledged: drop, count, and
            // leave the slot intact for its handler.
            self.exc_ledger.dropped += 1;
            self.counters.inc("exception.descriptor_overflow");
            self.trace.record_with(self.now, "fault", || {
                format!("{ptid} {kind} descriptor dropped (slot busy)")
            });
            return;
        }
        self.exc_ledger.completed += 1;
        let desc = Descriptor {
            kind,
            ptid: u64::from(ptid.0),
            pc,
            info,
        };
        for (i, w) in desc.encode().into_iter().enumerate() {
            self.raw_write_u64(edp + (i as u64) * 8, w);
        }
        // One filter notification for the whole descriptor.
        self.after_store(edp, crate::exception::DESCRIPTOR_BYTES, false);
    }

    // -----------------------------------------------------------------
    // Internal: memory
    // -----------------------------------------------------------------

    fn raw_write_u64(&mut self, addr: u64, value: u64) {
        let a = addr as usize;
        assert!(a + 8 <= self.mem.len(), "write outside memory {addr:#x}");
        self.mem[a..a + 8].copy_from_slice(&value.to_le_bytes());
    }

    /// Post-store hook: consult the monitor filter and wake waiters.
    fn after_store(&mut self, addr: u64, len: u64, external: bool) {
        // Keep the decoded-instruction cache coherent. The two compares
        // reject every store outside the hull of loaded images, so data
        // stores never scan `code`.
        if addr < self.code_hi && addr.saturating_add(len.max(1)) > self.code_lo {
            self.invalidate_code(addr, len);
        }
        // Reuse the wake buffer across stores; `take` leaves an empty
        // `Vec` behind so a reentrant store (from `enable_thread`-driven
        // host logic or an mmio hook) just allocates its own.
        let mut wakes = core::mem::take(&mut self.scratch_wakes);
        wakes.clear();
        let _cost = self.filter.on_store(PAddr(addr), len, &mut wakes);
        for w in &wakes {
            let ptid = Ptid(w.watcher.0 as u32);
            if !w.exact {
                self.counters.bump(self.hot.monitor_false_wakes, 1);
            }
            self.counters.bump(self.hot.monitor_wakes, 1);
            let t = &mut self.threads[ptid.0 as usize];
            match t.state {
                ThreadState::Waiting => self.enable_thread(ptid),
                // Write raced ahead of mwait: remember it.
                _ => t.monitor_triggered = true,
            }
        }
        self.scratch_wakes = wakes;
        if external {
            self.counters.bump(self.hot.store_external, 1);
        }
        // Device doorbells: fire hooks whose address the store covered.
        if !self.mmio_hooks.is_empty() {
            let end = addr.saturating_add(len.max(1));
            let mut hit = core::mem::take(&mut self.scratch_mmio);
            hit.clear();
            hit.extend(
                self.mmio_hooks
                    .keys()
                    .copied()
                    .filter(|&a| a >= addr.saturating_sub(7) && a < end),
            );
            // Map iteration order is arbitrary; fire in address order so
            // multi-hook stores behave identically run to run.
            hit.sort_unstable();
            let mut i = 0;
            while i < hit.len() {
                let a = hit[i];
                i += 1;
                if let Some(mut h) = self.mmio_hooks.remove(&a) {
                    let value = self.peek_u64(a);
                    h(self, value);
                    self.mmio_hooks.entry(a).or_insert(h);
                }
            }
            self.scratch_mmio = hit;
        }
    }

    /// Data access from a thread on `core`; returns latency or a fault.
    fn data_access(
        &mut self,
        core: usize,
        ptid: Ptid,
        addr: u64,
        len: u64,
        kind: AccessKind,
    ) -> Result<Cycles, ExceptionKind> {
        if addr.checked_add(len).is_none() || addr + len > self.cfg.mem_bytes {
            return Err(ExceptionKind::BadMemory);
        }
        let tlb_cost = self.tlbs[core].access(0, addr / switchless_mem::addr::PAGE_BYTES);
        let part = self.threads[ptid.0 as usize].partition;
        let res = self.hier.access(self.now, core, PAddr(addr), kind, part);
        self.prefetcher
            .record_access(WatchId(u64::from(ptid.0)), PAddr(addr));
        Ok(tlb_cost + res.latency)
    }

    // -----------------------------------------------------------------
    // Internal: TDT lookups and permission checks
    // -----------------------------------------------------------------

    /// Resolves a vtid through the calling thread's TDT; returns the
    /// entry and lookup cost, or the exception to raise.
    fn tdt_lookup(
        &mut self,
        core: usize,
        caller: Ptid,
        vtid: Vtid,
    ) -> Result<(TdtEntry, Cycles), ExceptionKind> {
        let tdtr = self.threads[caller.0 as usize].arch.tdtr;
        if tdtr == 0 {
            return Err(ExceptionKind::PermissionDenied);
        }
        if let Some((e, cost)) = self.cores[core].tdt.lookup(tdtr, vtid) {
            if !e.valid {
                return Err(ExceptionKind::PermissionDenied);
            }
            return Ok((e, cost));
        }
        // Miss: fetch the entry from memory through the hierarchy.
        let addr = tdtr + u64::from(vtid.0) * 8;
        if addr + 8 > self.cfg.mem_bytes {
            return Err(ExceptionKind::BadMemory);
        }
        let lat = self
            .data_access(core, caller, addr, 8, AccessKind::Read)
            .map_err(|_| ExceptionKind::BadMemory)?;
        let entry = TdtEntry::decode(self.peek_u64(addr));
        self.cores[core].tdt.install(tdtr, vtid, entry);
        if !entry.valid {
            return Err(ExceptionKind::PermissionDenied);
        }
        Ok((entry, lat + Cycles(1)))
    }

    /// Checks that `caller` may perform `need` on the entry's target.
    /// Supervisor-mode threads bypass TDT permission bits.
    fn check_perm(&self, caller: Ptid, entry: TdtEntry, need: Perms) -> Result<(), ExceptionKind> {
        let mode = self.threads[caller.0 as usize].arch.mode;
        if mode == Mode::Supervisor || entry.perms.allows(need) {
            Ok(())
        } else {
            Err(ExceptionKind::PermissionDenied)
        }
    }

    // -----------------------------------------------------------------
    // Internal: dispatch & instruction execution
    // -----------------------------------------------------------------

    /// Dispatches one pipeline slot: picks a thread, charges activation,
    /// and executes an instruction **burst** — up to [`MAX_BURST`]
    /// instructions inline, advancing a local cycle cursor, instead of
    /// one event-queue round-trip per instruction (see DESIGN.md §8).
    ///
    /// `horizon` is the run deadline: no instruction may dispatch after
    /// it (mirrors `pop_due`). `watch` is `run_until_state`'s target; a
    /// burst bails the moment it is reached so the caller observes the
    /// same `now` a single-step run would.
    fn dispatch(
        &mut self,
        core: usize,
        slot: usize,
        horizon: Cycles,
        watch: Option<(Ptid, ThreadState)>,
    ) {
        if self.halted.is_some() {
            return;
        }
        let now = self.now;
        // Split borrows: scheduler vs thread table.
        let picked = {
            let threads = &self.threads;
            self.cores[core]
                .sched
                .pick(|p| threads[p.0 as usize].busy_until > now)
        };
        let Some(ptid) = picked else {
            // Runnable threads may exist but be busy (state transfer or an
            // in-flight instruction on the other slot): retry when the
            // earliest becomes free. Otherwise idle until a wake re-kicks.
            let threads = &self.threads;
            let next = self.cores[core].sched.min_over_enrolled(|p| {
                let b = threads[p.0 as usize].busy_until;
                (b > now).then_some(b)
            });
            match next {
                Some(at) => {
                    self.events.schedule(
                        at,
                        Ev::SlotFree {
                            core: core as u32,
                            slot: slot as u32,
                        },
                    );
                }
                None => self.cores[core].idle_slot[slot] = true,
            }
            return;
        };
        self.counters.bump(self.hot.sched_dispatches, 1);

        // Activation cost: pipeline refill (plus state transfer when the
        // thread's state is not RF-resident and wasn't prefetched).
        let mut cost = Cycles::ZERO;
        let tier = self.cores[core].store.tier_of(ptid);
        let needs_activation = !self.threads[ptid.0 as usize].activated || tier != Tier::Rf;
        if needs_activation {
            let (bytes, prio) = {
                let t = &self.threads[ptid.0 as usize];
                let bytes = if self.cfg.store.dirty_tracking {
                    t.dirty_bytes()
                } else {
                    t.state_bytes()
                };
                (bytes, t.arch.prio)
            };
            let (act, from) = self.cores[core].store.activate(ptid, prio, bytes);
            self.counters.bump(self.hot.activate[from as usize], 1);
            cost += act;
            let t = self.thread_mut(ptid);
            t.activated = true;
            t.touched = 0;
        } else {
            self.cores[core].store.touch(ptid);
        }
        // Wake-to-execution latency: scheduler queueing (now - wake)
        // plus the state-activation / pipeline-refill time just charged
        // (`cost` holds exactly the activation portion at this point).
        if let Some(wake) = self.threads[ptid.0 as usize].wake_at.take() {
            let sample = (now - wake + cost).0;
            self.wake_latency.record(sample);
            self.last_wake = Some((ptid, sample));
            let ws = &mut self.threads[ptid.0 as usize].wake_stats;
            ws.0 += 1;
            ws.1 += sample;
            ws.2 = ws.2.max(sample);
        }

        // Execute the first instruction (the one this SlotFree paid for).
        self.pending_charge = Cycles::ZERO;
        cost += self.exec_inst(core, ptid);
        cost += self.pending_charge;
        self.pending_charge = Cycles::ZERO;
        cost = cost.max(Cycles(1));
        let mut done = now + cost;

        // Burst engine: while this thread is provably the next pick and
        // nothing else can observe machine state first, keep executing its
        // instructions inline. Continuation is decided *after* each
        // instruction's effects, so any cross-thread side effect (a wake
        // that enrols a second thread, a scheduled callback, an exception,
        // a halt) ends the burst exactly where single-stepping would have
        // re-arbitrated differently. `next_deadline` is cached and only
        // recomputed when something scheduled (schedules are the only way
        // the deadline can move earlier).
        let mut burst_cost = Cycles::ZERO;
        let mut extra: u64 = 0; // instructions beyond the first

        // Superblock entry gate (the heat hoist): a region entry is only
        // ever *reached* by a jump — straight-line continuation lands on
        // pc + 8. `seq_pc` tracks that fall-through continuation; while
        // the burst walks sequential code, the table lookup (and its
        // heat/formed bookkeeping) is skipped entirely, so single-step
        // dispatch of non-candidate code pays nothing per instruction.
        // `u64::MAX` means "provenance unknown — check": the first burst
        // iteration and every block exit.
        let mut seq_pc = u64::MAX;
        if watch.is_none_or(|(p, s)| self.threads[p.0 as usize].state != s) {
            let mut mark = self.events.schedule_mark();
            let mut qmin = self.events.next_deadline();
            'burst: while extra < MAX_BURST
                && done <= horizon
                && self.burst_eligible(core, ptid, done)
            {
                // Event-horizon gate: nothing due at or before `done` may
                // be skipped. One exception: a pending `SlotFree` for a
                // *sibling* slot of this core. With this thread
                // sole-runnable and busy through every burst cursor,
                // single-stepping that event is provably inert — its pick
                // always loses to this slot (our pending `SlotFree` at
                // any shared timestamp carries the earlier seq) and it
                // merely reschedules itself. It is lifted out of the
                // deadline computation via `pop_keyed` and restored
                // verbatim at burst exit; because the restore preserves
                // the original `(time, seq)` key, the run loop afterwards
                // pops it exactly where single-stepping would have, and
                // it re-enters real arbitration there.
                while let Some(t) = qmin {
                    if t > done {
                        break;
                    }
                    let consumable = matches!(
                        self.events.peek(),
                        Some((_, &Ev::SlotFree { core: c, slot: s }))
                            if c as usize == core && s as usize != slot
                    );
                    if !consumable {
                        break 'burst;
                    }
                    let Some(lifted) = self.events.pop_keyed() else {
                        unreachable!("peek/pop agree on the head event");
                    };
                    self.burst_stash.push(lifted);
                    qmin = self.events.next_deadline();
                }
                // Superblock fast path (DESIGN.md §10): a formed inert
                // region executes as one unit when its whole span
                // provably stays inside this burst's window. Inert
                // instructions cannot schedule events, change any thread
                // state, touch memory, or incur a pending charge, so the
                // per-instruction mark/watch/eligibility re-checks are
                // all constant across the block: the one check already
                // done at the loop head covers every interior cursor
                // (`busy_until <= done` stays true as `done` only
                // grows). Any failed precondition falls back to the
                // single-step path below — never a burst exit.
                if self.sb_on {
                    let pc = self.threads[ptid.0 as usize].arch.pc;
                    let via_jump = pc != seq_pc;
                    seq_pc = pc + 8;
                    if via_jump {
                        if let Some((ri, bi)) = self.sb_lookup(pc) {
                            let (bcost, last_cost, len) = {
                                let b = &self.code[ri].blocks[bi as usize];
                                // Dynamic block cost: base costs plus one
                                // L1 hit per data access. The block only
                                // executes when every fetch/data line is
                                // L1-resident and every data page is
                                // TLB-resident (a TLB hit adds zero), so
                                // the cost is static and `d_last` is
                                // known before any probing.
                                let l1 = self.cfg.hierarchy.lat_l1;
                                (
                                    b.cost + Cycles(b.mem_ops * l1.0),
                                    b.last_cost + if b.last_is_mem { l1 } else { Cycles::ZERO },
                                    b.insts.len() as u64,
                                )
                            };
                            // Dispatch time of the block's final
                            // instruction: the burst window must reach
                            // it, exactly as the loop head would have
                            // required step by step. `extra` may
                            // overshoot `MAX_BURST` by at most one block
                            // — the cap is a host-side amortisation knob
                            // and burst length is observably invisible,
                            // so a looser bound only moves where bursts
                            // split.
                            let d_last = done + bcost - last_cost;
                            if d_last <= horizon {
                                // Extend the sibling-lift gate through
                                // `d_last`: single-stepping the block
                                // would run this gate at every interior
                                // cursor. Over-lifting on a failed
                                // attempt is harmless — lifted events
                                // are restored under their original keys
                                // either way.
                                let mut clear = true;
                                while let Some(t) = qmin {
                                    if t > d_last {
                                        break;
                                    }
                                    let consumable = matches!(
                                        self.events.peek(),
                                        Some((_, &Ev::SlotFree { core: c, slot: s }))
                                            if c as usize == core && s as usize != slot
                                    );
                                    if !consumable {
                                        // Single-stepping would stop
                                        // partway into the region; do
                                        // that instead.
                                        clear = false;
                                        break;
                                    }
                                    let Some(lifted) = self.events.pop_keyed() else {
                                        unreachable!("peek/pop agree on the head event");
                                    };
                                    self.burst_stash.push(lifted);
                                    qmin = self.events.next_deadline();
                                }
                                if clear && self.exec_superblock(core, ri, bi as usize, ptid) {
                                    // Serial single-stepping leaves
                                    // `now` at the last dispatch cursor,
                                    // not at the completion time.
                                    self.now = d_last;
                                    done += bcost;
                                    burst_cost += bcost;
                                    extra += len;
                                    // A block exit is a fresh control
                                    // transfer: re-check at the next pc.
                                    seq_pc = u64::MAX;
                                    continue 'burst;
                                }
                            }
                        }
                    }
                }
                self.now = done;
                self.pending_charge = Cycles::ZERO;
                let mut c = self.exec_inst(core, ptid);
                c += self.pending_charge;
                self.pending_charge = Cycles::ZERO;
                c = c.max(Cycles(1));
                done += c;
                burst_cost += c;
                extra += 1;
                if self.events.schedule_mark() != mark {
                    mark = self.events.schedule_mark();
                    qmin = self.events.next_deadline();
                }
                if let Some((p, s)) = watch {
                    if self.threads[p.0 as usize].state == s {
                        break;
                    }
                }
            }
        }
        // Put lifted sibling events back under their original keys: the
        // queue is now exactly what single-stepping would have pending,
        // and the run loop re-arbitrates those slots for real.
        while let Some((at, tok, ev)) = self.burst_stash.pop() {
            self.events.restore(at, tok, ev);
        }

        // Batched bookkeeping: one account/bump per burst, totals exactly
        // equal to per-instruction accounting.
        self.cores[core].sched.account(ptid, cost);
        if extra > 0 {
            self.cores[core]
                .sched
                .account_burst(ptid, burst_cost, extra);
            self.counters.bump(self.hot.sched_dispatches, extra);
        }
        {
            let t = self.thread_mut(ptid);
            t.busy_until = t.busy_until.max(done);
        }
        self.counters.bump(self.hot.inst_executed, 1 + extra);
        self.events.schedule(
            done,
            Ev::SlotFree {
                core: core as u32,
                slot: slot as u32,
            },
        );
    }

    /// Whether the burst may execute one more instruction for `ptid`
    /// dispatching at time `done`. True only when the single-step machine
    /// would provably arrive at the identical pick with identical charges:
    /// the thread is still runnable on this core with RF-resident,
    /// already-activated state (no activation cost to charge), not made
    /// busy by anything, and it is the **sole** enrolled thread (so
    /// round-robin rotation is the identity and no fairness quantum can
    /// be violated). Everything an instruction's side effects can touch
    /// is re-read here, which makes the bailout effect-based — strictly
    /// stronger than a syntactic instruction blacklist.
    #[inline]
    fn burst_eligible(&self, core: usize, ptid: Ptid, done: Cycles) -> bool {
        if self.halted.is_some() {
            return false;
        }
        let t = &self.threads[ptid.0 as usize];
        t.state == ThreadState::Runnable
            && t.activated
            && t.home == core
            && t.busy_until <= done
            && self.cores[core].sched.sole_runnable() == Some(ptid)
            && self.cores[core].store.tier_of(ptid) == Tier::Rf
    }

    /// Superblock lookup at `pc`: the (code-range, block) indices of a
    /// formed, live superblock entered there. Misses bump the entry
    /// slot's heat counter; crossing [`SB_HOT`] forms the region once
    /// (or marks the slot [`SB_DEAD`] when no worthwhile region starts
    /// there). Formation is driven purely by observed execution heat —
    /// no static configuration (cf. "Switchless Calls Made Configless").
    #[inline]
    fn sb_lookup(&mut self, pc: u64) -> Option<(usize, u32)> {
        let hint = self.last_code;
        let idx = match self.code.get(hint) {
            Some(r) if r.base <= pc && pc < r.end => hint,
            _ => {
                let idx = self.code.iter().position(|r| r.base <= pc && pc < r.end)?;
                self.last_code = idx;
                idx
            }
        };
        let off = pc - self.code[idx].base;
        if off & 7 != 0 {
            return None;
        }
        let slot = (off >> 3) as usize;
        let allow_mem = self.sb_mem_on;
        let r = &mut self.code[idx];
        match r.sb[slot] {
            SB_DEAD => None,
            s if s >= SB_FORMED => Some((idx, s & !SB_FORMED)),
            heat if heat + 1 >= SB_HOT => match sblock::form(r.base, &r.insts, slot, allow_mem) {
                Some(b) => {
                    let bi = r.alloc_block(b);
                    r.sb[slot] = SB_FORMED | bi;
                    Some((idx, bi))
                }
                None => {
                    r.sb[slot] = SB_DEAD;
                    None
                }
            },
            heat => {
                r.sb[slot] = heat + 1;
                None
            }
        }
    }

    /// Executes a formed superblock as one unit. Returns `false`
    /// (having mutated nothing) when any fetch line is not L1-resident;
    /// the caller single-steps instead, charging the miss exactly as
    /// always. On success the L1 metadata (LRU stamps, tick, hit
    /// counts) and the thread's registers, pc and dirty mask are
    /// precisely what single-stepping the block would have produced.
    fn exec_superblock(&mut self, core: usize, ri: usize, bi: usize, ptid: Ptid) -> bool {
        if self.code[ri].blocks[bi].mem_ops > 0 {
            return self.exec_superblock_mem(core, ri, bi, ptid);
        }
        let b = &self.code[ri].blocks[bi];
        if !self
            .hier
            .l1_access_run(core, &b.lines, b.insts.len() as u64)
        {
            return false;
        }
        let t = &mut self.threads[ptid.0 as usize];
        let entry = t.arch.pc;
        t.arch.pc = sblock::exec_regs(&b.insts, &mut t.arch.gprs, entry);
        t.touched |= b.touched;
        true
    }

    /// Executes a memory-inclusive superblock as one unit (DESIGN.md
    /// §10, "memory-inclusive regions"). The walk interprets the block
    /// on a scratch register file, applies stores to memory under an
    /// undo log (so later loads in the block see them), and *stages* the
    /// block's exact dynamic footprint: the merged fetch+data L1 line
    /// stream, the data-page TLB stream, and the dedup-keep-last data
    /// lines for the prefetcher. Any effect the batch cannot reproduce
    /// bails — reverse-replaying the undo log, mutating nothing — and
    /// the caller single-steps, which raises/charges/invalidates/wakes
    /// exactly as always:
    ///
    /// - an out-of-range address (single-step raises the precise fault);
    /// - a non-resident L1 line or TLB page (single-step charges the
    ///   miss and performs the fills);
    /// - a store overlapping the code hull — including the block's own
    ///   fetch lines (single-step runs `invalidate_code`, which kills
    ///   the block);
    /// - a store whose range intersects an armed monitor line
    ///   (`MonitorFilter::would_wake` — conservative, so no wakeup is
    ///   ever lost or delayed);
    /// - a store within MMIO-doorbell proximity of a registered hook.
    ///
    /// On success the commit applies one batched, provably per-access-
    /// equal update per structure: `Cache::access_run_mixed` for the L1,
    /// `Tlb::access_run` for the pages, `WakePrefetcher::record_run` for
    /// the data lines, and one `note_quiet_stores` bump for the filter's
    /// store statistics (the serial store path discards `on_store`'s
    /// cost, and a no-wake `on_store` has no other observable effect).
    #[allow(clippy::too_many_lines)]
    fn exec_superblock_mem(&mut self, core: usize, ri: usize, bi: usize, ptid: Ptid) -> bool {
        const PAGE_BYTES: u64 = switchless_mem::addr::PAGE_BYTES;
        let mem_bytes = self.cfg.mem_bytes;
        let (code_lo, code_hi) = (self.code_lo, self.code_hi);
        let b = &self.code[ri].blocks[bi];
        self.sbm_lines.clear();
        self.sbm_lines
            .extend(b.lines.iter().map(|&(l, at)| (l, at, false)));
        self.sbm_pages.clear();
        self.sbm_plines.clear();
        self.sbm_stores.clear();
        self.sbm_undo.clear();

        let mut gprs = self.threads[ptid.0 as usize].arch.gprs;
        let mut pc = self.threads[ptid.0 as usize].arch.pc;
        let mut ok = true;
        let mut pos = 0u64; // position in the merged fetch+data stream
        let mut data_idx = 0u64; // 1-based index in the data-access stream
        let mut n_stores = 0u64;

        macro_rules! gpr {
            ($r:expr) => {
                gprs[$r.0 as usize & 0xf]
            };
        }
        macro_rules! set_gpr {
            ($r:expr, $v:expr) => {{
                let v = $v;
                gprs[$r.0 as usize & 0xf] = v;
            }};
        }
        // One data access: bail checks (bounds, TLB, L1), then stage the
        // line/page/prefetch bookkeeping at the current stream position.
        // The serial path accesses exactly the line and page *containing*
        // the address, regardless of width — mirror that. Expands to a
        // bool (labels cannot cross macro hygiene, so callers break on
        // `ok` after the match).
        macro_rules! data_access {
            ($addr:expr, $len:expr, $write:expr) => {{
                let addr: u64 = $addr;
                if addr.checked_add($len).is_none()
                    || addr + $len > mem_bytes
                    || !self.tlbs[core].contains(0, addr / PAGE_BYTES)
                    || !self.hier.l1_contains(core, PAddr(addr).line())
                {
                    false
                } else {
                    let page = addr / PAGE_BYTES;
                    let line = PAddr(addr).line();
                    pos += 1;
                    data_idx += 1;
                    match self.sbm_lines.iter_mut().find(|e| e.0 == line) {
                        Some(e) => {
                            // A fetch access of this line may come later
                            // in the merged stream than this data access.
                            e.1 = e.1.max(pos);
                            e.2 |= $write;
                        }
                        None => self.sbm_lines.push((line, pos, $write)),
                    }
                    match self.sbm_pages.iter_mut().find(|e| e.0 == page) {
                        Some(e) => e.1 = data_idx,
                        None => self.sbm_pages.push((page, data_idx)),
                    }
                    if let Some(p) = self.sbm_plines.iter().position(|&l| l == line) {
                        self.sbm_plines.remove(p);
                    }
                    self.sbm_plines.push(line);
                    true
                }
            }};
        }
        macro_rules! load {
            ($d:expr, $addr:expr, $len:expr) => {{
                let addr: u64 = $addr;
                if data_access!(addr, $len, false) {
                    let a = addr as usize;
                    let v = if $len == 8 {
                        u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("8 bytes"))
                    } else {
                        u64::from(self.mem[a])
                    };
                    set_gpr!($d, v);
                } else {
                    ok = false;
                }
            }};
        }
        // A store additionally vets — once per distinct range, since a
        // block cannot load images, arm monitors, or register hooks
        // mid-flight — the decoded-code overlap (the hull compare
        // `after_store` uses is a pre-filter that over-approximates
        // when unrelated data sits between two images; only a real
        // range overlap must single-step through `invalidate_code`,
        // which covers self-modifying stores into the block's own fetch
        // lines), the aggregated monitor test (`would_wake`), and
        // MMIO-doorbell proximity.
        macro_rules! store {
            ($v:expr, $addr:expr, $len:expr) => {{
                let addr: u64 = $addr;
                if !data_access!(addr, $len, true) {
                    ok = false;
                } else {
                    if !self.sbm_stores.contains(&(addr, $len)) {
                        let hits_code = addr < code_hi
                            && addr + $len > code_lo
                            && self
                                .code
                                .iter()
                                .any(|r| addr < r.end && addr + $len > r.base);
                        let lo = addr.saturating_sub(7);
                        let i0 = self.mmio_addrs.partition_point(|&a| a < lo);
                        if hits_code
                            || self.filter.would_wake(PAddr(addr), $len)
                            || self.mmio_addrs.get(i0).is_some_and(|&a| a < addr + $len)
                        {
                            ok = false;
                        } else {
                            self.sbm_stores.push((addr, $len));
                        }
                    }
                    if ok {
                        n_stores += 1;
                        let a = addr as usize;
                        if $len == 8 {
                            let old =
                                u64::from_le_bytes(self.mem[a..a + 8].try_into().expect("8 bytes"));
                            self.sbm_undo.push((addr, old, 8));
                            self.mem[a..a + 8].copy_from_slice(&($v).to_le_bytes());
                        } else {
                            self.sbm_undo.push((addr, u64::from(self.mem[a]), 1));
                            self.mem[a] = (($v) & 0xff) as u8;
                        }
                    }
                }
            }};
        }

        for i in &b.insts {
            pos += 1; // this instruction's fetch access
            let mut next = pc + 8;
            use Inst::*;
            match *i {
                Add { d, a, b } => set_gpr!(d, gpr!(a).wrapping_add(gpr!(b))),
                Sub { d, a, b } => set_gpr!(d, gpr!(a).wrapping_sub(gpr!(b))),
                And { d, a, b } => set_gpr!(d, gpr!(a) & gpr!(b)),
                Or { d, a, b } => set_gpr!(d, gpr!(a) | gpr!(b)),
                Xor { d, a, b } => set_gpr!(d, gpr!(a) ^ gpr!(b)),
                Shl { d, a, b } => set_gpr!(d, gpr!(a) << (gpr!(b) & 63)),
                Shr { d, a, b } => set_gpr!(d, gpr!(a) >> (gpr!(b) & 63)),
                Mul { d, a, b } => set_gpr!(d, gpr!(a).wrapping_mul(gpr!(b))),
                Addi { d, a, imm } => set_gpr!(d, gpr!(a).wrapping_add(imm as u64)),
                Movi { d, imm } => set_gpr!(d, imm as u64),
                Mov { d, a } => set_gpr!(d, gpr!(a)),
                Nop | Work { .. } | Fence => {}
                Ld { d, a, off } => load!(d, gpr!(a).wrapping_add(off as u64), 8),
                LdA { d, addr } => load!(d, addr, 8),
                LdB { d, a, off } => load!(d, gpr!(a).wrapping_add(off as u64), 1),
                St { s, a, off } => store!(gpr!(s), gpr!(a).wrapping_add(off as u64), 8),
                StA { s, addr } => store!(gpr!(s), addr, 8),
                StB { s, a, off } => store!(gpr!(s), gpr!(a).wrapping_add(off as u64), 1),
                Jmp { addr } => next = addr,
                Jr { a } => next = gpr!(a),
                Jal { d, addr } => {
                    set_gpr!(d, pc + 8);
                    next = addr;
                }
                Beq { a, b, addr } => {
                    if gpr!(a) == gpr!(b) {
                        next = addr;
                    }
                }
                Bne { a, b, addr } => {
                    if gpr!(a) != gpr!(b) {
                        next = addr;
                    }
                }
                Blt { a, b, addr } => {
                    if (gpr!(a) as i64) < (gpr!(b) as i64) {
                        next = addr;
                    }
                }
                Bge { a, b, addr } => {
                    if (gpr!(a) as i64) >= (gpr!(b) as i64) {
                        next = addr;
                    }
                }
                _ => unreachable!("non-admissible instruction inside a memory superblock"),
            }
            if !ok {
                break;
            }
            pc = next;
        }

        let (n_insts, mem_ops, touched) = (b.insts.len() as u64, b.mem_ops, b.touched);
        // The commit's only fallible step is the L1 batch: the walk
        // verified every *data* line, but the static fetch lines are
        // checked (without mutation) inside `access_run_mixed` itself,
        // exactly as on the pure-block path.
        if !ok
            || !self
                .hier
                .l1_access_run_mixed(core, &self.sbm_lines, n_insts + mem_ops)
        {
            for &(addr, old, len) in self.sbm_undo.iter().rev() {
                let a = addr as usize;
                if len == 8 {
                    self.mem[a..a + 8].copy_from_slice(&old.to_le_bytes());
                } else {
                    self.mem[a] = old as u8;
                }
            }
            return false;
        }
        debug_assert!(data_idx == mem_ops, "every instruction executed");
        let tlb_ok = self.tlbs[core].access_run(0, &self.sbm_pages, mem_ops);
        debug_assert!(tlb_ok, "probe checked TLB residency for every page");
        self.prefetcher
            .record_run(WatchId(u64::from(ptid.0)), &self.sbm_plines);
        if n_stores > 0 {
            self.filter.note_quiet_stores(n_stores);
        }
        let t = &mut self.threads[ptid.0 as usize];
        t.arch.gprs = gprs;
        t.arch.pc = pc;
        t.touched |= touched;
        true
    }

    /// Executes one instruction for `ptid`; returns its cost. All state
    /// effects (including faults) happen here.
    #[allow(clippy::too_many_lines)]
    fn exec_inst(&mut self, core: usize, ptid: Ptid) -> Cycles {
        let pc = self.threads[ptid.0 as usize].arch.pc;
        // Instruction fetch.
        if pc + 8 > self.cfg.mem_bytes {
            self.raise_exception(ptid, ExceptionKind::BadMemory, pc);
            return Cycles(1);
        }
        let ifetch = self.hier.access(
            self.now,
            core,
            PAddr(pc),
            AccessKind::Read,
            switchless_mem::cache::PartitionId::DEFAULT,
        );
        // A pipelined frontend hides L1-hit fetch latency entirely.
        let ifetch_cost = if ifetch.level == HitLevel::L1 {
            Cycles::ZERO
        } else {
            ifetch.latency
        };
        // Decoded-instruction cache: loaded images are pre-decoded, so the
        // steady state skips both the byte fetch and `Inst::decode`. Pcs
        // outside every image (or unaligned, or over a non-decoding word)
        // fall back to fetch-and-decode, preserving the exception payload.
        let inst = match self.cached_inst(pc) {
            Some(i) => i,
            None => {
                let word = self.peek_u64(pc);
                match Inst::decode(word) {
                    Ok(i) => i,
                    Err(_) => {
                        self.raise_exception(ptid, ExceptionKind::BadInstruction, word);
                        return ifetch_cost + Cycles(1);
                    }
                }
            }
        };

        // Privilege check (§3.2: privileged ops from user mode disable the
        // thread and write a descriptor, enabling emulation).
        if inst.is_privileged() && self.threads[ptid.0 as usize].arch.mode == Mode::User {
            // Cold path: fetch the raw encoding for the descriptor's info
            // word (the cache only holds the decoded form).
            let word = self.peek_u64(pc);
            self.raise_exception(ptid, ExceptionKind::PrivilegedOp, word);
            return ifetch_cost + Cycles(1);
        }

        let mut cost = ifetch_cost + Cycles(inst.base_cost());
        let mut next_pc = pc + 8;

        macro_rules! gpr {
            ($r:expr) => {
                self.threads[ptid.0 as usize].arch.gprs[$r.0 as usize & 0xf]
            };
        }
        macro_rules! set_gpr {
            ($r:expr, $v:expr) => {{
                let v = $v;
                let t = &mut self.threads[ptid.0 as usize];
                t.arch.gprs[$r.0 as usize & 0xf] = v;
                t.touched |= 1 << ($r.0 & 0xf);
            }};
        }

        use Inst::*;
        match inst {
            Add { d, a, b } => set_gpr!(d, gpr!(a).wrapping_add(gpr!(b))),
            Sub { d, a, b } => set_gpr!(d, gpr!(a).wrapping_sub(gpr!(b))),
            And { d, a, b } => set_gpr!(d, gpr!(a) & gpr!(b)),
            Or { d, a, b } => set_gpr!(d, gpr!(a) | gpr!(b)),
            Xor { d, a, b } => set_gpr!(d, gpr!(a) ^ gpr!(b)),
            Shl { d, a, b } => set_gpr!(d, gpr!(a) << (gpr!(b) & 63)),
            Shr { d, a, b } => set_gpr!(d, gpr!(a) >> (gpr!(b) & 63)),
            Mul { d, a, b } => set_gpr!(d, gpr!(a).wrapping_mul(gpr!(b))),
            Div { d, a, b } => {
                let divisor = gpr!(b);
                if divisor == 0 {
                    self.raise_exception(ptid, ExceptionKind::DivZero, pc);
                    return cost;
                }
                set_gpr!(d, gpr!(a) / divisor);
            }
            Addi { d, a, imm } => set_gpr!(d, gpr!(a).wrapping_add(imm as u64)),
            Movi { d, imm } => set_gpr!(d, imm as u64),
            Mov { d, a } => set_gpr!(d, gpr!(a)),
            Ld { d, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                match self.data_access(core, ptid, addr, 8, AccessKind::Read) {
                    Ok(lat) => {
                        cost += lat;
                        set_gpr!(d, self.peek_u64(addr));
                    }
                    Err(k) => {
                        self.raise_exception(ptid, k, addr);
                        return cost;
                    }
                }
            }
            LdA { d, addr } => match self.data_access(core, ptid, addr, 8, AccessKind::Read) {
                Ok(lat) => {
                    cost += lat;
                    set_gpr!(d, self.peek_u64(addr));
                }
                Err(k) => {
                    self.raise_exception(ptid, k, addr);
                    return cost;
                }
            },
            St { s, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                match self.data_access(core, ptid, addr, 8, AccessKind::Write) {
                    Ok(lat) => {
                        cost += lat;
                        let v = gpr!(s);
                        self.raw_write_u64(addr, v);
                        self.after_store(addr, 8, false);
                    }
                    Err(k) => {
                        self.raise_exception(ptid, k, addr);
                        return cost;
                    }
                }
            }
            StA { s, addr } => match self.data_access(core, ptid, addr, 8, AccessKind::Write) {
                Ok(lat) => {
                    cost += lat;
                    let v = gpr!(s);
                    self.raw_write_u64(addr, v);
                    self.after_store(addr, 8, false);
                }
                Err(k) => {
                    self.raise_exception(ptid, k, addr);
                    return cost;
                }
            },
            LdB { d, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                match self.data_access(core, ptid, addr, 1, AccessKind::Read) {
                    Ok(lat) => {
                        cost += lat;
                        set_gpr!(d, u64::from(self.mem[addr as usize]));
                    }
                    Err(k) => {
                        self.raise_exception(ptid, k, addr);
                        return cost;
                    }
                }
            }
            StB { s, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                match self.data_access(core, ptid, addr, 1, AccessKind::Write) {
                    Ok(lat) => {
                        cost += lat;
                        let v = (gpr!(s) & 0xff) as u8;
                        self.mem[addr as usize] = v;
                        self.after_store(addr, 1, false);
                    }
                    Err(k) => {
                        self.raise_exception(ptid, k, addr);
                        return cost;
                    }
                }
            }
            Jmp { addr } => next_pc = addr,
            Jr { a } => next_pc = gpr!(a),
            Jal { d, addr } => {
                set_gpr!(d, pc + 8);
                next_pc = addr;
            }
            Beq { a, b, addr } => {
                if gpr!(a) == gpr!(b) {
                    next_pc = addr;
                }
            }
            Bne { a, b, addr } => {
                if gpr!(a) != gpr!(b) {
                    next_pc = addr;
                }
            }
            Blt { a, b, addr } => {
                if (gpr!(a) as i64) < (gpr!(b) as i64) {
                    next_pc = addr;
                }
            }
            Bge { a, b, addr } => {
                if (gpr!(a) as i64) >= (gpr!(b) as i64) {
                    next_pc = addr;
                }
            }
            Halt => {
                self.thread_mut(ptid).arch.pc = next_pc;
                self.disable_thread(ptid, ThreadState::Halted);
                return cost;
            }
            Nop | Work { .. } | Fence => {}
            Syscall { num } => {
                match self.cfg.trap {
                    TrapMode::SameThread { syscall_cost, .. } => {
                        cost += syscall_cost;
                        if self.syscall_vector == 0 {
                            self.raise_exception(ptid, ExceptionKind::SyscallTrap, u64::from(num));
                            return cost;
                        }
                        let t = self.thread_mut(ptid);
                        t.arch.gprs[14] = pc + 8; // link
                        t.arch.gprs[11] = u64::from(num);
                        t.arch.mode = Mode::Supervisor;
                        next_pc = self.syscall_vector;
                        self.counters.inc("syscall.same_thread");
                    }
                    TrapMode::Descriptor => {
                        self.thread_mut(ptid).arch.pc = pc + 8;
                        self.raise_exception(ptid, ExceptionKind::SyscallTrap, u64::from(num));
                        self.counters.inc("syscall.descriptor");
                        return cost;
                    }
                }
            }
            VmCall { num } => match self.cfg.trap {
                TrapMode::SameThread { vmexit_cost, .. } => {
                    cost += vmexit_cost;
                    if self.vm_vector == 0 {
                        self.raise_exception(ptid, ExceptionKind::VmExit, u64::from(num));
                        return cost;
                    }
                    let t = self.thread_mut(ptid);
                    t.arch.gprs[14] = pc + 8;
                    t.arch.gprs[11] = u64::from(num);
                    t.arch.mode = Mode::Supervisor;
                    next_pc = self.vm_vector;
                    self.counters.inc("vmexit.same_thread");
                }
                TrapMode::Descriptor => {
                    self.thread_mut(ptid).arch.pc = pc + 8;
                    self.raise_exception(ptid, ExceptionKind::VmExit, u64::from(num));
                    self.counters.inc("vmexit.descriptor");
                    return cost;
                }
            },
            HCall { num } => {
                self.thread_mut(ptid).arch.pc = next_pc;
                if let Some(mut h) = self.hcalls.remove(&num) {
                    let tid = ThreadId { core, ptid };
                    h(self, tid);
                    self.hcalls.entry(num).or_insert(h);
                } else {
                    self.raise_exception(ptid, ExceptionKind::BadInstruction, u64::from(num));
                }
                // The handler may have blocked/redirected the thread; do
                // not overwrite pc below.
                return cost;
            }
            Monitor { a } => {
                let addr = gpr!(a);
                self.arm_monitor(ptid, addr, &mut cost);
            }
            MonitorA { addr } => {
                self.arm_monitor(ptid, addr, &mut cost);
            }
            MWait => {
                let t = self.thread_mut(ptid);
                if t.monitor_triggered {
                    // A write raced in between monitor and mwait: fall
                    // through without blocking (x86 semantics).
                    t.monitor_triggered = false;
                    t.arch.pc = next_pc;
                    let armed = t.monitor_armed;
                    t.monitor_armed = false;
                    if armed {
                        self.filter.disarm_all(WatchId(u64::from(ptid.0)));
                    }
                    self.counters.inc("mwait.fallthrough");
                    return cost;
                }
                if !t.monitor_armed {
                    // mwait with nothing armed would sleep forever; treat
                    // as nop (x86 behaves as such with invalid monitor).
                    self.counters.inc("mwait.unarmed");
                } else {
                    t.arch.pc = next_pc;
                    t.park_epoch = t.park_epoch.wrapping_add(1);
                    let epoch = t.park_epoch;
                    let watchdog = t.watchdog;
                    self.disable_thread(ptid, ThreadState::Waiting);
                    self.counters.inc("mwait.blocked");
                    if let Some(w) = watchdog {
                        let at = self.now + w;
                        // Watchdog: if this exact park outlives its
                        // deadline, the thread is wedged — disable it
                        // with a descriptor instead of letting it sleep
                        // forever. The epoch guard makes a timer from an
                        // earlier park harmless after a wake/re-park.
                        self.at(at, move |mach| {
                            let t = &mach.threads[ptid.0 as usize];
                            if t.state == ThreadState::Waiting && t.park_epoch == epoch {
                                mach.counters.inc("watchdog.fired");
                                mach.raise_exception(ptid, ExceptionKind::WatchdogExpired, at.0);
                            }
                        });
                    }
                    return cost;
                }
            }
            Start { .. } | StartI { .. } | Stop { .. } | StopI { .. } => {
                let (vtid, enable) = match inst {
                    Start { vt } => (Vtid(gpr!(vt) as u16), true),
                    StartI { vtid } => (Vtid(vtid), true),
                    Stop { vt } => (Vtid(gpr!(vt) as u16), false),
                    StopI { vtid } => (Vtid(vtid), false),
                    _ => unreachable!(),
                };
                match self.start_stop(core, ptid, vtid, enable) {
                    Ok(extra) => cost += extra,
                    Err(k) => {
                        self.raise_exception(ptid, k, u64::from(vtid.0));
                        return cost;
                    }
                }
            }
            RPull { vt, local, remote } => {
                let vtid = Vtid(gpr!(vt) as u16);
                match self.remote_reg(core, ptid, vtid, remote, None) {
                    Ok((value, extra)) => {
                        cost += extra;
                        set_gpr!(local, value);
                    }
                    Err(k) => {
                        self.raise_exception(ptid, k, u64::from(vtid.0));
                        return cost;
                    }
                }
            }
            RPush { vt, remote, local } => {
                let vtid = Vtid(gpr!(vt) as u16);
                let value = gpr!(local);
                match self.remote_reg(core, ptid, vtid, remote, Some(value)) {
                    Ok((_, extra)) => cost += extra,
                    Err(k) => {
                        self.raise_exception(ptid, k, u64::from(vtid.0));
                        return cost;
                    }
                }
            }
            InvTid { vt } => {
                let vtid = Vtid(gpr!(vt) as u16);
                let tdtr = self.threads[ptid.0 as usize].arch.tdtr;
                self.cores[core].tdt.invalidate(tdtr, vtid);
            }
            CsrR { d, csr } => {
                let v = self.threads[ptid.0 as usize].arch.read(RegSel::Ctrl(csr));
                set_gpr!(d, v);
            }
            CsrW { csr, a } => {
                let v = gpr!(a);
                let t = self.thread_mut(ptid);
                t.arch.write(RegSel::Ctrl(csr), v);
                t.touched |= 1 << 16;
            }
        }

        self.thread_mut(ptid).arch.pc = next_pc;
        cost
    }

    fn arm_monitor(&mut self, ptid: Ptid, addr: u64, cost: &mut Cycles) {
        if addr + 8 > self.cfg.mem_bytes {
            self.raise_exception(ptid, ExceptionKind::BadMemory, addr);
            return;
        }
        match self.filter.arm(WatchId(u64::from(ptid.0)), PAddr(addr), 8) {
            Ok(()) => {
                let t = self.thread_mut(ptid);
                t.monitor_armed = true;
                self.counters.inc("monitor.armed");
            }
            Err(_) => {
                // Filter exhausted (CAM design): deliver as a permission
                // fault so software can fall back.
                self.counters.inc("monitor.exhausted");
                self.raise_exception(ptid, ExceptionKind::PermissionDenied, addr);
                return;
            }
        }
        *cost += Cycles(1);
    }

    /// `start`/`stop` semantics with TDT translation and permissions.
    fn start_stop(
        &mut self,
        core: usize,
        caller: Ptid,
        vtid: Vtid,
        enable: bool,
    ) -> Result<Cycles, ExceptionKind> {
        let (entry, lookup_cost) = self.tdt_lookup(core, caller, vtid)?;
        let need = if enable { Perms::START } else { Perms::STOP };
        self.check_perm(caller, entry, need)?;
        let target = entry.ptid;
        if target.0 as usize >= self.threads.len() {
            return Err(ExceptionKind::PermissionDenied);
        }
        if enable {
            self.counters.inc("thread.starts");
            self.enable_thread(target);
        } else {
            self.counters.inc("thread.stops");
            self.disable_thread(target, ThreadState::Disabled);
        }
        Ok(lookup_cost + Cycles(1))
    }

    /// Shared `rpull`/`rpush` path. `write` = `Some(value)` for rpush.
    fn remote_reg(
        &mut self,
        core: usize,
        caller: Ptid,
        vtid: Vtid,
        remote: RegSel,
        write: Option<u64>,
    ) -> Result<(u64, Cycles), ExceptionKind> {
        let (entry, lookup_cost) = self.tdt_lookup(core, caller, vtid)?;
        let need = if remote.is_sensitive() {
            Perms::MOD_MOST
        } else {
            Perms::MOD_SOME
        };
        self.check_perm(caller, entry, need)?;
        let target = entry.ptid;
        if target.0 as usize >= self.threads.len() {
            return Err(ExceptionKind::PermissionDenied);
        }
        if !self.threads[target.0 as usize]
            .state
            .is_register_accessible()
        {
            return Err(ExceptionKind::ThreadNotStopped);
        }
        // Remote state may be parked in a lower tier: accessing it costs
        // a (partial) transfer, modeled as the tier base cost.
        let tcore = self.core_of(target);
        let tier = self.cores[tcore].store.tier_of(target);
        let tier_cost = match tier {
            Tier::Rf => Cycles::ZERO,
            Tier::L2 => self.cfg.store.l2_base,
            Tier::L3 => self.cfg.store.l3_base,
            Tier::Dram => self.cfg.store.dram_base,
        };
        let t = &mut self.threads[target.0 as usize];
        let value = match write {
            Some(v) => {
                t.arch.write(remote, v);
                v
            }
            None => t.arch.read(remote),
        };
        Ok((value, lookup_cost + tier_cost))
    }
}

impl core::fmt::Debug for Machine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Machine")
            .field("now", &self.now)
            .field("cores", &self.cfg.cores)
            .field("threads", &self.threads.len())
            .field("halted", &self.halted)
            .finish_non_exhaustive()
    }
}

//! The TDT permission model (§3.2, Table 1) and entry encoding.
//!
//! Each TDT entry maps a vtid to a ptid plus **4 permission bits** that
//! "allow the caller to start - stop - modify some registers - modify most
//! registers of the callee". Permissions are deliberately
//! *non-hierarchical*: B may control A, C may control B, with C having no
//! power over A — impossible in ring-based designs (§3.2).

use core::fmt;

use crate::tid::Ptid;

/// The 4-bit permission mask of a TDT entry.
///
/// Bit layout follows Table 1's `0bSSMM` reading order:
/// `0b1000` start, `0b0100` stop, `0b0010` modify-some (GPRs),
/// `0b0001` modify-most (pc and control registers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Perms(pub u8);

impl Perms {
    /// May `start` the callee.
    pub const START: Perms = Perms(0b1000);
    /// May `stop` the callee.
    pub const STOP: Perms = Perms(0b0100);
    /// May read/write the callee's general-purpose registers.
    pub const MOD_SOME: Perms = Perms(0b0010);
    /// May read/write the callee's pc and control registers.
    pub const MOD_MOST: Perms = Perms(0b0001);
    /// All four bits — Table 1's `0b1111`.
    pub const ALL: Perms = Perms(0b1111);
    /// No permissions.
    pub const NONE: Perms = Perms(0);

    /// Whether every bit of `other` is present in `self`.
    #[must_use]
    pub fn allows(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two masks.
    #[must_use]
    pub fn union(self, other: Perms) -> Perms {
        Perms(self.0 | other.0)
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0b{:04b}", self.0 & 0xf)
    }
}

/// A decoded Thread Descriptor Table entry.
///
/// In-memory encoding (one 64-bit word per vtid, at `TDTR + vtid * 8`):
///
/// ```text
/// 63       62..36   35..32    31..0
/// +-------+--------+--------+--------+
/// | valid | unused | perms  |  ptid  |
/// +-------+--------+--------+--------+
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TdtEntry {
    /// The physical thread this vtid maps to.
    pub ptid: Ptid,
    /// Caller permissions over that thread.
    pub perms: Perms,
    /// Whether the entry is valid (Table 1 shows invalid entries).
    pub valid: bool,
}

impl TdtEntry {
    /// An invalid entry (what vtid lookups of unmapped slots return).
    pub const INVALID: TdtEntry = TdtEntry {
        ptid: Ptid(0),
        perms: Perms::NONE,
        valid: false,
    };

    /// Creates a valid entry.
    #[must_use]
    pub fn new(ptid: Ptid, perms: Perms) -> TdtEntry {
        TdtEntry {
            ptid,
            perms,
            valid: true,
        }
    }

    /// Encodes to the in-memory word format.
    #[must_use]
    pub fn encode(self) -> u64 {
        let mut w = u64::from(self.ptid.0);
        w |= u64::from(self.perms.0 & 0xf) << 32;
        if self.valid {
            w |= 1 << 63;
        }
        w
    }

    /// Decodes from the in-memory word format.
    #[must_use]
    pub fn decode(word: u64) -> TdtEntry {
        TdtEntry {
            ptid: Ptid((word & 0xffff_ffff) as u32),
            perms: Perms(((word >> 32) & 0xf) as u8),
            valid: word >> 63 == 1,
        }
    }
}

/// The §3.2 alternative to the TDT: secret-key capabilities.
///
/// "Threads that perform thread management would need to provide the
/// target thread's secret key if they are not running in privileged
/// mode. Each thread would set its own key and share it with other
/// threads using existing software mechanisms."
///
/// This model captures the design's costs and properties for the F14
/// ablation: every check loads the target's key from memory (an L1 hit
/// in the common case) and compares, and *possession of the key grants
/// everything* — there is no per-operation granularity like the TDT's
/// 4 permission bits.
#[derive(Clone, Debug, Default)]
pub struct SecretKeyAuth {
    keys: std::collections::HashMap<u32, u64>,
}

impl SecretKeyAuth {
    /// Creates an empty key table.
    #[must_use]
    pub fn new() -> SecretKeyAuth {
        SecretKeyAuth::default()
    }

    /// A thread sets (or rotates) its own key.
    pub fn set_key(&mut self, ptid: Ptid, key: u64) {
        self.keys.insert(ptid.0, key);
    }

    /// Checks a presented key against the target's; returns
    /// `(authorized, check-cost-cycles)`. The cost is one L1-class load
    /// (~4 cycles) plus a compare.
    #[must_use]
    pub fn check(&self, target: Ptid, presented: u64) -> (bool, u64) {
        let ok = self.keys.get(&target.0).is_some_and(|&k| k == presented);
        (ok, 5)
    }

    /// Whether key possession is all-or-nothing (it is — the design has
    /// no per-operation bits, unlike [`Perms`]).
    #[must_use]
    pub fn all_or_nothing() -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secret_key_check_works() {
        let mut auth = SecretKeyAuth::new();
        auth.set_key(Ptid(3), 0xdead_beef);
        let (ok, cost) = auth.check(Ptid(3), 0xdead_beef);
        assert!(ok);
        assert_eq!(cost, 5);
        let (bad, _) = auth.check(Ptid(3), 0x1234);
        assert!(!bad);
        let (missing, _) = auth.check(Ptid(9), 0xdead_beef);
        assert!(!missing);
    }

    #[test]
    fn secret_key_has_no_granularity() {
        assert!(SecretKeyAuth::all_or_nothing());
    }

    #[test]
    fn allows_is_subset_check() {
        let p = Perms::START.union(Perms::STOP);
        assert!(p.allows(Perms::START));
        assert!(p.allows(Perms::STOP));
        assert!(!p.allows(Perms::MOD_SOME));
        assert!(Perms::ALL.allows(p));
        assert!(p.allows(Perms::NONE));
    }

    #[test]
    fn table1_encodings() {
        // Table 1 row: vtid 0x0 -> ptid 0x01, perms 0b1000 (start only).
        let row0 = TdtEntry::new(Ptid(0x01), Perms(0b1000));
        assert!(row0.perms.allows(Perms::START));
        assert!(!row0.perms.allows(Perms::STOP));
        // Row: vtid 0x2 -> ptid 0x10, perms 0b1111 (everything).
        let row2 = TdtEntry::new(Ptid(0x10), Perms(0b1111));
        assert!(row2.perms.allows(Perms::MOD_MOST));
        // Row: vtid 0x3 -> ptid 0x11, perms 0b1110 (no modify-most).
        let row3 = TdtEntry::new(Ptid(0x11), Perms(0b1110));
        assert!(row3.perms.allows(Perms::MOD_SOME));
        assert!(!row3.perms.allows(Perms::MOD_MOST));
    }

    #[test]
    fn encode_decode_roundtrip() {
        for ptid in [0u32, 1, 0x10, 0xffff, u32::MAX] {
            for perms in 0..=0xfu8 {
                for valid in [true, false] {
                    let e = TdtEntry {
                        ptid: Ptid(ptid),
                        perms: Perms(perms),
                        valid,
                    };
                    assert_eq!(TdtEntry::decode(e.encode()), e);
                }
            }
        }
    }

    #[test]
    fn invalid_entry_is_all_zero() {
        assert_eq!(TdtEntry::INVALID.encode() >> 63, 0);
        assert!(!TdtEntry::decode(0).valid);
    }

    #[test]
    fn display_matches_table_notation() {
        assert_eq!(Perms(0b1110).to_string(), "0b1110");
    }
}

//! The hardware TDT cache with explicit `invtid` invalidation.
//!
//! §3.1: "Any update to a ptid's TDT must be followed by an `invtid`.
//! Requiring explicit invalidation facilitates hardware caching and
//! virtualization." We model that caching faithfully: lookups that hit
//! the cache **do not see memory updates** until the entry is invalidated
//! — software that forgets `invtid` observes stale translations, and our
//! tests assert it.

use switchless_sim::hash::{fx_map_with_capacity, FxHashMap};
use switchless_sim::time::Cycles;

use crate::perm::TdtEntry;
use crate::tid::Vtid;

/// Per-core cache of TDT entries, keyed by (table base, vtid).
///
/// Keying by table base means threads with different `TDTR` values never
/// alias, and switching `TDTR` needs no flush — the same behaviour as a
/// PCID-tagged TLB.
#[derive(Clone, Debug)]
pub struct TdtCache {
    /// Fx-hashed: the "random" eviction victim in [`TdtCache::install`]
    /// is now the same on every run, instead of varying with SipHash's
    /// per-process seed.
    entries: FxHashMap<(u64, u16), TdtEntry>,
    capacity: usize,
    hit_cost: Cycles,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl TdtCache {
    /// Creates an empty cache holding up to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TdtCache {
        assert!(capacity > 0, "TDT cache capacity must be positive");
        TdtCache {
            entries: fx_map_with_capacity(capacity),
            capacity,
            hit_cost: Cycles(1),
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// Looks up a cached entry. `Some((entry, cost))` on hit.
    pub fn lookup(&mut self, tdtr: u64, vtid: Vtid) -> Option<(TdtEntry, Cycles)> {
        match self.entries.get(&(tdtr, vtid.0)) {
            Some(&e) => {
                self.hits += 1;
                Some((e, self.hit_cost))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs an entry fetched from memory (random replacement when
    /// full — TDT caches are tiny and replacement policy is not load-
    /// bearing for any experiment).
    pub fn install(&mut self, tdtr: u64, vtid: Vtid, entry: TdtEntry) {
        if self.entries.len() >= self.capacity {
            if let Some(&k) = self.entries.keys().next() {
                self.entries.remove(&k);
            }
        }
        self.entries.insert((tdtr, vtid.0), entry);
    }

    /// `invtid`: drops the cached entry for `(tdtr, vtid)`.
    pub fn invalidate(&mut self, tdtr: u64, vtid: Vtid) {
        self.invalidations += 1;
        self.entries.remove(&(tdtr, vtid.0));
    }

    /// Drops everything (machine reset).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Lifetime (hits, misses, invalidations).
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.invalidations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perm::Perms;
    use crate::tid::Ptid;

    #[test]
    fn miss_then_install_then_hit() {
        let mut c = TdtCache::new(8);
        let e = TdtEntry::new(Ptid(5), Perms::ALL);
        assert!(c.lookup(0x1000, Vtid(2)).is_none());
        c.install(0x1000, Vtid(2), e);
        let (got, cost) = c.lookup(0x1000, Vtid(2)).unwrap();
        assert_eq!(got, e);
        assert_eq!(cost, Cycles(1));
        assert_eq!(c.stats(), (1, 1, 0));
    }

    #[test]
    fn different_tdtr_does_not_alias() {
        let mut c = TdtCache::new(8);
        c.install(0x1000, Vtid(2), TdtEntry::new(Ptid(5), Perms::ALL));
        assert!(c.lookup(0x2000, Vtid(2)).is_none());
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut c = TdtCache::new(8);
        c.install(0x1000, Vtid(2), TdtEntry::new(Ptid(5), Perms::ALL));
        c.invalidate(0x1000, Vtid(2));
        assert!(c.lookup(0x1000, Vtid(2)).is_none());
        assert_eq!(c.stats(), (0, 1, 1));
    }

    #[test]
    fn stale_entry_persists_until_invtid() {
        // The load-bearing semantic: updating the "memory" copy without
        // invalidation leaves the stale cached entry visible.
        let mut c = TdtCache::new(8);
        let old = TdtEntry::new(Ptid(5), Perms::ALL);
        c.install(0x1000, Vtid(2), old);
        // Software rewrote memory to map vtid2 -> ptid9, but no invtid:
        let (got, _) = c.lookup(0x1000, Vtid(2)).unwrap();
        assert_eq!(got.ptid, Ptid(5), "stale mapping must still be served");
    }

    #[test]
    fn capacity_evicts_something() {
        let mut c = TdtCache::new(2);
        c.install(0, Vtid(0), TdtEntry::new(Ptid(0), Perms::NONE));
        c.install(0, Vtid(1), TdtEntry::new(Ptid(1), Perms::NONE));
        c.install(0, Vtid(2), TdtEntry::new(Ptid(2), Perms::NONE));
        let resident = (0..3).filter(|&i| c.lookup(0, Vtid(i)).is_some()).count();
        assert_eq!(resident, 2);
    }
}

//! The per-core hardware thread scheduler (§4 "Support for Thread
//! Scheduling").
//!
//! "A simple way ... is to execute runnable hardware threads in a
//! fine-grain, round-robin (RR) manner, which emulates processor sharing
//! (PS) and allows all runnable threads to make progress without the need
//! for interrupts. In addition to RR scheduling, we can introduce
//! hardware support for thread priorities."
//!
//! [`HwScheduler`] dispatches at instruction granularity: every time a
//! pipeline slot frees, it picks the next eligible runnable thread. Two
//! policies:
//!
//! * [`SchedPolicy::RoundRobin`] — one rotating queue: processor sharing.
//! * [`SchedPolicy::Priority`] — strict priority classes, RR within a
//!   class. Time-critical handler threads (e.g. §2's per-interrupt-type
//!   threads) are placed in high classes so they win the next slot the
//!   moment they wake.
//!
//! The scheduler also keeps per-thread cycle accounting — §4's "fine-grain
//! tracking of threads' resource consumption for cloud billing".

use std::collections::VecDeque;

use switchless_sim::time::Cycles;

use crate::tid::Ptid;

/// Dispatch policy for runnable hardware threads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Fine-grain round-robin over all runnable threads (processor
    /// sharing).
    #[default]
    RoundRobin,
    /// Strict priority classes (higher `prio` wins), round-robin within a
    /// class.
    Priority,
}

/// Number of priority classes supported by [`SchedPolicy::Priority`].
pub const PRIO_CLASSES: usize = 8;

/// Per-core hardware scheduler state.
#[derive(Clone, Debug)]
pub struct HwScheduler {
    policy: SchedPolicy,
    /// One queue per priority class; RoundRobin uses only class 0.
    queues: [VecDeque<Ptid>; PRIO_CLASSES],
    /// Which queue each enqueued thread is in (for removal), indexed by
    /// ptid; `None` when not enqueued. Grows to the highest ptid seen.
    enrolled: Vec<Option<u8>>,
    /// Number of `Some` entries in `enrolled`.
    enrolled_len: usize,
    /// Cycles consumed per thread (billing), indexed by ptid. A plain
    /// vector because this is bumped on every dispatched instruction.
    usage: Vec<Cycles>,
    dispatches: u64,
}

impl HwScheduler {
    /// Creates an empty scheduler.
    #[must_use]
    pub fn new(policy: SchedPolicy) -> HwScheduler {
        HwScheduler {
            policy,
            queues: Default::default(),
            enrolled: Vec::new(),
            enrolled_len: 0,
            usage: Vec::new(),
            dispatches: 0,
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    fn class_of(&self, prio: u8) -> u8 {
        match self.policy {
            SchedPolicy::RoundRobin => 0,
            SchedPolicy::Priority => prio.min(PRIO_CLASSES as u8 - 1),
        }
    }

    fn enrolled_slot(&mut self, ptid: Ptid) -> &mut Option<u8> {
        let i = ptid.0 as usize;
        if i >= self.enrolled.len() {
            self.enrolled.resize(i + 1, None);
        }
        &mut self.enrolled[i]
    }

    /// Adds a thread that became runnable. Idempotent.
    pub fn enqueue(&mut self, ptid: Ptid, prio: u8) {
        let class = self.class_of(prio);
        let slot = self.enrolled_slot(ptid);
        if slot.is_some() {
            return;
        }
        *slot = Some(class);
        self.enrolled_len += 1;
        self.queues[class as usize].push_back(ptid);
    }

    /// Removes a thread that blocked, was stopped, or halted.
    pub fn dequeue(&mut self, ptid: Ptid) {
        if let Some(class) = self.enrolled_slot(ptid).take() {
            self.enrolled_len -= 1;
            let q = &mut self.queues[class as usize];
            if let Some(pos) = q.iter().position(|&p| p == ptid) {
                q.remove(pos);
            }
        }
    }

    /// Whether any thread is enqueued.
    #[must_use]
    pub fn has_runnable(&self) -> bool {
        self.enrolled_len != 0
    }

    /// Whether `ptid` is currently enqueued (invariant checking: enrolment
    /// must match the thread's `Runnable` state exactly).
    #[must_use]
    pub fn is_enrolled(&self, ptid: Ptid) -> bool {
        self.enrolled
            .get(ptid.0 as usize)
            .is_some_and(Option::is_some)
    }

    /// Number of enqueued threads.
    #[must_use]
    pub fn runnable_len(&self) -> usize {
        self.enrolled_len
    }

    /// Picks the next thread to dispatch, skipping threads for which
    /// `busy` returns true (already executing on another slot).
    ///
    /// The picked thread is rotated to the back of its queue, giving
    /// instruction-granular round robin.
    pub fn pick(&mut self, mut busy: impl FnMut(Ptid) -> bool) -> Option<Ptid> {
        for class in (0..PRIO_CLASSES).rev() {
            let q = &mut self.queues[class];
            let len = q.len();
            for _ in 0..len {
                let p = q.pop_front().expect("queue length checked");
                q.push_back(p);
                if !busy(p) {
                    self.dispatches += 1;
                    return Some(p);
                }
            }
        }
        None
    }

    /// The single enqueued thread, if exactly one is enrolled — the
    /// "alone and unpreemptable" query behind burst execution: with one
    /// runnable thread, instruction-granular round robin (and strict
    /// priority) degenerate to "pick it again", so the machine may execute
    /// a run of its instructions inline without consulting the scheduler
    /// per instruction. Any second enrolment (a wake, a migration in)
    /// makes this return `None`, forcing single-step arbitration again.
    #[must_use]
    #[inline]
    pub fn sole_runnable(&self) -> Option<Ptid> {
        if self.enrolled_len != 1 {
            return None;
        }
        self.queues.iter().find_map(|q| q.front().copied())
    }

    /// Batched accounting for a burst executed inline after one `pick`:
    /// charges `cycles` to `ptid` and counts `picks` further dispatches,
    /// exactly as that many single-instruction pick/account round-trips
    /// would have (with one enrolled thread, each pick is the identity
    /// rotation).
    pub fn account_burst(&mut self, ptid: Ptid, cycles: Cycles, picks: u64) {
        self.dispatches += picks;
        self.account(ptid, cycles);
    }

    /// Iterates every enqueued (runnable) thread, in no particular order.
    pub fn iter_enrolled(&self) -> impl Iterator<Item = Ptid> + '_ {
        self.queues.iter().flatten().copied()
    }

    /// Minimum of `f` over every enqueued thread. Equivalent to
    /// `iter_enrolled().map(f).filter(Option::is_some).min()` but a plain
    /// loop: this runs on the all-slots-busy dispatch path, once per
    /// simulated instruction.
    pub fn min_over_enrolled<T: Ord + Copy>(
        &self,
        mut f: impl FnMut(Ptid) -> Option<T>,
    ) -> Option<T> {
        let mut best: Option<T> = None;
        for q in &self.queues {
            for &p in q {
                if let Some(v) = f(p) {
                    best = Some(match best {
                        Some(b) if b <= v => b,
                        _ => v,
                    });
                }
            }
        }
        best
    }

    /// Charges `cycles` of pipeline time to `ptid` (billing).
    pub fn account(&mut self, ptid: Ptid, cycles: Cycles) {
        let i = ptid.0 as usize;
        if i >= self.usage.len() {
            self.usage.resize(i + 1, Cycles::ZERO);
        }
        self.usage[i] += cycles;
    }

    /// Total cycles billed to `ptid`.
    #[must_use]
    pub fn usage_of(&self, ptid: Ptid) -> Cycles {
        self.usage
            .get(ptid.0 as usize)
            .copied()
            .unwrap_or(Cycles::ZERO)
    }

    /// Total dispatches performed.
    #[must_use]
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_fair() {
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        for i in 0..3 {
            s.enqueue(Ptid(i), 0);
        }
        let picks: Vec<u32> = (0..6).map(|_| s.pick(|_| false).unwrap().0).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn priority_wins_every_slot() {
        let mut s = HwScheduler::new(SchedPolicy::Priority);
        s.enqueue(Ptid(1), 0);
        s.enqueue(Ptid(2), 5);
        for _ in 0..4 {
            assert_eq!(s.pick(|_| false), Some(Ptid(2)));
        }
        s.dequeue(Ptid(2));
        assert_eq!(s.pick(|_| false), Some(Ptid(1)));
    }

    #[test]
    fn priority_ignored_under_round_robin() {
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        s.enqueue(Ptid(1), 0);
        s.enqueue(Ptid(2), 7);
        let picks: Vec<u32> = (0..4).map(|_| s.pick(|_| false).unwrap().0).collect();
        assert_eq!(picks, vec![1, 2, 1, 2]);
    }

    #[test]
    fn busy_threads_are_skipped() {
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        s.enqueue(Ptid(1), 0);
        s.enqueue(Ptid(2), 0);
        assert_eq!(s.pick(|p| p == Ptid(1)), Some(Ptid(2)));
        // All busy: nothing to dispatch.
        assert_eq!(s.pick(|_| true), None);
    }

    #[test]
    fn enqueue_is_idempotent() {
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        s.enqueue(Ptid(1), 0);
        s.enqueue(Ptid(1), 0);
        assert_eq!(s.runnable_len(), 1);
        s.dequeue(Ptid(1));
        assert!(!s.has_runnable());
        assert_eq!(s.pick(|_| false), None);
    }

    #[test]
    fn dequeue_missing_is_noop() {
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        s.dequeue(Ptid(9));
        assert!(!s.has_runnable());
    }

    #[test]
    fn rr_max_wait_is_bounded() {
        // Property the paper relies on: with RR every runnable thread is
        // served within runnable_len picks.
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        for i in 0..10 {
            s.enqueue(Ptid(i), 0);
        }
        let mut last_seen = switchless_sim::hash::FxHashMap::default();
        for step in 0u64..100 {
            let p = s.pick(|_| false).unwrap();
            if let Some(prev) = last_seen.insert(p, step) {
                assert!(step - prev <= 10, "{p} starved for {} picks", step - prev);
            }
        }
    }

    #[test]
    fn sole_runnable_requires_exactly_one() {
        let mut s = HwScheduler::new(SchedPolicy::Priority);
        assert_eq!(s.sole_runnable(), None);
        s.enqueue(Ptid(3), 5);
        assert_eq!(s.sole_runnable(), Some(Ptid(3)));
        s.enqueue(Ptid(4), 0);
        assert_eq!(s.sole_runnable(), None, "contention forces single-step");
        s.dequeue(Ptid(3));
        assert_eq!(s.sole_runnable(), Some(Ptid(4)));
        s.dequeue(Ptid(4));
        assert_eq!(s.sole_runnable(), None);
    }

    #[test]
    fn account_burst_matches_per_inst_accounting() {
        let mut a = HwScheduler::new(SchedPolicy::RoundRobin);
        let mut b = HwScheduler::new(SchedPolicy::RoundRobin);
        a.enqueue(Ptid(1), 0);
        b.enqueue(Ptid(1), 0);
        // Single-step: 4 pick/account round-trips of 3 cycles each.
        for _ in 0..4 {
            assert_eq!(a.pick(|_| false), Some(Ptid(1)));
            a.account(Ptid(1), Cycles(3));
        }
        // Burst: one pick, then 3 inline instructions batched.
        assert_eq!(b.pick(|_| false), Some(Ptid(1)));
        b.account(Ptid(1), Cycles(3));
        b.account_burst(Ptid(1), Cycles(9), 3);
        assert_eq!(a.usage_of(Ptid(1)), b.usage_of(Ptid(1)));
        assert_eq!(a.dispatches(), b.dispatches());
    }

    #[test]
    fn accounting_accumulates() {
        let mut s = HwScheduler::new(SchedPolicy::RoundRobin);
        s.account(Ptid(1), Cycles(5));
        s.account(Ptid(1), Cycles(7));
        assert_eq!(s.usage_of(Ptid(1)), Cycles(12));
        assert_eq!(s.usage_of(Ptid(2)), Cycles::ZERO);
    }

    #[test]
    fn high_class_prio_clamped() {
        let mut s = HwScheduler::new(SchedPolicy::Priority);
        s.enqueue(Ptid(1), 200); // clamps to top class
        s.enqueue(Ptid(2), 7);
        // Both in class 7: RR between them.
        let picks: Vec<u32> = (0..4).map(|_| s.pick(|_| false).unwrap().0).collect();
        assert_eq!(picks, vec![1, 2, 1, 2]);
    }
}

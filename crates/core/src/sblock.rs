//! Superblock translation: decode once, execute pre-costed regions
//! (DESIGN.md §10).
//!
//! A *superblock* is a straight-line run of [inert] instructions in a
//! loaded image, optionally closed by one pure-control-flow terminal,
//! pre-decoded once and summarised (total cycle cost, registers
//! written, the exact L1 fetch-stream footprint). The burst loop in
//! `Machine::dispatch` executes a formed superblock as **one unit**
//! whenever its whole span provably fits inside the current burst; the
//! summary makes every entry check O(1) instead of O(instructions).
//!
//! Formation is driven by observed execution heat, not static
//! configuration: an entry pc must be dispatched [`SB_HOT`] times from
//! the burst loop before its region is walked and formed, so cold code
//! pays one table read and nothing else. Regions end at the first
//! instruction that could raise, trap, or otherwise schedule/observe
//! anything ([`Inst::is_inert`] is the whitelist, extended by
//! local-effect loads/stores — [`Inst::is_local_mem`] — when
//! memory-inclusive formation is enabled); an unconditional jump back
//! to the region's own entry — the shape of every spin/compute loop —
//! is unrolled up to [`SB_MAX_LEN`] instructions, since its interior
//! control flow is statically known.
//!
//! [inert]: Inst::is_inert

use switchless_isa::inst::Inst;
use switchless_mem::addr::PAddr;
use switchless_sim::time::Cycles;

/// Hard cap on instructions in one superblock, after unrolling. Kept
/// well under `MAX_BURST` so a block is never the reason a burst ends.
pub(crate) const SB_MAX_LEN: usize = 256;

/// Regions shorter than this (after unrolling) are not worth the entry
/// checks; their entry slot is marked dead instead.
pub(crate) const SB_MIN_LEN: usize = 4;

/// Executions of an entry pc observed by the burst loop before its
/// region is formed — the adaptive, heat-driven knob.
pub(crate) const SB_HOT: u32 = 16;

/// Per-slot state word in `CodeRange::sb`: a formed region was walked
/// and found not worth caching (too short, or opens with a non-inert
/// instruction).
pub(crate) const SB_DEAD: u32 = u32::MAX;

/// Per-slot state word flag: low bits index `CodeRange::blocks`.
/// Values below the flag are heat counts.
pub(crate) const SB_FORMED: u32 = 0x8000_0000;

/// A formed superblock: the pre-decoded execution sequence plus the
/// summary that makes whole-region execution checks O(1).
pub(crate) struct Superblock {
    /// Entry word slot in the owning `CodeRange`.
    pub(crate) start_slot: usize,
    /// Static footprint in word slots (the un-unrolled region): any
    /// code mutation overlapping `[start_slot, start_slot + len_slots)`
    /// kills the block.
    pub(crate) len_slots: usize,
    /// The full (possibly unrolled) instruction sequence; every element
    /// executes unconditionally.
    pub(crate) insts: Vec<Inst>,
    /// Total cycle cost: sum of base costs. The fetch stream must be
    /// fully L1-resident to execute as a block, and L1-hit fetches cost
    /// zero (pipelined frontend), so base costs are the whole story.
    pub(crate) cost: Cycles,
    /// Base cost of the final instruction — the serial engine leaves
    /// `now` at the *dispatch* time of the last executed instruction,
    /// i.e. block-end minus this.
    pub(crate) last_cost: Cycles,
    /// Union of `Thread::touched` bits the sequence writes.
    pub(crate) touched: u32,
    /// Number of local-effect memory instructions in `insts` (each
    /// performs exactly one data access). Zero for pure register blocks,
    /// which execute through `exec_regs`; memory-inclusive blocks go
    /// through the engine-specific batched probe instead.
    pub(crate) mem_ops: u64,
    /// Whether the final instruction is a memory access — its dynamic
    /// dispatch cost is `last_cost` plus one L1 hit, which the engines
    /// need to place `now` at the last instruction's dispatch time.
    pub(crate) last_is_mem: bool,
    /// Distinct L1 lines of the fetch stream, each with the 1-based
    /// index of its last access (see `Cache::access_run`). For
    /// memory-inclusive blocks the indices are positions in the *merged*
    /// fetch+data access stream (each instruction fetches, then memory
    /// instructions immediately perform their one data access), so the
    /// executing engine can splice dynamically-resolved data lines into
    /// the same numbering.
    pub(crate) lines: Vec<(PAddr, u64)>,
    /// Cleared when a code mutation kills the block; the `blocks` slot
    /// is recycled through `CodeRange::sb_free`.
    pub(crate) live: bool,
}

/// Walks the decoded image from `slot` and forms a superblock, or
/// returns `None` when the region is not worth caching. `base` is the
/// image base address; `insts` its decoded words.
///
/// With `allow_mem` set, local-effect loads and stores
/// ([`Inst::is_local_mem`]) are admitted alongside inert instructions —
/// the memory-inclusive regions of DESIGN.md §10. Their effective
/// addresses are data-dependent, so the block records only the *count*
/// of data accesses; the executing engine resolves the data footprint at
/// run time and bails to single-step on any non-local effect. With
/// `allow_mem` clear (SWITCHLESS_MEM_SUPERBLOCKS=0) formation is
/// bit-identical to the pure-register engine: a memory instruction ends
/// the region.
pub(crate) fn form(
    base: u64,
    insts: &[Option<Inst>],
    slot: usize,
    allow_mem: bool,
) -> Option<Superblock> {
    let entry_pc = base + 8 * slot as u64;
    let mut seq: Vec<Inst> = Vec::new();
    let mut terminal: Option<Inst> = None;
    for w in &insts[slot..] {
        if seq.len() == SB_MAX_LEN {
            break;
        }
        // A non-decoding word ends the region (the slow path re-raises
        // the precise exception; it can never be inside a block).
        let Some(i) = *w else { break };
        if i.is_inert() || (allow_mem && i.is_local_mem()) {
            seq.push(i);
        } else if i.is_region_terminal() {
            terminal = Some(i);
            seq.push(i);
            break;
        } else {
            break;
        }
    }
    let len_slots = seq.len();
    if len_slots == 0 {
        return None;
    }
    // Unroll an unconditional self-loop: with the jump target equal to
    // the entry pc, the whole unrolled sequence executes
    // unconditionally, so it is still a single straight-line unit.
    if matches!(terminal, Some(Inst::Jmp { addr }) if addr == entry_pc) {
        let copies = SB_MAX_LEN / len_slots;
        let body = seq.clone();
        for _ in 1..copies {
            seq.extend_from_slice(&body);
        }
    }
    if seq.len() < SB_MIN_LEN {
        return None;
    }

    let mut cost = 0u64;
    let mut touched = 0u32;
    for i in &seq {
        cost += i.base_cost();
        if let Some(d) = i.dest_reg() {
            touched |= 1 << (d.0 & 0xf);
        }
    }
    let last = seq.last().expect("checked non-empty");
    let last_cost = Cycles(last.base_cost());
    let last_is_mem = last.is_local_mem();
    let mem_ops = seq.iter().filter(|i| i.is_local_mem()).count() as u64;

    // Fetch-stream footprint: walk the pc sequence (interior control
    // flow is only ever the unrolled self-jump, whose target is static)
    // and record each distinct line with its last-access index. Indices
    // are positions in the merged fetch+data stream: each instruction's
    // fetch access is followed immediately by its data access when it
    // has one, so a memory instruction advances the position by two.
    // For pure blocks this reduces to plain instruction numbering.
    let mut lines: Vec<(PAddr, u64)> = Vec::new();
    let mut pc = entry_pc;
    let mut pos = 0u64;
    for i in &seq {
        pos += 1;
        let line = PAddr(pc).line();
        match lines.iter_mut().find(|(l, _)| *l == line) {
            Some((_, at)) => *at = pos,
            None => lines.push((line, pos)),
        }
        if i.is_local_mem() {
            pos += 1;
        }
        pc = match i {
            Inst::Jmp { addr } => *addr,
            _ => pc + 8,
        };
    }

    Some(Superblock {
        start_slot: slot,
        len_slots,
        insts: seq,
        cost: Cycles(cost),
        last_cost,
        touched,
        mem_ops,
        last_is_mem,
        lines,
        live: true,
    })
}

/// Executes a superblock's instruction sequence over one thread's
/// registers, mirroring `Machine::exec_inst` for the inert + terminal
/// subset exactly; returns the exit pc. The caller folds the block's
/// pre-computed `touched` mask into the thread.
#[inline]
pub(crate) fn exec_regs(insts: &[Inst], gprs: &mut [u64; 16], entry_pc: u64) -> u64 {
    let mut pc = entry_pc;
    macro_rules! gpr {
        ($r:expr) => {
            gprs[$r.0 as usize & 0xf]
        };
    }
    macro_rules! set_gpr {
        ($r:expr, $v:expr) => {{
            let v = $v;
            gprs[$r.0 as usize & 0xf] = v;
        }};
    }
    for i in insts {
        let mut next = pc + 8;
        use Inst::*;
        match *i {
            Add { d, a, b } => set_gpr!(d, gpr!(a).wrapping_add(gpr!(b))),
            Sub { d, a, b } => set_gpr!(d, gpr!(a).wrapping_sub(gpr!(b))),
            And { d, a, b } => set_gpr!(d, gpr!(a) & gpr!(b)),
            Or { d, a, b } => set_gpr!(d, gpr!(a) | gpr!(b)),
            Xor { d, a, b } => set_gpr!(d, gpr!(a) ^ gpr!(b)),
            Shl { d, a, b } => set_gpr!(d, gpr!(a) << (gpr!(b) & 63)),
            Shr { d, a, b } => set_gpr!(d, gpr!(a) >> (gpr!(b) & 63)),
            Mul { d, a, b } => set_gpr!(d, gpr!(a).wrapping_mul(gpr!(b))),
            Addi { d, a, imm } => set_gpr!(d, gpr!(a).wrapping_add(imm as u64)),
            Movi { d, imm } => set_gpr!(d, imm as u64),
            Mov { d, a } => set_gpr!(d, gpr!(a)),
            Nop | Work { .. } | Fence => {}
            Jmp { addr } => next = addr,
            Jr { a } => next = gpr!(a),
            Jal { d, addr } => {
                set_gpr!(d, pc + 8);
                next = addr;
            }
            Beq { a, b, addr } => {
                if gpr!(a) == gpr!(b) {
                    next = addr;
                }
            }
            Bne { a, b, addr } => {
                if gpr!(a) != gpr!(b) {
                    next = addr;
                }
            }
            Blt { a, b, addr } => {
                if (gpr!(a) as i64) < (gpr!(b) as i64) {
                    next = addr;
                }
            }
            Bge { a, b, addr } => {
                if (gpr!(a) as i64) >= (gpr!(b) as i64) {
                    next = addr;
                }
            }
            _ => unreachable!("non-inert instruction inside a superblock"),
        }
        pc = next;
    }
    pc
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_isa::asm::assemble;

    fn decoded(src: &str) -> (u64, Vec<Option<Inst>>) {
        let p = assemble(src).expect("test program");
        (
            p.base,
            p.words.iter().map(|&w| Inst::decode(w).ok()).collect(),
        )
    }

    #[test]
    fn region_stops_before_memory_and_trap_ops() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             entry: addi r1, r1, 1\n\
             addi r2, r2, 2\n\
             xor r3, r1, r2\n\
             mul r4, r3, r3\n\
             st r1, r5, 0\n\
             halt\n",
        );
        let b = form(base, &insts, 0, false).expect("four inert insts form");
        assert_eq!(b.len_slots, 4);
        assert_eq!(b.insts.len(), 4);
        // 1 + 1 + 1 + 3 (mul).
        assert_eq!(b.cost, Cycles(6));
        assert_eq!(b.last_cost, Cycles(3));
        assert_eq!(b.touched, 0b11110);
        // Starting *at* the store: not a region.
        assert!(form(base, &insts, 4, false).is_none());
    }

    #[test]
    fn too_short_regions_are_rejected() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             entry: addi r1, r1, 1\n\
             addi r2, r2, 2\n\
             halt\n",
        );
        assert!(form(base, &insts, 0, false).is_none(), "2 < SB_MIN_LEN");
    }

    #[test]
    fn self_loop_unrolls_to_the_cap() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             loop: addi r1, r1, 1\n\
             addi r2, r1, 3\n\
             xor r3, r2, r1\n\
             jmp loop\n",
        );
        let b = form(base, &insts, 0, false).expect("self-loop forms");
        assert_eq!(b.len_slots, 4);
        assert_eq!(b.insts.len(), 256, "unrolled to SB_MAX_LEN / 4 copies");
        assert_eq!(b.cost, Cycles(256));
        // All four instructions live on one 64-byte line; its last
        // access is the final unrolled instruction.
        assert_eq!(b.lines.as_slice(), &[(PAddr(0x1000), 256)]);
        // Executing the block loops back to the entry.
        let mut gprs = [0u64; 16];
        let exit = exec_regs(&b.insts, &mut gprs, base);
        assert_eq!(exit, base);
        assert_eq!(gprs[1], 64, "64 unrolled iterations of addi r1");
    }

    #[test]
    fn non_self_jump_is_terminal_not_unrolled() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             entry: addi r1, r1, 1\n\
             addi r2, r2, 1\n\
             addi r3, r3, 1\n\
             jmp entry2\n\
             entry2: halt\n",
        );
        let b = form(base, &insts, 0, false).expect("jmp-closed region forms");
        assert_eq!(b.insts.len(), 4);
        let mut gprs = [0u64; 16];
        let exit = exec_regs(&b.insts, &mut gprs, base);
        assert_eq!(exit, base + 32);
    }

    #[test]
    fn branch_terminal_follows_register_state() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             entry: addi r1, r1, 1\n\
             addi r2, r2, 0\n\
             nop\n\
             bne r1, r4, entry\n\
             halt\n",
        );
        let b = form(base, &insts, 0, false).expect("branch-closed region forms");
        assert_eq!(b.insts.len(), 4);
        let mut gprs = [0u64; 16];
        // r1 becomes 1 != r4 (0): branch taken, back to entry.
        assert_eq!(exec_regs(&b.insts, &mut gprs, base), base);
        gprs[4] = 2;
        // r1 becomes 2 == r4: fall through.
        assert_eq!(exec_regs(&b.insts, &mut gprs, base), base + 32);
    }

    #[test]
    fn fetch_lines_track_multi_line_regions() {
        // 9 inert instructions starting at a line boundary span two
        // 64-byte lines (8 insts per line).
        let mut src = String::from(".base 0x1000\nentry: ");
        for _ in 0..9 {
            src.push_str("addi r1, r1, 1\n");
        }
        src.push_str("halt\n");
        let (base, insts) = decoded(&src);
        let b = form(base, &insts, 0, false).expect("9 inert insts form");
        assert_eq!(
            b.lines.as_slice(),
            &[(PAddr(0x1000), 8), (PAddr(0x1040), 9)]
        );
    }

    #[test]
    fn allow_mem_admits_loads_and_stores() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             entry: addi r1, r1, 1\n\
             ld r2, r5, 0\n\
             add r2, r2, r1\n\
             st r2, r5, 0\n\
             halt\n",
        );
        // Without allow_mem the load ends the region at length 1 < MIN.
        assert!(form(base, &insts, 0, false).is_none());
        let b = form(base, &insts, 0, true).expect("mem region forms");
        assert_eq!(b.len_slots, 4);
        assert_eq!(b.mem_ops, 2);
        assert!(b.last_is_mem, "final instruction is the store");
        assert_eq!(b.cost, Cycles(4), "base costs only; latency is dynamic");
        assert_eq!(b.last_cost, Cycles(1));
        // touched: r1 (addi), r2 (ld, add). Stores touch nothing.
        assert_eq!(b.touched, 0b110);
        // Merged-stream numbering: fetches at 1, 2, 4, 5 (the load's
        // data access occupies 3, the store's 6); one fetch line.
        assert_eq!(b.lines.as_slice(), &[(PAddr(0x1000), 5)]);
    }

    #[test]
    fn mem_self_loop_unrolls_with_merged_positions() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             loop: st r1, r5, 0\n\
             st r1, r5, 8\n\
             jmp loop\n",
        );
        let b = form(base, &insts, 0, true).expect("store loop forms");
        assert_eq!(b.len_slots, 3);
        assert_eq!(b.insts.len(), 255, "85 copies of 3");
        assert_eq!(b.mem_ops, 170);
        assert!(!b.last_is_mem, "final instruction is the jump");
        // Merged stream: 255 fetches + 170 data accesses = 425
        // positions; the last access of the single fetch line is the
        // final jump's fetch at position 425.
        assert_eq!(b.lines.as_slice(), &[(PAddr(0x1000), 425)]);
    }

    #[test]
    fn pure_blocks_are_identical_with_and_without_allow_mem() {
        let (base, insts) = decoded(
            ".base 0x1000\n\
             loop: addi r1, r1, 1\n\
             addi r2, r1, 3\n\
             xor r3, r2, r1\n\
             jmp loop\n",
        );
        let a = form(base, &insts, 0, false).expect("forms");
        let b = form(base, &insts, 0, true).expect("forms");
        assert_eq!(a.insts.len(), b.insts.len());
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.lines, b.lines);
        assert_eq!(b.mem_ops, 0);
        assert!(!b.last_is_mem);
    }
}

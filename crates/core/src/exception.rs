//! Exception descriptors (§3, §3.2).
//!
//! "Events such as page faults that trigger exceptions in today's CPUs
//! simply write an exception descriptor to memory and disable the current
//! ptid. A different ptid monitors the exception descriptor to detect and
//! handle the exception."
//!
//! A descriptor is four 64-bit words written at the faulting thread's
//! exception-descriptor pointer (EDP control register):
//!
//! ```text
//! EDP + 0:  kind        (see ExceptionKind discriminants)
//! EDP + 8:  faulting ptid
//! EDP + 16: faulting pc
//! EDP + 24: info        (faulting address, call number, ...)
//! ```
//!
//! Because the descriptor write is an ordinary store, it passes through
//! the generalized monitor filter, which is exactly how handler threads
//! wake without interrupts. A fault in a thread whose EDP is zero has no
//! handler; per §3.2 that "indicates a serious kernel bug akin to a
//! triple-fault" and halts the machine.

use core::fmt;

/// Size in bytes of an exception descriptor.
pub const DESCRIPTOR_BYTES: u64 = 32;

/// Why a thread was disabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExceptionKind {
    /// Integer division by zero (§3.2's running example).
    DivZero,
    /// Load/store/fetch outside mapped memory — the page-fault analog.
    BadMemory,
    /// Fetched word did not decode to an instruction.
    BadInstruction,
    /// Privileged instruction executed from a user-mode ptid; a
    /// supervisor ptid can emulate it for the guest (§3.2).
    PrivilegedOp,
    /// `start`/`stop`/`rpull`/`rpush` attempted without the required TDT
    /// permission bit, or through an invalid vtid.
    PermissionDenied,
    /// `rpull`/`rpush` on a thread that is not disabled.
    ThreadNotStopped,
    /// `vmcall` from a guest: a VM-exit, delivered as a descriptor to the
    /// hypervisor thread instead of a mode switch (§2 "No VM-Exits").
    VmExit,
    /// `syscall` delivered as a descriptor (exception-less system calls).
    SyscallTrap,
    /// A parked (`mwait`) thread exceeded its per-thread watchdog
    /// deadline without being woken — the wedged-thread analog. The
    /// supervisor decides whether to restart or quarantine it.
    WatchdogExpired,
}

impl ExceptionKind {
    /// Stable numeric code used in the descriptor word.
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ExceptionKind::DivZero => 1,
            ExceptionKind::BadMemory => 2,
            ExceptionKind::BadInstruction => 3,
            ExceptionKind::PrivilegedOp => 4,
            ExceptionKind::PermissionDenied => 5,
            ExceptionKind::ThreadNotStopped => 6,
            ExceptionKind::VmExit => 7,
            ExceptionKind::SyscallTrap => 8,
            ExceptionKind::WatchdogExpired => 9,
        }
    }

    /// Decodes a descriptor word back to a kind.
    #[must_use]
    pub fn from_code(code: u64) -> Option<ExceptionKind> {
        Some(match code {
            1 => ExceptionKind::DivZero,
            2 => ExceptionKind::BadMemory,
            3 => ExceptionKind::BadInstruction,
            4 => ExceptionKind::PrivilegedOp,
            5 => ExceptionKind::PermissionDenied,
            6 => ExceptionKind::ThreadNotStopped,
            7 => ExceptionKind::VmExit,
            8 => ExceptionKind::SyscallTrap,
            9 => ExceptionKind::WatchdogExpired,
            _ => return None,
        })
    }

    /// Counter name used by the machine's statistics.
    #[must_use]
    pub fn counter_name(self) -> &'static str {
        match self {
            ExceptionKind::DivZero => "exception.div_zero",
            ExceptionKind::BadMemory => "exception.bad_memory",
            ExceptionKind::BadInstruction => "exception.bad_instruction",
            ExceptionKind::PrivilegedOp => "exception.privileged_op",
            ExceptionKind::PermissionDenied => "exception.permission_denied",
            ExceptionKind::ThreadNotStopped => "exception.thread_not_stopped",
            ExceptionKind::VmExit => "exception.vm_exit",
            ExceptionKind::SyscallTrap => "exception.syscall_trap",
            ExceptionKind::WatchdogExpired => "exception.watchdog_expired",
        }
    }
}

impl fmt::Display for ExceptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", &self.counter_name()["exception.".len()..])
    }
}

/// A decoded exception descriptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Descriptor {
    /// Why the thread was disabled.
    pub kind: ExceptionKind,
    /// The faulting physical thread id (raw).
    pub ptid: u64,
    /// Program counter of the faulting instruction.
    pub pc: u64,
    /// Kind-specific detail (faulting address, call number, ...).
    pub info: u64,
}

impl Descriptor {
    /// Encodes to the four descriptor words.
    #[must_use]
    pub fn encode(self) -> [u64; 4] {
        [self.kind.code(), self.ptid, self.pc, self.info]
    }

    /// Decodes from four descriptor words; `None` if the kind is invalid.
    #[must_use]
    pub fn decode(words: [u64; 4]) -> Option<Descriptor> {
        Some(Descriptor {
            kind: ExceptionKind::from_code(words[0])?,
            ptid: words[1],
            pc: words[2],
            info: words[3],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip() {
        for k in [
            ExceptionKind::DivZero,
            ExceptionKind::BadMemory,
            ExceptionKind::BadInstruction,
            ExceptionKind::PrivilegedOp,
            ExceptionKind::PermissionDenied,
            ExceptionKind::ThreadNotStopped,
            ExceptionKind::VmExit,
            ExceptionKind::SyscallTrap,
            ExceptionKind::WatchdogExpired,
        ] {
            assert_eq!(ExceptionKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ExceptionKind::from_code(0), None);
        assert_eq!(ExceptionKind::from_code(99), None);
    }

    #[test]
    fn descriptor_roundtrip() {
        let d = Descriptor {
            kind: ExceptionKind::VmExit,
            ptid: 42,
            pc: 0x1_0008,
            info: 7,
        };
        assert_eq!(Descriptor::decode(d.encode()), Some(d));
    }

    #[test]
    fn bad_kind_decodes_to_none() {
        assert_eq!(Descriptor::decode([0, 0, 0, 0]), None);
    }

    #[test]
    fn display_is_short_name() {
        assert_eq!(ExceptionKind::DivZero.to_string(), "div_zero");
        assert_eq!(ExceptionKind::VmExit.to_string(), "vm_exit");
    }
}

//! The paper's primary contribution: **software-controlled hardware
//! threads** that eliminate (most) context switches.
//!
//! This crate implements §3 of *"A Case Against (Most) Context Switches"*
//! (HotOS '21) as an executable machine model:
//!
//! * A core supports a large, fixed number of **physical hardware
//!   threads** named by [`tid::Ptid`]s; instructions name **virtual thread
//!   ids** ([`tid::Vtid`]) translated through a per-thread **Thread
//!   Descriptor Table** ([`tdt`]) with explicit [`invtid`]-style
//!   invalidation and the 4-bit permission model of Table 1 ([`perm`]).
//! * Each ptid is [`tid::ThreadState::Runnable`], `Waiting` (parked in
//!   `mwait`), or `Disabled` — the **only** state change hardware performs
//!   on system calls, exceptions and external events is blocking and
//!   unblocking hardware threads.
//! * Exceptions do not vector into handlers: they **write an exception
//!   descriptor to memory and disable the faulting ptid** ([`exception`]);
//!   a handler thread `monitor`s the descriptor address. Faulting with no
//!   descriptor pointer installed halts the machine (the triple-fault
//!   analog of §3.2).
//! * Thread state lives in a **storage hierarchy** ([`store`]): a fast
//!   register-file tier (~20-cycle starts), L2/L3 fractions (10–50-cycle
//!   bulk transfers over 32-byte links) and DRAM spill, with the §4
//!   optimizations (dirty-register tracking, criticality placement,
//!   wake-prefetch) as switchable policies.
//! * Runnable ptids are multiplexed onto a small number of SMT pipeline
//!   slots by a **hardware scheduler** ([`sched`]) — fine-grain
//!   round-robin (processor sharing) or strict priorities.
//! * [`machine::Machine`] ties it together and executes real programs
//!   written in the `switchless-isa` instruction set, event-driven, with
//!   memory traffic charged through the `switchless-mem` hierarchy and
//!   every store filtered through the generalized monitor.
//!
//! [`invtid`]: switchless_isa::inst::Inst::InvTid

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exception;
pub mod machine;
pub mod perm;
mod sblock;
pub mod sched;
pub mod shard;
pub mod store;
pub mod tdt;
pub mod tid;

pub use machine::{Machine, MachineConfig, ShardStats, ThreadId};
pub use perm::{Perms, TdtEntry};
pub use tid::{Ptid, ThreadState, Vtid};

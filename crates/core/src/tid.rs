//! Thread identifiers and states (§3).

use core::fmt;

/// A **physical** hardware-thread id, globally unique across the machine.
///
/// The paper names per-core physical threads with ptids; we number them
/// globally and record each thread's home core, which is equivalent and
/// simplifies cross-core `start`/`stop`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ptid(pub u32);

impl fmt::Display for Ptid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ptid{}", self.0)
    }
}

/// A **virtual** thread id: what instruction operands name; translated to
/// a [`Ptid`] through the caller's Thread Descriptor Table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vtid(pub u16);

impl fmt::Display for Vtid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vtid{}", self.0)
    }
}

/// Execution state of a hardware thread (§3: "a given ptid can be in one
/// of three states: runnable, waiting, or disabled").
///
/// `Halted` is a simulator refinement of `Disabled`: a thread that
/// executed `halt` and is finished for good, so tests can tell orderly
/// completion from being stopped.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum ThreadState {
    /// May be scheduled onto a pipeline slot.
    Runnable,
    /// Parked in `mwait`, waiting for a monitored write.
    Waiting,
    /// Not executing until another thread `start`s it.
    #[default]
    Disabled,
    /// Executed `halt`; never scheduled again.
    Halted,
}

impl ThreadState {
    /// Whether the scheduler may pick this thread.
    #[must_use]
    pub fn is_runnable(self) -> bool {
        self == ThreadState::Runnable
    }

    /// Whether `rpull`/`rpush` may access this thread's registers.
    ///
    /// §3.1 specifies register access to *disabled* ptids; `Waiting` and
    /// `Halted` threads are also quiescent, but the conservative reading
    /// (and our implementation) permits only `Disabled` and `Halted`.
    #[must_use]
    pub fn is_register_accessible(self) -> bool {
        matches!(self, ThreadState::Disabled | ThreadState::Halted)
    }
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreadState::Runnable => "runnable",
            ThreadState::Waiting => "waiting",
            ThreadState::Disabled => "disabled",
            ThreadState::Halted => "halted",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_state_is_disabled() {
        assert_eq!(ThreadState::default(), ThreadState::Disabled);
    }

    #[test]
    fn runnable_classification() {
        assert!(ThreadState::Runnable.is_runnable());
        assert!(!ThreadState::Waiting.is_runnable());
        assert!(!ThreadState::Disabled.is_runnable());
        assert!(!ThreadState::Halted.is_runnable());
    }

    #[test]
    fn register_access_classification() {
        assert!(ThreadState::Disabled.is_register_accessible());
        assert!(ThreadState::Halted.is_register_accessible());
        assert!(!ThreadState::Runnable.is_register_accessible());
        assert!(!ThreadState::Waiting.is_register_accessible());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ptid(3).to_string(), "ptid3");
        assert_eq!(Vtid(7).to_string(), "vtid7");
        assert_eq!(ThreadState::Waiting.to_string(), "waiting");
    }
}

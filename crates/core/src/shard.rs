//! Conservative core-sharded parallel engine (see DESIGN.md §9).
//!
//! [`Machine::run_until`] with `machine_jobs > 1` executes *epochs*: the
//! host stages every event strictly below a cross-core event horizon `B`,
//! hands each core's staged events to a worker running against **clones**
//! of that core's private state (scheduler, state store, L1/L2, TLB,
//! prefetch capture, threads enrolled there, and its registered memory
//! domain), and commits all of it back at an epoch barrier.
//!
//! The engine is speculative in implementation but conservative in
//! effect: a worker that would touch anything outside its shard — another
//! core's memory domain, the monitor filter, an hcall, an exception, the
//! shared L3, an MMIO doorbell — abandons the epoch (`Bail`), the clones
//! are dropped, the staged events are restored under their original
//! `(time, seq)` keys, and the window replays on the serial engine. A
//! committed epoch is **bit-identical** to the serial engine by
//! construction:
//!
//! * Workers replay the serial order *restricted to their core*: staged
//!   events in staging order (= relative seq order) and worker-created
//!   events in creation order, merged locally by `(time, key)` exactly as
//!   the global queue would order them (staged keys precede fresh keys,
//!   matching queue seq assignment).
//! * Cross-record effects — wake-latency samples, `last_wake`, `now`
//!   evolution, and queue seqs for surviving events — are reconstructed
//!   by [`switchless_sim::shard::merge_epoch`], a k-way merge on virtual
//!   sequence numbers that provably equals the serial pop order. The two
//!   cross-core ties the vseq model cannot order faithfully (equal-time
//!   survivors and equal-time wake records from different cores) are
//!   detected at commit and turned into a bail.
//! * The serial engine's burst splits (foreign-event horizon checks,
//!   `MAX_BURST`, stale deadline hints) are observably invisible — same
//!   instructions at the same start cycles, identical cost accounting,
//!   identical store-tier stamps up to relative order — so workers may
//!   place splits differently (at `B`) without divergence.
//!
//! Nothing here runs unless the host opts in via
//! [`Machine::set_machine_jobs`] and partitions memory with
//! [`Machine::set_core_domain`]; the serial engine remains the reference.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use switchless_isa::arch::Mode;
use switchless_isa::inst::Inst;
use switchless_mem::addr::{PAddr, PAGE_BYTES};
use switchless_mem::cache::PartitionId;
use switchless_mem::hierarchy::{AccessKind, CoreCaches, HitLevel};
use switchless_mem::monitor::{MonitorFilter, WatchId};
use switchless_mem::prefetch::PrefetchView;
use switchless_mem::tlb::Tlb;
use switchless_sim::par::par_map_owned;
use switchless_sim::shard::{merge_epoch, EpochRecord, PopKey};
use switchless_sim::time::Cycles;

use crate::machine::{CodeRange, CoreState, Ev, Machine, MachineConfig, Thread, MAX_BURST};
use crate::sblock::{self, SB_DEAD, SB_FORMED};
use crate::store::Tier;
use crate::tid::{Ptid, ThreadState};

/// Epochs double up to this length while committing cleanly.
const MAX_EPOCH: u64 = 1 << 20;
/// Epochs halve down to this length while bailing.
const MIN_EPOCH: u64 = 64;

/// What became of one attempted epoch.
pub(crate) enum EpochOutcome {
    /// The whole window `[head, B)` ran in parallel and was committed.
    Committed,
    /// A worker left its shard mid-window; the staged events were
    /// restored and `[head, B)` must replay serially to make progress.
    Bailed(Cycles),
    /// The window itself ran clean but a commit-time cross-core time tie
    /// (equal-time survivors or wake samples) made the merge unsound.
    /// The window's *interior* was conflict-free, so the driver retries
    /// with a smaller window first — a different horizon shifts the
    /// burst-end survivor times and usually breaks the tie — and only
    /// falls back to serial replay of `[head, B)` on a tie streak
    /// (phase-locked cores tie at every horizon).
    Tie(Cycles),
    /// Fewer than two cores had events below `B`; nothing ran.
    TooFew(Cycles),
}

/// A worker abandoning the epoch. Carries nothing: the clones are
/// dropped wholesale and the real machine was never touched.
struct Bail;

/// Epoch-constant state shared read-only by every worker.
struct Shared<'a> {
    cfg: MachineConfig,
    /// Machine `now` at epoch start (workers evolve a local copy).
    now0: Cycles,
    /// Event horizon: workers handle events strictly below this.
    b: Cycles,
    /// Run deadline (`run_until`'s `t`): burst dispatch bound.
    t: Cycles,
    /// Number of events staged out of the real queue (key namespace
    /// split: local keys below this are staged, at/above are fresh).
    staged_total: u64,
    /// Machine memory, frozen for the epoch. Reads that land fully
    /// outside every registered domain are served from here; writes
    /// outside the worker's own domain bail.
    mem: &'a [u8],
    filter: &'a dyn MonitorFilter,
    code: &'a [CodeRange],
    code_lo: u64,
    code_hi: u64,
    /// Registered MMIO hook addresses, sorted (hit check bails).
    mmio_addrs: &'a [u64],
    /// Every core's registered domain, for the overlap check.
    domains: &'a [Option<(u64, u64)>],
    /// Per-core fresh-event horizon stagger: core `c` stops consuming
    /// its *epoch-created* events at `B - gap * c`, so burst-end
    /// continuation events land in disjoint per-core time bands instead
    /// of piling up just past a common `B` — which is what made
    /// commit-time survivor ties near-certain for compute cores with
    /// dense instruction boundaries. Purely a window-placement choice:
    /// a held-back event is a survivor exactly as if `B` were lower for
    /// that core, which per-core horizons permit because a committed
    /// epoch contains no cross-core effects at all.
    gap: u64,
    /// Whether workers may consume formed superblocks (read-only: heat
    /// bumping and formation stay in the serial engine, since `code` is
    /// shared across worker threads). Which engine happens to use a
    /// block is invisible — block execution is effect-identical to
    /// single-stepping — so serial/sharded stay bit-identical even when
    /// their block usage differs.
    sb_on: bool,
}

/// One core's slice of machine state, cloned for the epoch.
struct WorkerInput {
    core: usize,
    /// `(due, staging index, slot)` for this core's staged `SlotFree`s.
    staged: Vec<(Cycles, u64, u32)>,
    cs: CoreState,
    /// Threads enrolled on this core, sorted by ptid.
    threads: Vec<(u32, Thread)>,
    caches: CoreCaches,
    tlb: Tlb,
    prefetch: PrefetchView,
    /// `(base, bytes)` scratch copy of this core's memory domain.
    domain: Option<(u64, Vec<u8>)>,
}

/// A successful worker's output, spliced back verbatim at commit.
struct WorkerOk {
    core: usize,
    /// Every pop, in local order, for the commit-time merge.
    records: Vec<PopRecord>,
    /// Fresh events still pending at epoch end:
    /// `(local creation index, due, slot)`.
    survivors: Vec<(u64, Cycles, u32)>,
    cs: CoreState,
    threads: Vec<(u32, Thread)>,
    caches: CoreCaches,
    tlb: Tlb,
    prefetch: PrefetchView,
    domain: Option<(u64, Vec<u8>)>,
    d_dispatches: u64,
    d_insts: u64,
    d_activate: [u64; 4],
    /// Store instructions that consulted the monitor filter (all were
    /// quiet — a waking store bails), folded into the filter at commit.
    quiet_stores: u64,
}

/// One event pop, as fed to [`merge_epoch`].
#[derive(Clone, Copy, Debug)]
struct PopRecord {
    time: Cycles,
    key: PopKey,
    creates: u64,
    /// Local `now` after handling the pop (burst cursor included);
    /// the committed machine `now` is the max over all records.
    now_after: Cycles,
    /// `(ptid, sample)` when this dispatch consumed a `wake_at` stamp.
    wake: Option<(u32, u64)>,
}

impl EpochRecord for PopRecord {
    fn time(&self) -> Cycles {
        self.time
    }
    fn key(&self) -> PopKey {
        self.key
    }
    fn creates(&self) -> u64 {
        self.creates
    }
}

/// A worker's private event queue: `(due, key, slot)` min-heap. Keys
/// order exactly like the global queue's seqs restricted to this core —
/// staging indices first (staged events predate the epoch), then
/// `staged_total + creation index` for fresh events.
#[derive(Default)]
struct LocalQueue {
    heap: BinaryHeap<Reverse<(Cycles, u64, u32)>>,
}

impl LocalQueue {
    fn push(&mut self, at: Cycles, key: u64, slot: u32) {
        self.heap.push(Reverse((at, key, slot)));
    }

    /// Pops the earliest event strictly below `b`.
    fn pop_below(&mut self, b: Cycles) -> Option<(Cycles, u64, u32)> {
        let &Reverse((at, _, _)) = self.heap.peek()?;
        if at >= b {
            return None;
        }
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn next_deadline(&self) -> Option<Cycles> {
        self.heap.peek().map(|&Reverse((at, _, _))| at)
    }

    fn peek_slot(&self) -> Option<u32> {
        self.heap.peek().map(|&Reverse((_, _, slot))| slot)
    }

    fn pop_head(&mut self) -> Option<(Cycles, u64, u32)> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn drain_all(self) -> Vec<(Cycles, u64, u32)> {
        self.heap.into_iter().map(|Reverse(e)| e).collect()
    }
}

/// Where a worker memory access resolves.
enum Loc {
    /// Offset into the worker's own domain scratch.
    Own(usize),
    /// Fully outside every registered domain: the frozen shared image.
    Shared,
}

/// Finds `p` in a sorted enrolled-thread table.
fn find(threads: &[(u32, Thread)], p: Ptid) -> &Thread {
    let i = threads
        .binary_search_by_key(&p.0, |e| e.0)
        .expect("scheduler picked a thread enrolled on this core");
    &threads[i].1
}

/// One epoch worker: a serial machine restricted to a single core.
struct Worker<'a> {
    sh: &'a Shared<'a>,
    core: usize,
    /// This core's fresh-event horizon (`B - gap * core`): bursts stop
    /// here so continuation events land in the core's own time band.
    fresh_b: Cycles,
    cs: CoreState,
    threads: Vec<(u32, Thread)>,
    caches: CoreCaches,
    tlb: Tlb,
    prefetch: PrefetchView,
    domain: Option<(u64, Vec<u8>)>,
    q: LocalQueue,
    /// Sibling-slot events lifted mid-burst (restored at burst exit).
    stash: Vec<(Cycles, u64, u32)>,
    local_now: Cycles,
    /// Fresh events created so far (the next fresh key suffix).
    created: u64,
    /// Decoded-code range hint (mirrors `Machine::last_code`; the hint
    /// only short-circuits the range search, never changes its result).
    last_code: usize,
    records: Vec<PopRecord>,
    d_dispatches: u64,
    d_insts: u64,
    d_activate: [u64; 4],
    quiet_stores: u64,
    /// Memory-superblock probe scratch (mirrors `Machine::sbm_*`):
    /// merged fetch+data L1 line stream with write bits, data-page TLB
    /// stream, dedup-keep-last data lines for the prefetcher, applied
    /// store undo log, and the distinct store ranges already vetted
    /// against the monitor filter and MMIO table.
    sbm_lines: Vec<(PAddr, u64, bool)>,
    sbm_pages: Vec<(u64, u64)>,
    sbm_plines: Vec<PAddr>,
    sbm_undo: Vec<(u64, u64, u8)>,
    sbm_stores: Vec<(u64, u64)>,
}

fn run_worker(sh: &Shared<'_>, input: WorkerInput) -> Result<WorkerOk, Bail> {
    let mut q = LocalQueue::default();
    for &(at, idx, slot) in &input.staged {
        q.push(at, idx, slot);
    }
    // This core's fresh-event horizon (see `Shared::gap`). Staged
    // events still consume up to `B`: they are real pre-epoch events
    // and skipping one while running a later one would reorder the
    // core's serial stream.
    let fresh_b =
        Cycles(sh.b.0.saturating_sub(sh.gap * input.core as u64)).max(sh.now0 + Cycles(1));
    let mut w = Worker {
        sh,
        core: input.core,
        fresh_b,
        cs: input.cs,
        threads: input.threads,
        caches: input.caches,
        tlb: input.tlb,
        prefetch: input.prefetch,
        domain: input.domain,
        q,
        stash: Vec::new(),
        local_now: sh.now0,
        created: 0,
        last_code: 0,
        records: Vec::new(),
        d_dispatches: 0,
        d_insts: 0,
        d_activate: [0; 4],
        quiet_stores: 0,
        sbm_lines: Vec::new(),
        sbm_pages: Vec::new(),
        sbm_plines: Vec::new(),
        sbm_undo: Vec::new(),
        sbm_stores: Vec::new(),
    };
    while let Some((ts, key, slot)) = w.q.pop_below(sh.b) {
        if key >= sh.staged_total && ts >= fresh_b {
            // The core's window ends here: the event survives to the
            // next epoch, exactly as if it were due at or past `B`.
            w.q.push(ts, key, slot);
            break;
        }
        if ts > w.local_now {
            w.local_now = ts;
        }
        let created_before = w.created;
        let wake = w.dispatch(slot)?;
        let pop_key = if key < sh.staged_total {
            PopKey::Staged(key)
        } else {
            PopKey::Fresh(key - sh.staged_total)
        };
        w.records.push(PopRecord {
            time: ts,
            key: pop_key,
            creates: w.created - created_before,
            now_after: w.local_now,
            wake,
        });
    }
    let mut survivors: Vec<(u64, Cycles, u32)> = Vec::new();
    for (at, key, slot) in w.q.drain_all() {
        if key < sh.staged_total {
            // A staged event past a held-back fresh horizon: consuming
            // it would reorder this core's stream, and a staged event
            // cannot survive an epoch (its `(time, seq)` identity was
            // popped from the real queue). Settle the window serially.
            return Err(Bail);
        }
        debug_assert!(at >= fresh_b, "events below the fresh horizon are drained");
        survivors.push((key - sh.staged_total, at, slot));
    }
    // Creation order, so commit-side vseq lookup walks monotonically.
    survivors.sort_unstable_by_key(|&(local, _, _)| local);
    Ok(WorkerOk {
        core: w.core,
        records: w.records,
        survivors,
        cs: w.cs,
        threads: w.threads,
        caches: w.caches,
        tlb: w.tlb,
        prefetch: w.prefetch,
        domain: w.domain,
        d_dispatches: w.d_dispatches,
        d_insts: w.d_insts,
        d_activate: w.d_activate,
        quiet_stores: w.quiet_stores,
    })
}

impl Worker<'_> {
    /// Schedules a fresh own-core `SlotFree`; keys continue after the
    /// staged namespace in creation order.
    fn schedule_local(&mut self, at: Cycles, slot: u32) {
        let key = self.sh.staged_total + self.created;
        self.created += 1;
        self.q.push(at, key, slot);
    }

    fn th_idx(&self, ptid: Ptid) -> usize {
        self.threads
            .binary_search_by_key(&ptid.0, |e| e.0)
            .expect("scheduler picked a thread enrolled on this core")
    }

    /// Mirrors `Machine::dispatch` with `watch = None`, restricted to
    /// this core; returns the wake sample consumed, if any.
    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, slot: u32) -> Result<Option<(u32, u64)>, Bail> {
        let now = self.local_now;
        let picked = {
            let threads = &self.threads;
            self.cs.sched.pick(|p| find(threads, p).busy_until > now)
        };
        let Some(ptid) = picked else {
            let next = {
                let threads = &self.threads;
                self.cs.sched.min_over_enrolled(|p| {
                    let b = find(threads, p).busy_until;
                    (b > now).then_some(b)
                })
            };
            match next {
                Some(at) => self.schedule_local(at, slot),
                None => self.cs.idle_slot[slot as usize] = true,
            }
            return Ok(None);
        };
        self.d_dispatches += 1;
        let ti = self.th_idx(ptid);

        let mut cost = Cycles::ZERO;
        let tier = self.cs.store.tier_of(ptid);
        let needs_activation = !self.threads[ti].1.activated || tier != Tier::Rf;
        if needs_activation {
            let (bytes, prio) = {
                let t = &self.threads[ti].1;
                let bytes = if self.sh.cfg.store.dirty_tracking {
                    t.dirty_bytes()
                } else {
                    t.state_bytes()
                };
                (bytes, t.arch.prio)
            };
            let (act, from) = self.cs.store.activate(ptid, prio, bytes);
            self.d_activate[from as usize] += 1;
            cost += act;
            let t = &mut self.threads[ti].1;
            t.activated = true;
            t.touched = 0;
        } else {
            self.cs.store.touch(ptid);
        }
        let wake = if let Some(w) = self.threads[ti].1.wake_at.take() {
            let sample = (now - w + cost).0;
            let ws = &mut self.threads[ti].1.wake_stats;
            ws.0 += 1;
            ws.1 += sample;
            ws.2 = ws.2.max(sample);
            Some((ptid.0, sample))
        } else {
            None
        };

        // First instruction. `pending_charge` stays zero on every path a
        // worker is allowed to take (hcalls bail), so it is not modelled.
        cost += self.exec_inst(ti)?;
        cost = cost.max(Cycles(1));
        let mut done = now + cost;

        // Burst engine, with the core's fresh-event horizon as an extra
        // bound: no instruction may *start* at or after it (its pop
        // would belong to the next window). The serial engine may split
        // bursts at other points (foreign events, stale deadline
        // hints); splits are observably invisible, so the placement may
        // differ — which is also why the per-core stagger of this bound
        // is free (see `Shared::gap`).
        let mut burst_cost = Cycles::ZERO;
        let mut extra: u64 = 0;
        let mut qmin = self.q.next_deadline();
        // Superblock entry gate (the heat hoist, as in the serial
        // engine): entries are only reached by jumps, so the lookup is
        // skipped while the burst walks sequential code.
        let mut seq_pc = u64::MAX;
        'burst: while extra < MAX_BURST
            && done <= self.sh.t
            && done < self.fresh_b
            && self.burst_eligible(ptid, done)
        {
            while let Some(tq) = qmin {
                if tq > done {
                    break;
                }
                // The local queue holds only own-core SlotFrees; a
                // sibling slot's is consumable exactly as in the serial
                // engine, anything else ends the burst.
                if self.q.peek_slot() == Some(slot) {
                    break 'burst;
                }
                let lifted = self.q.pop_head().expect("peek/pop agree");
                self.stash.push(lifted);
                qmin = self.q.next_deadline();
            }
            // Superblock fast path — mirrors `Machine::dispatch`
            // (DESIGN.md §10). Workers only consume blocks the serial
            // engine has already formed (`sb_lookup` is read-only
            // here); the serial exactness argument carries over, with
            // the fresh-event horizon as the extra bound on the final
            // dispatch cursor. Any failed precondition single-steps —
            // never a burst exit.
            if self.sh.sb_on {
                let pc = self.threads[ti].1.arch.pc;
                let via_jump = pc != seq_pc;
                seq_pc = pc + 8;
                if via_jump {
                    if let Some((ri, bi)) = self.sb_lookup(pc) {
                        let (bcost, last_cost, len) = {
                            let b = &self.sh.code[ri].blocks[bi as usize];
                            // Dynamic block cost, exactly as in the serial
                            // engine: base costs plus one L1 hit per data
                            // access (the block only runs fully resident).
                            let l1 = self.sh.cfg.hierarchy.lat_l1;
                            (
                                b.cost + Cycles(b.mem_ops * l1.0),
                                b.last_cost + if b.last_is_mem { l1 } else { Cycles::ZERO },
                                b.insts.len() as u64,
                            )
                        };
                        // As in the serial engine, `extra` may overshoot
                        // `MAX_BURST` by at most one block.
                        let d_last = done + bcost - last_cost;
                        if d_last <= self.sh.t && d_last < self.fresh_b {
                            let mut clear = true;
                            while let Some(tq) = qmin {
                                if tq > d_last {
                                    break;
                                }
                                if self.q.peek_slot() == Some(slot) {
                                    clear = false;
                                    break;
                                }
                                let lifted = self.q.pop_head().expect("peek/pop agree");
                                self.stash.push(lifted);
                                qmin = self.q.next_deadline();
                            }
                            if clear && self.exec_superblock(ri, bi as usize, ti) {
                                self.local_now = d_last;
                                done += bcost;
                                burst_cost += bcost;
                                extra += len;
                                seq_pc = u64::MAX;
                                continue 'burst;
                            }
                        }
                    }
                }
            }
            self.local_now = done;
            let c = self.exec_inst(ti)?.max(Cycles(1));
            done += c;
            burst_cost += c;
            extra += 1;
            qmin = self.q.next_deadline();
        }
        while let Some((at, key, s)) = self.stash.pop() {
            self.q.push(at, key, s);
        }

        self.cs.sched.account(ptid, cost);
        if extra > 0 {
            self.cs.sched.account_burst(ptid, burst_cost, extra);
            self.d_dispatches += extra;
        }
        {
            let t = &mut self.threads[ti].1;
            t.busy_until = t.busy_until.max(done);
        }
        self.d_insts += 1 + extra;
        self.schedule_local(done, slot);
        Ok(wake)
    }

    /// Mirrors `Machine::burst_eligible` (the machine cannot halt inside
    /// a worker — `Halt` bails).
    fn burst_eligible(&self, ptid: Ptid, done: Cycles) -> bool {
        let t = find(&self.threads, ptid);
        t.state == ThreadState::Runnable
            && t.activated
            && t.home == self.core
            && t.busy_until <= done
            && self.cs.sched.sole_runnable() == Some(ptid)
            && self.cs.store.tier_of(ptid) == Tier::Rf
    }

    /// Read-only superblock lookup: workers consume blocks the serial
    /// engine has formed, but never bump heat or form new ones (the
    /// code table is shared across worker threads).
    #[inline]
    fn sb_lookup(&mut self, pc: u64) -> Option<(usize, u32)> {
        let code = self.sh.code;
        let hint = self.last_code;
        let idx = match code.get(hint) {
            Some(r) if r.base <= pc && pc < r.end => hint,
            _ => {
                let idx = code.iter().position(|r| r.base <= pc && pc < r.end)?;
                self.last_code = idx;
                idx
            }
        };
        let off = pc - code[idx].base;
        if off & 7 != 0 {
            return None;
        }
        match code[idx].sb[(off >> 3) as usize] {
            SB_DEAD => None,
            s if s >= SB_FORMED => Some((idx, s & !SB_FORMED)),
            _ => None,
        }
    }

    /// Mirrors `Machine::exec_superblock` against the worker's private
    /// cache view and thread clone.
    fn exec_superblock(&mut self, ri: usize, bi: usize, ti: usize) -> bool {
        if self.sh.code[ri].blocks[bi].mem_ops > 0 {
            return self.exec_superblock_mem(ri, bi, ti);
        }
        let b = &self.sh.code[ri].blocks[bi];
        if !self.caches.l1_access_run(&b.lines, b.insts.len() as u64) {
            return false;
        }
        let t = &mut self.threads[ti].1;
        let entry = t.arch.pc;
        t.arch.pc = sblock::exec_regs(&b.insts, &mut t.arch.gprs, entry);
        t.touched |= b.touched;
        true
    }

    /// Mirrors `Machine::exec_superblock_mem` against the worker's
    /// private clones, with the shard discipline layered on top: loads
    /// may resolve to the worker's own domain scratch or the frozen
    /// shared image, but any store must land fully inside the own
    /// domain — everything else fails the probe, and the single-step
    /// path then bails the epoch exactly as it always did. Stores are
    /// applied to the domain scratch under an undo log so later loads
    /// in the block see them; a failed probe reverse-replays the log
    /// and mutates nothing.
    #[allow(clippy::too_many_lines)]
    fn exec_superblock_mem(&mut self, ri: usize, bi: usize, ti: usize) -> bool {
        let sh = self.sh;
        let b = &sh.code[ri].blocks[bi];
        let mem_bytes = sh.cfg.mem_bytes;
        let (code_lo, code_hi) = (sh.code_lo, sh.code_hi);
        self.sbm_lines.clear();
        self.sbm_lines
            .extend(b.lines.iter().map(|&(l, at)| (l, at, false)));
        self.sbm_pages.clear();
        self.sbm_plines.clear();
        self.sbm_stores.clear();
        self.sbm_undo.clear();

        let mut gprs = self.threads[ti].1.arch.gprs;
        let mut pc = self.threads[ti].1.arch.pc;
        let mut ok = true;
        let mut pos = 0u64; // position in the merged fetch+data stream
        let mut data_idx = 0u64; // 1-based index in the data-access stream
        let mut n_stores = 0u64;

        macro_rules! gpr {
            ($r:expr) => {
                gprs[$r.0 as usize & 0xf]
            };
        }
        macro_rules! set_gpr {
            ($r:expr, $v:expr) => {{
                let v = $v;
                gprs[$r.0 as usize & 0xf] = v;
            }};
        }
        macro_rules! data_access {
            ($addr:expr, $len:expr, $write:expr) => {{
                let addr: u64 = $addr;
                if addr.checked_add($len).is_none()
                    || addr + $len > mem_bytes
                    || !self.tlb.contains(0, addr / PAGE_BYTES)
                    || !self.caches.l1_contains(PAddr(addr).line())
                {
                    false
                } else {
                    let page = addr / PAGE_BYTES;
                    let line = PAddr(addr).line();
                    pos += 1;
                    data_idx += 1;
                    match self.sbm_lines.iter_mut().find(|e| e.0 == line) {
                        Some(e) => {
                            e.1 = e.1.max(pos);
                            e.2 |= $write;
                        }
                        None => self.sbm_lines.push((line, pos, $write)),
                    }
                    match self.sbm_pages.iter_mut().find(|e| e.0 == page) {
                        Some(e) => e.1 = data_idx,
                        None => self.sbm_pages.push((page, data_idx)),
                    }
                    if let Some(p) = self.sbm_plines.iter().position(|&l| l == line) {
                        self.sbm_plines.remove(p);
                    }
                    self.sbm_plines.push(line);
                    true
                }
            }};
        }
        macro_rules! load {
            ($d:expr, $addr:expr, $len:expr) => {{
                let addr: u64 = $addr;
                if data_access!(addr, $len, false) {
                    match self.read_bytes(addr, $len) {
                        Ok(bytes) => {
                            let v = if $len == 8 {
                                u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
                            } else {
                                u64::from(bytes[0])
                            };
                            set_gpr!($d, v);
                        }
                        Err(Bail) => ok = false,
                    }
                } else {
                    ok = false;
                }
            }};
        }
        macro_rules! store {
            ($v:expr, $addr:expr, $len:expr) => {{
                let addr: u64 = $addr;
                let end = addr + $len;
                let own_off = match &self.domain {
                    Some((base, bytes)) if addr >= *base && end <= base + bytes.len() as u64 => {
                        Some((addr - base) as usize)
                    }
                    _ => None,
                };
                match (data_access!(addr, $len, true), own_off) {
                    (true, Some(off)) => {
                        if !self.sbm_stores.contains(&(addr, $len)) {
                            // Precise code-overlap test, as in the serial
                            // probe: the hull over-approximates when
                            // unrelated data sits between two images.
                            let hits_code = addr < code_hi
                                && end > code_lo
                                && sh.code.iter().any(|r| addr < r.end && end > r.base);
                            let lo = addr.saturating_sub(7);
                            let i0 = sh.mmio_addrs.partition_point(|&a| a < lo);
                            if hits_code
                                || sh.filter.would_wake(PAddr(addr), $len)
                                || sh.mmio_addrs.get(i0).is_some_and(|&a| a < end)
                            {
                                ok = false;
                            } else {
                                self.sbm_stores.push((addr, $len));
                            }
                        }
                        if ok {
                            n_stores += 1;
                            let bytes = &mut self.domain.as_mut().expect("own offset").1;
                            if $len == 8 {
                                let old = u64::from_le_bytes(
                                    bytes[off..off + 8].try_into().expect("8 bytes"),
                                );
                                self.sbm_undo.push((addr, old, 8));
                                bytes[off..off + 8].copy_from_slice(&($v).to_le_bytes());
                            } else {
                                self.sbm_undo.push((addr, u64::from(bytes[off]), 1));
                                bytes[off] = (($v) & 0xff) as u8;
                            }
                        }
                    }
                    _ => ok = false,
                }
            }};
        }

        for i in &b.insts {
            pos += 1; // this instruction's fetch access
            let mut next = pc + 8;
            use Inst::*;
            match *i {
                Add { d, a, b } => set_gpr!(d, gpr!(a).wrapping_add(gpr!(b))),
                Sub { d, a, b } => set_gpr!(d, gpr!(a).wrapping_sub(gpr!(b))),
                And { d, a, b } => set_gpr!(d, gpr!(a) & gpr!(b)),
                Or { d, a, b } => set_gpr!(d, gpr!(a) | gpr!(b)),
                Xor { d, a, b } => set_gpr!(d, gpr!(a) ^ gpr!(b)),
                Shl { d, a, b } => set_gpr!(d, gpr!(a) << (gpr!(b) & 63)),
                Shr { d, a, b } => set_gpr!(d, gpr!(a) >> (gpr!(b) & 63)),
                Mul { d, a, b } => set_gpr!(d, gpr!(a).wrapping_mul(gpr!(b))),
                Addi { d, a, imm } => set_gpr!(d, gpr!(a).wrapping_add(imm as u64)),
                Movi { d, imm } => set_gpr!(d, imm as u64),
                Mov { d, a } => set_gpr!(d, gpr!(a)),
                Nop | Work { .. } | Fence => {}
                Ld { d, a, off } => load!(d, gpr!(a).wrapping_add(off as u64), 8),
                LdA { d, addr } => load!(d, addr, 8),
                LdB { d, a, off } => load!(d, gpr!(a).wrapping_add(off as u64), 1),
                St { s, a, off } => store!(gpr!(s), gpr!(a).wrapping_add(off as u64), 8),
                StA { s, addr } => store!(gpr!(s), addr, 8),
                StB { s, a, off } => store!(gpr!(s), gpr!(a).wrapping_add(off as u64), 1),
                Jmp { addr } => next = addr,
                Jr { a } => next = gpr!(a),
                Jal { d, addr } => {
                    set_gpr!(d, pc + 8);
                    next = addr;
                }
                Beq { a, b, addr } => {
                    if gpr!(a) == gpr!(b) {
                        next = addr;
                    }
                }
                Bne { a, b, addr } => {
                    if gpr!(a) != gpr!(b) {
                        next = addr;
                    }
                }
                Blt { a, b, addr } => {
                    if (gpr!(a) as i64) < (gpr!(b) as i64) {
                        next = addr;
                    }
                }
                Bge { a, b, addr } => {
                    if (gpr!(a) as i64) >= (gpr!(b) as i64) {
                        next = addr;
                    }
                }
                _ => unreachable!("non-admissible instruction inside a memory superblock"),
            }
            if !ok {
                break;
            }
            pc = next;
        }

        let (n_insts, mem_ops, touched) = (b.insts.len() as u64, b.mem_ops, b.touched);
        if !ok
            || !self
                .caches
                .l1_access_run_mixed(&self.sbm_lines, n_insts + mem_ops)
        {
            let bytes = self.domain.as_mut().map(|(base, bytes)| (*base, bytes));
            if let Some((base, bytes)) = bytes {
                for &(addr, old, len) in self.sbm_undo.iter().rev() {
                    let off = (addr - base) as usize;
                    if len == 8 {
                        bytes[off..off + 8].copy_from_slice(&old.to_le_bytes());
                    } else {
                        bytes[off] = old as u8;
                    }
                }
            }
            return false;
        }
        debug_assert!(data_idx == mem_ops, "every instruction executed");
        let tlb_ok = self.tlb.access_run(0, &self.sbm_pages, mem_ops);
        debug_assert!(tlb_ok, "probe checked TLB residency for every page");
        let ptid = self.threads[ti].0;
        self.prefetch
            .record_run(WatchId(u64::from(ptid)), &self.sbm_plines);
        self.quiet_stores += n_stores;
        let t = &mut self.threads[ti].1;
        t.arch.gprs = gprs;
        t.arch.pc = pc;
        t.touched |= touched;
        true
    }

    /// Resolves an access of `len` bytes at `addr`: the worker's own
    /// domain, the frozen shared image, or a bail (any overlap with a
    /// registered domain that is not full containment in our own).
    fn locate(&self, addr: u64, len: u64) -> Result<Loc, Bail> {
        let end = addr + len;
        if let Some((base, bytes)) = &self.domain {
            if addr >= *base && end <= base + bytes.len() as u64 {
                return Ok(Loc::Own((addr - base) as usize));
            }
        }
        for (b, l) in self.sh.domains.iter().flatten() {
            if addr < b + l && *b < end {
                return Err(Bail);
            }
        }
        Ok(Loc::Shared)
    }

    fn read_bytes(&self, addr: u64, len: u64) -> Result<&[u8], Bail> {
        match self.locate(addr, len)? {
            Loc::Own(off) => {
                let bytes = &self
                    .domain
                    .as_ref()
                    .expect("own location implies a domain")
                    .1;
                Ok(&bytes[off..off + len as usize])
            }
            Loc::Shared => Ok(&self.sh.mem[addr as usize..(addr + len) as usize]),
        }
    }

    fn read_u64(&self, addr: u64) -> Result<u64, Bail> {
        Ok(u64::from_le_bytes(
            self.read_bytes(addr, 8)?.try_into().expect("8 bytes"),
        ))
    }

    fn read_u8(&self, addr: u64) -> Result<u8, Bail> {
        Ok(self.read_bytes(addr, 1)?[0])
    }

    /// Writes must land fully inside the worker's own domain.
    fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), Bail> {
        match self.locate(addr, data.len() as u64)? {
            Loc::Own(off) => {
                let bytes = &mut self
                    .domain
                    .as_mut()
                    .expect("own location implies a domain")
                    .1;
                bytes[off..off + data.len()].copy_from_slice(data);
                Ok(())
            }
            Loc::Shared => Err(Bail),
        }
    }

    /// The store side effects a worker may *not* have: code-image
    /// invalidation, monitor wakes, MMIO doorbells. A quiet store's only
    /// filter effect (`stores_checked`) is batched to commit.
    fn check_store(&self, addr: u64, len: u64) -> Result<(), Bail> {
        let end = addr.saturating_add(len.max(1));
        if addr < self.sh.code_hi
            && end > self.sh.code_lo
            && self.sh.code.iter().any(|r| addr < r.end && end > r.base)
        {
            // A real decoded-range overlap: the serial engine would run
            // `invalidate_code`, a shared effect. A hull hit *between*
            // images has no code effect and commits fine.
            return Err(Bail);
        }
        if self.sh.filter.would_wake(PAddr(addr), len) {
            return Err(Bail);
        }
        if !self.sh.mmio_addrs.is_empty() {
            let lo = addr.saturating_sub(7);
            let i = self.sh.mmio_addrs.partition_point(|&a| a < lo);
            if self.sh.mmio_addrs.get(i).is_some_and(|&a| a < end) {
                return Err(Bail);
            }
        }
        Ok(())
    }

    /// Mirrors `Machine::data_access`; the L1/L2-only cache view makes
    /// any access that needs the shared L3 a bail.
    fn data_access(
        &mut self,
        ti: usize,
        addr: u64,
        len: u64,
        kind: AccessKind,
    ) -> Result<Cycles, Bail> {
        if addr.checked_add(len).is_none() || addr + len > self.sh.cfg.mem_bytes {
            // Serial raises BadMemory here — an exception path.
            return Err(Bail);
        }
        let tlb_cost = self.tlb.access(0, addr / PAGE_BYTES);
        let part = self.threads[ti].1.partition;
        let Some(res) = self.caches.try_access(PAddr(addr), kind, part) else {
            return Err(Bail);
        };
        let ptid = self.threads[ti].0;
        self.prefetch
            .record_access(WatchId(u64::from(ptid)), PAddr(addr));
        Ok(tlb_cost + res.latency)
    }

    /// Mirrors `Machine::cached_inst` (the hint is worker-local; ranges
    /// never overlap, so hint hits and scans agree).
    fn cached_inst(&mut self, pc: u64) -> Option<Inst> {
        let code = self.sh.code;
        let hint = self.last_code;
        let idx = match code.get(hint) {
            Some(r) if r.base <= pc && pc < r.end => hint,
            _ => {
                let idx = code.iter().position(|r| r.base <= pc && pc < r.end)?;
                self.last_code = idx;
                idx
            }
        };
        let off = pc - code[idx].base;
        if off & 7 != 0 {
            return None;
        }
        code[idx].insts[(off >> 3) as usize]
    }

    /// Mirrors `Machine::exec_inst` over the pure-compute + core-local
    /// memory subset; anything else — exceptions, privilege traps,
    /// syscalls, hcalls, monitor/mwait, thread control, CSRs, `Halt`,
    /// L3-bound accesses, non-local stores — bails the epoch. Bailing
    /// *before* any shard-visible effect is not required (clones are
    /// discarded wholesale); bailing before any *shared* effect is, and
    /// every shared touchpoint above is read-only.
    #[allow(clippy::too_many_lines)]
    fn exec_inst(&mut self, ti: usize) -> Result<Cycles, Bail> {
        let pc = self.threads[ti].1.arch.pc;
        if pc.checked_add(8).is_none_or(|e| e > self.sh.cfg.mem_bytes) {
            return Err(Bail);
        }
        let Some(ifetch) =
            self.caches
                .try_access(PAddr(pc), AccessKind::Read, PartitionId::DEFAULT)
        else {
            return Err(Bail);
        };
        let ifetch_cost = if ifetch.level == HitLevel::L1 {
            Cycles::ZERO
        } else {
            ifetch.latency
        };
        let inst = match self.cached_inst(pc) {
            Some(i) => i,
            None => {
                let word = self.read_u64(pc)?;
                match Inst::decode(word) {
                    Ok(i) => i,
                    Err(_) => return Err(Bail),
                }
            }
        };
        if inst.is_privileged() && self.threads[ti].1.arch.mode == Mode::User {
            return Err(Bail);
        }

        let mut cost = ifetch_cost + Cycles(inst.base_cost());
        let mut next_pc = pc + 8;

        macro_rules! gpr {
            ($r:expr) => {
                self.threads[ti].1.arch.gprs[$r.0 as usize & 0xf]
            };
        }
        macro_rules! set_gpr {
            ($r:expr, $v:expr) => {{
                let v = $v;
                let t = &mut self.threads[ti].1;
                t.arch.gprs[$r.0 as usize & 0xf] = v;
                t.touched |= 1 << ($r.0 & 0xf);
            }};
        }
        use Inst::*;
        match inst {
            Add { d, a, b } => set_gpr!(d, gpr!(a).wrapping_add(gpr!(b))),
            Sub { d, a, b } => set_gpr!(d, gpr!(a).wrapping_sub(gpr!(b))),
            And { d, a, b } => set_gpr!(d, gpr!(a) & gpr!(b)),
            Or { d, a, b } => set_gpr!(d, gpr!(a) | gpr!(b)),
            Xor { d, a, b } => set_gpr!(d, gpr!(a) ^ gpr!(b)),
            Shl { d, a, b } => set_gpr!(d, gpr!(a) << (gpr!(b) & 63)),
            Shr { d, a, b } => set_gpr!(d, gpr!(a) >> (gpr!(b) & 63)),
            Mul { d, a, b } => set_gpr!(d, gpr!(a).wrapping_mul(gpr!(b))),
            Div { d, a, b } => {
                let divisor = gpr!(b);
                if divisor == 0 {
                    return Err(Bail);
                }
                set_gpr!(d, gpr!(a) / divisor);
            }
            Addi { d, a, imm } => set_gpr!(d, gpr!(a).wrapping_add(imm as u64)),
            Movi { d, imm } => set_gpr!(d, imm as u64),
            Mov { d, a } => set_gpr!(d, gpr!(a)),
            Ld { d, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                cost += self.data_access(ti, addr, 8, AccessKind::Read)?;
                let v = self.read_u64(addr)?;
                set_gpr!(d, v);
            }
            LdA { d, addr } => {
                cost += self.data_access(ti, addr, 8, AccessKind::Read)?;
                let v = self.read_u64(addr)?;
                set_gpr!(d, v);
            }
            St { s, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                cost += self.data_access(ti, addr, 8, AccessKind::Write)?;
                self.check_store(addr, 8)?;
                let v = gpr!(s);
                self.write_bytes(addr, &v.to_le_bytes())?;
                self.quiet_stores += 1;
            }
            StA { s, addr } => {
                cost += self.data_access(ti, addr, 8, AccessKind::Write)?;
                self.check_store(addr, 8)?;
                let v = gpr!(s);
                self.write_bytes(addr, &v.to_le_bytes())?;
                self.quiet_stores += 1;
            }
            LdB { d, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                cost += self.data_access(ti, addr, 1, AccessKind::Read)?;
                let v = u64::from(self.read_u8(addr)?);
                set_gpr!(d, v);
            }
            StB { s, a, off } => {
                let addr = gpr!(a).wrapping_add(off as u64);
                cost += self.data_access(ti, addr, 1, AccessKind::Write)?;
                self.check_store(addr, 1)?;
                let v = (gpr!(s) & 0xff) as u8;
                self.write_bytes(addr, &[v])?;
                self.quiet_stores += 1;
            }
            Jmp { addr } => next_pc = addr,
            Jr { a } => next_pc = gpr!(a),
            Jal { d, addr } => {
                set_gpr!(d, pc + 8);
                next_pc = addr;
            }
            Beq { a, b, addr } => {
                if gpr!(a) == gpr!(b) {
                    next_pc = addr;
                }
            }
            Bne { a, b, addr } => {
                if gpr!(a) != gpr!(b) {
                    next_pc = addr;
                }
            }
            Blt { a, b, addr } => {
                if (gpr!(a) as i64) < (gpr!(b) as i64) {
                    next_pc = addr;
                }
            }
            Bge { a, b, addr } => {
                if (gpr!(a) as i64) >= (gpr!(b) as i64) {
                    next_pc = addr;
                }
            }
            Nop | Work { .. } | Fence => {}
            _ => return Err(Bail),
        }
        self.threads[ti].1.arch.pc = next_pc;
        Ok(cost)
    }
}

impl Machine {
    /// The sharded run loop: epochs where the event stream allows them,
    /// serial replay (via [`Machine::step_one`]) where it does not.
    pub(crate) fn run_until_sharded(&mut self, t: Cycles) {
        if self.cfg.cores < 2 {
            return self.run_until_serial(t);
        }
        // Events strictly below the floor replay serially (a bailed or
        // too-thin window is settled the reference way before retrying).
        let mut serial_floor = Cycles::ZERO;
        // Consecutive commit-time tie retries from the same head.
        let mut tie_streak = 0u32;
        while self.halted.is_none() {
            let Some(head) = self.events.peek_time() else {
                break;
            };
            if head > t {
                break;
            }
            if head >= serial_floor {
                match self.try_epoch(t) {
                    EpochOutcome::Committed => {
                        self.epoch_len = Cycles((self.epoch_len.0 * 2).min(MAX_EPOCH));
                        tie_streak = 0;
                        continue;
                    }
                    EpochOutcome::Bailed(b) => {
                        self.epoch_len = Cycles((self.epoch_len.0 / 2).max(MIN_EPOCH));
                        tie_streak = 0;
                        serial_floor = b.max(Cycles(head.0 + 1));
                    }
                    EpochOutcome::Tie(b) => {
                        self.epoch_len = Cycles((self.epoch_len.0 / 2).max(MIN_EPOCH));
                        tie_streak += 1;
                        if tie_streak < 3 {
                            // The interior was clean; a shorter window
                            // moves the survivor times — retry in place.
                            continue;
                        }
                        // Phase-locked cores tie at every horizon: make
                        // progress the reference way.
                        tie_streak = 0;
                        serial_floor = b.max(Cycles(head.0 + 1));
                    }
                    EpochOutcome::TooFew(b) => {
                        tie_streak = 0;
                        serial_floor = b.max(Cycles(head.0 + 1));
                    }
                }
            }
            let bound = t.min(Cycles(serial_floor.0 - 1));
            while self.halted.is_none()
                && self
                    .events
                    .peek_time()
                    .is_some_and(|h| h < serial_floor && h <= t)
            {
                self.step_one(bound, t);
                self.shard_stats.serial_events += 1;
            }
        }
        if self.halted.is_none() && self.now < t {
            self.now = t;
        }
    }

    /// Attempts one parallel epoch over the window `[head, B)`.
    #[allow(clippy::too_many_lines)]
    fn try_epoch(&mut self, t: Cycles) -> EpochOutcome {
        let head = self.events.peek_time().expect("caller checked the head");
        // The dispatch horizon is `t`, so events can exist at `t + 1`
        // (burst-end SlotFrees); the window never reaches past them.
        let cap = if t.0 == u64::MAX { t } else { Cycles(t.0 + 1) };
        let mut b = (head + self.epoch_len).min(cap);

        // Stage every SlotFree strictly below B. A callback event
        // truncates the window to its due time: callbacks run arbitrary
        // host code and must execute on the real machine, and same-time
        // staged events are pushed back (a callback may interleave with
        // them in seq order).
        let mut staged: Vec<(Cycles, switchless_sim::event::EventToken, Ev)> = Vec::new();
        while let Some(ht) = self.events.peek_time() {
            if ht >= b {
                break;
            }
            let Some((at, tok, ev)) = self.events.pop_keyed() else {
                break;
            };
            if matches!(ev, Ev::Call(_)) {
                self.events.restore(at, tok, ev);
                while staged.last().is_some_and(|&(t2, _, _)| t2 == at) {
                    let (t2, tok2, ev2) = staged.pop().expect("non-empty");
                    self.events.restore(t2, tok2, ev2);
                }
                b = at;
                break;
            }
            staged.push((at, tok, ev));
        }

        let restore_staged =
            |m: &mut Machine, staged: Vec<(Cycles, switchless_sim::event::EventToken, Ev)>| {
                for (at, tok, ev) in staged.into_iter().rev() {
                    m.events.restore(at, tok, ev);
                }
            };

        // Group by core; staging index is the event's virtual seq.
        let mut per_core: BTreeMap<u32, Vec<(Cycles, u64, u32)>> = BTreeMap::new();
        for (i, &(at, _, ev)) in staged.iter().enumerate() {
            let Ev::SlotFree { core, slot } = ev else {
                unreachable!("calls truncate the window");
            };
            per_core.entry(core).or_default().push((at, i as u64, slot));
        }
        if per_core.len() < 2 {
            restore_staged(self, staged);
            self.shard_stats.too_few += 1;
            return EpochOutcome::TooFew(b);
        }

        let staged_total = staged.len() as u64;
        let inputs: Vec<WorkerInput> = per_core
            .into_iter()
            .map(|(core, evs)| {
                let c = core as usize;
                let mut tids: Vec<u32> = self.cores[c].sched.iter_enrolled().map(|p| p.0).collect();
                tids.sort_unstable();
                let threads: Vec<(u32, Thread)> = tids
                    .iter()
                    .map(|&i| (i, self.threads[i as usize].clone()))
                    .collect();
                let prefetch = self
                    .prefetcher
                    .core_view(tids.iter().map(|&i| WatchId(u64::from(i))));
                let domain = self.core_domains[c].map(|(base, len)| {
                    (
                        base,
                        self.mem[base as usize..(base + len) as usize].to_vec(),
                    )
                });
                WorkerInput {
                    core: c,
                    staged: evs,
                    cs: self.cores[c].clone(),
                    threads,
                    caches: self.hier.core_view(c),
                    tlb: self.tlbs[c].clone(),
                    prefetch,
                    domain,
                }
            })
            .collect();

        let jobs = self.machine_jobs.min(inputs.len());
        let results = {
            let sh = Shared {
                cfg: self.cfg,
                now0: self.now,
                b,
                t,
                staged_total,
                mem: &self.mem,
                filter: self.filter.as_ref(),
                code: &self.code,
                code_lo: self.code_lo,
                code_hi: self.code_hi,
                // Maintained sorted by `register_mmio`; no per-epoch
                // rebuild.
                mmio_addrs: &self.mmio_addrs,
                domains: &self.core_domains,
                // Wide enough to clear any common instruction cost (so
                // the per-core continuation bands stay disjoint), small
                // against the window (so the held-back tail is noise);
                // a tie from an unusually expensive instruction is
                // still caught at commit and retried.
                gap: ((b.0 - head.0) / (2 * self.cfg.cores.max(1) as u64)).min(64),
                sb_on: self.sb_on,
            };
            par_map_owned(jobs, inputs, |_, input| run_worker(&sh, input))
        };

        let mut oks: Vec<WorkerOk> = Vec::with_capacity(results.len());
        for r in results {
            match r {
                Ok(ok) => oks.push(ok),
                Err(Bail) => {
                    restore_staged(self, staged);
                    self.shard_stats.bailed += 1;
                    return EpochOutcome::Bailed(b);
                }
            }
        }

        // Cross-core ties the vseq model cannot break faithfully: two
        // surviving events due the same cycle (their queue-seq order
        // decides a future pop) or two wake samples the same cycle
        // (their order decides `last_wake`). Within one core the local
        // order is serial-faithful; across cores, bail.
        let cross_core_time_tie = |times: &mut Vec<(Cycles, usize)>| {
            times.sort_unstable();
            times
                .windows(2)
                .any(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
        };
        let mut surv_times: Vec<(Cycles, usize)> = oks
            .iter()
            .enumerate()
            .flat_map(|(pos, ok)| ok.survivors.iter().map(move |&(_, at, _)| (at, pos)))
            .collect();
        let mut wake_times: Vec<(Cycles, usize)> = oks
            .iter()
            .enumerate()
            .flat_map(|(pos, ok)| {
                ok.records
                    .iter()
                    .filter(|r| r.wake.is_some())
                    .map(move |r| (r.time, pos))
            })
            .collect();
        if cross_core_time_tie(&mut surv_times) || cross_core_time_tie(&mut wake_times) {
            restore_staged(self, staged);
            self.shard_stats.ties += 1;
            return EpochOutcome::Tie(b);
        }

        // ---- Commit (all-or-nothing; no bail past this point) ----
        self.shard_stats.committed += 1;

        // Reconstruct the global pop order for cross-record effects.
        let streams: Vec<Vec<PopRecord>> = oks
            .iter_mut()
            .map(|o| std::mem::take(&mut o.records))
            .collect();
        let (merged, fresh_seq) = merge_epoch(staged_total, streams);
        let mut now_max = self.now;
        for (_, r) in &merged {
            now_max = now_max.max(r.now_after);
            if let Some((p, sample)) = r.wake {
                self.wake_latency.record(sample);
                self.last_wake = Some((Ptid(p), sample));
            }
        }

        // Surviving events enter the real queue in global vseq order, so
        // their relative seqs equal the serial engine's.
        let mut to_schedule: Vec<(u64, Cycles, u32, u32)> = Vec::new();
        for (pos, ok) in oks.iter().enumerate() {
            for &(local, at, slot) in &ok.survivors {
                to_schedule.push((fresh_seq[pos][local as usize], at, ok.core as u32, slot));
            }
        }
        to_schedule.sort_unstable_by_key(|&(vseq, _, _, _)| vseq);
        for (_, at, core, slot) in to_schedule {
            self.events.schedule(at, Ev::SlotFree { core, slot });
        }

        // Serial-clock invariant: the serial engine's `now` never passes
        // a pending event (the burst gate stops first), so every pop
        // dispatches at its own due time. The max-of-cursors value can
        // pass one — a core whose fresh horizon was staggered low holds
        // a survivor *below* another core's final cursor — and an
        // unclamped `now` would re-base that survivor's dispatch and
        // drift its thread's whole future. Clamp to the earliest pending
        // event; a no-op when every survivor is at or past `B`.
        if let Some(h) = self.events.peek_time() {
            now_max = now_max.min(h);
        }
        self.now = now_max;

        // Splice each core's state back and batch the counter deltas.
        let mut quiet = 0u64;
        for ok in oks {
            let WorkerOk {
                core,
                threads,
                cs,
                caches,
                tlb,
                prefetch,
                domain,
                d_dispatches,
                d_insts,
                d_activate,
                quiet_stores,
                ..
            } = ok;
            for (p, th) in threads {
                self.threads[p as usize] = th;
            }
            self.cores[core] = cs;
            self.hier.commit_core_view(core, caches);
            self.tlbs[core] = tlb;
            self.prefetcher.absorb(prefetch);
            if let Some((base, bytes)) = domain {
                let lo = base as usize;
                self.mem[lo..lo + bytes.len()].copy_from_slice(&bytes);
            }
            self.counters.bump(self.hot.sched_dispatches, d_dispatches);
            self.counters.bump(self.hot.inst_executed, d_insts);
            for (i, &n) in d_activate.iter().enumerate() {
                self.counters.bump(self.hot.activate[i], n);
            }
            quiet += quiet_stores;
            self.shard_stats.insts_parallel += d_insts;
        }
        if quiet > 0 {
            self.filter.note_quiet_stores(quiet);
        }
        EpochOutcome::Committed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_queue_orders_by_time_then_key() {
        let mut q = LocalQueue::default();
        q.push(Cycles(10), 2, 0);
        q.push(Cycles(10), 1, 1);
        q.push(Cycles(5), 7, 0);
        assert_eq!(q.pop_below(Cycles(100)), Some((Cycles(5), 7, 0)));
        assert_eq!(q.pop_below(Cycles(100)), Some((Cycles(10), 1, 1)));
        assert_eq!(q.pop_below(Cycles(100)), Some((Cycles(10), 2, 0)));
        assert_eq!(q.pop_below(Cycles(100)), None);
    }

    #[test]
    fn local_queue_pop_below_is_strict() {
        let mut q = LocalQueue::default();
        q.push(Cycles(8), 0, 0);
        assert_eq!(q.next_deadline(), Some(Cycles(8)));
        assert_eq!(q.pop_below(Cycles(8)), None);
        assert_eq!(q.pop_below(Cycles(9)), Some((Cycles(8), 0, 0)));
    }

    #[test]
    fn local_queue_drain_returns_everything() {
        let mut q = LocalQueue::default();
        q.push(Cycles(3), 0, 0);
        q.push(Cycles(1), 1, 1);
        let mut all = q.drain_all();
        all.sort_unstable();
        assert_eq!(all, vec![(Cycles(1), 1, 1), (Cycles(3), 0, 0)]);
    }
}

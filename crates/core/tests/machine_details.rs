//! Machine-model details: timing knobs, cache/TLB interaction, DMA
//! semantics, and accounting edge cases.

use switchless_core::machine::{Machine, MachineConfig, MonitorKind};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

/// A park/wake worker used by several tests.
fn worker_src(base: u64, mb: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            movi r1, 0
        loop:
            monitor {mb}
            ld r2, {mb}
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            jmp loop
        "#
    )
}

#[test]
fn vector_state_threads_pay_bigger_transfers() {
    // §2 "Access to All Registers in the Kernel": threads using the
    // vector file carry 672-byte-class state; their tier transfers are
    // proportionally slower than base-state threads'.
    let measure = |vector: bool| -> u64 {
        let mut cfg = MachineConfig::small();
        cfg.store.rf_threads = 1; // force L2 parking immediately
        cfg.store.dirty_tracking = false; // move full state
        cfg.store.prefetch_on_wake = false;
        let mut m = Machine::new(cfg);
        let mb_a = m.alloc(64);
        let mb_b = m.alloc(64);
        let a = m
            .load_program(0, &assemble(&worker_src(0x10000, mb_a)).unwrap())
            .unwrap();
        let b = m
            .load_program(0, &assemble(&worker_src(0x20000, mb_b)).unwrap())
            .unwrap();
        m.set_thread_vector_state(a, vector);
        m.set_thread_vector_state(b, vector);
        m.start_thread(a);
        m.start_thread(b);
        m.run_for(Cycles(100_000));
        m.reset_wake_latency();
        // Alternate wakes: each wake displaces the other from the
        // 1-entry RF tier, so every wake is an L2-class transfer.
        for i in 1..=20u64 {
            m.poke_u64(mb_a, i);
            m.run_for(Cycles(5_000));
            m.poke_u64(mb_b, i);
            m.run_for(Cycles(5_000));
        }
        m.wake_latency().p50()
    };
    let base = measure(false);
    let vector = measure(true);
    // Base 160B vs vector 672B over a 32B/cy link: ~16 cycles more.
    assert!(
        vector >= base + 10,
        "vector-state wake {vector} should exceed base-state wake {base}"
    );
}

#[test]
fn dirty_tracking_shrinks_vector_transfer_back_down() {
    // The worker touches only 2-3 GPRs; with dirty tracking the vector
    // file never moves, so vector threads wake as fast as base threads.
    let measure = |vector: bool| -> u64 {
        let mut cfg = MachineConfig::small();
        cfg.store.rf_threads = 1;
        cfg.store.dirty_tracking = true;
        cfg.store.prefetch_on_wake = false;
        let mut m = Machine::new(cfg);
        let mb_a = m.alloc(64);
        let mb_b = m.alloc(64);
        let a = m
            .load_program(0, &assemble(&worker_src(0x10000, mb_a)).unwrap())
            .unwrap();
        let b = m
            .load_program(0, &assemble(&worker_src(0x20000, mb_b)).unwrap())
            .unwrap();
        m.set_thread_vector_state(a, vector);
        m.set_thread_vector_state(b, vector);
        m.start_thread(a);
        m.start_thread(b);
        m.run_for(Cycles(100_000));
        m.reset_wake_latency();
        for i in 1..=20u64 {
            m.poke_u64(mb_a, i);
            m.run_for(Cycles(5_000));
            m.poke_u64(mb_b, i);
            m.run_for(Cycles(5_000));
        }
        m.wake_latency().p50()
    };
    assert_eq!(measure(false), measure(true));
}

#[test]
fn dma_ddio_deposits_into_l3() {
    // With dma_warms_l3 (default), a thread reading freshly DMA'd data
    // hits L3, not DRAM.
    let run = |ddio: bool| -> u64 {
        let mut cfg = MachineConfig::small();
        cfg.dma_warms_l3 = ddio;
        let mut m = Machine::new(cfg);
        let buf = m.alloc(4096);
        let prog = assemble(&format!(
            r#"
            entry:
                movi r3, {buf}
                movi r4, {end}
            loop:
                ld r2, r3, 0
                addi r3, r3, 64
                blt r3, r4, loop
                halt
            "#,
            buf = buf,
            end = buf + 4096,
        ))
        .unwrap();
        let tid = m.load_program(0, &prog).unwrap();
        m.dma_write(buf, &[0xee; 4096]);
        m.start_thread(tid);
        assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(1_000_000)));
        m.billed_cycles(tid).0
    };
    let with_ddio = run(true);
    let without = run(false);
    assert!(
        with_ddio * 2 < without,
        "DDIO reads ({with_ddio}) should be far cheaper than DRAM reads ({without})"
    );
}

#[test]
fn tlb_misses_charge_page_walks() {
    // Striding across many pages pays the walk penalty; re-touching the
    // same pages is cheap.
    let mut cfg = MachineConfig::small();
    cfg.tlb.entries = 8;
    cfg.tlb.walk_penalty = Cycles(100);
    let mut m = Machine::new(cfg);
    // Touch 64 distinct pages (8x TLB capacity), then halt.
    let base = m.alloc(64 * 4096 + 4096) & !4095;
    let prog = assemble(&format!(
        r#"
        entry:
            movi r3, {base}
            movi r4, {end}
        loop:
            ld r2, r3, 0
            addi r3, r3, 4096
            blt r3, r4, loop
            halt
        "#,
        base = base,
        end = base + 64 * 4096,
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(10_000_000)));
    // 64 data loads, each TLB-missing: >= 64 * 100 cycles of walks, plus
    // DRAM fills. Well above the no-walk floor of ~64*200.
    let billed = m.billed_cycles(tid).0;
    assert!(billed >= 64 * (100 + 190), "billed {billed}");
}

#[test]
fn hot_loop_ifetch_is_free_after_first_miss() {
    // The frontend hides L1-hit instruction fetches; a tight ALU loop
    // therefore costs ~1 cycle per instruction after warmup.
    let mut m = small();
    let prog = assemble(
        r#"
        entry:
            movi r1, 10000
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(10_000_000)));
    let billed = m.billed_cycles(tid).0;
    // 20001 instructions; allow activation + cold fetches + slack.
    assert!(billed < 21_500, "hot loop cost {billed} cycles");
    assert!(billed >= 20_001, "cannot beat 1 cycle/inst: {billed}");
}

#[test]
fn hash_filter_machine_integration_spurious_wake_reparks() {
    let mut cfg = MachineConfig::small();
    cfg.monitor = MonitorKind::Hash;
    let mut m = Machine::new(cfg);
    let line = m.alloc(64);
    let watched = line;
    let neighbour = line + 8;
    let prog = assemble(&worker_src(0x10000, watched)).unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(20_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    // A write to the neighbouring word falsely wakes the thread; its
    // arm-check-wait loop re-parks it.
    m.poke_u64(neighbour, 1);
    m.run_for(Cycles(20_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    assert_eq!(m.counters().get("monitor.false_wakes"), 1);
    // A genuine write still gets through.
    m.poke_u64(watched, 7);
    m.run_for(Cycles(20_000));
    assert_eq!(m.thread_reg(tid, 1), 7);
}

#[test]
fn work_bursts_do_not_monopolize_a_slot_pair() {
    // Two SMT slots: a long `work` burst on one thread must not stall an
    // independent thread on the other slot.
    let mut m = small();
    let burst = assemble(".base 0x10000\nentry: work 100000\nhalt\n").unwrap();
    let nimble = assemble(
        ".base 0x20000\nentry:\n movi r1, 1000\nloop:\n addi r1, r1, -1\n bne r1, r0, loop\n halt\n",
    )
    .unwrap();
    let tb = m.load_program(0, &burst).unwrap();
    let tn = m.load_program(0, &nimble).unwrap();
    m.start_thread(tb);
    m.run_for(Cycles(100)); // burst occupies slot 0
    m.start_thread(tn);
    assert!(
        m.run_until_state(tn, ThreadState::Halted, Cycles(20_000)),
        "nimble thread should finish on the second slot long before the burst ends"
    );
    assert_eq!(
        m.thread_state(tb),
        ThreadState::Runnable,
        "burst still going"
    );
}

#[test]
fn counters_track_instruction_and_dispatch_totals() {
    let mut m = small();
    let prog = assemble("entry: nop\nnop\nnop\nhalt\n").unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.counters().get("inst.executed"), 4);
    assert_eq!(m.counters().get("sched.dispatches"), 4);
    assert!(m.billed_cycles(tid).0 >= 4);
}

#[test]
fn trace_ring_records_wake_and_block_events() {
    let mut m = small();
    m.trace_mut().set_enabled(true);
    let mb = m.alloc(64);
    let prog = assemble(&worker_src(0x10000, mb)).unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    m.poke_u64(mb, 1);
    m.run_for(Cycles(10_000));
    let dump = m.trace().dump();
    assert!(dump.contains("wake"), "{dump}");
    assert!(dump.contains("block"), "{dump}");
    assert!(dump.contains("waiting"), "{dump}");
}

#[test]
fn alloc_is_line_aligned_and_disjoint() {
    let mut m = small();
    let a = m.alloc(100);
    let b = m.alloc(1);
    let c = m.alloc(64);
    assert_eq!(a % 64, 0);
    assert_eq!(b % 64, 0);
    assert_eq!(c % 64, 0);
    assert!(b < a, "allocations grow downward without overlap");
    assert!(c + 64 <= b);
}

#[test]
fn byte_loads_and_stores_work() {
    // Parse a "packet": sum the first 4 header bytes, write the result
    // as a byte checksum at offset 63.
    let mut m = small();
    let buf = m.alloc(64);
    m.dma_write(buf, &[0x10, 0x20, 0x30, 0x40, 0, 0, 0, 0]);
    let prog = assemble(&format!(
        r#"
        entry:
            movi r3, {buf}
            ldb r1, r3, 0
            ldb r2, r3, 1
            add r1, r1, r2
            ldb r2, r3, 2
            add r1, r1, r2
            ldb r2, r3, 3
            add r1, r1, r2
            stb r1, r3, 63
            halt
        "#,
        buf = buf
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.start_thread(tid);
    assert!(m.run_until_state(tid, ThreadState::Halted, Cycles(100_000)));
    assert_eq!(m.thread_reg(tid, 1), 0xa0);
    assert_eq!(
        m.peek_u64(buf + 56) >> 56,
        0xa0,
        "checksum byte landed at offset 63"
    );
}

#[test]
fn byte_store_wakes_monitor() {
    // The generalized monitor sees single-byte stores too.
    let mut m = small();
    let mb = m.alloc(64);
    let waiter = assemble(&worker_src(0x10000, mb)).unwrap();
    let tid = m.load_program(0, &waiter).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    let poker = assemble(&format!(
        ".base 0x20000\nentry:\n movi r3, {mb}\n movi r1, 5\n stb r1, r3, 0\n halt\n"
    ))
    .unwrap();
    let tp = m.load_program(0, &poker).unwrap();
    m.start_thread(tp);
    m.run_for(Cycles(50_000));
    assert_eq!(
        m.thread_reg(tid, 1),
        5,
        "woken by the byte store and served it"
    );
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Waiting,
        "re-parked after serving"
    );
    assert_eq!(m.counters().get("monitor.wakes"), 1);
}

#[test]
fn byte_access_out_of_bounds_faults() {
    let mut m = small();
    let edp = m.alloc(32);
    let prog = assemble("entry:\n movi r3, 0x3fffff8\n ldb r1, r3, 100\n halt\n").unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
}

//! Superblock invalidation: every code-mutation route into a loaded
//! image must kill any formed superblock whose footprint it overlaps,
//! so stale pre-costed regions never execute. Routes covered: a thread
//! storing over its *own* hot region, another thread storing over it, a
//! host `poke_u64`, and a `dma_write` — each patching the *middle* of a
//! formed region (the entry slot stays untouched, so only the
//! block-overlap kill can catch it), with execution falling back to
//! single-step over the patched words.
//!
//! Each test force-enables the engine with `set_superblocks(true)` so
//! the scenario is exercised regardless of the `SWITCHLESS_SUPERBLOCKS`
//! environment: first a hot inert loop runs long enough to be formed
//! (well past the heat threshold), then the mutation lands, then the
//! patched behavior must be observed. With a stale block the loop
//! would keep replaying the old instructions and every assertion below
//! would fail.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

fn small_sb() -> Machine {
    let mut m = Machine::new(MachineConfig::small());
    m.set_superblocks(true);
    m
}

/// Encoded word for `halt`, produced by the real assembler.
fn halt_word() -> u64 {
    assemble("entry: halt").unwrap().words[0]
}

/// Encoded word for `movi r3, 42`.
fn movi_r3_42() -> u64 {
    assemble("entry: movi r3, 42\nhalt").unwrap().words[0]
}

/// The spin image shared by the externally-patched tests: a pure inert
/// self-loop whose 4-instruction body unrolls into one superblock.
/// `patchme` is the loop's third instruction — mid-region.
const SPIN: &str = r#"
    .base 0x10000
    entry:
        movi r1, 0
    loop:
        addi r1, r1, 1
        addi r2, r1, 3
    patchme:
        xor r3, r2, r1
        jmp loop
"#;

/// A thread stores over the middle of its *own* formed region; the
/// next pass over the loop must execute the patched instruction.
#[test]
fn own_store_kills_formed_block() {
    let mut m = small_sb();
    // Pass 1 runs the hot loop 64 times (forming the block), then the
    // thread patches `patchme` (mid-region) and reruns the loop.
    let p = assemble(
        r#"
        .base 0x10000
        entry:
            movi r5, 0
            movi r6, 64
            movi r7, 0
        hot:
            addi r1, r1, 1
            addi r2, r1, 3
        patchme:
            xor r3, r2, r1
            bne r1, r6, hot
            bne r7, r5, done
            movi r7, 1
            ld r4, newinst
            st r4, patchme
            movi r1, 0
            jmp hot
        done:
            halt
        newinst: .word 0
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.poke_u64(p.symbol("newinst").unwrap(), movi_r3_42());
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(
        m.thread_reg(tid, 3),
        42,
        "pass 2 must execute the patched `movi r3, 42`, not a stale \
         block's `xor`"
    );
}

/// Another thread stores over the middle of a spinning thread's formed
/// region (the mid-superblock self-modifying-store fallback case): the
/// spinner must fall back to single-step and execute the patched
/// `halt`. A stale block would replay the inert body forever.
#[test]
fn cross_thread_store_kills_formed_block() {
    let mut m = small_sb();
    let spinner = assemble(SPIN).unwrap();
    let patcher = assemble(
        r#"
        .base 0x30000
        mailbox: .word 0
        entry:
            monitor mailbox
            mwait
            ld r4, newinst
            st r4, r8, 0
            halt
        newinst: .word 0
        "#,
    )
    .unwrap();
    let patcher_tid = m.load_program(0, &patcher).unwrap();
    m.poke_u64(patcher.symbol("newinst").unwrap(), halt_word());
    m.set_thread_reg(patcher_tid, 8, spinner.symbol("patchme").unwrap());
    m.start_thread(patcher_tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(patcher_tid), ThreadState::Waiting);

    // The spinner has the core to itself (sole-runnable) and forms its
    // block while the patcher is parked in `mwait`.
    let spinner_tid = m.load_program(0, &spinner).unwrap();
    m.start_thread(spinner_tid);
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(spinner_tid), ThreadState::Runnable);
    let spun = m.thread_reg(spinner_tid, 1);
    assert!(spun > 1_000, "spinner should be deep into the hot loop");

    m.poke_u64(patcher.symbol("mailbox").unwrap(), 1); // wake the patcher
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(patcher_tid), ThreadState::Halted);
    assert_eq!(
        m.thread_state(spinner_tid),
        ThreadState::Halted,
        "the spinner must hit the patched `halt` mid-loop"
    );
    assert!(m.thread_reg(spinner_tid, 1) > spun);
}

/// Host `poke_u64` over the middle of a formed region.
#[test]
fn poke_kills_formed_block() {
    let mut m = small_sb();
    let p = assemble(SPIN).unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(tid), ThreadState::Runnable);
    assert!(m.thread_reg(tid, 1) > 1_000);

    m.poke_u64(p.symbol("patchme").unwrap(), halt_word());
    m.run_for(Cycles(10_000));
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Halted,
        "a host poke over a formed region must kill the block"
    );
}

/// `dma_write` over the middle of a formed region (two words, so a
/// subsequent word of the burst is covered too).
#[test]
fn dma_write_kills_formed_block() {
    let mut m = small_sb();
    let p = assemble(SPIN).unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(tid), ThreadState::Runnable);
    assert!(m.thread_reg(tid, 1) > 1_000);

    // Overwrite `patchme` and the `jmp` after it.
    let word = halt_word();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&word.to_le_bytes());
    bytes.extend_from_slice(&word.to_le_bytes());
    m.dma_write(p.symbol("patchme").unwrap(), &bytes);
    m.run_for(Cycles(10_000));
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Halted,
        "a DMA write over a formed region must kill the block"
    );
}

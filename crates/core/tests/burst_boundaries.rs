//! The machinery the burst engine leans on (DESIGN.md §8): idle-slot
//! parking and `kick_core` re-arming, and the exact deadline-boundary
//! semantics of `run_until_state` that the burst's watch-pair bailout
//! must preserve.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

/// A worker that parks on a mailbox and halts once it reads a nonzero
/// value.
fn parker_src(base: u64, mb: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            monitor {mb}
            ld r2, {mb}
            bne r2, r0, done
            mwait
        done:
            halt
        "#
    )
}

#[test]
fn idle_slots_park_and_wake_rearms_exactly_once() {
    // One thread on a 2-slot core: once it parks in mwait, every slot
    // must go idle — a fully parked machine may not burn dispatch
    // attempts (no retry storm while nothing is runnable).
    let mut m = Machine::new(MachineConfig::small());
    let mb = m.alloc(64);
    let t = m
        .load_program(0, &assemble(&parker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.start_thread(t);
    assert!(m.run_until_state(t, ThreadState::Waiting, Cycles(100_000)));

    let parked_at = m.now();
    let d0 = m.counters().get("sched.dispatches");
    let i0 = m.counters().get("inst.executed");
    m.run_for(Cycles(1_000_000));
    assert_eq!(
        m.counters().get("sched.dispatches"),
        d0,
        "idle slots must stay parked: no pick attempts while nothing is runnable"
    );
    assert_eq!(m.counters().get("inst.executed"), i0);

    // A wake re-arms the core: the thread runs again and halts. The
    // wake-to-dispatch path must fire exactly once — the woken thread
    // resumes after `mwait` and executes exactly its one remaining
    // instruction (`halt`), with no duplicate dispatch of the same wake.
    m.poke_u64(mb, 1);
    assert!(m.run_until_state(t, ThreadState::Halted, Cycles(100_000)));
    assert_eq!(
        m.counters().get("inst.executed") - i0,
        1,
        "one wake dispatches the parked thread exactly once (halt only)"
    );
    assert!(m.now() > parked_at);

    // And once halted, the machine is quiescent again.
    let d1 = m.counters().get("sched.dispatches");
    m.run_for(Cycles(1_000_000));
    assert_eq!(m.counters().get("sched.dispatches"), d1);
}

#[test]
fn run_until_state_deadline_boundary_is_inclusive_and_exact() {
    // Halt time is discovered once, then replayed on fresh machines to
    // pin the boundary semantics: an event *exactly at* the deadline
    // still fires, one cycle less and it must not.
    let halt_prog = assemble(
        ".base 0x10000\n\
         entry: addi r1, r1, 1\n\
         addi r1, r1, 1\n\
         halt\n",
    )
    .unwrap();
    let fresh = |prog: &switchless_isa::asm::Program| {
        let mut m = Machine::new(MachineConfig::small());
        let t = m.load_program(0, prog).unwrap();
        m.start_thread(t);
        (m, t)
    };

    let (mut probe, t) = fresh(&halt_prog);
    assert!(probe.run_until_state(t, ThreadState::Halted, Cycles(100_000)));
    let halt_at = probe.now();
    assert!(halt_at > Cycles::ZERO);

    // Deadline exactly on the halting event: reached, and `now` lands
    // exactly on the event time (the burst watch-pair bails the moment
    // the state flips, so no overshoot is allowed).
    let (mut m, t) = fresh(&halt_prog);
    assert!(m.run_until_state(t, ThreadState::Halted, halt_at));
    assert_eq!(m.now(), halt_at, "no overshoot past the state flip");

    // One cycle short: the final event is beyond the deadline and must
    // not run.
    let (mut m, t) = fresh(&halt_prog);
    assert!(!m.run_until_state(t, ThreadState::Halted, halt_at - Cycles(1)));
    assert_ne!(m.thread_state(t), ThreadState::Halted);

    // Re-running with the state already reached returns immediately
    // without advancing time.
    let (mut m, t) = fresh(&halt_prog);
    assert!(m.run_until_state(t, ThreadState::Halted, halt_at));
    let now = m.now();
    assert!(m.run_until_state(t, ThreadState::Halted, Cycles(100_000)));
    assert_eq!(m.now(), now);
}

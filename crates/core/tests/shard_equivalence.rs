//! Cross-engine equivalence: the core-sharded epoch engine
//! (`--machine-jobs N`) must be **bit-identical** to the serial engine —
//! same memory, same architectural state, same counters, same cache and
//! wake statistics, same `now` — for any job count, on workloads that
//! commit epochs, bail out of them, and fall back to serial replay.

use std::fmt::Write as _;

use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::ThreadId;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

/// Folds every observable surface of a machine into one string: thread
/// architectural state, billed cycles, wake statistics, all nonzero
/// counters, cache/TLB-visible statistics, the wake-latency histogram
/// (bucket-exact), and an FNV fold of the memory spans of interest.
/// Two machines with equal fingerprints are observably identical.
fn fingerprint(m: &Machine, tids: &[ThreadId], spans: &[(u64, u64)]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "now={:?} halted={:?}", m.now(), m.halted_reason());
    for (name, v) in m.counters().iter() {
        let _ = writeln!(s, "ctr {name}={v}");
    }
    for (i, &tid) in tids.iter().enumerate() {
        let regs: Vec<u64> = (0..16).map(|r| m.thread_reg(tid, r)).collect();
        let _ = writeln!(
            s,
            "t{i} state={:?} pc={:#x} billed={} wake={:?} regs={regs:?}",
            m.thread_state(tid),
            m.thread_pc(tid),
            m.billed_cycles(tid).0,
            m.thread_wake_stats(tid),
        );
    }
    let cores = m.config().cores;
    for c in 0..cores {
        let _ = writeln!(s, "store{c}={:?}", m.store_stats(c));
    }
    let _ = writeln!(
        s,
        "cache={:?} wb={:?}",
        m.cache_stats(),
        m.cache_writebacks()
    );
    let _ = writeln!(s, "hist={:?}", m.wake_latency());
    let _ = writeln!(s, "last_wake={:?}", m.last_wake_latency());
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(base, len) in spans {
        let mut a = base;
        while a + 8 <= base + len {
            h = (h ^ m.peek_u64(a)).wrapping_mul(0x0000_0100_0000_01b3);
            a += 8;
        }
    }
    let _ = writeln!(s, "mem={h:#x}");
    s
}

/// Per-core compute loops over disjoint memory domains, deliberately
/// staggered (different strides, work amounts and loop lengths) so the
/// cores' event streams do not stay phase-locked.
fn build_compute(cores: usize, jobs: usize) -> (Machine, Vec<ThreadId>, Vec<(u64, u64)>) {
    let mut cfg = MachineConfig::small();
    cfg.cores = cores;
    let mut m = Machine::new(cfg);
    m.set_machine_jobs(jobs);
    let mut tids = Vec::new();
    let mut spans = Vec::new();
    for c in 0..cores {
        let buf = m.alloc(4096);
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r3, {buf}
                movi r4, {end}
                movi r6, 0
            pass:
                ld r2, r3, 0
                addi r2, r2, {inc}
                st r2, r3, 0
                work {wk}
                addi r3, r3, {stride}
                addi r6, r6, 1
                blt r3, r4, pass
                movi r3, {buf}
                jmp pass
            "#,
            base = 0x10000 + (c as u64) * 0x4000,
            buf = buf,
            end = buf + 4096,
            inc = c + 1,
            wk = 7 + 6 * c,
            stride = 8 * (c as u64 + 1),
        ))
        .expect("compute program");
        let tid = m.load_program(c, &prog).expect("load");
        m.set_core_domain(c, buf, 4096);
        m.start_thread(tid);
        tids.push(tid);
        spans.push((buf, 4096));
    }
    (m, tids, spans)
}

/// Runs a machine to `t` in uneven increments (exercises epoch retries,
/// the serial floor, and the `now = t` tail on every segment boundary).
fn run_chunked(m: &mut Machine, t: u64) {
    let cuts = [t / 3, t / 3 + 1, 2 * t / 3, t];
    for &c in &cuts {
        m.run_until(Cycles(c));
    }
}

#[test]
fn sharded_matches_serial_on_domain_compute() {
    let t = 300_000;
    let (mut serial, tids_s, spans) = build_compute(4, 1);
    run_chunked(&mut serial, t);
    let want = fingerprint(&serial, &tids_s, &spans);

    for jobs in [2, 4] {
        let (mut par, tids_p, spans_p) = build_compute(4, jobs);
        run_chunked(&mut par, t);
        let got = fingerprint(&par, &tids_p, &spans_p);
        assert_eq!(want, got, "machine-jobs {jobs} diverged from serial");
        let st = par.shard_stats();
        assert!(
            st.committed > 0 && st.insts_parallel > 1_000,
            "expected real parallel epochs, got {st:?}"
        );
    }
}

#[test]
fn sharded_is_deterministic_across_runs() {
    let t = 150_000;
    let (mut a, tids_a, spans_a) = build_compute(4, 4);
    run_chunked(&mut a, t);
    let (mut b, tids_b, spans_b) = build_compute(4, 4);
    run_chunked(&mut b, t);
    assert_eq!(
        fingerprint(&a, &tids_a, &spans_a),
        fingerprint(&b, &tids_b, &spans_b),
    );
    assert_eq!(
        a.shard_stats(),
        b.shard_stats(),
        "epoch schedule must be deterministic"
    );
}

/// Monitor/mwait wake traffic driven by host callbacks: callbacks
/// truncate every epoch window, wakes produce cross-record effects
/// (histogram samples, `last_wake`), and threads repeatedly park —
/// the engine must interleave serial replay with epochs and still match.
fn build_wakers(jobs: usize) -> (Machine, Vec<ThreadId>, Vec<(u64, u64)>) {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    let mut m = Machine::new(cfg);
    m.set_machine_jobs(jobs);
    let mut tids = Vec::new();
    let mut spans = Vec::new();
    for c in 0..2usize {
        let word = m.alloc(64);
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
                movi r3, {word}
            loop:
                monitor r3
                mwait
                ld r2, r3, 0
                addi r5, r5, 1
                work {wk}
                jmp loop
            "#,
            base = 0x20000 + (c as u64) * 0x4000,
            word = word,
            wk = 11 + 8 * c,
        ))
        .expect("waker program");
        let tid = m.load_program(c, &prog).expect("load");
        m.start_thread(tid);
        tids.push(tid);
        spans.push((word, 64));
        for i in 0..40u64 {
            let at = Cycles(2_000 + i * 1_700 + (c as u64) * 531);
            let v = i + 1;
            m.at(at, move |mach| {
                mach.poke_u64(word, v);
            });
        }
    }
    (m, tids, spans)
}

#[test]
fn sharded_matches_serial_under_wake_traffic() {
    let t = 120_000;
    let (mut serial, tids_s, spans) = build_wakers(1);
    serial.run_until(Cycles(t));
    let want = fingerprint(&serial, &tids_s, &spans);

    let (mut par, tids_p, spans_p) = build_wakers(4);
    par.run_until(Cycles(t));
    let got = fingerprint(&par, &tids_p, &spans_p);
    assert_eq!(want, got, "wake-heavy workload diverged under machine-jobs");
}

/// Without registered domains every store leaves the shard, so epochs
/// containing stores bail and replay serially — slower, never wrong.
#[test]
fn sharded_matches_serial_without_domains() {
    let t = 60_000;
    let build = |jobs: usize| {
        let mut cfg = MachineConfig::small();
        cfg.cores = 2;
        let mut m = Machine::new(cfg);
        m.set_machine_jobs(jobs);
        let mut tids = Vec::new();
        let mut spans = Vec::new();
        for c in 0..2usize {
            let buf = m.alloc(1024);
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                entry:
                    movi r3, {buf}
                    movi r2, 0
                loop:
                    addi r2, r2, {inc}
                    st r2, r3, 0
                    work {wk}
                    jmp loop
                "#,
                base = 0x30000 + (c as u64) * 0x4000,
                buf = buf,
                inc = c + 1,
                wk = 9 + 5 * c,
            ))
            .expect("store program");
            let tid = m.load_program(c, &prog).expect("load");
            m.start_thread(tid);
            tids.push(tid);
            spans.push((buf, 1024));
        }
        (m, tids, spans)
    };
    let (mut serial, tids_s, spans) = build(1);
    serial.run_until(Cycles(t));
    let (mut par, tids_p, spans_p) = build(4);
    par.run_until(Cycles(t));
    assert_eq!(
        fingerprint(&serial, &tids_s, &spans),
        fingerprint(&par, &tids_p, &spans_p),
    );
    assert!(
        par.shard_stats().bailed > 0,
        "undomained stores should be bailing epochs: {:?}",
        par.shard_stats()
    );
}

/// Two enrolled threads per core: bursts are ineligible (no sole
/// runnable), so workers replay per-event scheduler rotation.
#[test]
fn sharded_matches_serial_with_scheduler_rotation() {
    let t = 80_000;
    let build = |jobs: usize| {
        let mut cfg = MachineConfig::small();
        cfg.cores = 2;
        let mut m = Machine::new(cfg);
        m.set_machine_jobs(jobs);
        let mut tids = Vec::new();
        let mut spans = Vec::new();
        for c in 0..2usize {
            let buf = m.alloc(2048);
            m.set_core_domain(c, buf, 2048);
            spans.push((buf, 2048));
            for k in 0..2u64 {
                let prog = assemble(&format!(
                    r#"
                    .base {base:#x}
                    entry:
                        movi r3, {slot}
                        movi r2, 0
                    loop:
                        addi r2, r2, 1
                        st r2, r3, 0
                        work {wk}
                        jmp loop
                    "#,
                    base = 0x40000 + (c as u64) * 0x8000 + k * 0x4000,
                    slot = buf + k * 512,
                    wk = 5 + 3 * (c as u64) + 2 * k,
                ))
                .expect("pair program");
                let tid = m.load_program(c, &prog).expect("load");
                m.start_thread(tid);
                tids.push(tid);
            }
        }
        (m, tids, spans)
    };
    let (mut serial, tids_s, spans) = build(1);
    run_chunked(&mut serial, t);
    let (mut par, tids_p, spans_p) = build(3);
    run_chunked(&mut par, t);
    assert_eq!(
        fingerprint(&serial, &tids_s, &spans),
        fingerprint(&par, &tids_p, &spans_p),
    );
}

#[test]
fn machine_jobs_one_is_the_serial_engine() {
    let (mut m, tids, spans) = build_compute(4, 1);
    m.run_until(Cycles(50_000));
    let st = m.shard_stats();
    assert_eq!(
        (st.committed, st.bailed, st.too_few, st.serial_events),
        (0, 0, 0, 0)
    );
    // And produces work: the fingerprint is non-trivial.
    assert!(fingerprint(&m, &tids, &spans).contains("ctr "));
}

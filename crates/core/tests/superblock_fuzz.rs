//! Differential fuzz for the superblock engine: seeded random guest
//! programs — inert ALU runs, bounded loops (the shape that forms
//! superblocks), data stores, and self-modifying stores that splat
//! random words over the program's own first slots — run on two
//! machines that differ *only* in the superblock toggle. Final machine
//! digests (every architectural register, pc, thread state, `now`,
//! executed-instruction count, and the full code + data memory) must
//! be bit-identical: superblocks may change wall-clock time, never
//! simulated state.
//!
//! The generator deliberately includes programs that decode garbage
//! (a random word stored over upcoming code can fail to decode, fault
//! the thread, and — with no exception descriptor installed — halt the
//! machine): every such path must still digest identically.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_isa::asm::assemble;
use switchless_sim::rng::Rng;
use switchless_sim::time::Cycles;

/// Builds a random guest program: a handful of counted loops whose
/// bodies mix inert ALU ops, data stores through `r7`, and occasional
/// random-word stores into the program's own low slots.
fn random_program(rng: &mut Rng) -> String {
    let mut src = String::from(
        ".base 0x10000\n\
         entry: movi r7, 0x20000\n\
         movi r6, ",
    );
    // Loop trip counts comfortably past the heat threshold, so blocks
    // form mid-run and keep executing after they do.
    src.push_str(&format!("{}\n", 24 + rng.next_below(200)));
    let nloops = 2 + rng.next_below(4);
    for l in 0..nloops {
        src.push_str(&format!("movi r5, 0\nl{l}:\n"));
        let body = 2 + rng.next_below(6);
        for _ in 0..body {
            let d = 1 + rng.next_below(4);
            let a = 1 + rng.next_below(4);
            let b = 1 + rng.next_below(4);
            match rng.next_below(12) {
                0..=2 => src.push_str(&format!("addi r{d}, r{a}, {}\n", rng.next_below(64))),
                3 => src.push_str(&format!("add r{d}, r{a}, r{b}\n")),
                4 => src.push_str(&format!("xor r{d}, r{a}, r{b}\n")),
                5 => src.push_str(&format!("mul r{d}, r{a}, r{b}\n")),
                6 => src.push_str(&format!("shl r{d}, r{a}, r{b}\n")),
                7 => src.push_str(&format!("movi r{d}, {}\n", rng.next_below(1024))),
                8 => src.push_str(&format!("mov r{d}, r{a}\n")),
                9 => src.push_str("nop\n"),
                // A data store: not inert, so it caps any region formed
                // from the slots before it.
                10 => src.push_str(&format!("st r{a}, r7, {}\n", 8 * rng.next_below(8))),
                // A self-modifying store: splat a random small word over
                // one of the program's first slots. The overwritten
                // word may decode to anything (or nothing — a fault);
                // both machines must agree exactly.
                _ => {
                    src.push_str(&format!("movi r4, {}\n", rng.next_below(0xffff)));
                    src.push_str(&format!("movi r8, {}\n", 0x10000 + 8 * rng.next_below(16)));
                    src.push_str("st r4, r8, 0\n");
                }
            }
        }
        src.push_str(&format!("addi r5, r5, 1\nblt r5, r6, l{l}\n"));
    }
    src.push_str("halt\n");
    src
}

/// Full observable digest of a machine after a run.
fn digest(m: &Machine, tid: switchless_core::machine::ThreadId, code_end: u64) -> Vec<u64> {
    let mut d = Vec::new();
    for r in 0..16 {
        d.push(m.thread_reg(tid, r));
    }
    d.push(m.thread_pc(tid));
    d.push(m.thread_state(tid) as u64);
    d.push(m.now().0);
    d.push(m.counters().get("inst.executed"));
    d.push(u64::from(m.halted_reason().is_some()));
    let mut addr = 0x10000;
    while addr < code_end {
        d.push(m.peek_u64(addr));
        addr += 8;
    }
    for i in 0..16 {
        d.push(m.peek_u64(0x20000 + 8 * i));
    }
    d
}

fn fuzz_once(seed: u64, run: Cycles) {
    let mut rng = Rng::seed_from(seed);
    let src = random_program(&mut rng);
    let prog = assemble(&src).unwrap_or_else(|e| panic!("seed {seed}: bad program: {e:?}\n{src}"));
    let run_one = |sb: bool| {
        let mut m = Machine::new(MachineConfig::small());
        m.set_superblocks(sb);
        let tid = m.load_program(0, &prog).expect("load");
        m.start_thread(tid);
        m.run_for(run);
        digest(&m, tid, prog.end())
    };
    let on = run_one(true);
    let off = run_one(false);
    assert_eq!(
        on, off,
        "seed {seed}: digests diverged between superblocks on and off\n{src}"
    );
}

#[test]
fn random_programs_digest_identically_with_and_without_superblocks() {
    for seed in 0..24 {
        fuzz_once(seed, Cycles(100_000));
    }
}

#[test]
fn long_run_digests_identically() {
    fuzz_once(0xb10c, Cycles(2_000_000));
}

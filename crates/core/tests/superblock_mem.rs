//! Memory-inclusive superblocks: the batched load/store fast path must
//! be behaviourally invisible. Each scenario runs on three twin
//! machines — default (superblocks + memory blocks), memory blocks off
//! (`set_mem_superblocks(false)`), and the whole engine off
//! (`set_superblocks(false)`) — and requires identical simulated time,
//! thread states, registers, statistics counters, and cache hit/miss
//! totals. Scenarios target the three bail routes the fast path adds:
//!
//! 1. an armed monitor line inside a block's store footprint (the
//!    aggregated `would_wake` intersection must bail so the wakeup fires
//!    at the exact serial cycle),
//! 2. a mid-footprint L1 eviction by a cross-core DMA write (the block
//!    must fall back without double-counting cache statistics), and
//! 3. a self-modifying store aimed at the block's *own* fetch lines
//!    (the probe must bail and the single-step store must kill the
//!    block).

use switchless_core::machine::{Machine, MachineConfig, ThreadId};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::{assemble, Program};
use switchless_sim::time::Cycles;

/// Engine configurations under comparison.
#[derive(Clone, Copy, Debug)]
enum Engine {
    MemBlocks,
    PureBlocksOnly,
    SingleStep,
}

const ENGINES: [Engine; 3] = [
    Engine::MemBlocks,
    Engine::PureBlocksOnly,
    Engine::SingleStep,
];

fn machine(engine: Engine) -> Machine {
    let mut m = Machine::new(MachineConfig::small());
    match engine {
        Engine::MemBlocks => {
            m.set_superblocks(true);
            m.set_mem_superblocks(true);
        }
        Engine::PureBlocksOnly => {
            m.set_superblocks(true);
            m.set_mem_superblocks(false);
        }
        Engine::SingleStep => {
            m.set_superblocks(false);
        }
    }
    m
}

/// Everything the scenarios compare across engines. Counter equality is
/// total (every bumped counter, not a curated subset): the fast path
/// commits the same `inst.executed`, dispatch, wake, and activation
/// counts as the serial walk or it is not equivalent.
#[derive(Debug, PartialEq)]
struct Observed {
    now: Cycles,
    states: Vec<ThreadState>,
    regs: Vec<[u64; 16]>,
    counters: Vec<(String, u64)>,
    cache: ((u64, u64), (u64, u64), (u64, u64)),
}

fn observe(m: &Machine, tids: &[ThreadId]) -> Observed {
    Observed {
        now: m.now(),
        states: tids.iter().map(|&t| m.thread_state(t)).collect(),
        regs: tids
            .iter()
            .map(|&t| core::array::from_fn(|r| m.thread_reg(t, r)))
            .collect(),
        counters: m
            .counters()
            .iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        cache: m.cache_stats(),
    }
}

/// Runs `scenario` on all three engines and asserts the final
/// observations match. A single end-of-scenario snapshot suffices:
/// every intermediate divergence would feed forward into the final
/// counters, registers, or simulated time.
fn assert_equivalent(scenario: impl Fn(&mut Machine) -> Vec<ThreadId>) {
    let mut baseline: Option<Observed> = None;
    for engine in ENGINES {
        let mut m = machine(engine);
        let tids = scenario(&mut m);
        let obs = observe(&m, &tids);
        match &baseline {
            None => baseline = Some(obs),
            Some(base) => {
                assert_eq!(
                    base, &obs,
                    "engine {engine:?} diverged from {:?}",
                    ENGINES[0]
                );
            }
        }
    }
}

fn halt_word() -> u64 {
    assemble("entry: halt").unwrap().words[0]
}

/// Hot storer: a 3-instruction self-loop whose body stores its counter
/// to `[r2]` every iteration — the canonical memory-inclusive block.
fn storer() -> Program {
    assemble(
        r#"
        .base 0x10000
        entry:
            movi r1, 0
            movi r2, 0x20000
        hot:
            addi r1, r1, 1
            st r1, r2, 0
            jmp hot
        "#,
    )
    .unwrap()
}

/// Scenario 1: a waiter arms a monitor on the line the hot block stores
/// to. The aggregated store-footprint/filter intersection must bail the
/// block, and the single-step store must deliver the wakeup at the
/// exact serial cycle — observed through `r7`, the storer's iteration
/// count the waiter reads at wake, and through `monitor.wakes` /
/// simulated `now` equality.
#[test]
fn armed_monitor_line_bails_block_and_wakes_on_serial_cycle() {
    assert_equivalent(|m| {
        let storer_prog = storer();
        let storer_tid = m.load_program(0, &storer_prog).unwrap();
        m.start_thread(storer_tid);
        // Form the block and get deep into the loop before the waiter
        // exists.
        m.run_for(Cycles(50_000));
        assert_eq!(m.thread_state(storer_tid), ThreadState::Runnable);
        assert!(m.thread_reg(storer_tid, 1) > 1_000, "storer must be hot");

        let waiter_prog = assemble(
            r#"
            .base 0x30000
            entry:
                movi r9, 0x20000
                monitor r9
                mwait
                ld r7, r9, 0
                halt
            "#,
        )
        .unwrap();
        let waiter_tid = m.load_program(0, &waiter_prog).unwrap();
        m.start_thread(waiter_tid);
        m.run_for(Cycles(50_000));
        assert_eq!(
            m.thread_state(waiter_tid),
            ThreadState::Halted,
            "the armed line sits in the block's store footprint; the \
             block must bail and the store must wake the waiter"
        );
        assert!(m.thread_reg(waiter_tid, 7) > 0);
        vec![storer_tid, waiter_tid]
    });
}

/// Scenario 2: mid-run, a DMA write evicts one line of the block's data
/// footprint from the storer's L1. The next block arrival must fall
/// back to single-step (re-warming the line) with zero double-counted
/// cache statistics — asserted by total equality of per-level hit/miss
/// counts against both fallback engines.
#[test]
fn dma_eviction_of_footprint_line_falls_back_without_stat_skew() {
    assert_equivalent(|m| {
        // Two-line store body, so the DMA can hit a non-entry line of
        // the data footprint.
        let p = assemble(
            r#"
            .base 0x10000
            entry:
                movi r1, 0
                movi r2, 0x20000
            hot:
                addi r1, r1, 1
                st r1, r2, 0
                st r1, r2, 64
                jmp hot
            "#,
        )
        .unwrap();
        let tid = m.load_program(0, &p).unwrap();
        m.start_thread(tid);
        m.run_for(Cycles(50_000));
        assert_eq!(m.thread_state(tid), ThreadState::Runnable);
        let before = m.thread_reg(tid, 1);
        assert!(before > 1_000, "storer must be hot");

        // Evict the second footprint line; the write also lands new
        // bytes the loop immediately overwrites.
        m.dma_write(0x20040, &0xdead_beefu64.to_le_bytes());
        m.run_for(Cycles(50_000));
        assert_eq!(m.thread_state(tid), ThreadState::Runnable);
        assert!(m.thread_reg(tid, 1) > before, "loop must keep running");
        vec![tid]
    });
}

/// Scenario 3: the hot block's own store is re-aimed at the block's
/// fetch lines. The probe's self-store-overlaps-own-code check must
/// bail, and the single-step store must kill the block: the thread
/// executes the freshly patched `halt` instead of replaying stale
/// pre-costed instructions forever.
#[test]
fn self_store_into_own_fetch_lines_kills_block() {
    assert_equivalent(|m| {
        let p = assemble(
            r#"
            .base 0x10000
            entry:
                movi r1, 0
                movi r5, 2000
                movi r2, 0x20000
                ld r4, newinst
            hot:
                addi r1, r1, 1
                st r4, r2, 0
            patchme:
                bne r1, r5, hot
                ld r2, paddr
                movi r1, 0
                jmp hot
            newinst: .word 0
            paddr:   .word 0
            "#,
        )
        .unwrap();
        let tid = m.load_program(0, &p).unwrap();
        m.poke_u64(p.symbol("newinst").unwrap(), halt_word());
        m.poke_u64(p.symbol("paddr").unwrap(), p.symbol("patchme").unwrap());
        m.start_thread(tid);
        m.run_for(Cycles(200_000));
        assert_eq!(
            m.thread_state(tid),
            ThreadState::Halted,
            "the self-aimed store must land and the patched `halt` must \
             execute; a stale block would spin forever"
        );
        // The patching store happens on the first post-switch iteration.
        assert_eq!(m.thread_reg(tid, 1), 1);
        vec![tid]
    });
}

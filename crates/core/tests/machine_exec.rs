//! End-to-end machine tests: real assembled programs executed by the
//! event-driven machine model.

use switchless_core::exception::{Descriptor, ExceptionKind};
use switchless_core::machine::{Machine, MachineConfig, ThreadId, TrapMode};
use switchless_core::perm::{Perms, TdtEntry};
use switchless_core::tid::{ThreadState, Vtid};
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

fn run(m: &mut Machine, cycles: u64) {
    m.run_for(Cycles(cycles));
}

#[test]
fn straight_line_arithmetic() {
    let mut m = small();
    let p = assemble(
        r#"
        entry:
            movi r1, 6
            movi r2, 7
            mul r3, r1, r2
            addi r3, r3, -2
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 10_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 3), 40);
}

#[test]
fn loop_and_memory() {
    let mut m = small();
    let p = assemble(
        r#"
        sum: .word 0
        entry:
            movi r1, 10     ; counter
            movi r2, 0      ; acc
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            st r2, sum
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.peek_u64(p.symbol("sum").unwrap()), 55);
}

#[test]
fn mwait_blocks_until_poke() {
    let mut m = small();
    let p = assemble(
        r#"
        mailbox: .word 0
        entry:
            monitor mailbox
            mwait
            ld r1, mailbox
            addi r1, r1, 1
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 5_000);
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    m.poke_u64(p.symbol("mailbox").unwrap(), 41);
    run(&mut m, 5_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 1), 42);
    assert_eq!(m.counters().get("mwait.blocked"), 1);
    assert_eq!(m.counters().get("monitor.wakes"), 1);
}

#[test]
fn store_racing_monitor_falls_through() {
    // Write arrives between monitor and mwait: mwait must not sleep.
    let mut m = small();
    let p = assemble(
        r#"
        mailbox: .word 0
        entry:
            monitor mailbox
            work 2000          ; window for the racing store
            mwait
            movi r9, 1
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 600); // thread arms the monitor, then sits in `work`
    m.poke_u64(p.symbol("mailbox").unwrap(), 1);
    run(&mut m, 50_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 9), 1);
    assert_eq!(m.counters().get("mwait.fallthrough"), 1);
    assert_eq!(m.counters().get("mwait.blocked"), 0);
}

#[test]
fn one_thread_wakes_another_by_store() {
    let mut m = small();
    let waiter = assemble(
        r#"
        .base 0x10000
        flag: .word 0
        entry:
            monitor flag
            mwait
            ld r1, flag
            halt
        "#,
    )
    .unwrap();
    let writer = assemble(
        r#"
        .base 0x20000
        entry:
            work 3000
            movi r1, 99
            st r1, 0x10000    ; the flag address
            halt
        "#,
    )
    .unwrap();
    let twait = m.load_program(0, &waiter).unwrap();
    let twrite = m.load_program(0, &writer).unwrap();
    m.start_thread(twait);
    run(&mut m, 1_000);
    assert_eq!(m.thread_state(twait), ThreadState::Waiting);
    m.start_thread(twrite);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(twait), ThreadState::Halted);
    assert_eq!(m.thread_reg(twait, 1), 99);
}

fn setup_tdt(m: &mut Machine, owner: ThreadId, entries: &[(u16, ThreadId, Perms)]) -> u64 {
    let base = m.alloc(8 * 64);
    for &(vtid, target, perms) in entries {
        m.write_tdt_entry(base, Vtid(vtid), TdtEntry::new(target.ptid, perms));
    }
    m.set_thread_tdtr(owner, base);
    base
}

#[test]
fn start_via_tdt_wakes_target() {
    let mut m = small();
    let starter = assemble(
        r#"
        .base 0x10000
        entry:
            start 1
            halt
        "#,
    )
    .unwrap();
    let target = assemble(
        r#"
        .base 0x20000
        entry:
            movi r5, 123
            halt
        "#,
    )
    .unwrap();
    let t_start = m.load_program(0, &starter).unwrap();
    let t_tgt = m.load_program(0, &target).unwrap();
    setup_tdt(&mut m, t_start, &[(1, t_tgt, Perms::START)]);
    m.start_thread(t_start);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(t_tgt), ThreadState::Halted);
    assert_eq!(m.thread_reg(t_tgt, 5), 123);
    assert_eq!(m.counters().get("thread.starts"), 1);
}

#[test]
fn user_mode_start_without_permission_faults() {
    let mut m = small();
    let starter = assemble(
        r#"
        .base 0x10000
        entry:
            start 1
            movi r9, 1      ; must never run
            halt
        "#,
    )
    .unwrap();
    let target = assemble(".base 0x20000\nentry: halt\n").unwrap();
    let t_start = m.load_program_user(0, &starter).unwrap();
    let t_tgt = m.load_program(0, &target).unwrap();
    // TDT grants STOP but not START.
    setup_tdt(&mut m, t_start, &[(1, t_tgt, Perms::STOP)]);
    let edp = m.alloc(32);
    m.set_thread_edp(t_start, edp);
    m.start_thread(t_start);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(t_start), ThreadState::Disabled);
    assert_eq!(
        m.thread_state(t_tgt),
        ThreadState::Disabled,
        "target must not start"
    );
    assert_eq!(m.thread_reg(t_start, 9), 0);
    let desc = Descriptor::decode([
        m.peek_u64(edp),
        m.peek_u64(edp + 8),
        m.peek_u64(edp + 16),
        m.peek_u64(edp + 24),
    ])
    .unwrap();
    assert_eq!(desc.kind, ExceptionKind::PermissionDenied);
    assert_eq!(desc.ptid, u64::from(t_start.ptid.0));
}

#[test]
fn supervisor_bypasses_tdt_permissions() {
    let mut m = small();
    let starter = assemble(".base 0x10000\nentry: start 1\nhalt\n").unwrap();
    let target = assemble(".base 0x20000\nentry: movi r5, 7\nhalt\n").unwrap();
    let t_start = m.load_program(0, &starter).unwrap(); // supervisor
    let t_tgt = m.load_program(0, &target).unwrap();
    setup_tdt(&mut m, t_start, &[(1, t_tgt, Perms::NONE)]);
    m.start_thread(t_start);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(t_tgt), ThreadState::Halted);
}

#[test]
fn non_hierarchical_permissions_b_over_a_c_over_b_only() {
    // §3.2: B may stop A, C may stop B, C has no power over A.
    let mut m = small();
    let prog_a = assemble(".base 0x10000\nentry: jmp entry\n").unwrap(); // spins
    let prog_b = assemble(
        r#"
        .base 0x20000
        entry:
            stop 0          ; stops A
            jmp entry
        "#,
    )
    .unwrap();
    let prog_c = assemble(
        r#"
        .base 0x30000
        entry:
            stop 0          ; C's vtid 0 maps to B
            start 1         ; C tries to touch A -> fault
            halt
        "#,
    )
    .unwrap();
    let a = m.load_program_user(0, &prog_a).unwrap();
    let b = m.load_program_user(0, &prog_b).unwrap();
    let c = m.load_program_user(0, &prog_c).unwrap();
    setup_tdt(&mut m, b, &[(0, a, Perms::STOP)]);
    // C's TDT: vtid0 -> B (stop allowed), vtid1 -> A (no permissions).
    let base = m.alloc(8 * 64);
    m.write_tdt_entry(base, Vtid(0), TdtEntry::new(b.ptid, Perms::STOP));
    m.write_tdt_entry(base, Vtid(1), TdtEntry::new(a.ptid, Perms::NONE));
    m.set_thread_tdtr(c, base);
    let edp = m.alloc(32);
    m.set_thread_edp(c, edp);

    m.start_thread(a);
    m.start_thread(b);
    run(&mut m, 2_000);
    assert_eq!(m.thread_state(a), ThreadState::Disabled, "B stopped A");
    m.start_thread(c);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(b), ThreadState::Disabled, "C stopped B");
    // C faulted on `start 1` (no START permission over A).
    assert_eq!(m.thread_state(c), ThreadState::Disabled);
    assert_eq!(
        Descriptor::decode([
            m.peek_u64(edp),
            m.peek_u64(edp + 8),
            m.peek_u64(edp + 16),
            m.peek_u64(edp + 24),
        ])
        .unwrap()
        .kind,
        ExceptionKind::PermissionDenied
    );
}

#[test]
fn rpush_passes_arguments_rpull_reads_results() {
    let mut m = small();
    let driver = assemble(
        r#"
        .base 0x10000
        entry:
            movi r1, 1      ; vtid of worker
            movi r2, 21
            rpush r1, r3, r2   ; worker.r3 = 21
            start 1
        spin:
            jmp spin
        "#,
    )
    .unwrap();
    let worker = assemble(
        r#"
        .base 0x20000
        entry:
            add r4, r3, r3
            halt
        "#,
    )
    .unwrap();
    let d = m.load_program(0, &driver).unwrap();
    let w = m.load_program(0, &worker).unwrap();
    setup_tdt(&mut m, d, &[(1, w, Perms::ALL)]);
    m.start_thread(d);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(w), ThreadState::Halted);
    assert_eq!(m.thread_reg(w, 4), 42);
}

#[test]
fn rpull_on_running_thread_faults() {
    let mut m = small();
    let driver = assemble(
        r#"
        .base 0x10000
        entry:
            movi r1, 1
            rpull r1, r2, pc
            halt
        "#,
    )
    .unwrap();
    let spinner = assemble(".base 0x20000\nentry: jmp entry\n").unwrap();
    let d = m.load_program(0, &driver).unwrap();
    let s = m.load_program(0, &spinner).unwrap();
    setup_tdt(&mut m, d, &[(1, s, Perms::ALL)]);
    let edp = m.alloc(32);
    m.set_thread_edp(d, edp);
    m.start_thread(s);
    run(&mut m, 1000);
    m.start_thread(d);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(d), ThreadState::Disabled);
    assert_eq!(
        m.counters().get("exception.thread_not_stopped"),
        1,
        "rpull on a runnable thread must fault"
    );
}

#[test]
fn mod_some_does_not_allow_pc_writes() {
    let mut m = small();
    let driver = assemble(
        r#"
        .base 0x10000
        entry:
            movi r1, 1
            movi r2, 0x20000
            rpush r1, pc, r2   ; needs MOD_MOST
            halt
        "#,
    )
    .unwrap();
    let target = assemble(".base 0x20000\nentry: halt\n").unwrap();
    let d = m.load_program_user(0, &driver).unwrap();
    let t = m.load_program(0, &target).unwrap();
    setup_tdt(&mut m, d, &[(1, t, Perms::MOD_SOME)]);
    let edp = m.alloc(32);
    m.set_thread_edp(d, edp);
    m.start_thread(d);
    run(&mut m, 100_000);
    assert_eq!(m.counters().get("exception.permission_denied"), 1);
}

#[test]
fn stale_tdt_entry_used_until_invtid() {
    // Load-bearing §3.1 semantics: TDT updates require invtid.
    let mut m = small();
    let starter = assemble(
        r#"
        .base 0x10000
        entry:
            start 1        ; caches vtid1 -> old target
            hcall 1        ; host swaps the TDT entry in memory (no invtid)
            start 1        ; still starts the OLD target (stale cache)
            movi r1, 1
            invtid r1      ; now invalidate
            start 1        ; starts the NEW target
            halt
        "#,
    )
    .unwrap();
    let old_t = assemble(".base 0x20000\nentry: movi r5, 1\nhalt\n").unwrap();
    let new_t = assemble(".base 0x30000\nentry: movi r5, 2\nhalt\n").unwrap();
    let s = m.load_program(0, &starter).unwrap();
    let o = m.load_program(0, &old_t).unwrap();
    let n = m.load_program(0, &new_t).unwrap();
    let base = setup_tdt(&mut m, s, &[(1, o, Perms::ALL)]);
    let new_entry = TdtEntry::new(n.ptid, Perms::ALL);
    let mut starts_of_old = Vec::new();
    m.register_hcall(1, move |mach, _tid| {
        // Rewrite memory only; deliberately no cache invalidation.
        mach.poke_u64(base + 8, new_entry.encode());
        starts_of_old.push(());
    });
    m.start_thread(s);
    run(&mut m, 200_000);
    assert_eq!(m.thread_state(s), ThreadState::Halted);
    assert_eq!(m.thread_reg(o, 5), 1, "old target ran (stale entry)");
    assert_eq!(m.thread_reg(n, 5), 2, "new target ran after invtid");
    // The stale `start 1` re-started the old (already halted) target: a
    // no-op on a Halted thread, so old target ran exactly once.
    assert_eq!(m.counters().get("thread.starts"), 3);
}

#[test]
fn div_zero_writes_descriptor_and_wakes_handler() {
    let mut m = small();
    let edp = 0x8000u64;
    let faulter = assemble(
        r#"
        .base 0x10000
        entry:
            movi r1, 10
            movi r2, 0
            div r3, r1, r2     ; fault
            movi r9, 1         ; must not run
            halt
        "#,
    )
    .unwrap();
    let handler = assemble(&format!(
        r#"
        .base 0x20000
        entry:
            monitor {edp}
            mwait
            ld r1, {edp}        ; kind
            ld r2, {edp_pc}     ; faulting pc
            halt
        "#,
        edp = edp,
        edp_pc = edp + 16,
    ))
    .unwrap();
    let f = m.load_program(0, &faulter).unwrap();
    let h = m.load_program(0, &handler).unwrap();
    m.set_thread_edp(f, edp);
    m.start_thread(h);
    run(&mut m, 2_000);
    assert_eq!(m.thread_state(h), ThreadState::Waiting);
    m.start_thread(f);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(f), ThreadState::Disabled);
    assert_eq!(m.thread_state(h), ThreadState::Halted);
    assert_eq!(m.thread_reg(h, 1), ExceptionKind::DivZero.code());
    assert_eq!(m.thread_reg(h, 2), 0x10000 + 16, "pc of the div");
    assert_eq!(m.thread_reg(f, 9), 0);
}

#[test]
fn fault_without_edp_halts_machine() {
    let mut m = small();
    let p = assemble(
        r#"
        entry:
            movi r2, 0
            div r1, r1, r2
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 100_000);
    let reason = m.halted_reason().expect("machine must halt");
    assert!(reason.contains("triple-fault"), "{reason}");
    assert_eq!(m.counters().get("machine.halt"), 1);
}

#[test]
fn consecutive_exceptions_chain_through_handlers() {
    // A faults -> B (A's handler) itself faults -> C handles B's fault.
    let mut m = small();
    let edp_a = 0x8000u64;
    let edp_b = 0x8100u64;
    let a = assemble(
        r#"
        .base 0x10000
        entry:
            movi r2, 0
            div r1, r1, r2
            halt
        "#,
    )
    .unwrap();
    let b = assemble(&format!(
        r#"
        .base 0x20000
        entry:
            monitor {edp_a}
            mwait
            movi r2, 0
            div r1, r1, r2    ; handler faults too (§3.2's example)
            halt
        "#
    ))
    .unwrap();
    let c = assemble(&format!(
        r#"
        .base 0x30000
        entry:
            monitor {edp_b}
            mwait
            ld r1, {edp_b}
            halt
        "#
    ))
    .unwrap();
    let ta = m.load_program(0, &a).unwrap();
    let tb = m.load_program(0, &b).unwrap();
    let tc = m.load_program(0, &c).unwrap();
    m.set_thread_edp(ta, edp_a);
    m.set_thread_edp(tb, edp_b);
    m.start_thread(tb);
    m.start_thread(tc);
    run(&mut m, 5_000);
    m.start_thread(ta);
    run(&mut m, 200_000);
    assert!(
        m.halted_reason().is_none(),
        "chain ends at C, no machine halt"
    );
    assert_eq!(m.thread_state(tc), ThreadState::Halted);
    assert_eq!(m.thread_reg(tc, 1), ExceptionKind::DivZero.code());
    assert_eq!(m.counters().get("exception.div_zero"), 2);
}

#[test]
fn syscall_descriptor_mode_disables_and_delivers() {
    let mut m = small();
    let edp = 0x8000u64;
    let app = assemble(
        r#"
        .base 0x10000
        entry:
            syscall 7
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program_user(0, &app).unwrap();
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    run(&mut m, 10_000);
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    let d = Descriptor::decode([
        m.peek_u64(edp),
        m.peek_u64(edp + 8),
        m.peek_u64(edp + 16),
        m.peek_u64(edp + 24),
    ])
    .unwrap();
    assert_eq!(d.kind, ExceptionKind::SyscallTrap);
    assert_eq!(d.info, 7);
    // The saved pc points past the syscall: restarting resumes after it.
    assert_eq!(
        m.thread_pc(ThreadId {
            core: 0,
            ptid: tid.ptid
        }),
        0x10000 + 8
    );
    m.start_thread(tid);
    run(&mut m, 10_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
}

#[test]
fn syscall_same_thread_mode_vectors_and_returns() {
    let mut cfg = MachineConfig::small();
    cfg.trap = TrapMode::SameThread {
        syscall_cost: Cycles(300),
        vmexit_cost: Cycles(1000),
    };
    let mut m = Machine::new(cfg);
    let image = assemble(
        r#"
        .base 0x10000
        entry:
            syscall 5
            movi r9, 1       ; runs after return
            halt
        kernel:
            mov r10, r11      ; observe syscall number
            movi r13, 0
            csrw mode, r13    ; drop back to user
            jr r14
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &image).unwrap();
    m.set_syscall_vector(image.symbol("kernel").unwrap());
    m.start_thread(tid);
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 10), 5);
    assert_eq!(m.thread_reg(tid, 9), 1);
    assert_eq!(m.counters().get("syscall.same_thread"), 1);
    // The 300-cycle entry penalty was billed to the thread.
    assert!(m.billed_cycles(tid) >= Cycles(300));
}

#[test]
fn vmcall_descriptor_mode_counts_vm_exit() {
    let mut m = small();
    let edp = 0x8000u64;
    let guest = assemble(".base 0x10000\nentry: vmcall 3\nhalt\n").unwrap();
    let tid = m.load_program_user(0, &guest).unwrap();
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    run(&mut m, 10_000);
    assert_eq!(m.counters().get("exception.vm_exit"), 1);
    assert_eq!(m.peek_u64(edp + 24), 3);
}

#[test]
fn privileged_op_from_user_faults() {
    let mut m = small();
    let edp = 0x8000u64;
    let p = assemble(
        r#"
        entry:
            movi r1, 1
            csrw mode, r1    ; privileged
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program_user(0, &p).unwrap();
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    run(&mut m, 10_000);
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.peek_u64(edp), ExceptionKind::PrivilegedOp.code());
}

#[test]
fn bad_memory_access_faults() {
    let mut m = small();
    let edp = 0x8000u64;
    let p = assemble(
        r#"
        entry:
            movi r1, 0x3ff0000
            ld r2, r1, 0      ; beyond 4 MiB memory
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    run(&mut m, 10_000);
    assert_eq!(m.peek_u64(edp), ExceptionKind::BadMemory.code());
}

#[test]
fn dma_write_wakes_waiting_thread() {
    let mut m = small();
    let p = assemble(
        r#"
        ring: .word 0
        entry:
            monitor ring
            mwait
            ld r1, ring
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 5_000);
    let ring = p.symbol("ring").unwrap();
    // Device DMA at a future time via the host-event API.
    m.at(Cycles(20_000), move |mach| {
        mach.dma_write(ring, &77u64.to_le_bytes());
    });
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 1), 77);
    assert_eq!(m.counters().get("dma.bytes"), 8);
}

#[test]
fn hcall_invokes_host_service_with_charge() {
    let mut m = small();
    let p = assemble("entry: hcall 9\nhalt\n").unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.register_hcall(9, |mach, t| {
        mach.set_thread_reg(t, 1, 0xabc);
        mach.charge(Cycles(5_000));
    });
    m.start_thread(tid);
    let t0 = m.now();
    run(&mut m, 100_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 1), 0xabc);
    assert!(m.billed_cycles(tid) >= Cycles(5_000), "charge was billed");
    let _ = t0;
}

#[test]
fn round_robin_shares_pipeline_between_spinners() {
    let mut m = small();
    let a = assemble(".base 0x10000\nentry: jmp entry\n").unwrap();
    let b = assemble(".base 0x20000\nentry: jmp entry\n").unwrap();
    let ta = m.load_program(0, &a).unwrap();
    let tb = m.load_program(0, &b).unwrap();
    m.start_thread(ta);
    m.start_thread(tb);
    run(&mut m, 50_000);
    let ua = m.billed_cycles(ta).0 as f64;
    let ub = m.billed_cycles(tb).0 as f64;
    assert!(ua > 0.0 && ub > 0.0);
    let ratio = ua / ub;
    assert!((0.8..1.25).contains(&ratio), "unfair split: {ua} vs {ub}");
}

#[test]
fn halted_thread_cannot_be_restarted() {
    let mut m = small();
    let p = assemble("entry: halt\n").unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 1_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    m.start_thread(tid);
    run(&mut m, 1_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
}

#[test]
fn image_overlap_rejected() {
    let mut m = small();
    let p1 = assemble(".base 0x10000\nentry: halt\nnop\nnop\n").unwrap();
    let p2 = assemble(".base 0x10008\nentry: halt\n").unwrap();
    m.load_program(0, &p1).unwrap();
    let err = m.load_program(0, &p2).unwrap_err();
    assert_eq!(format!("{err}"), "program image overlaps loaded memory");
}

#[test]
fn out_of_threads_reported() {
    let mut cfg = MachineConfig::small();
    cfg.ptids_per_core = 1;
    let mut m = Machine::new(cfg);
    m.create_thread(0).unwrap();
    assert!(m.create_thread(0).is_err());
    assert!(m.create_thread(5).is_err(), "bad core index");
}

#[test]
fn deterministic_across_runs() {
    let run_once = || {
        let mut m = small();
        let p = assemble(
            r#"
            box1: .word 0
            entry:
                monitor box1
                mwait
                ld r1, box1
                addi r1, r1, 5
                st r1, box1
                halt
            "#,
        )
        .unwrap();
        let tid = m.load_program(0, &p).unwrap();
        m.start_thread(tid);
        m.at(Cycles(7_777), move |mach| {
            let a = 0x10000u64; // box1
            mach.poke_u64(a, 10);
        });
        run(&mut m, 100_000);
        (
            m.now().0,
            m.peek_u64(0x10000),
            m.counters().get("inst.executed"),
            m.billed_cycles(tid).0,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn wake_latency_is_nanosecond_scale_for_rf_resident_thread() {
    // The paper's headline: resuming a hardware thread is nanosecond
    // scale (~20 cycles pipeline refill when RF-resident).
    let mut m = small();
    let p = assemble(
        r#"
        mbox: .word 0
        entry:
            monitor mbox
            mwait
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    run(&mut m, 5_000);
    m.reset_wake_latency();
    m.poke_u64(p.symbol("mbox").unwrap(), 1);
    run(&mut m, 10_000);
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    let h = m.wake_latency();
    assert_eq!(h.count(), 1);
    // RF-resident: ~20 cycles = ~7ns at 3GHz. Allow generous slack for
    // slot contention.
    assert!(h.max() <= 100, "wake-to-dispatch took {} cycles", h.max());
}

#[test]
fn migration_moves_execution_to_new_core() {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    let mut m = Machine::new(cfg);
    let p = assemble(
        r#"
        entry:
        loop:
            work 1000
            jmp loop
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(50_000));
    let billed_before = m.billed_cycles(tid);
    assert!(billed_before > Cycles(10_000), "ran on core 0");
    let tid2 = m.migrate_thread(tid, 1).unwrap();
    assert_eq!(tid2.core, 1);
    m.run_for(Cycles(50_000));
    // Billing is per-core: progress after migration accrues on core 1.
    let on_new_core = m.billed_cycles(tid2);
    assert!(
        on_new_core > Cycles(10_000),
        "thread kept running on core 1: {on_new_core}"
    );
    assert_eq!(m.counters().get("thread.migrations"), 1);
}

#[test]
fn migration_charges_transfer_and_preserves_state() {
    let mut cfg = MachineConfig::small();
    cfg.cores = 2;
    let mut m = Machine::new(cfg);
    let p = assemble(
        r#"
        mbox: .word 0
        entry:
            movi r5, 777
        loop:
            monitor mbox
            ld r2, mbox
            bne r2, r0, done
            mwait
            jmp loop
        done:
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    // Migrate while parked; registers must survive; the wake happens on
    // the new core.
    let tid2 = m.migrate_thread(tid, 1).unwrap();
    m.poke_u64(p.symbol("mbox").unwrap(), 1);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid2), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid2, 5), 777, "registers survived migration");
}

#[test]
fn migration_to_bad_core_rejected_and_same_core_noop() {
    let mut m = Machine::new(MachineConfig::small());
    let p = assemble("entry: jmp entry\n").unwrap();
    let tid = m.load_program(0, &p).unwrap();
    assert!(m.migrate_thread(tid, 9).is_err());
    let same = m.migrate_thread(tid, 0).unwrap();
    assert_eq!(same.core, 0);
    assert_eq!(m.counters().get("thread.migrations"), 0);
}

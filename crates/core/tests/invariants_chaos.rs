//! Machine-wide invariant checking and the burst/fault timing contract.
//!
//! Three groups:
//!
//! * The invariant checker (§7) stays clean across healthy runs — park/wake
//!   traffic, exception descriptors, overflow drops — and records registered
//!   violations with name, time and detail when one trips.
//! * A fault (any host callback) scheduled mid-burst bounds the burst via
//!   `next_deadline`: the callback observes the exact cycle it was scheduled
//!   for and the exact architectural state a single-stepped machine would
//!   show. Faults are never deferred to a burst boundary.
//! * Watchdog edges: the deadline is exclusive-before/inclusive-at, and a
//!   wake racing the deadline cycle loses deterministically (FIFO by
//!   schedule order) to the earlier-armed watchdog.

use std::cell::RefCell;
use std::rc::Rc;

use switchless_core::exception::ExceptionKind;
use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

/// A park/serve worker: waits for new values in its mailbox forever.
fn worker_src(base: u64, mb: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            movi r1, 0
        loop:
            monitor {mb}
            ld r2, {mb}
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            jmp loop
        "#
    )
}

/// A busy spinner that never parks, so the burst engine engages fully.
fn spinner_src(base: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            addi r1, r1, 1
            jmp entry
        "#
    )
}

// ---------------------------------------------------------------- invariants

/// A healthy park/wake workload trips nothing: every boundary check passes
/// and the report stays clean.
#[test]
fn invariants_clean_on_healthy_park_wake() {
    let mut m = small();
    m.enable_invariants(true);
    let mb = m.alloc(64);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(2_000));
    for i in 1..=5u64 {
        m.poke_u64(mb, i);
        m.run_for(Cycles(5_000));
    }
    m.check_invariants(); // final sweep after the run settles
    let rep = m.invariant_report();
    assert!(rep.is_clean(), "violations: {:?}", rep.violations());
    assert!(rep.checks() > 5, "boundary hook actually ran");
}

/// Exception descriptors — including an overflow drop — keep the
/// posted/completed/dropped ledger balanced under checking.
#[test]
fn invariants_clean_across_descriptor_overflow() {
    let mut m = small();
    m.enable_invariants(true);
    let edp = m.alloc(32);
    let mk = |base: u64| {
        assemble(&format!(
            ".base {base:#x}\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n"
        ))
        .unwrap()
    };
    let ta = m.load_program_user(0, &mk(0x10000)).unwrap();
    let tb = m.load_program_user(0, &mk(0x20000)).unwrap();
    m.set_thread_edp(ta, edp);
    m.set_thread_edp(tb, edp);
    m.start_thread(ta);
    m.run_for(Cycles(10_000));
    m.start_thread(tb);
    m.run_for(Cycles(10_000));
    assert_eq!(m.counters().get("exception.descriptor_overflow"), 1);
    m.check_invariants();
    let rep = m.invariant_report();
    assert!(rep.is_clean(), "violations: {:?}", rep.violations());
}

/// A registered invariant that trips is recorded with its name, the cycle
/// it tripped at, and the diagnostic detail — and keeps being re-checked.
#[test]
fn registered_invariant_violation_is_recorded() {
    let mut m = small();
    m.enable_invariants(true);
    m.register_invariant("test.too_many_insts", |m| {
        let n = m.counters().get("inst.executed");
        (n >= 10).then(|| format!("{n} instructions executed"))
    });
    let tid = m
        .load_program(0, &assemble(&spinner_src(0x10000)).unwrap())
        .unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    m.check_invariants();
    let rep = m.invariant_report();
    assert!(!rep.is_clean());
    assert!(rep.total() >= 1);
    let v = &rep.violations()[0];
    assert_eq!(v.invariant, "test.too_many_insts");
    assert!(v.detail.contains("instructions executed"));
}

/// Checking is off by default: the boundary hook must not run (the report
/// records no checks), so default-path runs pay only a branch per event.
#[test]
fn invariants_off_by_default() {
    let mut m = small();
    let mb = m.alloc(64);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    assert_eq!(m.invariant_report().checks(), 0);
    assert!(m.invariant_report().is_clean());
}

// ---------------------------------------------------- burst/fault bounding

/// A fault callback scheduled mid-burst must observe the machine at
/// exactly its scheduled cycle, with exactly the architectural state a
/// single-stepped machine shows — the burst engine's event-horizon gate
/// (`next_deadline`) bounds the burst, never deferring the event.
#[test]
fn fault_event_mid_burst_bounds_the_burst() {
    const T: u64 = 40_000;
    let observe = |dense_single_step: bool| -> (u64, u64, u64) {
        let mut m = small();
        let tid = m
            .load_program(0, &assemble(&spinner_src(0x10000)).unwrap())
            .unwrap();
        m.start_thread(tid);
        if dense_single_step {
            // Reference machine: an event due every cycle keeps the
            // event-horizon at 1, forcing the engine to single-step.
            for c in 1..=T {
                m.at(Cycles(c), |_| {});
            }
        }
        let seen = Rc::new(RefCell::new((0u64, 0u64, 0u64)));
        let rec = Rc::clone(&seen);
        m.at(Cycles(T), move |mach| {
            *rec.borrow_mut() = (
                mach.now().0,
                mach.counters().get("inst.executed"),
                mach.thread_reg(tid, 1),
            );
        });
        m.run_until(Cycles(T + 1_000));
        let got = *seen.borrow();
        got
    };
    let burst = observe(false);
    let stepped = observe(true);
    assert_eq!(
        burst.0, T,
        "callback ran at its scheduled cycle, not a burst boundary"
    );
    assert_eq!(
        burst, stepped,
        "mid-burst state identical to single-stepped reference"
    );
    assert!(burst.1 > 1_000, "spinner actually executed a long stretch");
}

// --------------------------------------------------------- watchdog edges

/// The watchdog deadline is exact: one cycle before it the parked thread
/// is untouched; at the deadline cycle it faults with `WatchdogExpired`.
#[test]
fn watchdog_fires_exactly_at_deadline_cycle() {
    const W: u64 = 10_000;
    let mut m = small();
    let mb = m.alloc(64);
    let edp = m.alloc(32);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.set_thread_edp(tid, edp);
    m.set_thread_watchdog(tid, Some(Cycles(W)));
    m.start_thread(tid);
    assert!(m.run_until_state(tid, ThreadState::Waiting, Cycles(100_000)));
    let parked = m.now().0; // the watchdog epoch is armed at the park cycle
    m.run_until(Cycles(parked + W - 1));
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Waiting,
        "one cycle early: untouched"
    );
    assert_eq!(m.counters().get("watchdog.fired"), 0);
    m.run_until(Cycles(parked + W));
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Disabled,
        "fires exactly at deadline"
    );
    assert_eq!(m.counters().get("watchdog.fired"), 1);
    assert_eq!(m.peek_u64(edp), ExceptionKind::WatchdogExpired.code());
    assert_eq!(m.thread_fault_time(tid), Some(Cycles(parked + W)));
}

/// A wake landing on the deadline cycle itself loses deterministically:
/// the watchdog callback was scheduled first (at park time), so same-cycle
/// FIFO order fires it before the late wake, which then finds a disabled
/// thread and is refused.
#[test]
fn wake_on_deadline_cycle_loses_to_watchdog() {
    const W: u64 = 10_000;
    let mut m = small();
    let mb = m.alloc(64);
    let edp = m.alloc(32);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.set_thread_edp(tid, edp);
    m.set_thread_watchdog(tid, Some(Cycles(W)));
    m.start_thread(tid);
    assert!(m.run_until_state(tid, ThreadState::Waiting, Cycles(100_000)));
    let deadline = m.now().0 + W;
    // Scheduled after the park, so it sorts after the watchdog at `deadline`.
    m.at(Cycles(deadline), move |mach| {
        mach.poke_u64(mb, 1);
    });
    m.run_until(Cycles(deadline + 50_000));
    assert_eq!(m.counters().get("watchdog.fired"), 1);
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Disabled,
        "late wake cannot resurrect"
    );
    assert_eq!(m.peek_u64(edp), ExceptionKind::WatchdogExpired.code());
}

/// A wake one cycle before the deadline saves the thread: the epoch guard
/// makes the stale timer a no-op even though its event still fires.
#[test]
fn wake_one_cycle_before_deadline_saves_the_thread() {
    const W: u64 = 10_000;
    let mut m = small();
    let mb = m.alloc(64);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.set_thread_watchdog(tid, Some(Cycles(W)));
    m.start_thread(tid);
    assert!(m.run_until_state(tid, ThreadState::Waiting, Cycles(100_000)));
    let deadline = m.now().0 + W;
    m.at(Cycles(deadline - 1), move |mach| {
        mach.poke_u64(mb, 1);
    });
    // Run just past the stale timer — but well short of the fresh deadline
    // armed by the re-park, which would (correctly) fire if left wedged.
    m.run_until(Cycles(deadline + W / 2));
    assert_eq!(
        m.counters().get("watchdog.fired"),
        0,
        "stale epoch timer is inert"
    );
    assert_eq!(
        m.thread_state(tid),
        ThreadState::Waiting,
        "served and re-parked"
    );
}

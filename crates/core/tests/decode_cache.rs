//! Decode-cache invalidation: self-modifying and externally-modified
//! code must execute the *new* instruction, never a stale pre-decoded
//! one. Every mutation route into a loaded image is covered: a thread
//! storing over its own code, a thread storing over another thread's
//! image, a host `poke_u64`, and a `dma_write`.

use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

/// Encoded word for `movi r2, 42`, produced by the real assembler so the
/// tests never hand-roll encodings.
fn movi_r2_42() -> u64 {
    let donor = assemble("entry: movi r2, 42\nhalt").unwrap();
    donor.words[0]
}

#[test]
fn thread_patches_its_own_code() {
    let mut m = small();
    // The program loads a replacement instruction word (prepared by the
    // host in its `newinst` data cell) and stores it over `patchme`
    // before reaching it.
    let p = assemble(
        r#"
        entry:
            ld r1, newinst
            st r1, patchme
        patchme:
            movi r2, 1
            halt
        newinst: .word 0
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.poke_u64(p.symbol("newinst").unwrap(), movi_r2_42());
    m.start_thread(tid);
    m.run_for(Cycles(10_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(
        m.thread_reg(tid, 2),
        42,
        "the store over `patchme` must invalidate the decoded copy"
    );
}

#[test]
fn thread_patches_another_threads_image() {
    let mut m = small();
    // Patchee: parks on a monitored mailbox; the instruction after the
    // wake is the patch target.
    let victim = assemble(
        r#"
        .base 0x30000
        mailbox: .word 0
        entry:
            monitor mailbox
            mwait
        patchme:
            movi r2, 1
            halt
        "#,
    )
    .unwrap();
    // Patcher: overwrites the victim's `patchme`, then wakes it. Target
    // addresses come in via registers so the two images stay independent.
    let patcher = assemble(
        r#"
        .base 0x10000
        entry:
            ld r1, newinst
            st r1, r3, 0
            movi r4, 1
            st r4, r5, 0
            halt
        newinst: .word 0
        "#,
    )
    .unwrap();
    let victim_tid = m.load_program(0, &victim).unwrap();
    m.start_thread(victim_tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(victim_tid), ThreadState::Waiting);

    let patcher_tid = m.load_program(0, &patcher).unwrap();
    m.poke_u64(patcher.symbol("newinst").unwrap(), movi_r2_42());
    m.set_thread_reg(patcher_tid, 3, victim.symbol("patchme").unwrap());
    m.set_thread_reg(patcher_tid, 5, victim.symbol("mailbox").unwrap());
    m.start_thread(patcher_tid);
    m.run_for(Cycles(20_000));
    assert_eq!(m.thread_state(patcher_tid), ThreadState::Halted);
    assert_eq!(m.thread_state(victim_tid), ThreadState::Halted);
    assert_eq!(
        m.thread_reg(victim_tid, 2),
        42,
        "a cross-image store must invalidate the other image's decode cache"
    );
}

#[test]
fn host_poke_invalidates_code() {
    let mut m = small();
    let p = assemble(
        r#"
        mailbox: .word 0
        entry:
            monitor mailbox
            mwait
        patchme:
            movi r2, 1
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);

    m.poke_u64(p.symbol("patchme").unwrap(), movi_r2_42());
    m.poke_u64(p.symbol("mailbox").unwrap(), 1); // wake
    m.run_for(Cycles(10_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(
        m.thread_reg(tid, 2),
        42,
        "a host poke over code must invalidate the decoded copy"
    );
}

#[test]
fn dma_write_invalidates_code() {
    let mut m = small();
    let p = assemble(
        r#"
        mailbox: .word 0
        entry:
            monitor mailbox
            mwait
        patchme:
            movi r2, 1
            movi r3, 2
            halt
        "#,
    )
    .unwrap();
    let tid = m.load_program(0, &p).unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);

    // DMA a two-instruction patch: `movi r2, 42` twice, so both the
    // first and a subsequent word of the burst are re-decoded.
    let word = movi_r2_42();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&word.to_le_bytes());
    bytes.extend_from_slice(&word.to_le_bytes());
    m.dma_write(p.symbol("patchme").unwrap(), &bytes);
    m.poke_u64(p.symbol("mailbox").unwrap(), 1); // wake
    m.run_for(Cycles(10_000));
    assert_eq!(m.thread_state(tid), ThreadState::Halted);
    assert_eq!(m.thread_reg(tid, 2), 42);
    assert_eq!(
        m.thread_reg(tid, 3),
        0,
        "the second patched word must also have been re-decoded (it no \
         longer writes r3)"
    );
}

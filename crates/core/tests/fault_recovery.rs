//! Core-layer recovery machinery: per-thread watchdogs, exception
//! descriptor backpressure, and the quarantine/restart API.
//!
//! These are the containment primitives supervisors build on (§3): a
//! wedged thread becomes a descriptor, a flooded descriptor slot drops
//! (never overwrites), and a restart is an ordinary enable from the
//! thread's entry point — no context switch anywhere.

use switchless_core::exception::ExceptionKind;
use switchless_core::machine::{Machine, MachineConfig};
use switchless_core::tid::ThreadState;
use switchless_isa::asm::assemble;
use switchless_sim::fault::{FaultKind, FaultPlan};
use switchless_sim::time::Cycles;

fn small() -> Machine {
    Machine::new(MachineConfig::small())
}

/// A park/serve worker: waits for new values in its mailbox forever.
fn worker_src(base: u64, mb: u64) -> String {
    format!(
        r#"
        .base {base:#x}
        entry:
            movi r1, 0
        loop:
            monitor {mb}
            ld r2, {mb}
            bne r2, r1, serve
            mwait
            jmp loop
        serve:
            mov r1, r2
            jmp loop
        "#
    )
}

/// A thread parked on a mailbox nobody ever writes is wedged; the
/// watchdog turns it into a `WatchdogExpired` descriptor.
#[test]
fn watchdog_fires_on_wedged_mwait() {
    let mut m = small();
    let mb = m.alloc(64);
    let prog = assemble(&format!(
        ".base 0x10000\nentry:\n monitor {mb}\n mwait\n halt\n"
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    let edp = m.alloc(32);
    m.set_thread_edp(tid, edp);
    m.set_thread_watchdog(tid, Some(Cycles(10_000)));
    m.start_thread(tid);
    m.run_for(Cycles(100_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.counters().get("watchdog.fired"), 1);
    assert_eq!(m.peek_u64(edp), ExceptionKind::WatchdogExpired.code());
    assert_eq!(m.peek_u64(edp + 8), u64::from(tid.ptid.0));
    assert!(m.thread_fault_time(tid).is_some(), "fault time recorded");
}

/// A regularly-fed worker never trips its watchdog — every wake/re-park
/// starts a fresh epoch — but wedging it afterwards still does.
#[test]
fn watchdog_quiet_while_fed_then_catches_wedge() {
    let mut m = small();
    let mb = m.alloc(64);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    let edp = m.alloc(32);
    m.set_thread_edp(tid, edp);
    m.set_thread_watchdog(tid, Some(Cycles(50_000)));
    m.start_thread(tid);
    m.run_for(Cycles(2_000));
    for i in 1..=6u64 {
        m.poke_u64(mb, i);
        m.run_for(Cycles(5_000));
    }
    assert_eq!(
        m.counters().get("watchdog.fired"),
        0,
        "fed worker is healthy"
    );
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    // Stop feeding: the last park must expire exactly once.
    m.run_for(Cycles(200_000));
    assert_eq!(m.counters().get("watchdog.fired"), 1);
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    assert_eq!(m.peek_u64(edp), ExceptionKind::WatchdogExpired.code());
}

/// Two threads share one descriptor slot: the second fault is dropped
/// with a counter, never silently overwriting the first descriptor.
#[test]
fn descriptor_overflow_drops_second_fault() {
    let mut m = small();
    let edp = m.alloc(32);
    let mk = |base: u64| {
        assemble(&format!(
            ".base {base:#x}\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n"
        ))
        .unwrap()
    };
    let ta = m.load_program_user(0, &mk(0x10000)).unwrap();
    let tb = m.load_program_user(0, &mk(0x20000)).unwrap();
    m.set_thread_edp(ta, edp);
    m.set_thread_edp(tb, edp);
    m.start_thread(ta);
    m.run_for(Cycles(10_000));
    m.start_thread(tb);
    m.run_for(Cycles(10_000));
    assert!(m.halted_reason().is_none());
    assert_eq!(m.counters().get("exception.div_zero"), 2);
    assert_eq!(m.counters().get("exception.descriptor_overflow"), 1);
    // The slot still holds the FIRST fault's descriptor.
    assert_eq!(m.peek_u64(edp), ExceptionKind::DivZero.code());
    assert_eq!(m.peek_u64(edp + 8), u64::from(ta.ptid.0));
    // Both offenders are disabled regardless.
    assert_eq!(m.thread_state(ta), ThreadState::Disabled);
    assert_eq!(m.thread_state(tb), ThreadState::Disabled);
    // tb's fault time survives for a supervisor sweep to find.
    assert!(m.thread_fault_time(tb).is_some());
}

/// Acknowledging (zeroing) the kind word reopens the slot for the next
/// descriptor — the zero-to-ack convention handlers already follow.
#[test]
fn acked_slot_accepts_next_descriptor() {
    let mut m = small();
    let edp = m.alloc(32);
    let mk = |base: u64| {
        assemble(&format!(
            ".base {base:#x}\nentry:\n movi r2, 0\n div r1, r1, r2\n halt\n"
        ))
        .unwrap()
    };
    let ta = m.load_program_user(0, &mk(0x10000)).unwrap();
    let tb = m.load_program_user(0, &mk(0x20000)).unwrap();
    m.set_thread_edp(ta, edp);
    m.set_thread_edp(tb, edp);
    m.start_thread(ta);
    m.run_for(Cycles(10_000));
    m.poke_u64(edp, 0); // handler acks the first descriptor
    m.start_thread(tb);
    m.run_for(Cycles(10_000));
    assert_eq!(m.counters().get("exception.descriptor_overflow"), 0);
    assert_eq!(m.peek_u64(edp + 8), u64::from(tb.ptid.0));
}

/// `restart_thread` re-enters the thread at its first-`start` pc; here
/// the program bumps a memory counter each life.
#[test]
fn restart_thread_resumes_from_entry() {
    let mut m = small();
    let ctr = m.alloc(64);
    let edp = m.alloc(32);
    let prog = assemble(&format!(
        r#"
        .base 0x10000
        entry:
            ld r1, {ctr}
            addi r1, r1, 1
            st r1, {ctr}
            movi r2, 0
            div r3, r3, r2
            halt
        "#
    ))
    .unwrap();
    let tid = m.load_program(0, &prog).unwrap();
    m.set_thread_edp(tid, edp);
    m.start_thread(tid);
    m.run_for(Cycles(50_000));
    assert_eq!(m.peek_u64(ctr), 1);
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    m.poke_u64(edp, 0); // ack
    assert!(m.restart_thread(tid));
    assert!(!m.restart_thread(tid), "already runnable: restart refused");
    m.run_for(Cycles(50_000));
    assert_eq!(m.peek_u64(ctr), 2, "second life ran from entry");
    assert_eq!(m.counters().get("thread.restarts"), 1);
}

/// A quarantined thread refuses every wake — start, monitor hit — until
/// restarted.
#[test]
fn quarantine_blocks_wakes_until_restart() {
    let mut m = small();
    let mb = m.alloc(64);
    let tid = m
        .load_program(0, &assemble(&worker_src(0x10000, mb)).unwrap())
        .unwrap();
    m.start_thread(tid);
    m.run_for(Cycles(5_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting);
    m.quarantine_thread(tid);
    assert!(m.is_quarantined(tid));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled);
    m.start_thread(tid);
    m.poke_u64(mb, 7);
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(tid), ThreadState::Disabled, "wakes refused");
    assert!(m.counters().get("thread.quarantine_wake_refused") >= 1);
    assert!(m.restart_thread(tid));
    assert!(!m.is_quarantined(tid));
    m.run_for(Cycles(50_000));
    assert_eq!(m.thread_state(tid), ThreadState::Waiting, "back in service");
}

/// With no plan installed a fault query is inert; with a plan it fires
/// and counts.
#[test]
fn fault_draw_counts_only_with_plan() {
    let mut m = small();
    assert!(!m.fault_draw(FaultKind::NicDrop));
    assert_eq!(m.counters().get("fault.nic.drop"), 0);
    m.install_fault_plan(FaultPlan::new(1).with_rate(FaultKind::NicDrop, 1.0));
    assert!(m.fault_draw(FaultKind::NicDrop));
    assert_eq!(m.counters().get("fault.nic.drop"), 1);
}

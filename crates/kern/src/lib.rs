//! The paper's §2 "Faster and Better Kernels", built on the new model.
//!
//! Every subsystem here is a *runnable kernel design* on the
//! `switchless-core` machine: its latency-critical paths are real ISA
//! programs (monitor/mwait, start/stop, rpush/rpull), and only bulk
//! bookkeeping (assigning requests to worker threads, recording
//! latencies) runs as host services via `hcall` (the documented modeling
//! shortcut).
//!
//! * [`nointr`] — **No More Interrupts**: one hardware thread per event
//!   type, parked in `mwait` on the event word the device (or the
//!   MSI-X bridge) writes.
//! * [`ioengine`] — **Fast I/O without Inefficient Polling**: a
//!   dispatcher thread waits on the NIC RX tail; worker threads each
//!   wait on a per-worker mailbox; thread-per-request with blocking
//!   semantics and zero polling.
//! * [`syscall_svc`] — **Exception-less System Calls**: applications pass
//!   arguments through a shared channel and wake a dedicated kernel
//!   hardware thread; no mode switch anywhere.
//! * [`microkernel`] — **Faster Microkernels**: services (FS, network
//!   stack) on dedicated hardware threads; XPC-style direct switch:
//!   client writes the request, service wakes, replies, client wakes.
//! * [`hypervisor`] — **Untrusted Hypervisors / No VM-Exits**: `vmcall`
//!   disables the guest and wakes an *unprivileged* hypervisor thread
//!   that services the exit and restarts the guest via its TDT rights.
//! * [`timeslice`] — the §4 scheduler role, rebuilt: a scheduler
//!   hardware thread that time-slices batch threads purely with
//!   `start`/`stop` on APIC-counter wakeups — preemption without any
//!   interrupt machinery.
//! * [`distrt`] — **Simpler Distributed Programming**: thread-per-request
//!   with blocking RPCs over the fabric; many in-flight hardware threads
//!   hide remote latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distrt;
pub mod hypervisor;
pub mod ioengine;
pub mod microkernel;
pub mod nointr;
pub mod syscall_svc;
pub mod timeslice;

pub use ioengine::IoEngine;
pub use microkernel::Microkernel;
pub use nointr::EventHandlerSet;

//! "Faster Microkernels and Container Proxies" (§2): services on
//! dedicated hardware threads, XPC-style direct switch.
//!
//! A service (file system, network stack, container proxy) is one
//! hardware thread parked on its request mailbox. IPC is two stores and
//! two wakes:
//!
//! ```text
//! client: st args; st req  ──wake──▶ service: work; st resp ──wake──▶ client
//! ```
//!
//! No kernel entry, no scheduler, no IPI — the §2 claim is that this
//! matches XPC `[30]` "while using a simpler hardware mechanism". The
//! module also builds the *sandboxed* variant: the service runs in user
//! mode with a TDT that gives the client only start rights, showing the
//! eBPF/container-proxy isolation story (§2 "Untrusted Hypervisors",
//! last paragraph).

use switchless_core::machine::{Machine, MachineError, ThreadId};
use switchless_isa::asm::assemble;
#[cfg(test)]
use switchless_sim::time::Cycles;

/// Default hcall for service work (the harness charges per-op costs).
pub const HCALL_SERVICE_WORK: u16 = 120;

/// One installed microkernel service.
#[derive(Clone, Copy, Debug)]
pub struct Service {
    /// The service's hardware thread.
    pub tid: ThreadId,
    /// Request mailbox (client stores sequence numbers here).
    pub req: u64,
    /// Request-argument word.
    pub arg: u64,
    /// Response word (service echoes the sequence number).
    pub resp: u64,
    /// Ops-completed counter word.
    pub ops_word: u64,
}

/// A microkernel: a set of services plus client-program builders.
#[derive(Clone, Debug)]
pub struct Microkernel {
    /// Installed services, in installation order.
    pub services: Vec<Service>,
}

impl Microkernel {
    /// Installs `specs` = `(name, work-cycles, supervisor?)` services on
    /// `core`. Non-supervisor services run in **user mode** — isolated
    /// exactly like any application, which is the microkernel point.
    pub fn install(
        m: &mut Machine,
        core: usize,
        specs: &[(&str, u32, bool)],
        image_base: u64,
    ) -> Result<Microkernel, MachineError> {
        let mut services = Vec::with_capacity(specs.len());
        for (i, &(_name, work, supervisor)) in specs.iter().enumerate() {
            let req = m.alloc(64);
            let arg = m.alloc(64);
            let resp = m.alloc(64);
            let ops_word = m.alloc(64);
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                ; Arm-check-wait loop (no lost wakeups, see nointr.rs).
                entry:
                    movi r1, 0
                loop:
                    monitor {req}
                    ld r2, {req}
                    bne r2, r1, serve
                    mwait
                    jmp loop
                serve:
                    mov r1, r2
                    ld r3, {arg}
                    work {work}
                    st r2, {resp}
                    ld r4, {ops}
                    addi r4, r4, 1
                    st r4, {ops}
                    jmp loop
                "#,
                base = image_base + (i as u64) * 0x1000,
                req = req,
                arg = arg,
                resp = resp,
                ops = ops_word,
                work = work,
            ))
            .expect("service template is valid");
            let tid = if supervisor {
                m.load_program(core, &prog)?
            } else {
                m.load_program_user(core, &prog)?
            };
            m.set_thread_prio(tid, 5);
            m.start_thread(tid);
            services.push(Service {
                tid,
                req,
                arg,
                resp,
                ops_word,
            });
        }
        Ok(Microkernel { services })
    }

    /// Builds a client program performing `iters` synchronous IPCs to
    /// service `idx` (r7 counts completions; halts when done).
    #[must_use]
    pub fn client_program(&self, idx: usize, iters: u32, image_base: u64) -> String {
        let s = self.services[idx];
        format!(
            r#"
            .base {base:#x}
            entry:
                movi r1, 0
                movi r7, 0
                movi r6, {iters}
            loop:
                addi r1, r1, 1
                st r1, {arg}
                st r1, {req}
            wait:
                monitor {resp}
                ld r2, {resp}
                beq r2, r1, done
                mwait
                jmp wait
            done:
                addi r7, r7, 1
                bne r7, r6, loop
                halt
            "#,
            base = image_base,
            req = s.req,
            arg = s.arg,
            resp = s.resp,
            iters = iters,
        )
    }

    /// Ops completed by service `idx`.
    #[must_use]
    pub fn ops(&self, m: &Machine, idx: usize) -> u64 {
        m.peek_u64(self.services[idx].ops_word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_isa::arch::Mode;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small())
    }

    #[test]
    fn fs_service_round_trips() {
        let mut m = machine();
        let mk = Microkernel::install(&mut m, 0, &[("fs", 800, false)], 0x40000).unwrap();
        let client = assemble(&mk.client_program(0, 20, 0x60000)).unwrap();
        let app = m.load_program_user(0, &client).unwrap();
        m.run_for(Cycles(10_000));
        m.start_thread(app);
        m.run_for(Cycles(2_000_000));
        assert_eq!(m.thread_state(app), ThreadState::Halted);
        assert_eq!(m.thread_reg(app, 7), 20);
        assert_eq!(mk.ops(&m, 0), 20);
    }

    #[test]
    fn service_runs_in_user_mode_yet_serves() {
        // Isolation claim: the FS service needs no privilege at all.
        let mut m = machine();
        let mk = Microkernel::install(&mut m, 0, &[("fs", 500, false)], 0x40000).unwrap();
        m.run_for(Cycles(10_000));
        // Inspect through host API: service must be user mode & waiting.
        assert_eq!(m.thread_state(mk.services[0].tid), ThreadState::Waiting);
        assert_eq!(m.thread_mode(mk.services[0].tid), Mode::User);
    }

    #[test]
    fn two_services_fs_and_netstack() {
        let mut m = machine();
        let mk = Microkernel::install(
            &mut m,
            0,
            &[("fs", 800, false), ("net", 1200, false)],
            0x40000,
        )
        .unwrap();
        let c0 = assemble(&mk.client_program(0, 10, 0x60000)).unwrap();
        let c1 = assemble(&mk.client_program(1, 10, 0x70000)).unwrap();
        let a0 = m.load_program_user(0, &c0).unwrap();
        let a1 = m.load_program_user(0, &c1).unwrap();
        m.run_for(Cycles(10_000));
        m.start_thread(a0);
        m.start_thread(a1);
        m.run_for(Cycles(3_000_000));
        assert_eq!(mk.ops(&m, 0), 10);
        assert_eq!(mk.ops(&m, 1), 10);
    }

    #[test]
    fn ipc_round_trip_is_sub_microsecond() {
        // §2: "such invocations will now come cheaply" — measure one
        // synchronous no-work IPC round trip.
        let mut m = machine();
        let mk = Microkernel::install(&mut m, 0, &[("echo", 1, false)], 0x40000).unwrap();
        let client = assemble(&mk.client_program(0, 1, 0x60000)).unwrap();
        let app = m.load_program_user(0, &client).unwrap();
        m.run_for(Cycles(20_000));
        let t0 = m.now();
        m.start_thread(app);
        assert!(m.run_until_state(app, ThreadState::Halted, Cycles(100_000)));
        let elapsed = m.now() - t0;
        // Round trip incl. client start from DRAM tier: well under 1 µs
        // (3000 cycles). The steady-state hop cost is measured in F6.
        assert!(elapsed.0 < 3000, "IPC round trip took {elapsed}");
    }
}

//! "Fast I/O without Inefficient Polling" (§2): thread-per-request I/O
//! with blocking semantics and zero polling.
//!
//! Topology on one core:
//!
//! ```text
//! NIC --DMA--> rx tail word --wake--> dispatcher thread --wake--> worker threads
//! ```
//!
//! The dispatcher parks in `mwait` on the RX tail; on wake it drains new
//! descriptors and assigns each to an idle worker by bumping the
//! worker's mailbox word (an ordinary store — the wake mechanism is the
//! same everywhere). Workers park in `mwait` on their mailboxes and run
//! one request per wake. Nobody spins, ever; under zero load the engine
//! consumes zero cycles.
//!
//! Assignment bookkeeping and latency recording run as host services
//! (`hcall`), with the per-request service time charged to the worker
//! thread via [`Machine::charge`] — see DESIGN.md's modeling-shortcut
//! note.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use switchless_core::machine::{Machine, ThreadId};
use switchless_dev::nic::Nic;
use switchless_isa::asm::assemble;
use switchless_sim::error::SimError;
use switchless_sim::stats::Histogram;
use switchless_sim::time::Cycles;

/// Default hcall number for the dispatcher's drain service.
pub const HCALL_DISPATCH: u16 = 100;
/// Default hcall number for the worker's request service.
pub const HCALL_WORK: u16 = 101;

/// Capped-exponential retry schedule shared by the engine's descriptor
/// revalidation and the [`crate::nointr`] supervisor.
///
/// `backoff(n)` is the delay before retry number `n` (0-based):
/// `initial_backoff << n`, saturating, capped at `max_backoff`; `None`
/// once `max_retries` have been spent.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub initial_backoff: Cycles,
    /// Ceiling on any single delay.
    pub max_backoff: Cycles,
    /// Retries allowed before giving up.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            initial_backoff: Cycles(1_000), // ~333 ns
            max_backoff: Cycles(30_000),    // 10 us
            max_retries: 8,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry `retries_done` (0-based), or `None` if the
    /// budget is exhausted.
    #[must_use]
    pub fn backoff(&self, retries_done: u32) -> Option<Cycles> {
        if retries_done >= self.max_retries {
            return None;
        }
        let mult = 1u64.checked_shl(retries_done).unwrap_or(u64::MAX);
        Some(Cycles(
            self.initial_backoff
                .0
                .saturating_mul(mult)
                .min(self.max_backoff.0),
        ))
    }
}

/// Seals `payload` for [`IoEngine`] checksum validation: the last byte
/// becomes the wrapping sum of all preceding bytes.
///
/// # Panics
///
/// Panics if `payload` is shorter than 2 bytes.
pub fn checksum_seal(payload: &mut [u8]) {
    let n = payload.len();
    assert!(n >= 2, "checksummed payloads need >= 2 bytes");
    payload[n - 1] = payload[..n - 1].iter().fold(0u8, |a, &b| a.wrapping_add(b));
}

/// Whether a sealed payload still checks out. Payloads under 2 bytes
/// are vacuously valid.
#[must_use]
pub fn checksum_ok(payload: &[u8]) -> bool {
    let n = payload.len();
    if n < 2 {
        return true;
    }
    payload[..n - 1].iter().fold(0u8, |a, &b| a.wrapping_add(b)) == payload[n - 1]
}

#[derive(Clone, Copy, Debug)]
struct Packet {
    seq: u64,
    arrival: Cycles,
    service: Cycles,
    /// Descriptor-revalidation retries spent on this packet so far.
    attempt: u32,
}

#[derive(Clone, Copy, Debug)]
struct FaultHandling {
    policy: RetryPolicy,
    checksum: bool,
}

struct EngineState {
    nic: Nic,
    nic_tail: u64,
    seen: u64,
    /// Packet metadata registered by the harness, by sequence number.
    meta: HashMap<u64, (Cycles, Cycles)>,
    /// Packets waiting for a free worker.
    backlog: VecDeque<Packet>,
    /// Per-worker assignment queues (at most one deep in practice).
    assigned: Vec<VecDeque<Packet>>,
    /// Worker mailbox addresses.
    mailboxes: Vec<u64>,
    /// Workers with no assignment in flight.
    idle: Vec<usize>,
    /// Per-packet dispatch bookkeeping cost charged to the dispatcher.
    dispatch_cost: Cycles,
    latency: Histogram,
    completed: u64,
    /// Descriptor revalidation + payload checksumming, off by default
    /// (and then the engine behaves bit-identically to before).
    fault: Option<FaultHandling>,
}

impl EngineState {
    /// Assigns a packet to a specific worker: queue + mailbox bump.
    fn assign_to(&mut self, m: &mut Machine, worker: usize, pkt: Packet) {
        self.assigned[worker].push_back(pkt);
        let mb = self.mailboxes[worker];
        let v = m.peek_u64(mb).wrapping_add(1);
        m.poke_u64(mb, v);
    }
}

/// Charges the service time and records the completion.
fn complete(m: &mut Machine, s: &mut EngineState, pkt: Packet) {
    m.charge(pkt.service);
    let done = m.now() + pkt.service;
    s.latency.record((done - pkt.arrival).0);
    s.completed += 1;
}

/// Byte-granular read on top of the word-granular host peek.
fn peek_bytes(m: &Machine, addr: u64, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for i in 0..len as u64 {
        let a = addr + i;
        let w = m.peek_u64(a & !7);
        out.push((w >> ((a & 7) * 8)) as u8);
    }
    out
}

/// The installed I/O engine.
pub struct IoEngine {
    /// Dispatcher thread (waits on the NIC RX tail).
    pub dispatcher: ThreadId,
    /// Worker threads (wait on per-worker mailboxes).
    pub workers: Vec<ThreadId>,
    state: Rc<RefCell<EngineState>>,
}

impl IoEngine {
    /// Builds the engine on `core` with `n_workers` worker threads.
    ///
    /// `image_base` must point at free simulated memory (each thread's
    /// program takes one 4 KiB page).
    pub fn install(
        m: &mut Machine,
        core: usize,
        nic: &Nic,
        n_workers: usize,
        image_base: u64,
    ) -> Result<IoEngine, SimError> {
        if n_workers == 0 {
            return Err(SimError::Config {
                context: "io engine",
                detail: "need at least one worker".into(),
            });
        }
        let mut mailboxes = Vec::with_capacity(n_workers);
        let mut workers = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let mb = m.alloc(64);
            mailboxes.push(mb);
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                ; Arm-check-wait: no lost wakeups (see nointr.rs).
                entry:
                    movi r1, 0
                loop:
                    monitor {mb}
                    ld r2, {mb}
                    bne r2, r1, serve
                    mwait
                    jmp loop
                serve:
                    addi r1, r1, 1
                    hcall {work}
                    jmp loop
                "#,
                base = image_base + (w as u64 + 1) * 0x1000,
                mb = mb,
                work = HCALL_WORK,
            ))
            .map_err(|e| SimError::Assemble {
                context: "io-engine worker template",
                detail: e.to_string(),
            })?;
            let tid = m.load_program(core, &prog)?;
            m.start_thread(tid);
            workers.push(tid);
        }

        let disp_prog = assemble(&format!(
            r#"
            .base {base:#x}
            ; Arm-check-wait: no lost wakeups (see nointr.rs).
            entry:
                movi r1, 0
            loop:
                monitor {tail}
                ld r2, {tail}
                bne r2, r1, serve
                mwait
                jmp loop
            serve:
                hcall {dispatch}
                mov r1, r2
                jmp loop
            "#,
            base = image_base,
            tail = nic.rx_tail,
            dispatch = HCALL_DISPATCH,
        ))
        .map_err(|e| SimError::Assemble {
            context: "io-engine dispatcher template",
            detail: e.to_string(),
        })?;
        let dispatcher = m.load_program(core, &disp_prog)?;
        // The dispatcher is the engine's time-critical thread.
        m.set_thread_prio(dispatcher, 7);
        m.start_thread(dispatcher);

        let state = Rc::new(RefCell::new(EngineState {
            nic: *nic,
            nic_tail: nic.rx_tail,
            seen: 0,
            meta: HashMap::new(),
            backlog: VecDeque::new(),
            assigned: vec![VecDeque::new(); n_workers],
            mailboxes,
            idle: (0..n_workers).rev().collect(),
            dispatch_cost: Cycles(30),
            latency: Histogram::new(),
            completed: 0,
            fault: None,
        }));

        // Dispatcher drain service.
        let st = Rc::clone(&state);
        m.register_hcall(HCALL_DISPATCH, move |mach, _tid| {
            let mut s = st.borrow_mut();
            let tail = mach.peek_u64(s.nic_tail);
            let mut charged = Cycles::ZERO;
            while s.seen < tail {
                let seq = s.seen;
                s.seen += 1;
                let (arrival, service) = s
                    .meta
                    .get(&seq)
                    .copied()
                    .unwrap_or((mach.now(), Cycles(1000)));
                let pkt = Packet {
                    seq,
                    arrival,
                    service,
                    attempt: 0,
                };
                charged += s.dispatch_cost;
                if let Some(w) = s.idle.pop() {
                    s.assign_to(mach, w, pkt);
                } else {
                    s.backlog.push_back(pkt);
                }
            }
            mach.charge(charged);
        });

        // Worker request service.
        let st = Rc::clone(&state);
        let worker_ids = workers.clone();
        m.register_hcall(HCALL_WORK, move |mach, tid| {
            let mut s = st.borrow_mut();
            // A foreign thread issuing this hcall (misloaded image,
            // chaos-restarted stranger) is counted and ignored, never a
            // machine-killing panic.
            let Some(w) = worker_ids.iter().position(|&t| t == tid) else {
                mach.counters_mut().inc("engine.foreign_hcall");
                return;
            };
            let Some(pkt) = s.assigned[w].pop_front() else {
                return; // spurious mailbox bump
            };
            if let Some(fh) = s.fault {
                // Revalidate the descriptor before trusting it: a
                // dropped or stalled packet leaves its ring slot stale
                // (zeroed, or holding an older wrap's sequence).
                let meta = mach.peek_u64(s.nic.desc_addr(pkt.seq) + 8);
                let valid = (meta >> 32) != 0 && (meta & 0xffff_ffff) == (pkt.seq & 0xffff_ffff);
                if !valid {
                    if let Some(d) = fh.policy.backoff(pkt.attempt) {
                        // Re-check after a capped backoff; the worker
                        // stays reserved for the retry (it parks, and
                        // the reassignment's mailbox bump rewakes it).
                        mach.counters_mut().inc("engine.rx.retries");
                        let retry = Packet {
                            attempt: pkt.attempt + 1,
                            ..pkt
                        };
                        let st2 = Rc::clone(&st);
                        let at = mach.now() + d;
                        mach.at(at, move |inner| {
                            st2.borrow_mut().assign_to(inner, w, retry);
                        });
                        return;
                    }
                    mach.counters_mut().inc("engine.rx.lost");
                } else if fh.checksum && {
                    let len = (meta >> 32) as usize;
                    let buf = s.nic.buf_addr(pkt.seq);
                    !checksum_ok(&peek_bytes(mach, buf, len))
                } {
                    // Damaged on the wire: count and drop; recovery is
                    // the sender's end-to-end concern, not the ring's.
                    mach.counters_mut().inc("engine.rx.corrupt");
                } else {
                    complete(mach, &mut s, pkt);
                }
            } else {
                complete(mach, &mut s, pkt);
            }
            // Immediately feed the next backlogged packet to this worker
            // (its post-hcall check loop picks it up without parking).
            if let Some(next) = s.backlog.pop_front() {
                s.assign_to(mach, w, next);
            } else {
                s.idle.push(w);
            }
        });

        Ok(IoEngine {
            dispatcher,
            workers,
            state,
        })
    }

    /// Turns on descriptor revalidation (and optionally payload
    /// checksumming) for every packet served from here on.
    ///
    /// Off by default — the no-fault fast path is untouched. With it
    /// on, a worker whose ring slot is stale (dropped or still-stalled
    /// packet) re-checks after `policy` backoffs and finally counts
    /// `engine.rx.lost`; with `checksum` also on, payloads sealed via
    /// [`checksum_seal`] that arrive damaged count `engine.rx.corrupt`
    /// and are not completed.
    pub fn set_fault_handling(&self, policy: RetryPolicy, checksum: bool) {
        self.state.borrow_mut().fault = Some(FaultHandling { policy, checksum });
    }

    /// Registers a packet's arrival time (tail-bump time) and service
    /// cost; call before (or when) scheduling the NIC RX.
    pub fn note_packet(&self, seq: u64, arrival: Cycles, service: Cycles) {
        self.state.borrow_mut().meta.insert(seq, (arrival, service));
    }

    /// Completed-request latency histogram (arrival → service done).
    #[must_use]
    pub fn latency(&self) -> Histogram {
        self.state.borrow().latency.clone()
    }

    /// Requests completed.
    #[must_use]
    pub fn completed(&self) -> u64 {
        self.state.borrow().completed
    }

    /// Clears measurement state (end of warmup).
    pub fn reset_measurements(&self) {
        let mut s = self.state.borrow_mut();
        s.latency.reset();
        s.completed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_dev::nic::NicConfig;

    fn setup(n_workers: usize) -> (Machine, Nic, IoEngine) {
        let mut m = Machine::new(MachineConfig::small());
        let nic = Nic::attach(&mut m, NicConfig::default());
        let eng = IoEngine::install(&mut m, 0, &nic, n_workers, 0x40000).unwrap();
        // Let all threads park.
        m.run_for(Cycles(20_000));
        (m, nic, eng)
    }

    #[test]
    fn engine_parks_with_zero_load() {
        let (m, _nic, eng) = setup(2);
        assert_eq!(m.thread_state(eng.dispatcher), ThreadState::Waiting);
        for &w in &eng.workers {
            assert_eq!(m.thread_state(w), ThreadState::Waiting);
        }
    }

    #[test]
    fn single_packet_completes_quickly() {
        let (mut m, nic, eng) = setup(2);
        let t0 = m.now();
        let dma = Cycles(300);
        eng.note_packet(0, t0 + dma, Cycles(3000));
        nic.schedule_rx(&mut m, t0, 0, &[1; 64]);
        m.run_for(Cycles(50_000));
        assert_eq!(eng.completed(), 1);
        let lat = eng.latency();
        // Service 3000 + two wake hops (~tens of cycles each) + dispatch.
        assert!(lat.max() < 3000 + 1500, "latency {}", lat.max());
        assert!(lat.min() >= 3000);
    }

    #[test]
    fn burst_all_complete_without_loss() {
        let (mut m, nic, eng) = setup(4);
        let t0 = m.now();
        for seq in 0..20u64 {
            let at = t0 + Cycles(seq * 100);
            eng.note_packet(seq, at + Cycles(300), Cycles(2000));
            nic.schedule_rx(&mut m, at, seq, &[0; 64]);
        }
        m.run_for(Cycles(500_000));
        assert_eq!(eng.completed(), 20, "all packets served");
        assert_eq!(m.thread_state(eng.dispatcher), ThreadState::Waiting);
    }

    #[test]
    fn backlog_queues_when_workers_busy() {
        let (mut m, nic, eng) = setup(1);
        let t0 = m.now();
        for seq in 0..4u64 {
            eng.note_packet(seq, t0 + Cycles(300), Cycles(10_000));
            nic.schedule_rx(&mut m, t0, seq, &[0; 64]);
        }
        m.run_for(Cycles(300_000));
        assert_eq!(eng.completed(), 4);
        let lat = eng.latency();
        // Serialized on one worker: last ~4x service.
        assert!(lat.max() >= 30_000, "max {}", lat.max());
        assert!(lat.min() < 15_000, "min {}", lat.min());
    }

    #[test]
    fn more_workers_cut_tail_latency() {
        let run = |workers: usize| {
            let (mut m, nic, eng) = setup(workers);
            let t0 = m.now();
            for seq in 0..16u64 {
                eng.note_packet(seq, t0 + Cycles(300), Cycles(8_000));
                nic.schedule_rx(&mut m, t0, seq, &[0; 64]);
            }
            m.run_for(Cycles(1_000_000));
            assert_eq!(eng.completed(), 16);
            eng.latency().max()
        };
        let narrow = run(1);
        let wide = run(8);
        // Service here is pipeline time, so the ceiling is the core's 2
        // SMT slots: expect ~2x, assert at least 1.5x.
        assert!(
            wide * 3 < narrow * 2,
            "8 workers {wide} should beat 1 worker {narrow} by >=1.5x"
        );
    }

    #[test]
    fn retry_policy_backoff_caps_and_exhausts() {
        let p = RetryPolicy {
            initial_backoff: Cycles(1_000),
            max_backoff: Cycles(5_000),
            max_retries: 4,
        };
        assert_eq!(p.backoff(0), Some(Cycles(1_000)));
        assert_eq!(p.backoff(1), Some(Cycles(2_000)));
        assert_eq!(p.backoff(2), Some(Cycles(4_000)));
        assert_eq!(p.backoff(3), Some(Cycles(5_000)), "capped");
        assert_eq!(p.backoff(4), None, "budget spent");
        // Huge retry counts must not overflow the shift.
        let wide = RetryPolicy {
            max_retries: u32::MAX,
            ..p
        };
        assert_eq!(wide.backoff(200), Some(Cycles(5_000)));
    }

    #[test]
    fn checksum_seal_roundtrip() {
        let mut p = [0x11u8, 0x22, 0x33, 0x00];
        checksum_seal(&mut p);
        assert!(checksum_ok(&p));
        p[0] ^= 0xff;
        assert!(!checksum_ok(&p));
    }

    #[test]
    fn dropped_packet_retries_then_counts_lost() {
        use switchless_sim::fault::{FaultKind, FaultPlan};
        let (mut m, nic, eng) = setup(2);
        eng.set_fault_handling(
            RetryPolicy {
                initial_backoff: Cycles(1_000),
                max_backoff: Cycles(4_000),
                max_retries: 3,
            },
            false,
        );
        let t0 = m.now();
        // Only the first packet (scheduled inside the 1-cycle window)
        // is eaten on the wire.
        m.install_fault_plan(
            FaultPlan::new(5)
                .with_rate(FaultKind::NicDrop, 1.0)
                .with_window(FaultKind::NicDrop, t0, t0 + Cycles(1)),
        );
        eng.note_packet(0, t0 + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, t0, 0, &[1; 32]);
        m.run_for(Cycles(1));
        let t1 = m.now();
        eng.note_packet(1, t1 + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, t1, 1, &[2; 32]);
        m.run_for(Cycles(100_000));
        // Packet 1's tail bump exposes slot 0's stale (zeroed)
        // descriptor; revalidation retries it to exhaustion.
        assert_eq!(eng.completed(), 1, "only the delivered packet completes");
        assert_eq!(m.counters().get("engine.rx.retries"), 3);
        assert_eq!(m.counters().get("engine.rx.lost"), 1);
        assert_eq!(m.thread_state(eng.dispatcher), ThreadState::Waiting);
    }

    #[test]
    fn stalled_packet_recovers_via_retry() {
        use switchless_sim::fault::{FaultKind, FaultPlan};
        let (mut m, nic, eng) = setup(2);
        eng.set_fault_handling(RetryPolicy::default(), false);
        let t0 = m.now();
        m.install_fault_plan(
            FaultPlan::new(6)
                .with_rate(FaultKind::NicStall, 1.0)
                .with_window(FaultKind::NicStall, t0, t0 + Cycles(1))
                .with_delay(FaultKind::NicStall, Cycles(20_000), Cycles(20_000)),
        );
        eng.note_packet(0, t0 + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, t0, 0, &[1; 32]);
        m.run_for(Cycles(1));
        let t1 = m.now();
        eng.note_packet(1, t1 + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, t1, 1, &[2; 32]);
        m.run_for(Cycles(200_000));
        // The straggler's descriptor lands mid-backoff; a later retry
        // finds it valid and the packet completes — nothing is lost.
        assert_eq!(eng.completed(), 2, "straggler served after it lands");
        assert!(m.counters().get("engine.rx.retries") >= 1);
        assert_eq!(m.counters().get("engine.rx.lost"), 0);
    }

    #[test]
    fn corrupt_payload_detected_by_checksum() {
        use switchless_sim::fault::{FaultKind, FaultPlan};
        let (mut m, nic, eng) = setup(2);
        eng.set_fault_handling(RetryPolicy::default(), true);
        let t0 = m.now();
        m.install_fault_plan(
            FaultPlan::new(7)
                .with_rate(FaultKind::NicCorrupt, 1.0)
                .with_window(FaultKind::NicCorrupt, t0, t0 + Cycles(1)),
        );
        let mut payload = [0x5au8; 32];
        checksum_seal(&mut payload);
        eng.note_packet(0, t0 + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, t0, 0, &payload); // first byte flipped
        m.run_for(Cycles(1));
        let t1 = m.now();
        eng.note_packet(1, t1 + Cycles(300), Cycles(2_000));
        nic.schedule_rx(&mut m, t1, 1, &payload); // clean
        m.run_for(Cycles(100_000));
        assert_eq!(eng.completed(), 1, "damaged payload not completed");
        assert_eq!(m.counters().get("engine.rx.corrupt"), 1);
        assert_eq!(m.counters().get("fault.nic.corrupt"), 1);
        assert_eq!(m.counters().get("engine.rx.lost"), 0);
    }

    #[test]
    fn reset_measurements_clears_histogram() {
        let (mut m, nic, eng) = setup(1);
        let t0 = m.now();
        eng.note_packet(0, t0, Cycles(1000));
        nic.schedule_rx(&mut m, t0, 0, &[0; 8]);
        m.run_for(Cycles(50_000));
        assert_eq!(eng.completed(), 1);
        eng.reset_measurements();
        assert_eq!(eng.completed(), 0);
        assert_eq!(eng.latency().count(), 0);
    }
}

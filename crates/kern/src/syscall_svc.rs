//! "Exception-less System Calls" (§2): a dedicated kernel hardware
//! thread serves system calls; applications never mode-switch.
//!
//! Channel protocol (one cache-line channel per application thread):
//!
//! ```text
//! req word:  app stores (seq << 16 | syscall number)  -> wakes kernel
//! arg word:  app stores the argument before the req store
//! resp word: kernel stores seq when done               -> wakes app
//! ```
//!
//! The application's call sequence is: store arg, store req, `monitor`
//! resp, `mwait`, load result — pure user-mode instructions, no traps.
//! The kernel thread parks on the req words of all its channels (one
//! `monitor` each, §3.1 allows multiple) and serves whichever fired.

use switchless_core::machine::{Machine, MachineError, ThreadId};
use switchless_isa::asm::assemble;
use switchless_sim::time::Cycles;

/// Default hcall number for the kernel's syscall-work service.
pub const HCALL_SYSCALL_WORK: u16 = 110;

/// One application↔kernel syscall channel.
#[derive(Clone, Copy, Debug)]
pub struct Channel {
    /// Request word (app writes; kernel waits).
    pub req: u64,
    /// Argument word.
    pub arg: u64,
    /// Response word (kernel writes; app waits).
    pub resp: u64,
}

/// The dedicated-thread syscall service.
#[derive(Clone, Debug)]
pub struct SyscallService {
    /// The kernel service thread.
    pub kernel: ThreadId,
    /// Channels, one per client.
    pub channels: Vec<Channel>,
    /// Completed-calls counter word.
    pub served_word: u64,
}

impl SyscallService {
    /// Installs the service with `n_channels` channels on `core`.
    ///
    /// `kernel_work` is the cycles of kernel work per call (charged via
    /// an hcall so different syscall types can be modeled by the
    /// harness).
    pub fn install(
        m: &mut Machine,
        core: usize,
        n_channels: usize,
        kernel_work: u32,
        image_base: u64,
    ) -> Result<SyscallService, MachineError> {
        assert!((1..=8).contains(&n_channels), "1..=8 channels supported");
        let channels: Vec<Channel> = (0..n_channels)
            .map(|_| Channel {
                req: m.alloc(64),
                arg: m.alloc(64),
                resp: m.alloc(64),
            })
            .collect();
        let served_word = m.alloc(64);

        // Kernel loop: arm a monitor on every channel's req word, wait,
        // then scan channels for new requests (r4..: last-seen seq per
        // channel kept in registers r8+i).
        let mut arms = String::new();
        for c in &channels {
            arms.push_str(&format!("    monitor {}\n", c.req));
        }
        let mut scans = String::new();
        for (i, c) in channels.iter().enumerate() {
            let seen = 8 + i; // r8, r9, ... hold last-served req values
            scans.push_str(&format!(
                r#"
            scan{i}:
                ld r2, {req}
                beq r2, r{seen}, next{i}
                mov r{seen}, r2
                ld r3, {arg}          ; fetch argument
                hcall {work}           ; kernel work (charged)
                st r2, {resp}          ; response: echoes req seq
                ld r5, {served}
                addi r5, r5, 1
                st r5, {served}
                jmp scan{i}
            next{i}:
            "#,
                i = i,
                req = c.req,
                arg = c.arg,
                resp = c.resp,
                served = served_word,
                seen = seen,
                work = HCALL_SYSCALL_WORK,
            ));
        }
        // Arm-check-wait order (see nointr.rs): monitors are armed, then
        // every channel is scanned, then mwait. A request stored during
        // the scan trips the armed trigger and mwait falls through.
        let prog = assemble(&format!(
            r#"
            .base {base:#x}
            entry:
            loop:
            {arms}
            {scans}
                mwait
                jmp loop
            "#,
            base = image_base,
            arms = arms,
            scans = scans,
        ))
        .expect("kernel template is valid");
        let kernel = m.load_program(core, &prog)?;
        m.set_thread_prio(kernel, 6);

        m.register_hcall(HCALL_SYSCALL_WORK, move |mach, _tid| {
            mach.charge(Cycles(u64::from(kernel_work)));
        });

        m.start_thread(kernel);
        Ok(SyscallService {
            kernel,
            channels,
            served_word,
        })
    }

    /// Builds a client program that performs `iters` null-ish syscalls
    /// on `channel` back to back, then halts. `r7` ends with the number
    /// of completed calls.
    #[must_use]
    pub fn client_program(&self, channel: usize, iters: u32, image_base: u64) -> String {
        let c = self.channels[channel];
        format!(
            r#"
            .base {base:#x}
            entry:
                movi r1, 0          ; seq
                movi r7, 0          ; completed
                movi r6, {iters}
            loop:
                addi r1, r1, 1
                st r1, {arg}        ; argument = seq
                st r1, {req}        ; fire the request (kernel wakes)
            wait:
                monitor {resp}
                ld r2, {resp}
                beq r2, r1, done
                mwait
                jmp wait
            done:
                addi r7, r7, 1
                bne r7, r6, loop
                halt
            "#,
            base = image_base,
            req = c.req,
            arg = c.arg,
            resp = c.resp,
            iters = iters,
        )
    }

    /// Calls served so far.
    #[must_use]
    pub fn served(&self, m: &Machine) -> u64 {
        m.peek_u64(self.served_word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;

    #[test]
    fn one_client_completes_calls_without_traps() {
        let mut m = Machine::new(MachineConfig::small());
        let svc = SyscallService::install(&mut m, 0, 1, 500, 0x40000).unwrap();
        let client = assemble(&svc.client_program(0, 10, 0x60000)).unwrap();
        let app = m.load_program_user(0, &client).unwrap();
        m.run_for(Cycles(10_000));
        m.start_thread(app);
        m.run_for(Cycles(1_000_000));
        assert_eq!(m.thread_state(app), ThreadState::Halted);
        assert_eq!(m.thread_reg(app, 7), 10, "all calls returned");
        assert_eq!(svc.served(&m), 10);
        // The whole point: zero mode switches / trap descriptors.
        assert_eq!(m.counters().get("syscall.same_thread"), 0);
        assert_eq!(m.counters().get("exception.syscall_trap"), 0);
    }

    #[test]
    fn two_clients_share_one_kernel_thread() {
        let mut m = Machine::new(MachineConfig::small());
        let svc = SyscallService::install(&mut m, 0, 2, 300, 0x40000).unwrap();
        let c0 = assemble(&svc.client_program(0, 5, 0x60000)).unwrap();
        let c1 = assemble(&svc.client_program(1, 5, 0x70000)).unwrap();
        let a0 = m.load_program_user(0, &c0).unwrap();
        let a1 = m.load_program_user(0, &c1).unwrap();
        m.run_for(Cycles(10_000));
        m.start_thread(a0);
        m.start_thread(a1);
        m.run_for(Cycles(2_000_000));
        assert_eq!(m.thread_state(a0), ThreadState::Halted);
        assert_eq!(m.thread_state(a1), ThreadState::Halted);
        assert_eq!(svc.served(&m), 10);
    }

    #[test]
    fn kernel_thread_parks_when_idle() {
        let mut m = Machine::new(MachineConfig::small());
        let svc = SyscallService::install(&mut m, 0, 1, 500, 0x40000).unwrap();
        m.run_for(Cycles(20_000));
        assert_eq!(m.thread_state(svc.kernel), ThreadState::Waiting);
    }

    use switchless_isa::asm::assemble;
}

//! "No More Interrupts" (§2): a hardware thread per event type.
//!
//! Instead of registering handlers in an IDT, the kernel designates one
//! hardware thread per core per interrupt type. Each thread parks in
//! `mwait` on an event word; the event source (APIC timer, NIC, MSI-X
//! bridge) *writes that word*, and the thread wakes directly into its
//! handler body — no IRQ context, no vectoring, no preemption of
//! whatever else was running.

use switchless_core::machine::{Machine, MachineError, ThreadId};
use switchless_isa::asm::assemble;
#[cfg(test)]
use switchless_sim::time::Cycles;

/// One installed event-handler thread.
#[derive(Clone, Copy, Debug)]
pub struct EventHandler {
    /// The handler's hardware thread.
    pub tid: ThreadId,
    /// The event word the handler waits on (write here to fire).
    pub event_word: u64,
    /// Counter word the handler increments per handled event.
    pub handled_word: u64,
}

/// A set of per-event-type handler threads on one core.
#[derive(Clone, Debug)]
pub struct EventHandlerSet {
    /// Installed handlers, in installation order.
    pub handlers: Vec<EventHandler>,
}

impl EventHandlerSet {
    /// Installs `specs` = `(event-name, handler-work-cycles, priority)`
    /// handler threads on `core`. Returns the set with one event word
    /// per handler.
    ///
    /// The handler body is pure ISA: an event-counter loop that never
    /// misses wakeups (monitor → mwait → drain), doing `work` cycles of
    /// simulated handler work per event.
    pub fn install(
        m: &mut Machine,
        core: usize,
        specs: &[(&str, u32, u8)],
        image_base: u64,
    ) -> Result<EventHandlerSet, MachineError> {
        let mut handlers = Vec::with_capacity(specs.len());
        for (i, &(_name, work, prio)) in specs.iter().enumerate() {
            let event_word = m.alloc(64);
            let handled_word = m.alloc(64);
            let prog = assemble(&format!(
                r#"
                .base {base:#x}
                ; r1 = events seen
                ; Arm-check-wait order: the monitor is armed *before* the
                ; counter is read, so a write landing between the read
                ; and the mwait trips the armed trigger and mwait falls
                ; through — no lost wakeups.
                entry:
                    movi r1, 0
                loop:
                    monitor {event}
                    ld r2, {event}
                    bne r2, r1, serve
                    mwait
                    jmp loop
                serve:
                    addi r1, r1, 1
                    work {work}
                    ld r3, {handled}
                    addi r3, r3, 1
                    st r3, {handled}
                    jmp loop
                "#,
                base = image_base + (i as u64) * 0x1000,
                event = event_word,
                handled = handled_word,
                work = work,
            ))
            .expect("handler template is valid assembly");
            let tid = m.load_program(core, &prog)?;
            m.set_thread_prio(tid, prio);
            m.start_thread(tid);
            handlers.push(EventHandler {
                tid,
                event_word,
                handled_word,
            });
        }
        Ok(EventHandlerSet { handlers })
    }

    /// Fires event `idx` once (host-side event source: increments the
    /// event word through the DMA path).
    pub fn fire(&self, m: &mut Machine, idx: usize) {
        let h = self.handlers[idx];
        let v = m.peek_u64(h.event_word).wrapping_add(1);
        m.dma_write(h.event_word, &v.to_le_bytes());
    }

    /// Events handled so far by handler `idx`.
    #[must_use]
    pub fn handled(&self, m: &Machine, idx: usize) -> u64 {
        m.peek_u64(self.handlers[idx].handled_word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::machine::MachineConfig;
    use switchless_core::tid::ThreadState;
    use switchless_dev::timer::ApicTimer;

    #[test]
    fn handler_wakes_per_event_and_reparks() {
        let mut m = Machine::new(MachineConfig::small());
        let set =
            EventHandlerSet::install(&mut m, 0, &[("timer", 500, 7)], 0x40000).unwrap();
        m.run_for(Cycles(5_000));
        assert_eq!(
            m.thread_state(set.handlers[0].tid),
            ThreadState::Waiting,
            "handler parks without polling"
        );
        for _ in 0..3 {
            set.fire(&mut m, 0);
            m.run_for(Cycles(10_000));
        }
        assert_eq!(set.handled(&m, 0), 3);
        assert_eq!(m.thread_state(set.handlers[0].tid), ThreadState::Waiting);
    }

    #[test]
    fn burst_of_events_all_drained() {
        // Events fired while the handler is mid-work must not be lost:
        // the counter-drain loop catches them.
        let mut m = Machine::new(MachineConfig::small());
        let set =
            EventHandlerSet::install(&mut m, 0, &[("nic", 2_000, 7)], 0x40000).unwrap();
        m.run_for(Cycles(5_000));
        for _ in 0..5 {
            set.fire(&mut m, 0); // all at once
        }
        m.run_for(Cycles(100_000));
        assert_eq!(set.handled(&m, 0), 5, "no lost events");
    }

    #[test]
    fn multiple_event_types_independent_threads() {
        let mut m = Machine::new(MachineConfig::small());
        let set = EventHandlerSet::install(
            &mut m,
            0,
            &[("timer", 300, 7), ("nic", 300, 6), ("disk", 300, 5)],
            0x40000,
        )
        .unwrap();
        m.run_for(Cycles(5_000));
        set.fire(&mut m, 1);
        m.run_for(Cycles(20_000));
        assert_eq!(set.handled(&m, 0), 0);
        assert_eq!(set.handled(&m, 1), 1);
        assert_eq!(set.handled(&m, 2), 0);
    }

    #[test]
    fn apic_timer_drives_scheduler_handler() {
        // The §2 sketch end-to-end: the APIC timer increments a counter;
        // the "kernel scheduler" hardware thread wakes per tick.
        let mut m = Machine::new(MachineConfig::small());
        let set =
            EventHandlerSet::install(&mut m, 0, &[("sched-tick", 1_000, 7)], 0x40000)
                .unwrap();
        m.run_for(Cycles(2_000));
        ApicTimer::start_periodic(
            &mut m,
            set.handlers[0].event_word,
            Cycles(10_000),
            Cycles(30_000),
            5,
        );
        m.run_for(Cycles(300_000));
        assert_eq!(set.handled(&m, 0), 5);
    }
}
